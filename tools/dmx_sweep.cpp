// dmx_sweep: command-line sweep driver for the mutual exclusion simulator.
//
// Examples:
//   dmx_sweep --list
//   dmx_sweep --algo arbiter-tp --lambda 0.01,0.1,0.5,2 --requests 200000
//   dmx_sweep --algo arbiter-tp --param t_req=0.2 --param recovery=1
//             --loss PRIVILEGE=0.01 --csv
#include <iostream>
#include <vector>

#include "harness/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const auto opts = dmx::harness::parse_cli(args);
    return dmx::harness::run_cli(opts, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "dmx_sweep: " << e.what() << "\n";
    return 2;
  }
}
