// dmx_verify: exhaustive small-N schedule exploration and counterexample
// replay (src/verify/).
//
//   explore:  dmx_verify --algo arbiter-tp --n 3 --requests 1
//             [--fault "t=0 crash 1; t=1 restart 1"] [--cex-out ce.cex]
//   replay:   dmx_verify --replay ce.cex [--trace-out ce.jsonl
//             --trace-format jsonl|chrome|text]
//
// Explore exits 0 when every schedule satisfies the invariants, 1 when a
// violation was found (writing --cex-out if given), 2 on usage errors.
// Replay exits 0 when the recorded violation reproduces, 1 when it does
// not — so CI can assert both directions.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mutex/registry.hpp"
#include "obs/sinks.hpp"
#include "verify/counterexample.hpp"
#include "verify/explorer.hpp"
#include "verify/mutants.hpp"

namespace {

using dmx::verify::Counterexample;
using dmx::verify::VerifyConfig;
using dmx::verify::VerifyResult;

struct Options {
  VerifyConfig cfg;
  std::string cex_out;
  std::string replay_file;
  std::string trace_out;
  std::string trace_format = "jsonl";
  bool list = false;
  bool help = false;
};

const char kUsage[] =
    "usage: dmx_verify [flags]\n"
    "  --algo NAME          algorithm to verify (default arbiter-tp)\n"
    "  --n N                nodes, 1..4 (default 3)\n"
    "  --requests K         CS requests per node (default 1)\n"
    "  --t-msg X            constant message delay (default 0.1)\n"
    "  --t-exec X           CS hold time (default 0.1)\n"
    "  --param key=value    algorithm parameter (repeatable)\n"
    "  --fault \"SPEC\"       crash/restart/lose-next/partition/heal choices;\n"
    "                       t= is ignored\n"
    "  --quorum             shorthand for --param recovery=1 --param\n"
    "                       recovery_quorum=1 (partition-safe regeneration)\n"
    "  --reliable           run nodes behind the reliable transport (jitter\n"
    "                       off); lose-next then attacks transport frames\n"
    "  --slack X            enabled-window width in time units; < 0 explores\n"
    "                       full asynchrony (default 0.25)\n"
    "  --no-fifo            also explore per-link message reordering\n"
    "  --depth D            schedule depth bound (default 48)\n"
    "  --max-schedules M    exploration budget (default 2000000)\n"
    "  --cex-out FILE       write the counterexample if a violation is found\n"
    "  --replay FILE        replay a dmx.cex.v1 file instead of exploring\n"
    "  --trace-out FILE     structured trace of the replayed execution\n"
    "  --trace-format FMT   jsonl | chrome | text (default jsonl)\n"
    "  --list               list algorithms and choice-key families, exit\n"
    "  --help               this text\n";

double parse_double(const std::string& v, const std::string& flag) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("bad number for " + flag + ": " + v);
  }
  return x;
}

std::uint64_t parse_u64(const std::string& v, const std::string& flag) {
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("bad integer for " + flag + ": " + v);
  }
  return x;
}

Options parse_args(const std::vector<std::string>& args) {
  Options o;
  auto need = [&args](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument(flag + " needs a value");
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--algo") {
      o.cfg.algorithm = need(i, a);
    } else if (a == "--n") {
      o.cfg.n_nodes = parse_u64(need(i, a), a);
    } else if (a == "--requests") {
      o.cfg.requests_per_node = parse_u64(need(i, a), a);
    } else if (a == "--t-msg") {
      o.cfg.t_msg = parse_double(need(i, a), a);
    } else if (a == "--t-exec") {
      o.cfg.t_exec = parse_double(need(i, a), a);
    } else if (a == "--param") {
      const std::string kv = need(i, a);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("--param expects key=value, got " + kv);
      }
      o.cfg.params.set(kv.substr(0, eq),
                       parse_double(kv.substr(eq + 1), a));
    } else if (a == "--fault") {
      o.cfg.fault_plan = need(i, a);
    } else if (a == "--quorum") {
      o.cfg.params.set("recovery", 1.0).set("recovery_quorum", 1.0);
    } else if (a == "--reliable") {
      o.cfg.reliable = true;
    } else if (a == "--slack") {
      o.cfg.time_slack = parse_double(need(i, a), a);
    } else if (a == "--no-fifo") {
      o.cfg.fifo_links = false;
    } else if (a == "--depth") {
      o.cfg.max_depth = parse_u64(need(i, a), a);
    } else if (a == "--max-schedules") {
      o.cfg.max_schedules = parse_u64(need(i, a), a);
    } else if (a == "--cex-out") {
      o.cex_out = need(i, a);
    } else if (a == "--replay") {
      o.replay_file = need(i, a);
    } else if (a == "--trace-out") {
      o.trace_out = need(i, a);
    } else if (a == "--trace-format") {
      o.trace_format = need(i, a);
      if (o.trace_format != "jsonl" && o.trace_format != "chrome" &&
          o.trace_format != "text") {
        throw std::invalid_argument("unknown --trace-format " +
                                    o.trace_format);
      }
    } else if (a == "--list") {
      o.list = true;
    } else if (a == "--help") {
      o.help = true;
    } else {
      throw std::invalid_argument("unknown flag: " + a);
    }
  }
  return o;
}

int run_explore(const Options& o) {
  const VerifyConfig& cfg = o.cfg;
  std::cout << "dmx_verify: algo=" << cfg.algorithm << " n=" << cfg.n_nodes
            << " requests=" << cfg.requests_per_node
            << " slack=" << cfg.time_slack
            << " fifo=" << (cfg.fifo_links ? 1 : 0)
            << " depth=" << cfg.max_depth;
  if (!cfg.fault_plan.empty()) {
    std::cout << " fault=\"" << cfg.fault_plan << "\"";
  }
  std::cout << "\n";

  const VerifyResult res = dmx::verify::explore(cfg);
  const auto& s = res.stats;
  std::cout << "schedules explored: " << s.schedules << " (terminal "
            << s.terminal << ", truncated " << s.truncated
            << ", sleep-blocked " << s.sleep_blocked << ")\n"
            << "transitions: " << s.transitions << " fresh + " << s.replayed
            << " replayed; sleep-pruned branches: " << s.sleep_pruned
            << "\nmax frontier: " << s.max_frontier
            << "  max depth reached: " << s.max_depth_reached << "\n";
  if (res.ok()) {
    std::cout << "result: OK — no violation in any explored schedule"
              << (s.complete ? " (exploration complete)"
                             : " (budget capped: INCOMPLETE)")
              << "\n";
    return s.complete ? 0 : 2;
  }
  std::cout << "result: VIOLATION " << res.violation->describe() << "\n";
  std::cout << "counterexample (" << res.counterexample.size()
            << " choices):\n";
  for (std::size_t i = 0; i < res.counterexample.size(); ++i) {
    std::cout << "  " << i + 1 << ". " << res.counterexample[i] << "\n";
  }
  std::cout << "diagnosis:\n" << res.diagnosis;
  if (!o.cex_out.empty()) {
    Counterexample cex;
    cex.config = cfg;
    cex.violation_kind =
        std::string(dmx::mutex::violation_kind_name(res.violation->kind));
    cex.choices = res.counterexample;
    std::ofstream out(o.cex_out);
    if (!out) {
      std::cerr << "cannot open --cex-out file '" << o.cex_out << "'\n";
      return 2;
    }
    out << cex.to_string();
    std::cout << "counterexample written: " << o.cex_out << "\n";
  }
  return 1;
}

int run_replay(const Options& o) {
  std::ifstream in(o.replay_file);
  if (!in) {
    std::cerr << "cannot open --replay file '" << o.replay_file << "'\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const Counterexample cex = Counterexample::parse(buf.str());

  // The stream must outlive the sink (the Chrome sink closes its JSON
  // envelope from its destructor).
  std::ofstream trace_file;
  std::shared_ptr<dmx::obs::Sink> sink;
  if (!o.trace_out.empty()) {
    trace_file.open(o.trace_out);
    if (!trace_file) {
      std::cerr << "cannot open --trace-out file '" << o.trace_out << "'\n";
      return 2;
    }
    dmx::obs::TraceFormat fmt = dmx::obs::TraceFormat::kJsonl;
    if (o.trace_format == "chrome") fmt = dmx::obs::TraceFormat::kChrome;
    if (o.trace_format == "text") fmt = dmx::obs::TraceFormat::kText;
    sink = dmx::obs::make_format_sink(fmt, trace_file);
  }

  const dmx::verify::ReplayResult res = dmx::verify::replay(cex, sink);
  if (sink) sink->flush();
  std::cout << "replayed " << res.steps << "/" << cex.choices.size()
            << " choices of " << o.replay_file << "\n";
  if (!res.error.empty()) {
    std::cout << "replay FAILED: " << res.error << "\ndiagnosis:\n"
              << res.diagnosis;
    return 1;
  }
  if (res.violation.has_value()) {
    std::cout << "violation reproduced: " << res.violation->describe()
              << "\ndiagnosis:\n" << res.diagnosis;
    if (!o.trace_out.empty()) {
      std::cout << "trace written: " << o.trace_out << "\n";
    }
    return 0;
  }
  std::cout << "no violation reproduced (clean execution)\n";
  return cex.violation_kind.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const Options o = parse_args(args);
    if (o.help) {
      std::cout << kUsage;
      return 0;
    }
    if (o.list) {
      dmx::verify::VerifyConfig probe;  // registration side effect
      (void)probe.validate();
      std::cout << "algorithms:\n";
      for (const auto& name : dmx::mutex::Registry::instance().names()) {
        std::cout << "  " << name << "\n";
      }
      std::cout
          << "choice-key families (counterexample steps):\n"
             "  d SRC>DST TYPE #I   deliver in-flight message (FIFO head)\n"
             "  t NODE #I           fire a pending timer on NODE\n"
             "  x NODE #I           NODE exits its critical section\n"
             "  fN crash NODE       fault-plan action N crashes NODE\n"
             "  fN restart NODE     fault-plan action N restarts NODE\n"
             "  lN d SRC>DST ...    fault-plan action N drops that delivery\n"
             "  pN cut G0|G1|...    fault-plan action N cuts the network into\n"
             "                      groups (e.g. \"p0 cut 0,1|2\")\n"
             "  hN heal             fault-plan action N heals the active cut\n";
      return 0;
    }
    if (!o.replay_file.empty()) return run_replay(o);
    return run_explore(o);
  } catch (const std::exception& e) {
    std::cerr << "dmx_verify: " << e.what() << "\n" << kUsage;
    return 2;
  }
}
