// dmx_trace: script a small mutual exclusion scenario and watch every
// protocol event and message.
//
// Examples:
//   # the paper's §2.2 walk-through
//   dmx_trace --algo arbiter-tp --n 5 --unit-times
//       --submit 1:0 --submit 4:0.2 --submit 3:1.9
//   # token loss with recovery
//   dmx_trace --algo arbiter-tp --n 5 --param recovery=1
//       --drop PRIVILEGE --submit 1:0 --submit 2:0.1
//   # crash the token holder
//   dmx_trace --n 5 --param recovery=1 --submit 1:0 --crash 1:0.45
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "harness/cli.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "runtime/cluster.hpp"

namespace {

struct Action {
  enum Kind { kSubmit, kCrash, kRestart } kind;
  std::size_t node;
  double time;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "dmx_trace: " << msg << R"(

usage: dmx_trace [flags]
  --algo NAME           algorithm                      [arbiter-tp]
  --n N                 nodes                          [5]
  --t-msg X / --t-exec X                               [0.1 / 0.1]
  --unit-times          shorthand for t-msg=t-exec=t_req=t_fwd=1
  --param key=value     algorithm parameter (repeatable)
  --submit NODE:TIME    demand at NODE at TIME (repeatable)
  --crash NODE:TIME     crash NODE at TIME (repeatable)
  --restart NODE:TIME   restart NODE at TIME (repeatable)
  --drop TYPE           drop the next message of TYPE (repeatable)
  --until T             stop the clock at T            [200]
  --trace-out FILE      also write a machine-readable trace (with
                        request-lifecycle spans) to FILE
  --trace-format FMT    jsonl | chrome | text          [jsonl]
)";
  std::exit(2);
}

Action parse_action(Action::Kind kind, const std::string& v) {
  const auto colon = v.find(':');
  if (colon == std::string::npos) usage_error("expected NODE:TIME, got " + v);
  try {
    return Action{kind, std::stoul(v.substr(0, colon)),
                  std::stod(v.substr(colon + 1))};
  } catch (const std::exception&) {
    usage_error("bad NODE:TIME: " + v);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmx;
  std::string algo = "arbiter-tp";
  std::size_t n = 5;
  double t_msg = 0.1, t_exec = 0.1, until = 200.0;
  mutex::ParamSet params;
  std::vector<Action> actions;
  std::vector<std::string> drops;
  std::string trace_out;
  std::string trace_format = "jsonl";

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&](const char* flag) {
      if (i + 1 >= args.size()) usage_error(std::string("missing value for ") + flag);
      return args[++i];
    };
    const std::string& a = args[i];
    if (a == "--algo") {
      algo = value("--algo");
    } else if (a == "--n") {
      n = std::stoul(value("--n"));
    } else if (a == "--t-msg") {
      t_msg = std::stod(value("--t-msg"));
    } else if (a == "--t-exec") {
      t_exec = std::stod(value("--t-exec"));
    } else if (a == "--unit-times") {
      t_msg = t_exec = 1.0;
      params.set("t_req", 1.0).set("t_fwd", 1.0);
    } else if (a == "--param") {
      const std::string kv = value("--param");
      const auto eq = kv.find('=');
      if (eq == std::string::npos) usage_error("--param expects key=value");
      try {
        params.set(kv.substr(0, eq), std::stod(kv.substr(eq + 1)));
      } catch (const std::exception&) {
        params.set(kv.substr(0, eq), kv.substr(eq + 1));
      }
    } else if (a == "--submit") {
      actions.push_back(parse_action(Action::kSubmit, value("--submit")));
    } else if (a == "--crash") {
      actions.push_back(parse_action(Action::kCrash, value("--crash")));
    } else if (a == "--restart") {
      actions.push_back(parse_action(Action::kRestart, value("--restart")));
    } else if (a == "--drop") {
      drops.push_back(value("--drop"));
    } else if (a == "--until") {
      until = std::stod(value("--until"));
    } else if (a == "--trace-out") {
      trace_out = value("--trace-out");
    } else if (a == "--trace-format") {
      trace_format = value("--trace-format");
      if (trace_format != "jsonl" && trace_format != "chrome" &&
          trace_format != "text") {
        usage_error("--trace-format expects jsonl, chrome or text");
      }
    } else if (a == "--help" || a == "-h") {
      usage_error("help");
    } else {
      usage_error("unknown flag " + a);
    }
  }
  if (actions.empty()) usage_error("no --submit actions given");

  harness::register_builtin_algorithms();
  if (!mutex::Registry::instance().contains(algo)) {
    usage_error("unknown algorithm " + algo + " (see dmx_sweep --list)");
  }

  // The console view: an unbuffered text sink, so the event log interleaves
  // correctly with the network tap below (which writes std::cout directly).
  // `trace_file` is declared before the sinks so the Chrome sink's destructor
  // can still close its JSON envelope while the stream is alive.
  std::ofstream trace_file;
  auto console = std::make_shared<obs::TextSink>(std::cout, 0);
  std::shared_ptr<obs::SpanCollector> file_chain;
  std::shared_ptr<obs::Sink> cluster_sink = console;
  if (!trace_out.empty()) {
    trace_file.open(trace_out);
    if (!trace_file) usage_error("cannot open --trace-out file " + trace_out);
    obs::TraceFormat fmt = obs::TraceFormat::kJsonl;
    if (trace_format == "chrome") fmt = obs::TraceFormat::kChrome;
    if (trace_format == "text") fmt = obs::TraceFormat::kText;
    file_chain = std::make_shared<obs::SpanCollector>(
        obs::make_format_sink(fmt, trace_file));
    cluster_sink = std::make_shared<obs::TeeSink>(
        std::vector<std::shared_ptr<obs::Sink>>{console, file_chain});
  }
  obs::Tracer tracer(cluster_sink);
  runtime::Cluster cluster(
      n, std::make_unique<net::ConstantDelay>(sim::SimTime::units(t_msg)), 7,
      tracer);
  cluster.network().set_tap([&](const net::Envelope& env, bool dropped) {
    std::cout << "[" << env.sent_at.to_string() << "] msg     " << env.src
              << " -> " << env.dst << "  " << env.payload->describe()
              << (dropped ? "  [DROPPED]" : "") << "\n";
  });
  for (const auto& type : drops) {
    cluster.network().faults().drop_next_of_type(type);
  }

  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId nid{static_cast<std::int32_t>(i)};
    mutex::FactoryContext ctx{nid, n, params};
    auto algorithm = mutex::Registry::instance().create(algo, ctx);
    auto* raw = algorithm.get();
    cluster.install(nid, std::move(algorithm));
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *raw, sim::SimTime::units(t_exec), &monitor,
        &ids));
    drivers.back()->set_tracer(tracer);
  }
  cluster.start();

  for (const Action& act : actions) {
    if (act.node >= n) usage_error("action node out of range");
    cluster.simulator().schedule_at(
        sim::SimTime::units(act.time), [&, act] {
          const net::NodeId nid{static_cast<std::int32_t>(act.node)};
          switch (act.kind) {
            case Action::kSubmit:
              drivers[act.node]->submit();
              break;
            case Action::kCrash:
              cluster.crash_node(nid);
              drivers[act.node]->on_node_crashed();
              break;
            case Action::kRestart:
              cluster.restart_node(nid);
              break;
          }
        });
  }
  cluster.simulator().run_until(sim::SimTime::units(until));

  std::uint64_t completed = 0;
  for (auto& d : drivers) completed += d->completed();
  std::cout << "\n" << completed << " critical sections, "
            << cluster.network().stats().sent << " messages, "
            << monitor.violations() << " safety violations\n";
  return monitor.violations() == 0 ? 0 : 1;
}
