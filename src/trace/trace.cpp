#include "trace/trace.hpp"

#include <iomanip>

namespace dmx::trace {

void OstreamSink::write(const Record& r) {
  os_ << "[" << std::setw(10) << r.time.to_string() << "] ";
  if (r.node >= 0) {
    os_ << "node " << std::setw(2) << r.node << " ";
  } else {
    os_ << "system  ";
  }
  os_ << std::setw(10) << std::left << r.category << std::right << " "
      << r.detail << "\n";
}

std::vector<Record> MemorySink::by_category(const std::string& cat) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (r.category == cat) out.push_back(r);
  }
  return out;
}

std::size_t MemorySink::count_containing(const std::string& needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.detail.find(needle) != std::string::npos) ++n;
  }
  return n;
}

}  // namespace dmx::trace
