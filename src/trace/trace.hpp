// Structured simulation tracing.
//
// Algorithms emit trace records ("node 5 became arbiter", "token sent to 2")
// through a Tracer.  Sinks decide what happens to them: printed (examples),
// captured in memory (tests asserting on protocol behaviour), or dropped
// (benchmarks, where tracing is disabled entirely and costs one branch).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dmx::trace {

/// One trace record.
struct Record {
  sim::SimTime time;
  std::int32_t node = -1;   ///< Emitting node, -1 for system-level records.
  std::string category;     ///< e.g. "arbiter", "token", "cs", "recovery".
  std::string detail;       ///< Human-readable description.
};

/// Receives records.  Implementations must tolerate high record rates.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const Record& r) = 0;
};

/// Prints each record as "[time] nodeN category: detail".
class OstreamSink final : public Sink {
 public:
  explicit OstreamSink(std::ostream& os) : os_(os) {}
  void write(const Record& r) override;

 private:
  std::ostream& os_;  // NOLINT: non-owning by design
};

/// Buffers records for later inspection (used heavily by protocol tests).
class MemorySink final : public Sink {
 public:
  void write(const Record& r) override { records_.push_back(r); }
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// Records whose category matches exactly.
  [[nodiscard]] std::vector<Record> by_category(const std::string& cat) const;

  /// Count of records whose detail contains `needle`.
  [[nodiscard]] std::size_t count_containing(const std::string& needle) const;

  void clear() { records_.clear(); }

 private:
  std::vector<Record> records_;
};

/// Front-end handed to algorithms.  Disabled tracers drop records with a
/// single branch and no allocation.
class Tracer {
 public:
  Tracer() = default;  // disabled

  explicit Tracer(std::shared_ptr<Sink> sink) : sink_(std::move(sink)) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }

  void emit(sim::SimTime time, std::int32_t node, std::string category,
            std::string detail) const {
    if (!sink_) return;
    sink_->write(Record{time, node, std::move(category), std::move(detail)});
  }

 private:
  std::shared_ptr<Sink> sink_;
};

}  // namespace dmx::trace
