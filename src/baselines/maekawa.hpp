// Maekawa's sqrt(N) quorum algorithm (TOCS 1985), with the FAILED / INQUIRE /
// YIELD deadlock-avoidance machinery.
//
// Discussed in the paper's §5.1 load-balance comparison.  Each node asks
// permission only from its quorum (a grid row + column, ~2*sqrt(N) nodes,
// any two quorums intersect); each voter grants one lock at a time.  A
// requester that cannot currently win (received FAILED) yields inquired
// locks so higher-priority requests proceed.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

/// Grid quorums: K = ceil(sqrt(N)); quorum(i) = row(i) ∪ column(i) ∪ {i}.
/// If the grid is ragged (N not a perfect square) the pairwise-intersection
/// property can fail for cells beyond N; build() then adds node 0 to every
/// quorum, restoring the property at slightly higher quorum sizes.
std::vector<std::vector<net::NodeId>> build_grid_quorums(std::size_t n);

/// Tree quorums in the style of Agrawal–El Abbadi (the paper's reference
/// [1]): arrange the nodes as a complete binary tree; quorum(i) is the
/// root-to-leaf path through i (descending leftmost below i).  All quorums
/// share the root, so pairwise intersection is immediate, and quorum size
/// is O(log N) — the fault-substitution rules of the full protocol are out
/// of scope here (this is its failure-free fast path).
std::vector<std::vector<net::NodeId>> build_tree_quorums(std::size_t n);

class MaekawaMutex final : public mutex::MutexAlgorithm {
 public:
  /// Default (empty `quorums`): grid quorums.  A custom table must satisfy
  /// pairwise intersection and contain each node in its own quorum.
  explicit MaekawaMutex(std::size_t n_nodes,
                        std::vector<std::vector<net::NodeId>> quorums = {});

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "maekawa";
  }
  [[nodiscard]] std::string debug_state() const override;

  [[nodiscard]] const std::vector<net::NodeId>& quorum() const {
    return quorum_;
  }

 protected:
  void on_start() override;
  void handle(const net::Envelope& env) override;

 private:
  struct Ticket {  // a prioritised request at a voter
    std::uint64_t ts;
    net::NodeId node;
    friend auto operator<=>(const Ticket&, const Ticket&) = default;
  };

  // Requester side.
  void requester_on_locked(net::NodeId voter);
  void requester_on_failed(net::NodeId voter);
  void requester_on_inquire(net::NodeId voter);

  // Voter side.
  void voter_on_request(net::NodeId from, std::uint64_t ts);
  void voter_on_release(net::NodeId from);
  void voter_on_yield(net::NodeId from);
  void voter_grant(Ticket t);

  /// Route a payload, short-circuiting self-delivery without network cost
  /// (the standard accounting: a node does not message itself).  Self-sends
  /// go through handle() in a locally built envelope.
  void dispatch(net::NodeId dst, const net::PayloadPtr& payload);

  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<MaekawaMutex>& dispatch_table();

  std::size_t n_;
  std::vector<std::vector<net::NodeId>> all_quorums_;
  std::vector<net::NodeId> quorum_;
  std::uint64_t clock_ = 0;

  // Requester state.
  std::optional<mutex::CsRequest> pending_;
  std::uint64_t my_ts_ = 0;
  bool in_cs_ = false;
  std::set<net::NodeId> votes_;
  bool saw_failed_ = false;
  std::set<net::NodeId> pending_inquires_;

  // Voter state.
  std::optional<Ticket> locked_for_;
  bool inquired_ = false;
  std::set<Ticket> wait_q_;
};

}  // namespace dmx::baselines
