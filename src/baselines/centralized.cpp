#include "baselines/centralized.hpp"

#include <stdexcept>

namespace dmx::baselines {

namespace {

struct CRequestMsg final : net::Payload {
  std::uint64_t request_id;
  explicit CRequestMsg(std::uint64_t id) : request_id(id) {}
  [[nodiscard]] std::string_view type_name() const override {
    return "C-REQUEST";
  }
};

struct CGrantMsg final : net::Payload {
  std::uint64_t request_id;
  explicit CGrantMsg(std::uint64_t id) : request_id(id) {}
  [[nodiscard]] std::string_view type_name() const override {
    return "C-GRANT";
  }
};

struct CReleaseMsg final : net::Payload {
  [[nodiscard]] std::string_view type_name() const override {
    return "C-RELEASE";
  }
};

}  // namespace

CentralizedMutex::CentralizedMutex(net::NodeId coordinator,
                                   std::size_t n_nodes)
    : coordinator_(coordinator) {
  if (!coordinator.valid() || coordinator.index() >= n_nodes) {
    throw std::invalid_argument("CentralizedMutex: bad coordinator");
  }
}

void CentralizedMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("CentralizedMutex::request: already pending");
  }
  pending_ = req;
  if (id() == coordinator_) {
    queue_.push_back(Waiting{id(), req.request_id});
    coordinator_grant_next();
    return;
  }
  send(coordinator_, net::make_payload<CRequestMsg>(req.request_id));
}

void CentralizedMutex::release() {
  pending_.reset();
  if (id() == coordinator_) {
    resource_busy_ = false;
    coordinator_grant_next();
    return;
  }
  send(coordinator_, net::make_payload<CReleaseMsg>());
}

void CentralizedMutex::coordinator_grant_next() {
  if (resource_busy_ || queue_.empty()) return;
  const Waiting w = queue_.front();
  queue_.pop_front();
  resource_busy_ = true;
  if (w.node == id()) {
    grant(*pending_);
    return;
  }
  send(w.node, net::make_payload<CGrantMsg>(w.request_id));
}

void CentralizedMutex::handle(const net::Envelope& env) {
  if (const auto* req = env.as<CRequestMsg>()) {
    queue_.push_back(Waiting{env.src, req->request_id});
    coordinator_grant_next();
  } else if (env.as<CReleaseMsg>() != nullptr) {
    resource_busy_ = false;
    coordinator_grant_next();
  } else if (const auto* g = env.as<CGrantMsg>()) {
    if (pending_.has_value() && pending_->request_id == g->request_id) {
      grant(*pending_);
    }
  } else {
    throw std::logic_error("CentralizedMutex: unknown message");
  }
}

}  // namespace dmx::baselines
