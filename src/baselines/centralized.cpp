#include "baselines/centralized.hpp"

#include <stdexcept>

namespace dmx::baselines {

namespace {

struct CRequestMsg final : net::Msg<CRequestMsg> {
  DMX_REGISTER_MESSAGE(CRequestMsg, "C-REQUEST");
  std::uint64_t request_id;
  explicit CRequestMsg(std::uint64_t id) : request_id(id) {}
};

struct CGrantMsg final : net::Msg<CGrantMsg> {
  DMX_REGISTER_MESSAGE(CGrantMsg, "C-GRANT");
  std::uint64_t request_id;
  explicit CGrantMsg(std::uint64_t id) : request_id(id) {}
};

struct CReleaseMsg final : net::Msg<CReleaseMsg> {
  DMX_REGISTER_MESSAGE(CReleaseMsg, "C-RELEASE");
};

}  // namespace

CentralizedMutex::CentralizedMutex(net::NodeId coordinator,
                                   std::size_t n_nodes)
    : coordinator_(coordinator) {
  if (!coordinator.valid() || coordinator.index() >= n_nodes) {
    throw std::invalid_argument("CentralizedMutex: bad coordinator");
  }
}

std::string CentralizedMutex::debug_state() const {
  std::string out = "centralized: ";
  out += id() == coordinator_ ? "coordinator" : "client";
  if (pending_) out += " pending(req " + std::to_string(pending_->request_id) + ")";
  if (id() == coordinator_) {
    out += resource_busy_ ? " busy" : " free";
    out += " queue={";
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(queue_[i].node.value());
    }
    out += "}";
  }
  return out;
}

void CentralizedMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("CentralizedMutex::request: already pending");
  }
  pending_ = req;
  if (id() == coordinator_) {
    queue_.push_back(Waiting{id(), req.request_id});
    coordinator_grant_next();
    return;
  }
  send(coordinator_, net::make_payload<CRequestMsg>(req.request_id));
}

void CentralizedMutex::release() {
  pending_.reset();
  if (id() == coordinator_) {
    resource_busy_ = false;
    coordinator_grant_next();
    return;
  }
  send(coordinator_, net::make_payload<CReleaseMsg>());
}

void CentralizedMutex::coordinator_grant_next() {
  if (resource_busy_ || queue_.empty()) return;
  const Waiting w = queue_.front();
  queue_.pop_front();
  resource_busy_ = true;
  if (w.node == id()) {
    grant(*pending_);
    return;
  }
  send(w.node, net::make_payload<CGrantMsg>(w.request_id));
}

const runtime::MsgDispatcher<CentralizedMutex>&
CentralizedMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<CentralizedMutex> t;
    t.set(CRequestMsg::message_kind(),
          [](CentralizedMutex& self, const net::Envelope& env) {
            const auto& req = static_cast<const CRequestMsg&>(*env.payload);
            self.queue_.push_back(Waiting{env.src, req.request_id});
            self.coordinator_grant_next();
          });
    t.set(CReleaseMsg::message_kind(),
          [](CentralizedMutex& self, const net::Envelope&) {
            self.resource_busy_ = false;
            self.coordinator_grant_next();
          });
    t.set(CGrantMsg::message_kind(),
          [](CentralizedMutex& self, const net::Envelope& env) {
            const auto& g = static_cast<const CGrantMsg&>(*env.payload);
            if (self.pending_.has_value() &&
                self.pending_->request_id == g.request_id) {
              self.grant(*self.pending_);
            }
          });
    return t;
  }();
  return kTable;
}

void CentralizedMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("CentralizedMutex: unknown message");
  }
}

}  // namespace dmx::baselines
