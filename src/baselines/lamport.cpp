#include "baselines/lamport.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct LpRequestMsg final : net::Payload {
  std::uint64_t ts;
  explicit LpRequestMsg(std::uint64_t t) : ts(t) {}
  [[nodiscard]] std::string_view type_name() const override {
    return "LP-REQUEST";
  }
};

struct LpReplyMsg final : net::Payload {
  std::uint64_t ts;
  explicit LpReplyMsg(std::uint64_t t) : ts(t) {}
  [[nodiscard]] std::string_view type_name() const override {
    return "LP-REPLY";
  }
};

struct LpReleaseMsg final : net::Payload {
  std::uint64_t ts;
  std::uint64_t req_ts;
  LpReleaseMsg(std::uint64_t t, std::uint64_t rt) : ts(t), req_ts(rt) {}
  [[nodiscard]] std::string_view type_name() const override {
    return "LP-RELEASE";
  }
};

}  // namespace

LamportMutex::LamportMutex(std::size_t n_nodes)
    : n_(n_nodes), last_heard_(n_nodes, 0) {}

void LamportMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("Lamport::request: already pending");
  }
  pending_ = req;
  my_ts_ = ++clock_;
  queue_[{my_ts_, id().value()}] = true;
  broadcast(net::make_payload<LpRequestMsg>(my_ts_));
  try_enter();  // N == 1 degenerate case
}

void LamportMutex::release() {
  in_cs_ = false;
  queue_.erase({my_ts_, id().value()});
  pending_.reset();
  ++clock_;
  broadcast(net::make_payload<LpReleaseMsg>(clock_, my_ts_));
}

void LamportMutex::try_enter() {
  if (!pending_.has_value() || in_cs_) return;
  if (queue_.empty()) return;
  const auto& front = queue_.begin()->first;
  if (front != std::make_pair(my_ts_, id().value())) return;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j == id().index()) continue;
    if (last_heard_[j] <= my_ts_) return;
  }
  in_cs_ = true;
  grant(*pending_);
}

void LamportMutex::handle(const net::Envelope& env) {
  if (const auto* req = env.as<LpRequestMsg>()) {
    bump_clock(req->ts);
    last_heard_[env.src.index()] =
        std::max(last_heard_[env.src.index()], req->ts);
    queue_[{req->ts, env.src.value()}] = true;
    send(env.src, net::make_payload<LpReplyMsg>(++clock_));
    try_enter();
    return;
  }
  if (const auto* rep = env.as<LpReplyMsg>()) {
    bump_clock(rep->ts);
    last_heard_[env.src.index()] =
        std::max(last_heard_[env.src.index()], rep->ts);
    try_enter();
    return;
  }
  if (const auto* rel = env.as<LpReleaseMsg>()) {
    bump_clock(rel->ts);
    last_heard_[env.src.index()] =
        std::max(last_heard_[env.src.index()], rel->ts);
    queue_.erase({rel->req_ts, env.src.value()});
    try_enter();
    return;
  }
  throw std::logic_error("Lamport: unknown message");
}

}  // namespace dmx::baselines
