#include "baselines/lamport.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct LpRequestMsg final : net::Msg<LpRequestMsg> {
  DMX_REGISTER_MESSAGE(LpRequestMsg, "LP-REQUEST");
  std::uint64_t ts;
  explicit LpRequestMsg(std::uint64_t t) : ts(t) {}
};

struct LpReplyMsg final : net::Msg<LpReplyMsg> {
  DMX_REGISTER_MESSAGE(LpReplyMsg, "LP-REPLY");
  std::uint64_t ts;
  explicit LpReplyMsg(std::uint64_t t) : ts(t) {}
};

struct LpReleaseMsg final : net::Msg<LpReleaseMsg> {
  DMX_REGISTER_MESSAGE(LpReleaseMsg, "LP-RELEASE");
  std::uint64_t ts;
  std::uint64_t req_ts;
  LpReleaseMsg(std::uint64_t t, std::uint64_t rt) : ts(t), req_ts(rt) {}
};

}  // namespace

LamportMutex::LamportMutex(std::size_t n_nodes)
    : n_(n_nodes), last_heard_(n_nodes, 0) {}

std::string LamportMutex::debug_state() const {
  std::string out = "lamport: clock=" + std::to_string(clock_);
  if (in_cs_) {
    out += " in-cs(ts " + std::to_string(my_ts_) + ")";
  } else if (pending_) {
    out += " requesting(ts " + std::to_string(my_ts_) + ")";
  } else {
    out += " idle";
  }
  out += " queue=" + std::to_string(queue_.size());
  if (!queue_.empty()) {
    const auto& head = queue_.begin()->first;
    out += " head=(ts " + std::to_string(head.first) + ", node " +
           std::to_string(head.second) + ")";
  }
  return out;
}

void LamportMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("Lamport::request: already pending");
  }
  pending_ = req;
  my_ts_ = ++clock_;
  queue_[{my_ts_, id().value()}] = true;
  broadcast(net::make_payload<LpRequestMsg>(my_ts_));
  try_enter();  // N == 1 degenerate case
}

void LamportMutex::release() {
  in_cs_ = false;
  queue_.erase({my_ts_, id().value()});
  pending_.reset();
  ++clock_;
  broadcast(net::make_payload<LpReleaseMsg>(clock_, my_ts_));
}

void LamportMutex::try_enter() {
  if (!pending_.has_value() || in_cs_) return;
  if (queue_.empty()) return;
  const auto& front = queue_.begin()->first;
  if (front != std::make_pair(my_ts_, id().value())) return;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j == id().index()) continue;
    if (last_heard_[j] <= my_ts_) return;
  }
  in_cs_ = true;
  grant(*pending_);
}

const runtime::MsgDispatcher<LamportMutex>& LamportMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<LamportMutex> t;
    t.set(LpRequestMsg::message_kind(),
          [](LamportMutex& self, const net::Envelope& env) {
            const auto& req = static_cast<const LpRequestMsg&>(*env.payload);
            self.bump_clock(req.ts);
            auto& heard = self.last_heard_[env.src.index()];
            heard = std::max(heard, req.ts);
            self.queue_[{req.ts, env.src.value()}] = true;
            self.send(env.src, net::make_payload<LpReplyMsg>(++self.clock_));
            self.try_enter();
          });
    t.set(LpReplyMsg::message_kind(),
          [](LamportMutex& self, const net::Envelope& env) {
            const auto& rep = static_cast<const LpReplyMsg&>(*env.payload);
            self.bump_clock(rep.ts);
            auto& heard = self.last_heard_[env.src.index()];
            heard = std::max(heard, rep.ts);
            self.try_enter();
          });
    t.set(LpReleaseMsg::message_kind(),
          [](LamportMutex& self, const net::Envelope& env) {
            const auto& rel = static_cast<const LpReleaseMsg&>(*env.payload);
            self.bump_clock(rel.ts);
            auto& heard = self.last_heard_[env.src.index()];
            heard = std::max(heard, rel.ts);
            self.queue_.erase({rel.req_ts, env.src.value()});
            self.try_enter();
          });
    return t;
  }();
  return kTable;
}

void LamportMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("Lamport: unknown message");
  }
}

}  // namespace dmx::baselines
