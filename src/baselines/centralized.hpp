// Centralized coordinator mutual exclusion.
//
// The classic 3-messages-per-CS reference point (REQUEST -> GRANT ->
// RELEASE) that the paper's "approximately 3 messages at high load" is
// implicitly measured against.  A fixed coordinator queues requests FCFS and
// grants one at a time; the coordinator's own requests are free.
#pragma once

#include <deque>
#include <optional>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

class CentralizedMutex final : public mutex::MutexAlgorithm {
 public:
  CentralizedMutex(net::NodeId coordinator, std::size_t n_nodes);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "centralized";
  }
  [[nodiscard]] std::string debug_state() const override;

 protected:
  void handle(const net::Envelope& env) override;

 private:
  struct Waiting {
    net::NodeId node;
    std::uint64_t request_id;
  };

  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<CentralizedMutex>& dispatch_table();

  void coordinator_grant_next();

  net::NodeId coordinator_;
  std::optional<mutex::CsRequest> pending_;

  // Coordinator state.
  std::deque<Waiting> queue_;
  bool resource_busy_ = false;
};

}  // namespace dmx::baselines
