// Lamport's timestamp mutual exclusion (CACM 1978 / JACM 1986).
//
// The 3(N-1)-messages-per-CS classic: REQUEST broadcast + REPLY from
// everyone + RELEASE broadcast, with every node maintaining a replicated
// request queue ordered by (timestamp, id).  A node enters its CS when its
// own request heads its local queue and it has heard something later than
// its request timestamp from every other node.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

class LamportMutex final : public mutex::MutexAlgorithm {
 public:
  explicit LamportMutex(std::size_t n_nodes);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "lamport";
  }
  [[nodiscard]] std::string debug_state() const override;

 protected:
  void handle(const net::Envelope& env) override;

 private:
  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<LamportMutex>& dispatch_table();

  void try_enter();
  void bump_clock(std::uint64_t seen) {
    clock_ = std::max(clock_, seen) + 1;
  }

  std::size_t n_;
  std::uint64_t clock_ = 0;
  std::optional<mutex::CsRequest> pending_;
  bool in_cs_ = false;
  std::uint64_t my_ts_ = 0;

  /// Replicated request queue: (ts, node) -> present.
  std::map<std::pair<std::uint64_t, std::int32_t>, bool> queue_;
  /// Timestamp of the last message received from each node.
  std::vector<std::uint64_t> last_heard_;
};

}  // namespace dmx::baselines
