// Raymond's tree-based token algorithm (TOCS 1989).
//
// The comparator the paper singles out as "known to have the best
// performance, requiring approximately 4 messages at high loads".  Nodes
// form a static tree; each node keeps a `holder` pointer toward the token,
// a FIFO queue of neighbours (or itself) wanting the token, and an `asked`
// flag suppressing duplicate requests.  The token (PRIVILEGE) moves only
// along tree edges; requests travel O(diameter) hops at light load and
// piggyback into ~4 messages per CS under saturation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

/// Builds the static binary tree used by default: node 0 is the root and
/// initial token holder; parent(i) = (i-1)/2.
struct RaymondTopology {
  static net::NodeId parent_of(net::NodeId n) {
    return net::NodeId{(n.value() - 1) / 2};
  }
};

class RaymondMutex final : public mutex::MutexAlgorithm {
 public:
  explicit RaymondMutex(std::size_t n_nodes);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "raymond";
  }
  [[nodiscard]] std::string debug_state() const override;

  [[nodiscard]] std::optional<bool> holds_token() const override {
    return holder_self_;
  }

 protected:
  void on_start() override;
  void handle(const net::Envelope& env) override;

 private:
  static constexpr std::int32_t kSelf = -2;  ///< Sentinel in request_q_.

  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<RaymondMutex>& dispatch_table();

  void assign_privilege();
  void make_request();

  std::size_t n_;
  bool holder_self_ = false;
  net::NodeId holder_;            ///< Neighbour in the token's direction.
  bool using_ = false;
  bool asked_ = false;
  std::deque<std::int32_t> request_q_;  ///< Neighbour ids or kSelf.
  std::optional<mutex::CsRequest> pending_;
};

}  // namespace dmx::baselines
