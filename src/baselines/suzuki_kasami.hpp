// Suzuki–Kasami broadcast token algorithm (TOCS 1985).
//
// The direct ancestor of the paper's algorithm ("a reverse Suzuki-Kasami"):
// a requester broadcasts REQUEST(j, n) to everyone (N-1 messages) and the
// token — carrying the last-granted array LN and a FIFO queue — moves
// directly to the next requester (1 message), giving N messages per CS
// versus the paper's ~3.  A node holding the idle token re-enters for free.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

class SuzukiKasamiMutex final : public mutex::MutexAlgorithm {
 public:
  explicit SuzukiKasamiMutex(std::size_t n_nodes, net::NodeId initial_holder);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "suzuki-kasami";
  }
  [[nodiscard]] std::string debug_state() const override;

  [[nodiscard]] bool has_token() const { return have_token_; }
  [[nodiscard]] std::optional<bool> holds_token() const override {
    return have_token_;
  }

 protected:
  void on_start() override;
  void handle(const net::Envelope& env) override;

 private:
  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<SuzukiKasamiMutex>& dispatch_table();

  void try_pass_token();

  net::NodeId initial_holder_;
  std::size_t n_;
  std::vector<std::uint64_t> rn_;  ///< Highest request number seen per node.
  std::optional<mutex::CsRequest> pending_;
  bool have_token_ = false;
  bool in_cs_ = false;

  // Token contents (meaningful while have_token_).
  std::vector<std::uint64_t> ln_;  ///< Last granted request number per node.
  std::deque<net::NodeId> token_queue_;
};

}  // namespace dmx::baselines
