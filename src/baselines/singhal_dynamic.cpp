#include "baselines/singhal_dynamic.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct SgRequestMsg final : net::Msg<SgRequestMsg> {
  DMX_REGISTER_MESSAGE(SgRequestMsg, "SG-REQUEST");
  std::uint64_t sn;
  explicit SgRequestMsg(std::uint64_t s) : sn(s) {}
};

struct SgReplyMsg final : net::Msg<SgReplyMsg> {
  DMX_REGISTER_MESSAGE(SgReplyMsg, "SG-REPLY");
};

}  // namespace

SinghalDynamicMutex::SinghalDynamicMutex(std::size_t n_nodes)
    : n_(n_nodes), sv_(n_nodes, SiteState::kNone), sn_(n_nodes, 0) {}

std::string SinghalDynamicMutex::debug_state() const {
  std::string out = "singhal: sn=" + std::to_string(my_sn_);
  if (sv_[id().index()] == SiteState::kExecuting) {
    out += " in-cs";
  } else if (pending_) {
    out += " requesting";
  } else {
    out += " idle";
  }
  auto join = [](const std::set<net::NodeId>& ids) {
    std::string s;
    for (net::NodeId nid : ids) {
      if (!s.empty()) s += ',';
      s += std::to_string(nid.value());
    }
    return s;
  };
  if (!awaiting_.empty()) out += " awaiting={" + join(awaiting_) + "}";
  if (!deferred_.empty()) out += " deferred={" + join(deferred_) + "}";
  return out;
}

void SinghalDynamicMutex::on_start() {
  // Staircase initialization: site i believes sites 0..i-1 are requesting,
  // so for any pair the higher-indexed site asks the lower-indexed one.
  for (std::size_t j = 0; j < id().index(); ++j) {
    sv_[j] = SiteState::kRequesting;
  }
}

std::size_t SinghalDynamicMutex::request_set_size() const {
  std::size_t c = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != id().index() && sv_[j] == SiteState::kRequesting) ++c;
  }
  return c;
}

bool SinghalDynamicMutex::they_win(std::uint64_t their_sn,
                                   net::NodeId them) const {
  if (their_sn != my_sn_) return their_sn < my_sn_;
  return them < id();
}

void SinghalDynamicMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("Singhal::request: already pending");
  }
  pending_ = req;
  sv_[id().index()] = SiteState::kRequesting;
  my_sn_ = ++sn_[id().index()];
  awaiting_.clear();
  for (std::size_t j = 0; j < n_; ++j) {
    if (j == id().index()) continue;
    if (sv_[j] == SiteState::kRequesting) {
      awaiting_.insert(net::NodeId{static_cast<std::int32_t>(j)});
    }
  }
  auto msg = net::make_payload<SgRequestMsg>(my_sn_);
  for (net::NodeId j : awaiting_) send(j, msg);
  try_enter();
}

void SinghalDynamicMutex::try_enter() {
  if (!pending_.has_value() || !awaiting_.empty()) return;
  if (sv_[id().index()] == SiteState::kExecuting) return;
  sv_[id().index()] = SiteState::kExecuting;
  grant(*pending_);
}

void SinghalDynamicMutex::release() {
  sv_[id().index()] = SiteState::kNone;
  pending_.reset();
  for (net::NodeId j : deferred_) {
    sv_[j.index()] = SiteState::kRequesting;  // they are still waiting
    send(j, net::make_payload<SgReplyMsg>());
  }
  deferred_.clear();
}

const runtime::MsgDispatcher<SinghalDynamicMutex>&
SinghalDynamicMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<SinghalDynamicMutex> t;
    t.set(SgRequestMsg::message_kind(),
          [](SinghalDynamicMutex& self, const net::Envelope& env) {
            const auto& req = static_cast<const SgRequestMsg&>(*env.payload);
            auto& sn = self.sn_[env.src.index()];
            sn = std::max(sn, req.sn);
            switch (self.sv_[self.id().index()]) {
              case SiteState::kExecuting:
                self.sv_[env.src.index()] = SiteState::kRequesting;
                self.deferred_.insert(env.src);
                break;
              case SiteState::kRequesting:
                if (self.they_win(req.sn, env.src)) {
                  self.sv_[env.src.index()] = SiteState::kRequesting;
                  self.send(env.src, net::make_payload<SgReplyMsg>());
                  // We had not asked them (they were believed idle); we now
                  // need their permission before entering.
                  if (!self.awaiting_.contains(env.src)) {
                    self.awaiting_.insert(env.src);
                    self.send(env.src,
                              net::make_payload<SgRequestMsg>(self.my_sn_));
                  }
                } else {
                  self.sv_[env.src.index()] = SiteState::kRequesting;
                  self.deferred_.insert(env.src);
                }
                break;
              case SiteState::kNone:
                self.sv_[env.src.index()] = SiteState::kRequesting;
                self.send(env.src, net::make_payload<SgReplyMsg>());
                break;
            }
          });
    t.set(SgReplyMsg::message_kind(),
          [](SinghalDynamicMutex& self, const net::Envelope& env) {
            // A reply means the sender is not ahead of us any more; unless a
            // newer REQUEST from it is in flight (processed later), it is
            // idle.
            if (!self.deferred_.contains(env.src)) {
              self.sv_[env.src.index()] = SiteState::kNone;
            }
            self.awaiting_.erase(env.src);
            self.try_enter();
          });
    return t;
  }();
  return kTable;
}

void SinghalDynamicMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("Singhal: unknown message");
  }
}

}  // namespace dmx::baselines
