// Registration hook for the baseline algorithm suite.
#pragma once

namespace dmx::baselines {

/// Adds every baseline ("suzuki-kasami", "raymond", "ricart-agrawala",
/// "singhal", "maekawa", "lamport", "centralized") to the global registry.
void register_all();

}  // namespace dmx::baselines
