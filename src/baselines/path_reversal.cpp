#include "baselines/path_reversal.hpp"

#include <stdexcept>

namespace dmx::baselines {

namespace {

struct PrRequestMsg final : net::Msg<PrRequestMsg> {
  DMX_REGISTER_MESSAGE(PrRequestMsg, "PR-REQUEST");
  net::NodeId requester;      ///< The node that wants the CS (not the hop src).
  std::uint64_t request_id;   ///< Its CsRequest id, for lifecycle spans.
  PrRequestMsg(net::NodeId j, std::uint64_t rid)
      : requester(j), request_id(rid) {}
  [[nodiscard]] std::string describe() const override {
    return "PR-REQUEST(from=" + std::to_string(requester.value()) +
           ", req=" + std::to_string(request_id) + ")";
  }
};

struct PrTokenMsg final : net::Msg<PrTokenMsg> {
  DMX_REGISTER_MESSAGE(PrTokenMsg, "PR-TOKEN");
};

}  // namespace

PathReversalMutex::PathReversalMutex(std::size_t n_nodes, Defect defect)
    : n_(n_nodes), defect_(defect) {
  if (n_nodes == 0) {
    throw std::invalid_argument("PathReversal: empty cluster");
  }
}

void PathReversalMutex::on_start() {
  if (id().value() == 0) {
    root_self_ = true;
    has_token_ = true;
  } else {
    owner_ = net::NodeId{0};
  }
}

std::string PathReversalMutex::debug_state() const {
  std::string out(algorithm_name());
  out += ": owner=";
  out += root_self_ ? "self" : std::to_string(owner_.value());
  out += " token=";
  out += has_token_ ? "held" : "no";
  if (in_cs_) out += " in-cs";
  if (pending_) out += " pending(req " + std::to_string(pending_->request_id) + ")";
  out += " next=";
  out += next_.valid() ? std::to_string(next_.value()) : "none";
  return out;
}

void PathReversalMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("PathReversal::request: already pending");
  }
  pending_ = req;
  if (!root_self_) {
    // Climb the probable-owner chain; we become the new root of our own
    // view immediately (every node the REQUEST crosses will re-point at
    // us, so the chain collapses onto this node).
    emit(obs::kEvReqForwarded, req.request_id, owner_.value());
    send(owner_, net::make_payload<PrRequestMsg>(id(), req.request_id));
    root_self_ = true;
    owner_ = net::NodeId{};
    return;
  }
  if (has_token_) {
    // Idle root holds the token (the structural invariant): zero messages.
    in_cs_ = true;
    grant(*pending_);
  }
  // else: root without token — only reachable when a seeded defect has
  // stranded the token elsewhere; stay pending so the starvation proof,
  // not a crash, reports it.
}

void PathReversalMutex::release() {
  in_cs_ = false;
  pending_.reset();
  if (next_.valid()) {
    pass_token_to(next_);
    next_ = net::NodeId{};
    next_req_id_ = 0;
  }
}

void PathReversalMutex::pass_token_to(net::NodeId dst) {
  has_token_ = false;
  send(dst, net::make_payload<PrTokenMsg>());
}

void PathReversalMutex::on_request_msg(std::int32_t from,
                                       std::uint64_t req_id) {
  const net::NodeId j{from};
  if (root_self_) {
    if (pending_.has_value()) {
      // Busy root: j becomes the token's successor (distributed FIFO).
      next_ = j;
      next_req_id_ = req_id;
      emit(obs::kEvReqQueued, req_id, id().value());
    } else if (has_token_) {
      // Idle root: hand the token over directly.
      pass_token_to(j);
    } else {
      // Root, idle, token-less: unreachable in the correct protocol (an
      // idle root holds the token) — but the no-reversal mutant lands
      // here after giving the token away while staying root.  Queue the
      // requester so the outcome is a provable starvation, not a crash.
      next_ = j;
      next_req_id_ = req_id;
      emit(obs::kEvReqQueued, req_id, id().value());
    }
  } else {
    // Interior node: relay toward the probable owner.
    emit(obs::kEvReqForwarded, req_id, owner_.value());
    send(owner_, net::make_payload<PrRequestMsg>(j, req_id));
  }
  if (defect_ != Defect::kNoReversal) {
    // The path reversal itself: every node the REQUEST crosses (and the
    // old root) now believes j is the probable owner.
    root_self_ = false;
    owner_ = j;
  }
}

void PathReversalMutex::on_token_msg() {
  has_token_ = true;
  if (pending_.has_value() && !in_cs_) {
    in_cs_ = true;
    grant(*pending_);
  } else if (next_.valid()) {
    // Spurious arrival (cannot normally happen): keep the token moving.
    pass_token_to(next_);
    next_ = net::NodeId{};
    next_req_id_ = 0;
  }
}

const runtime::MsgDispatcher<PathReversalMutex>&
PathReversalMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<PathReversalMutex> t;
    t.set(PrRequestMsg::message_kind(),
          [](PathReversalMutex& self, const net::Envelope& env) {
            const auto& req = static_cast<const PrRequestMsg&>(*env.payload);
            self.on_request_msg(req.requester.value(), req.request_id);
          });
    t.set(PrTokenMsg::message_kind(),
          [](PathReversalMutex& self, const net::Envelope&) {
            self.on_token_msg();
          });
    return t;
  }();
  return kTable;
}

void PathReversalMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("PathReversal: unknown message");
  }
}

}  // namespace dmx::baselines
