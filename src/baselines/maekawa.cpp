#include "baselines/maekawa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct MkRequestMsg final : net::Msg<MkRequestMsg> {
  DMX_REGISTER_MESSAGE(MkRequestMsg, "MK-REQUEST");
  std::uint64_t ts;
  explicit MkRequestMsg(std::uint64_t t) : ts(t) {}
};
struct MkLockedMsg final : net::Msg<MkLockedMsg> {
  DMX_REGISTER_MESSAGE(MkLockedMsg, "MK-LOCKED");
};
struct MkFailedMsg final : net::Msg<MkFailedMsg> {
  DMX_REGISTER_MESSAGE(MkFailedMsg, "MK-FAILED");
};
struct MkInquireMsg final : net::Msg<MkInquireMsg> {
  DMX_REGISTER_MESSAGE(MkInquireMsg, "MK-INQUIRE");
};
struct MkYieldMsg final : net::Msg<MkYieldMsg> {
  DMX_REGISTER_MESSAGE(MkYieldMsg, "MK-YIELD");
};
struct MkReleaseMsg final : net::Msg<MkReleaseMsg> {
  DMX_REGISTER_MESSAGE(MkReleaseMsg, "MK-RELEASE");
};

}  // namespace

std::vector<std::vector<net::NodeId>> build_grid_quorums(std::size_t n) {
  const auto k = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<std::vector<net::NodeId>> quorums(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> members;
    const std::size_t row = i / k;
    const std::size_t col = i % k;
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t j = row * k + c;
      if (j < n) members.insert(j);
    }
    for (std::size_t r = 0; r * k + col < n; ++r) members.insert(r * k + col);
    members.insert(i);
    for (std::size_t m : members) {
      quorums[i].push_back(net::NodeId{static_cast<std::int32_t>(m)});
    }
  }
  // Verify pairwise intersection; a ragged last row can break it.
  bool ok = true;
  for (std::size_t a = 0; a < n && ok; ++a) {
    for (std::size_t b = a + 1; b < n && ok; ++b) {
      bool intersect = false;
      for (net::NodeId x : quorums[a]) {
        if (std::find(quorums[b].begin(), quorums[b].end(), x) !=
            quorums[b].end()) {
          intersect = true;
          break;
        }
      }
      ok = intersect;
    }
  }
  if (!ok) {
    for (auto& q : quorums) {
      if (std::find(q.begin(), q.end(), net::NodeId{0}) == q.end()) {
        q.push_back(net::NodeId{0});
      }
    }
  }
  return quorums;
}

std::vector<std::vector<net::NodeId>> build_tree_quorums(std::size_t n) {
  std::vector<std::vector<net::NodeId>> quorums(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<net::NodeId> q;
    // Ancestors of i up to the root (inclusive).
    std::size_t up = i;
    for (;;) {
      q.push_back(net::NodeId{static_cast<std::int32_t>(up)});
      if (up == 0) break;
      up = (up - 1) / 2;
    }
    std::reverse(q.begin(), q.end());  // root first, for readability
    // Descend leftmost from i to a leaf.
    std::size_t down = i;
    while (2 * down + 1 < n) {
      down = 2 * down + 1;
      q.push_back(net::NodeId{static_cast<std::int32_t>(down)});
    }
    quorums[i] = std::move(q);
  }
  return quorums;
}

MaekawaMutex::MaekawaMutex(std::size_t n_nodes,
                           std::vector<std::vector<net::NodeId>> quorums)
    : n_(n_nodes), all_quorums_(std::move(quorums)) {
  if (!all_quorums_.empty() && all_quorums_.size() != n_nodes) {
    throw std::invalid_argument("Maekawa: quorum table size != N");
  }
}

void MaekawaMutex::on_start() {
  quorum_ = all_quorums_.empty() ? build_grid_quorums(n_)[id().index()]
                                 : all_quorums_[id().index()];
}

std::string MaekawaMutex::debug_state() const {
  std::string out = "maekawa: clock=" + std::to_string(clock_);
  if (in_cs_) {
    out += " in-cs";
  } else if (pending_) {
    out += " requesting(ts " + std::to_string(my_ts_) + ", votes " +
           std::to_string(votes_.size()) + "/" +
           std::to_string(quorum_.size()) + ")";
    if (saw_failed_) out += " saw-failed";
    if (!pending_inquires_.empty()) {
      out += " inquires=" + std::to_string(pending_inquires_.size());
    }
  } else {
    out += " idle";
  }
  if (locked_for_) {
    out += " locked-for(node " + std::to_string(locked_for_->node.value()) +
           ", ts " + std::to_string(locked_for_->ts) + ")";
    if (inquired_) out += " inquired";
  }
  if (!wait_q_.empty()) out += " wait-q=" + std::to_string(wait_q_.size());
  return out;
}

void MaekawaMutex::dispatch(net::NodeId dst, const net::PayloadPtr& payload) {
  if (dst == id()) {
    // Zero-latency self-delivery, bypassing the network (and its stats).
    net::Envelope env;
    env.src = id();
    env.dst = id();
    env.sent_at = now();
    env.delivered_at = now();
    env.payload = payload;
    handle(env);
  } else {
    send(dst, payload);
  }
}

void MaekawaMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("Maekawa::request: already pending");
  }
  pending_ = req;
  my_ts_ = ++clock_;
  saw_failed_ = false;
  votes_.clear();
  auto msg = net::make_payload<MkRequestMsg>(my_ts_);
  for (net::NodeId v : quorum_) dispatch(v, msg);
}

void MaekawaMutex::release() {
  in_cs_ = false;
  pending_.reset();
  pending_inquires_.clear();
  votes_.clear();
  auto msg = net::make_payload<MkReleaseMsg>();
  for (net::NodeId v : quorum_) dispatch(v, msg);
}

// --- requester side ---------------------------------------------------------

void MaekawaMutex::requester_on_locked(net::NodeId voter) {
  if (!pending_.has_value() || in_cs_) return;
  votes_.insert(voter);
  if (votes_.size() == quorum_.size()) {
    in_cs_ = true;
    pending_inquires_.clear();
    grant(*pending_);
  }
}

void MaekawaMutex::requester_on_failed(net::NodeId) {
  saw_failed_ = true;
  // We cannot currently win: yield every lock a voter inquired about.
  // Move out first: dispatch() can self-deliver and re-enter this method.
  const std::set<net::NodeId> inquirers = std::move(pending_inquires_);
  pending_inquires_.clear();
  for (net::NodeId v : inquirers) {
    votes_.erase(v);
    dispatch(v, net::make_payload<MkYieldMsg>());
  }
}

void MaekawaMutex::requester_on_inquire(net::NodeId voter) {
  if (in_cs_ || !pending_.has_value()) return;  // RELEASE will answer it
  if (saw_failed_) {
    votes_.erase(voter);
    dispatch(voter, net::make_payload<MkYieldMsg>());
  } else {
    // We might still win; remember the inquiry and yield only if a FAILED
    // proves we cannot.
    pending_inquires_.insert(voter);
  }
}

// --- voter side --------------------------------------------------------------

void MaekawaMutex::voter_grant(Ticket t) {
  locked_for_ = t;
  inquired_ = false;
  // Every queued request that is now a loser must learn it, or it may sit on
  // inquired locks elsewhere forever (the deadlock-resolution rule).
  // Snapshot first: dispatch() can self-deliver and mutate wait_q_.
  std::vector<net::NodeId> losers;
  for (const Ticket& w : wait_q_) {
    if (t < w) losers.push_back(w.node);
  }
  dispatch(t.node, net::make_payload<MkLockedMsg>());
  for (net::NodeId loser : losers) {
    dispatch(loser, net::make_payload<MkFailedMsg>());
  }
}

void MaekawaMutex::voter_on_request(net::NodeId from, std::uint64_t ts) {
  const Ticket t{ts, from};
  if (!locked_for_.has_value()) {
    voter_grant(t);
    return;
  }
  // FAILED if the newcomer loses to the current lock or to any queued
  // request; otherwise it outranks the lock and the holder is inquired.
  const bool beats_lock = t < *locked_for_;
  const bool beats_queue = wait_q_.empty() || t < *wait_q_.begin();
  wait_q_.insert(t);
  if (beats_lock && beats_queue) {
    if (!inquired_) {
      inquired_ = true;
      dispatch(locked_for_->node, net::make_payload<MkInquireMsg>());
    }
  } else {
    dispatch(from, net::make_payload<MkFailedMsg>());
  }
}

void MaekawaMutex::voter_on_release(net::NodeId from) {
  if (locked_for_.has_value() && locked_for_->node == from) {
    locked_for_.reset();
    inquired_ = false;
    if (!wait_q_.empty()) {
      const Ticket next = *wait_q_.begin();
      wait_q_.erase(wait_q_.begin());
      voter_grant(next);
    }
  } else {
    // Release from a node that is not the lock holder: drop its queued
    // ticket if any (stale YIELD/LOCKED crossings).
    std::erase_if(wait_q_, [&](const Ticket& t) { return t.node == from; });
  }
}

void MaekawaMutex::voter_on_yield(net::NodeId from) {
  if (!locked_for_.has_value() || locked_for_->node != from) return;
  // The holder steps aside: requeue it and grant the best waiting ticket.
  wait_q_.insert(*locked_for_);
  locked_for_.reset();
  inquired_ = false;
  if (!wait_q_.empty()) {
    const Ticket next = *wait_q_.begin();
    wait_q_.erase(wait_q_.begin());
    voter_grant(next);
  }
}

const runtime::MsgDispatcher<MaekawaMutex>& MaekawaMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<MaekawaMutex> t;
    t.set(MkRequestMsg::message_kind(),
          [](MaekawaMutex& self, const net::Envelope& env) {
            const auto& req = static_cast<const MkRequestMsg&>(*env.payload);
            self.clock_ = std::max(self.clock_, req.ts) + 1;
            self.voter_on_request(env.src, req.ts);
          });
    t.set(MkLockedMsg::message_kind(),
          [](MaekawaMutex& self, const net::Envelope& env) {
            self.requester_on_locked(env.src);
          });
    t.set(MkFailedMsg::message_kind(),
          [](MaekawaMutex& self, const net::Envelope& env) {
            self.requester_on_failed(env.src);
          });
    t.set(MkInquireMsg::message_kind(),
          [](MaekawaMutex& self, const net::Envelope& env) {
            self.requester_on_inquire(env.src);
          });
    t.set(MkYieldMsg::message_kind(),
          [](MaekawaMutex& self, const net::Envelope& env) {
            self.voter_on_yield(env.src);
          });
    t.set(MkReleaseMsg::message_kind(),
          [](MaekawaMutex& self, const net::Envelope& env) {
            self.voter_on_release(env.src);
          });
    return t;
  }();
  return kTable;
}

void MaekawaMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("Maekawa: unknown message");
  }
}

}  // namespace dmx::baselines
