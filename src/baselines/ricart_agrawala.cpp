#include "baselines/ricart_agrawala.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct RaRequestMsg final : net::Msg<RaRequestMsg> {
  DMX_REGISTER_MESSAGE(RaRequestMsg, "RA-REQUEST");
  std::uint64_t ts;
  explicit RaRequestMsg(std::uint64_t t) : ts(t) {}
};

struct RaReplyMsg final : net::Msg<RaReplyMsg> {
  DMX_REGISTER_MESSAGE(RaReplyMsg, "RA-REPLY");
};

}  // namespace

RicartAgrawalaMutex::RicartAgrawalaMutex(std::size_t n_nodes)
    : n_(n_nodes), deferred_(n_nodes, false) {}

std::string RicartAgrawalaMutex::debug_state() const {
  std::string out = "ricart-agrawala: clock=" + std::to_string(clock_);
  if (in_cs_) {
    out += " in-cs(ts " + std::to_string(my_ts_) + ")";
  } else if (requesting_) {
    out += " requesting(ts " + std::to_string(my_ts_) + ", awaiting " +
           std::to_string(replies_needed_) + " replies)";
  } else {
    out += " idle";
  }
  std::string defer;
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    if (!deferred_[i]) continue;
    if (!defer.empty()) defer += ',';
    defer += std::to_string(i);
  }
  if (!defer.empty()) out += " deferred={" + defer + "}";
  return out;
}

bool RicartAgrawalaMutex::they_win(std::uint64_t their_ts,
                                   net::NodeId them) const {
  if (their_ts != my_ts_) return their_ts < my_ts_;
  return them < id();
}

void RicartAgrawalaMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("RicartAgrawala::request: already pending");
  }
  pending_ = req;
  requesting_ = true;
  my_ts_ = ++clock_;
  replies_needed_ = n_ - 1;
  if (replies_needed_ == 0) {
    in_cs_ = true;
    grant(*pending_);
    return;
  }
  broadcast(net::make_payload<RaRequestMsg>(my_ts_));
}

void RicartAgrawalaMutex::release() {
  in_cs_ = false;
  requesting_ = false;
  pending_.reset();
  for (std::size_t j = 0; j < n_; ++j) {
    if (deferred_[j]) {
      deferred_[j] = false;
      send(net::NodeId{static_cast<std::int32_t>(j)},
           net::make_payload<RaReplyMsg>());
    }
  }
}

const runtime::MsgDispatcher<RicartAgrawalaMutex>&
RicartAgrawalaMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<RicartAgrawalaMutex> t;
    t.set(RaRequestMsg::message_kind(),
          [](RicartAgrawalaMutex& self, const net::Envelope& env) {
            const auto& req = static_cast<const RaRequestMsg&>(*env.payload);
            self.clock_ = std::max(self.clock_, req.ts) + 1;
            const bool defer =
                self.in_cs_ ||
                (self.requesting_ && !self.they_win(req.ts, env.src));
            if (defer) {
              self.deferred_[env.src.index()] = true;
            } else {
              self.send(env.src, net::make_payload<RaReplyMsg>());
            }
          });
    t.set(RaReplyMsg::message_kind(),
          [](RicartAgrawalaMutex& self, const net::Envelope&) {
            if (self.requesting_ && !self.in_cs_ &&
                self.replies_needed_ > 0) {
              if (--self.replies_needed_ == 0) {
                self.in_cs_ = true;
                self.grant(*self.pending_);
              }
            }
          });
    return t;
  }();
  return kTable;
}

void RicartAgrawalaMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("RicartAgrawala: unknown message");
  }
}

}  // namespace dmx::baselines
