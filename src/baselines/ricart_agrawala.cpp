#include "baselines/ricart_agrawala.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct RaRequestMsg final : net::Payload {
  std::uint64_t ts;
  explicit RaRequestMsg(std::uint64_t t) : ts(t) {}
  [[nodiscard]] std::string_view type_name() const override {
    return "RA-REQUEST";
  }
};

struct RaReplyMsg final : net::Payload {
  [[nodiscard]] std::string_view type_name() const override {
    return "RA-REPLY";
  }
};

}  // namespace

RicartAgrawalaMutex::RicartAgrawalaMutex(std::size_t n_nodes)
    : n_(n_nodes), deferred_(n_nodes, false) {}

bool RicartAgrawalaMutex::they_win(std::uint64_t their_ts,
                                   net::NodeId them) const {
  if (their_ts != my_ts_) return their_ts < my_ts_;
  return them < id();
}

void RicartAgrawalaMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("RicartAgrawala::request: already pending");
  }
  pending_ = req;
  requesting_ = true;
  my_ts_ = ++clock_;
  replies_needed_ = n_ - 1;
  if (replies_needed_ == 0) {
    in_cs_ = true;
    grant(*pending_);
    return;
  }
  broadcast(net::make_payload<RaRequestMsg>(my_ts_));
}

void RicartAgrawalaMutex::release() {
  in_cs_ = false;
  requesting_ = false;
  pending_.reset();
  for (std::size_t j = 0; j < n_; ++j) {
    if (deferred_[j]) {
      deferred_[j] = false;
      send(net::NodeId{static_cast<std::int32_t>(j)},
           net::make_payload<RaReplyMsg>());
    }
  }
}

void RicartAgrawalaMutex::handle(const net::Envelope& env) {
  if (const auto* req = env.as<RaRequestMsg>()) {
    clock_ = std::max(clock_, req->ts) + 1;
    const bool defer =
        in_cs_ || (requesting_ && !they_win(req->ts, env.src));
    if (defer) {
      deferred_[env.src.index()] = true;
    } else {
      send(env.src, net::make_payload<RaReplyMsg>());
    }
    return;
  }
  if (env.as<RaReplyMsg>() != nullptr) {
    if (requesting_ && !in_cs_ && replies_needed_ > 0) {
      if (--replies_needed_ == 0) {
        in_cs_ = true;
        grant(*pending_);
      }
    }
    return;
  }
  throw std::logic_error("RicartAgrawala: unknown message");
}

}  // namespace dmx::baselines
