#include "baselines/raymond.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct RyRequestMsg final : net::Msg<RyRequestMsg> {
  DMX_REGISTER_MESSAGE(RyRequestMsg, "RY-REQUEST");
};

struct RyPrivilegeMsg final : net::Msg<RyPrivilegeMsg> {
  DMX_REGISTER_MESSAGE(RyPrivilegeMsg, "RY-PRIVILEGE");
};

}  // namespace

RaymondMutex::RaymondMutex(std::size_t n_nodes) : n_(n_nodes) {}

std::string RaymondMutex::debug_state() const {
  std::string out = "raymond: holder=";
  out += holder_self_ ? "self" : std::to_string(holder_.value());
  if (using_) out += " in-cs";
  if (asked_) out += " asked";
  if (pending_) out += " pending(req " + std::to_string(pending_->request_id) + ")";
  out += " request-q={";
  for (std::size_t i = 0; i < request_q_.size(); ++i) {
    if (i > 0) out += ',';
    out += request_q_[i] == kSelf ? "self" : std::to_string(request_q_[i]);
  }
  out += "}";
  return out;
}

void RaymondMutex::on_start() {
  if (id().value() == 0) {
    holder_self_ = true;
  } else {
    holder_ = RaymondTopology::parent_of(id());
  }
}

void RaymondMutex::assign_privilege() {
  if (!holder_self_ || using_ || request_q_.empty()) return;
  const std::int32_t next = request_q_.front();
  request_q_.pop_front();
  if (next == kSelf) {
    using_ = true;
    grant(*pending_);
    return;
  }
  holder_self_ = false;
  holder_ = net::NodeId{next};
  asked_ = false;
  send(holder_, net::make_payload<RyPrivilegeMsg>());
  // Ask the token back immediately if more requests are queued behind.
  make_request();
}

void RaymondMutex::make_request() {
  if (holder_self_ || request_q_.empty() || asked_) return;
  asked_ = true;
  send(holder_, net::make_payload<RyRequestMsg>());
}

void RaymondMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("Raymond::request: already pending");
  }
  pending_ = req;
  request_q_.push_back(kSelf);
  assign_privilege();
  make_request();
}

void RaymondMutex::release() {
  using_ = false;
  pending_.reset();
  assign_privilege();
  make_request();
}

const runtime::MsgDispatcher<RaymondMutex>& RaymondMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<RaymondMutex> t;
    t.set(RyRequestMsg::message_kind(),
          [](RaymondMutex& self, const net::Envelope& env) {
            // Queue the requesting neighbour at most once (the asked_ flag on
            // their side should already guarantee this).
            if (std::find(self.request_q_.begin(), self.request_q_.end(),
                          env.src.value()) == self.request_q_.end()) {
              self.request_q_.push_back(env.src.value());
            }
            self.assign_privilege();
            self.make_request();
          });
    t.set(RyPrivilegeMsg::message_kind(),
          [](RaymondMutex& self, const net::Envelope&) {
            self.holder_self_ = true;
            self.asked_ = false;
            self.assign_privilege();
            self.make_request();
          });
    return t;
  }();
  return kTable;
}

void RaymondMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("Raymond: unknown message");
  }
}

}  // namespace dmx::baselines
