// Naimi–Trehel path-reversal token algorithm (JPDC 1996, "A log(N)
// distributed mutual exclusion algorithm based on path reversal").
//
// The one baseline that actually scales logarithmically.  Each node keeps
// two pointers into a dynamic structure:
//
//   owner  the "probable owner" — the root of a dynamic tree the token
//          lives at (or is heading toward).  A REQUEST travels along the
//          owner chain to the current root, and *every node it crosses
//          re-points its owner at the requester* (path reversal), so the
//          tree keeps collapsing toward recent requesters.
//   next   a distributed FIFO queue: the root, if busy, remembers exactly
//          one successor; the token hops along next pointers.
//
// A request therefore costs (chain length) REQUEST hops plus one TOKEN
// hop, and Lavault's average-case analysis of path reversal (arXiv
// cs/0611098) proves the stationary average chain length over uniform
// random requesters is exactly H_n - 1, i.e. O(log n) messages per CS
// (closed forms in analysis/models.hpp, validated by
// bench/table_pathreversal).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

class PathReversalMutex final : public mutex::MutexAlgorithm {
 public:
  /// Seeded-defect switch for the verification mutation harness
  /// (verify/mutants.cpp): kNoReversal skips the probable-owner flip when a
  /// REQUEST crosses a node, so the old root turns into a black hole —
  /// requests pile up behind a token that never routes back, and the
  /// explorer's terminal starvation proof must fire.
  enum class Defect : std::uint8_t { kNone, kNoReversal };

  explicit PathReversalMutex(std::size_t n_nodes,
                             Defect defect = Defect::kNone);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return defect_ == Defect::kNone ? "path-reversal" : "mutant-no-reversal";
  }
  [[nodiscard]] std::string debug_state() const override;

  [[nodiscard]] std::optional<bool> holds_token() const override {
    return has_token_;
  }

  /// True while this node is the root of the probable-owner tree (its
  /// owner pointer designates itself).
  [[nodiscard]] bool is_root() const { return root_self_; }

 protected:
  void on_start() override;
  void handle(const net::Envelope& env) override;

 private:
  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<PathReversalMutex>& dispatch_table();

  void on_request_msg(std::int32_t from, std::uint64_t req_id);
  void on_token_msg();
  void pass_token_to(net::NodeId dst);

  std::size_t n_;
  Defect defect_;
  bool root_self_ = false;  ///< owner designates this node (tree root).
  net::NodeId owner_;       ///< Probable owner when not root.
  net::NodeId next_;        ///< Token successor; invalid = none queued.
  std::uint64_t next_req_id_ = 0;  ///< Request id queued behind next_.
  bool has_token_ = false;
  bool in_cs_ = false;
  std::optional<mutex::CsRequest> pending_;
};

}  // namespace dmx::baselines
