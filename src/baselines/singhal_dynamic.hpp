// Singhal's dynamic information-structure algorithm (IEEE TPDS 1992).
//
// The dynamic comparator in the paper's Figure 6.  Each site keeps a state
// vector SV (what it believes each site is doing) and asks permission only
// from the sites it believes are requesting.  The initial "staircase"
// (site i asks sites 0..i-1) guarantees that for every pair at least one
// asks the other; replies dynamically shrink request sets, so an idle
// system converges to very few messages per CS — cheaper than the paper's
// algorithm at very low load, costlier at moderate/high load.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

class SinghalDynamicMutex final : public mutex::MutexAlgorithm {
 public:
  explicit SinghalDynamicMutex(std::size_t n_nodes);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "singhal";
  }
  [[nodiscard]] std::string debug_state() const override;

  /// Number of sites this node would currently ask (test hook).
  [[nodiscard]] std::size_t request_set_size() const;

 protected:
  void on_start() override;
  void handle(const net::Envelope& env) override;

 private:
  enum class SiteState : std::uint8_t { kNone, kRequesting, kExecuting };

  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<SinghalDynamicMutex>& dispatch_table();

  /// True if (their_sn, their_id) has priority over our pending request.
  [[nodiscard]] bool they_win(std::uint64_t their_sn, net::NodeId them) const;
  void try_enter();

  std::size_t n_;
  std::vector<SiteState> sv_;       ///< Believed state per site.
  std::vector<std::uint64_t> sn_;   ///< Highest sequence number per site.
  std::optional<mutex::CsRequest> pending_;
  std::uint64_t my_sn_ = 0;
  std::set<net::NodeId> awaiting_;  ///< Replies still needed.
  std::set<net::NodeId> deferred_;  ///< Replies owed after our CS.
};

}  // namespace dmx::baselines
