#include "baselines/token_ring.hpp"

#include <stdexcept>

namespace dmx::baselines {

namespace {

struct RingTokenMsg final : net::Msg<RingTokenMsg> {
  DMX_REGISTER_MESSAGE(RingTokenMsg, "RING-TOKEN");
  std::uint32_t idle_hops;  ///< Consecutive hops without serving a CS.
  explicit RingTokenMsg(std::uint32_t h) : idle_hops(h) {}
};

/// Travels the ring looking for a parked token.
struct RingWakeupMsg final : net::Msg<RingWakeupMsg> {
  DMX_REGISTER_MESSAGE(RingWakeupMsg, "RING-WAKEUP");
  std::uint32_t hops;
  explicit RingWakeupMsg(std::uint32_t h) : hops(h) {}
};

}  // namespace

TokenRingMutex::TokenRingMutex(std::size_t n_nodes, sim::SimTime hop_dwell)
    : n_(n_nodes), hop_dwell_(hop_dwell) {
  if (n_nodes == 0) throw std::invalid_argument("TokenRing: zero nodes");
}

std::string TokenRingMutex::debug_state() const {
  std::string out = "token-ring: token=";
  out += have_token_ ? (parked_ ? "parked-here" : "held") : "no";
  if (in_cs_) out += " in-cs";
  if (pending_) out += " pending(req " + std::to_string(pending_->request_id) + ")";
  return out;
}

void TokenRingMutex::on_start() {
  if (id().value() == 0) {
    // The token starts parked at node 0 (no demand yet).
    have_token_ = true;
    parked_ = true;
  }
}

void TokenRingMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("TokenRing::request: already pending");
  }
  pending_ = req;
  if (have_token_ && !in_cs_) {
    cancel_timer(dwell_timer_);
    parked_ = false;
    in_cs_ = true;
    grant(*pending_);
    return;
  }
  // The token may be parked somewhere after a quiet revolution: wait one
  // revolution for a circulating token, then chase a parked one with a
  // wakeup that forwards along the ring until it finds the holder.  Keep
  // re-sending each revolution until served: a wakeup can race past the
  // token just before it parks.
  arm_wakeup_timer();
}

void TokenRingMutex::arm_wakeup_timer() {
  const sim::SimTime revolution =
      (hop_dwell_ + sim::SimTime::units(0.2)) * static_cast<std::int64_t>(n_);
  wakeup_timer_ = set_timer(revolution, [this] { send_wakeup(); });
}

void TokenRingMutex::send_wakeup() {
  if (!pending_.has_value() || have_token_) return;
  send(next_node(), net::make_payload<RingWakeupMsg>(0u));
  arm_wakeup_timer();
}

void TokenRingMutex::release() {
  in_cs_ = false;
  pending_.reset();
  pass_token(0);
}

void TokenRingMutex::pass_token(std::uint32_t idle_hops) {
  have_token_ = false;
  parked_ = false;
  send(next_node(), net::make_payload<RingTokenMsg>(idle_hops));
}

void TokenRingMutex::token_arrived(std::uint32_t idle_hops) {
  have_token_ = true;
  cancel_timer(wakeup_timer_);
  if (pending_.has_value() && !in_cs_) {
    in_cs_ = true;
    grant(*pending_);
    return;  // release() passes the token on with idle_hops = 0
  }
  if (idle_hops + 1 >= n_) {
    // A full revolution with no demand: park here until a wakeup arrives.
    parked_ = true;
    return;
  }
  dwell_timer_ =
      set_timer(hop_dwell_, [this, idle_hops] { pass_token(idle_hops + 1); });
}

const runtime::MsgDispatcher<TokenRingMutex>&
TokenRingMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<TokenRingMutex> t;
    t.set(RingTokenMsg::message_kind(),
          [](TokenRingMutex& self, const net::Envelope& env) {
            const auto& tok = static_cast<const RingTokenMsg&>(*env.payload);
            self.token_arrived(tok.idle_hops);
          });
    t.set(RingWakeupMsg::message_kind(),
          [](TokenRingMutex& self, const net::Envelope& env) {
            const auto& wake =
                static_cast<const RingWakeupMsg&>(*env.payload);
            if (self.have_token_) {
              if (self.parked_ && !self.in_cs_) {
                self.parked_ = false;
                self.pass_token(0);  // resume circulation toward the requester
              }
              return;  // the token is moving or busy: the wakeup is moot
            }
            if (wake.hops + 1 < self.n_) {
              self.send(self.next_node(),
                        net::make_payload<RingWakeupMsg>(wake.hops + 1));
            }
          });
    return t;
  }();
  return kTable;
}

void TokenRingMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("TokenRing: unknown message");
  }
}

}  // namespace dmx::baselines
