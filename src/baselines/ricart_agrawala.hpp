// Ricart–Agrawala permission-based mutual exclusion (CACM 1981).
//
// The static comparator in the paper's Figure 6.  A requester timestamps its
// request with a Lamport clock, broadcasts it (N-1 messages), and enters the
// CS once all N-1 REPLYs arrive; nodes defer replies to lower-priority
// requests while requesting or executing.  2(N-1) messages per CS at every
// load level.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

class RicartAgrawalaMutex final : public mutex::MutexAlgorithm {
 public:
  explicit RicartAgrawalaMutex(std::size_t n_nodes);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "ricart-agrawala";
  }
  [[nodiscard]] std::string debug_state() const override;

 protected:
  void handle(const net::Envelope& env) override;

 private:
  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<RicartAgrawalaMutex>& dispatch_table();

  /// True if (their_ts, their_id) has priority over our outstanding request.
  [[nodiscard]] bool they_win(std::uint64_t their_ts, net::NodeId them) const;

  std::size_t n_;
  std::uint64_t clock_ = 0;
  std::optional<mutex::CsRequest> pending_;
  std::uint64_t my_ts_ = 0;      ///< Timestamp of the outstanding request.
  bool requesting_ = false;
  bool in_cs_ = false;
  std::size_t replies_needed_ = 0;
  std::vector<bool> deferred_;   ///< Replies to send on release.
};

}  // namespace dmx::baselines
