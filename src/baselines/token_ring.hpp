// Perpetual token ring (the paper's reference [15], Stallings) — the
// simplest token-based scheme: the token circulates node 0 -> 1 -> ... ->
// N-1 -> 0 forever; a node holding the token may enter its critical
// section.  Message cost is striking at the extremes: unbounded messages
// per CS at light load (the token keeps circling with nobody to serve) and
// exactly 1 message per CS at full saturation — a useful contrast to the
// arbiter algorithm's 3.
//
// Two idle policies:
//  * perpetual (paper-faithful ring): the token hops every T_hop even when
//    idle; we cap accounting noise by stopping circulation after the run
//    drains (the simulator would otherwise never terminate) via an idle
//    shutdown hook the harness drives implicitly — the token parks when a
//    full revolution sees no demand and restarts on the next request
//    (REQUEST-to-parker wakeup, 1 extra message).
#pragma once

#include <optional>

#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::baselines {

class TokenRingMutex final : public mutex::MutexAlgorithm {
 public:
  /// `hop_delay` is the dwell time at an uninterested node before passing on.
  TokenRingMutex(std::size_t n_nodes, sim::SimTime hop_dwell);

  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "token-ring";
  }
  [[nodiscard]] std::string debug_state() const override;

  [[nodiscard]] bool has_token() const { return have_token_; }
  [[nodiscard]] bool parked() const { return have_token_ && parked_; }
  [[nodiscard]] std::optional<bool> holds_token() const override {
    return have_token_;
  }

 protected:
  void on_start() override;
  void handle(const net::Envelope& env) override;

 private:
  // Built in the .cpp, where the protocol's message types live.
  static const runtime::MsgDispatcher<TokenRingMutex>& dispatch_table();

  [[nodiscard]] net::NodeId next_node() const {
    return net::NodeId{
        static_cast<std::int32_t>((id().index() + 1) % n_)};
  }
  void token_arrived(std::uint32_t idle_hops);
  void pass_token(std::uint32_t idle_hops);
  void send_wakeup();
  void arm_wakeup_timer();

  std::size_t n_;
  sim::SimTime hop_dwell_;
  std::optional<mutex::CsRequest> pending_;
  bool have_token_ = false;
  bool in_cs_ = false;
  bool parked_ = false;  ///< Idle token parked here after a quiet revolution.
  runtime::TimerId dwell_timer_;
  runtime::TimerId wakeup_timer_;
};

}  // namespace dmx::baselines
