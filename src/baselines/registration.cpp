#include "baselines/registration.hpp"

#include "baselines/centralized.hpp"
#include "baselines/lamport.hpp"
#include "baselines/maekawa.hpp"
#include "baselines/path_reversal.hpp"
#include "baselines/raymond.hpp"
#include "baselines/ricart_agrawala.hpp"
#include "baselines/singhal_dynamic.hpp"
#include "baselines/suzuki_kasami.hpp"
#include "baselines/token_ring.hpp"
#include "mutex/registry.hpp"

namespace dmx::baselines {

void register_all() {
  auto& reg = mutex::Registry::instance();
  reg.add("centralized", [](const mutex::FactoryContext& ctx) {
    const auto coord = net::NodeId{
        static_cast<std::int32_t>(ctx.params.get_num("coordinator", 0))};
    return std::make_unique<CentralizedMutex>(coord, ctx.n_nodes);
  });
  reg.add("suzuki-kasami", [](const mutex::FactoryContext& ctx) {
    const auto holder = net::NodeId{
        static_cast<std::int32_t>(ctx.params.get_num("initial_holder", 0))};
    return std::make_unique<SuzukiKasamiMutex>(ctx.n_nodes, holder);
  });
  reg.add("ricart-agrawala", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<RicartAgrawalaMutex>(ctx.n_nodes);
  });
  reg.add("lamport", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<LamportMutex>(ctx.n_nodes);
  });
  reg.add("raymond", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<RaymondMutex>(ctx.n_nodes);
  });
  reg.add("path-reversal", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<PathReversalMutex>(ctx.n_nodes);
  });
  reg.add("maekawa", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<MaekawaMutex>(ctx.n_nodes);
  });
  reg.add("tree-quorum", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<MaekawaMutex>(ctx.n_nodes,
                                          build_tree_quorums(ctx.n_nodes));
  });
  reg.add("singhal", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<SinghalDynamicMutex>(ctx.n_nodes);
  });
  reg.add("token-ring", [](const mutex::FactoryContext& ctx) {
    const auto dwell = ctx.params.get_time("hop_dwell", sim::SimTime::units(0.02));
    return std::make_unique<TokenRingMutex>(ctx.n_nodes, dwell);
  });
}

}  // namespace dmx::baselines
