#include "baselines/suzuki_kasami.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct SkRequestMsg final : net::Msg<SkRequestMsg> {
  DMX_REGISTER_MESSAGE(SkRequestMsg, "SK-REQUEST");
  net::NodeId node;
  std::uint64_t n;
  SkRequestMsg(net::NodeId j, std::uint64_t seq) : node(j), n(seq) {}
};

struct SkTokenMsg final : net::Msg<SkTokenMsg> {
  DMX_REGISTER_MESSAGE(SkTokenMsg, "SK-TOKEN");
  std::vector<std::uint64_t> ln;
  std::deque<net::NodeId> queue;
  [[nodiscard]] std::size_t size_hint() const override {
    return ln.size() * 8 + queue.size() * 4;
  }
};

}  // namespace

SuzukiKasamiMutex::SuzukiKasamiMutex(std::size_t n_nodes,
                                     net::NodeId initial_holder)
    : initial_holder_(initial_holder), n_(n_nodes), rn_(n_nodes, 0),
      ln_(n_nodes, 0) {
  if (!initial_holder.valid() || initial_holder.index() >= n_nodes) {
    throw std::invalid_argument("SuzukiKasami: bad initial holder");
  }
}

void SuzukiKasamiMutex::on_start() {
  if (id() == initial_holder_) have_token_ = true;
}

std::string SuzukiKasamiMutex::debug_state() const {
  std::string out = "suzuki-kasami: token=";
  out += have_token_ ? "held" : "no";
  if (in_cs_) out += " in-cs";
  if (pending_) {
    out += " pending(req " + std::to_string(pending_->request_id) + ", seq " +
           std::to_string(rn_[id().index()]) + ")";
  }
  if (have_token_) {
    out += " token-queue={";
    for (std::size_t i = 0; i < token_queue_.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(token_queue_[i].value());
    }
    out += "}";
  }
  return out;
}

void SuzukiKasamiMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("SuzukiKasami::request: already pending");
  }
  pending_ = req;
  ++rn_[id().index()];
  if (have_token_ && !in_cs_) {
    in_cs_ = true;
    grant(*pending_);
    return;  // zero messages: idle token holder re-enters directly
  }
  auto msg = net::make_payload<SkRequestMsg>(id(), rn_[id().index()]);
  broadcast(msg);
}

void SuzukiKasamiMutex::release() {
  in_cs_ = false;
  pending_.reset();
  ln_[id().index()] = rn_[id().index()];
  // Append every node whose latest request is not yet granted and not
  // already queued.
  for (std::size_t j = 0; j < n_; ++j) {
    const net::NodeId nj{static_cast<std::int32_t>(j)};
    if (nj == id()) continue;
    if (rn_[j] == ln_[j] + 1 &&
        std::find(token_queue_.begin(), token_queue_.end(), nj) ==
            token_queue_.end()) {
      token_queue_.push_back(nj);
    }
  }
  try_pass_token();
}

void SuzukiKasamiMutex::try_pass_token() {
  if (!have_token_ || in_cs_ || token_queue_.empty()) return;
  const net::NodeId next = token_queue_.front();
  token_queue_.pop_front();
  auto tok = net::make_payload_mut<SkTokenMsg>();
  tok->ln = ln_;
  tok->queue = token_queue_;
  have_token_ = false;
  token_queue_.clear();
  send(next, std::move(tok));
}

const runtime::MsgDispatcher<SuzukiKasamiMutex>&
SuzukiKasamiMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<SuzukiKasamiMutex> t;
    t.set(SkRequestMsg::message_kind(),
          [](SuzukiKasamiMutex& self, const net::Envelope& env) {
            const auto& req = static_cast<const SkRequestMsg&>(*env.payload);
            auto& rn = self.rn_[req.node.index()];
            rn = std::max(rn, req.n);
            if (self.have_token_ && !self.in_cs_ &&
                rn == self.ln_[req.node.index()] + 1) {
              self.token_queue_.push_back(req.node);
              self.try_pass_token();
            }
          });
    t.set(SkTokenMsg::message_kind(),
          [](SuzukiKasamiMutex& self, const net::Envelope& env) {
            const auto& tok = static_cast<const SkTokenMsg&>(*env.payload);
            self.have_token_ = true;
            self.ln_ = tok.ln;
            self.token_queue_ = tok.queue;
            if (self.pending_.has_value() && !self.in_cs_) {
              self.in_cs_ = true;
              self.grant(*self.pending_);
            } else {
              // Spurious token arrival (cannot normally happen): pass it on.
              self.try_pass_token();
            }
          });
    return t;
  }();
  return kTable;
}

void SuzukiKasamiMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("SuzukiKasami: unknown message");
  }
}

}  // namespace dmx::baselines
