#include "baselines/suzuki_kasami.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmx::baselines {

namespace {

struct SkRequestMsg final : net::Payload {
  net::NodeId node;
  std::uint64_t n;
  SkRequestMsg(net::NodeId j, std::uint64_t seq) : node(j), n(seq) {}
  [[nodiscard]] std::string_view type_name() const override {
    return "SK-REQUEST";
  }
};

struct SkTokenMsg final : net::Payload {
  std::vector<std::uint64_t> ln;
  std::deque<net::NodeId> queue;
  [[nodiscard]] std::string_view type_name() const override {
    return "SK-TOKEN";
  }
  [[nodiscard]] std::size_t size_hint() const override {
    return ln.size() * 8 + queue.size() * 4;
  }
};

}  // namespace

SuzukiKasamiMutex::SuzukiKasamiMutex(std::size_t n_nodes,
                                     net::NodeId initial_holder)
    : initial_holder_(initial_holder), n_(n_nodes), rn_(n_nodes, 0),
      ln_(n_nodes, 0) {
  if (!initial_holder.valid() || initial_holder.index() >= n_nodes) {
    throw std::invalid_argument("SuzukiKasami: bad initial holder");
  }
}

void SuzukiKasamiMutex::on_start() {
  if (id() == initial_holder_) have_token_ = true;
}

void SuzukiKasamiMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("SuzukiKasami::request: already pending");
  }
  pending_ = req;
  ++rn_[id().index()];
  if (have_token_ && !in_cs_) {
    in_cs_ = true;
    grant(*pending_);
    return;  // zero messages: idle token holder re-enters directly
  }
  auto msg = net::make_payload<SkRequestMsg>(id(), rn_[id().index()]);
  broadcast(msg);
}

void SuzukiKasamiMutex::release() {
  in_cs_ = false;
  pending_.reset();
  ln_[id().index()] = rn_[id().index()];
  // Append every node whose latest request is not yet granted and not
  // already queued.
  for (std::size_t j = 0; j < n_; ++j) {
    const net::NodeId nj{static_cast<std::int32_t>(j)};
    if (nj == id()) continue;
    if (rn_[j] == ln_[j] + 1 &&
        std::find(token_queue_.begin(), token_queue_.end(), nj) ==
            token_queue_.end()) {
      token_queue_.push_back(nj);
    }
  }
  try_pass_token();
}

void SuzukiKasamiMutex::try_pass_token() {
  if (!have_token_ || in_cs_ || token_queue_.empty()) return;
  const net::NodeId next = token_queue_.front();
  token_queue_.pop_front();
  auto tok = std::make_shared<SkTokenMsg>();
  tok->ln = ln_;
  tok->queue = token_queue_;
  have_token_ = false;
  token_queue_.clear();
  send(next, std::move(tok));
}

void SuzukiKasamiMutex::handle(const net::Envelope& env) {
  if (const auto* req = env.as<SkRequestMsg>()) {
    rn_[req->node.index()] = std::max(rn_[req->node.index()], req->n);
    if (have_token_ && !in_cs_ &&
        rn_[req->node.index()] == ln_[req->node.index()] + 1) {
      token_queue_.push_back(req->node);
      try_pass_token();
    }
    return;
  }
  if (const auto* tok = env.as<SkTokenMsg>()) {
    have_token_ = true;
    ln_ = tok->ln;
    token_queue_ = tok->queue;
    if (pending_.has_value() && !in_cs_) {
      in_cs_ = true;
      grant(*pending_);
    } else {
      // Spurious token arrival (cannot normally happen): pass it on.
      try_pass_token();
    }
    return;
  }
  throw std::logic_error("SuzukiKasami: unknown message");
}

}  // namespace dmx::baselines
