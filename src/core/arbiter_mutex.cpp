#include "core/arbiter_mutex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/events.hpp"
#include "obs/lifecycle.hpp"

namespace dmx::core {

namespace {

// Erase the first element matching the predicate; returns true if erased.
template <typename Pred>
bool erase_first(QList& q, Pred pred) {
  auto it = std::find_if(q.begin(), q.end(), pred);
  if (it == q.end()) return false;
  q.erase(it);
  return true;
}

}  // namespace

void ArbiterStats::merge(const ArbiterStats& o) {
  requests_sent += o.requests_sent;
  requests_forwarded += o.requests_forwarded;
  requests_dropped_stale += o.requests_dropped_stale;
  requests_dropped_overforwarded += o.requests_dropped_overforwarded;
  duplicates_dropped += o.duplicates_dropped;
  resubmissions += o.resubmissions;
  monitor_resubmissions += o.monitor_resubmissions;
  dispatches += o.dispatches;
  monitor_dispatches += o.monitor_dispatches;
  new_arbiter_broadcasts += o.new_arbiter_broadcasts;
  monitor_buffered += o.monitor_buffered;
  monitor_patience_releases += o.monitor_patience_releases;
  monitor_visits += o.monitor_visits;
  stale_token_entries += o.stale_token_entries;
  stale_tokens_discarded += o.stale_tokens_discarded;
  warnings_sent += o.warnings_sent;
  enquiries_sent += o.enquiries_sent;
  resumes_sent += o.resumes_sent;
  invalidates_sent += o.invalidates_sent;
  tokens_regenerated += o.tokens_regenerated;
  probes_sent += o.probes_sent;
  arbiter_takeovers += o.arbiter_takeovers;
  broadcast_retries += o.broadcast_retries;
  arbiter_reasserts += o.arbiter_reasserts;
  arbiter_abdications += o.arbiter_abdications;
  quorum_blocked += o.quorum_blocked;
  quorum_reconciles += o.quorum_reconciles;
}

ArbiterMutex::ArbiterMutex(ArbiterParams params, std::size_t n_nodes)
    : params_(params), n_(n_nodes),
      q_sizes_(params.q_window > 0 ? params.q_window : 1),
      // The L array exists only in the sequenced variant; sizing it O(N) per
      // node unconditionally costs O(N^2) memory cluster-wide (80 GB at
      // N = 100k) and dominates large-N runs with page faults.
      last_granted_(params.sequenced ? n_nodes : 0, 0) {
  if (n_nodes == 0) throw std::invalid_argument("ArbiterMutex: zero nodes");
  if (!params_.initial_arbiter.valid() ||
      params_.initial_arbiter.index() >= n_nodes) {
    throw std::invalid_argument("ArbiterMutex: bad initial arbiter");
  }
  if (params_.starvation_free &&
      (!params_.monitor.valid() || params_.monitor.index() >= n_nodes)) {
    throw std::invalid_argument("ArbiterMutex: bad monitor node");
  }
}

std::string_view ArbiterMutex::algorithm_name() const {
  if (params_.starvation_free) return "arbiter-tp-sf";
  if (params_.sequenced) return "arbiter-tp-seq";
  return "arbiter-tp";
}

std::string ArbiterMutex::debug_state() const {
  auto phase_name = [](ArbiterPhase p) {
    switch (p) {
      case ArbiterPhase::kNone:
        return "none";
      case ArbiterPhase::kAwaitingToken:
        return "awaiting-token";
      case ArbiterPhase::kIdleWithToken:
        return "idle-with-token";
      case ArbiterPhase::kWindow:
        return "window";
    }
    return "?";
  };
  auto pending_name = [](PendingState s) {
    switch (s) {
      case PendingState::kNone:
        return "none";
      case PendingState::kSent:
        return "sent";
      case PendingState::kScheduled:
        return "scheduled";
      case PendingState::kInCs:
        return "in-cs";
    }
    return "?";
  };
  std::string out(algorithm_name());
  out += ": role=";
  out += is_arbiter_ ? "arbiter" : "requester";
  out += " phase=";
  out += phase_name(phase_);
  out += " token=";
  out += have_token_ ? (suspended_ ? "held-suspended" : "held") : "no";
  out += " epoch=" + std::to_string(epoch_);
  out += " believes arbiter=" + std::to_string(arbiter_.value()) +
         " monitor=" + std::to_string(monitor_.value());
  out += " pending=";
  out += pending_name(pending_state_);
  if (pending_) {
    out += "(req " + std::to_string(pending_->request_id) + ", misses " +
           std::to_string(miss_count_) + ", retries " +
           std::to_string(retry_count_) + ")";
  }
  if (have_token_) out += " Q=" + q_to_string(q_);
  if (is_arbiter_) out += " collected=" + q_to_string(collect_q_);
  if (forwarding_) out += " forwarding";
  if (invalidation_running_) {
    out += " invalidating(round " + std::to_string(enquiry_round_) +
           ", replies " + std::to_string(replies_.size()) + "/" +
           std::to_string(enquiry_recipients_.size()) + ")";
  }
  if (quorum_blocked_streak_ > 0) {
    out += " quorum-parked(blocked x" +
           std::to_string(quorum_blocked_streak_) + ")";
  }
  return out;
}

void ArbiterMutex::on_start() {
  arbiter_ = params_.initial_arbiter;
  monitor_ = params_.monitor;
  // The initial configuration is static knowledge: everyone knows the
  // initial arbiter starts with the token, so the quorum guard's holder
  // set is never empty before the first dispatch.
  view_epoch_ = epoch_;
  view_arbiter_ = params_.initial_arbiter;
  view_q_.clear();
  if (id() == params_.initial_arbiter) {
    // The initial arbiter also holds the initial token (paper §2.2: node 1
    // is the arbiter and transmits the PRIVILEGE at the end of its first
    // collection phase).
    is_arbiter_ = true;
    have_token_ = true;
    phase_ = ArbiterPhase::kIdleWithToken;
    ++times_arbiter_;
    emitf(kEvArbiterInit,
          [] { return std::string("initial arbiter with token"); });
  }
}

void ArbiterMutex::on_restart() {
  // A restarted node rejoins with a clean slate; it re-learns the arbiter
  // from the next NEW-ARBITER broadcast (its stale belief is harmless: stale
  // REQUESTs are forwarded or dropped-and-resubmitted).
  have_token_ = false;
  suspended_ = false;
  q_.clear();
  is_arbiter_ = false;
  phase_ = ArbiterPhase::kNone;
  collect_q_.clear();
  forwarding_ = false;
  pending_.reset();
  pending_state_ = PendingState::kNone;
  miss_count_ = 0;
  served_this_batch_ = false;
  monitor_buffer_.clear();
  invalidation_running_ = false;
  replied_waiting_round_ = 0;
  enquiry_recipients_.clear();
  replies_.clear();
  waiting_entries_.clear();
  // The dispatch view (view_epoch_/view_arbiter_/view_q_) survives like the
  // arbiter_ belief: stale holder knowledge only makes the quorum guard
  // more conservative, never less safe.
  quorum_blocked_streak_ = 0;
  last_regen_round_ = 0;
}

// ---------------------------------------------------------------------------
// Local request plane (driver-facing)
// ---------------------------------------------------------------------------

QEntry ArbiterMutex::make_own_entry() const {
  QEntry e;
  e.node = id();
  e.request_id = pending_->request_id;
  e.sequence = pending_->sequence;
  e.priority = pending_->priority;
  e.forward_count = 0;
  return e;
}

void ArbiterMutex::request(const mutex::CsRequest& req) {
  if (pending_.has_value()) {
    throw std::logic_error("ArbiterMutex::request: request already pending");
  }
  pending_ = req;
  pending_state_ = PendingState::kSent;
  miss_count_ = 0;
  retry_count_ = 0;
  if (is_arbiter_) {
    // The arbiter registers its own request locally: zero messages (this is
    // the 1/N term of the paper's Eq. (1)).
    arbiter_add_request(make_own_entry(), /*from_monitor=*/true);
    return;
  }
  ++stats_.requests_sent;
  send(arbiter_, net::make_payload<RequestMsg>(make_own_entry()));
  arm_request_retry();
}

void ArbiterMutex::arm_request_retry() {
  if (params_.request_retry_timeout <= sim::SimTime::zero()) return;
  cancel_timer(request_retry_timer_);
  request_retry_timer_ = set_timer(params_.request_retry_timeout, [this] {
    // §6's timeout rule: our request vanished and the system may be idle
    // (no NEW-ARBITER traffic to reveal the omission) — retransmit.
    if (pending_.has_value() && pending_state_ == PendingState::kSent &&
        !is_arbiter_) {
      ++retry_count_;
      if (retry_count_ % 3 == 0) {
        // Repeated unicast retries are going nowhere (our arbiter belief is
        // probably stale and the system quiet): broadcast the request as a
        // last resort — whoever is the arbiter will collect it, everyone
        // else drops it.
        ++stats_.broadcast_retries;
        emitf(kEvResubmitBroadcast,
              [] { return std::string("broadcast retry"); },
              pending_->request_id);
        broadcast(net::make_payload<RequestMsg>(make_own_entry()));
        // If no node currently holds arbitership (e.g. the arbiter crashed
        // and restarted with amnesia before anyone noticed), the broadcast
        // lands on non-arbiters that all drop it — escalate by probing the
        // believed arbiter: a not-on-duty reply (or silence) triggers the
        // takeover path.
        if (params_.recovery) on_successor_silent();
        arm_request_retry();
      } else {
        resubmit_pending(/*to_monitor=*/false);
      }
    }
  });
}

void ArbiterMutex::release() {
  if (pending_state_ != PendingState::kInCs) {
    throw std::logic_error("ArbiterMutex::release: not in critical section");
  }
  served_this_batch_ = true;
  if (params_.sequenced) {
    last_granted_[id().index()] =
        std::max(last_granted_[id().index()], pending_->sequence);
  }
  // Pop our just-served entry from the head of the Q-list.
  if (!q_.empty() && q_.front().node == id() &&
      q_.front().request_id == pending_->request_id) {
    q_.erase(q_.begin());
  }
  pending_.reset();
  pending_state_ = PendingState::kNone;
  miss_count_ = 0;
  retry_count_ = 0;
  cancel_timer(token_timeout_timer_);
  cancel_timer(request_retry_timer_);
  process_token();
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

const runtime::MsgDispatcher<ArbiterMutex>& ArbiterMutex::dispatch_table() {
  static const auto kTable = [] {
    runtime::MsgDispatcher<ArbiterMutex> t;
    t.on<&ArbiterMutex::on_request>()
        .on<&ArbiterMutex::on_privilege>()
        .on<&ArbiterMutex::on_new_arbiter>()
        .on<&ArbiterMutex::on_warning>()
        .on<&ArbiterMutex::on_enquiry>()
        .on<&ArbiterMutex::on_enquiry_reply>()
        .on<&ArbiterMutex::on_resume>()
        .on<&ArbiterMutex::on_invalidate>()
        .on<&ArbiterMutex::on_probe>()
        .on<&ArbiterMutex::on_probe_reply>();
    return t;
  }();
  return kTable;
}

void ArbiterMutex::handle(const net::Envelope& env) {
  if (!dispatch_table().dispatch(*this, env)) {
    throw std::logic_error("ArbiterMutex: unknown message type");
  }
}

void ArbiterMutex::on_probe(const net::Envelope& env, const ProbeMsg&) {
  send(env.src, net::make_payload<ProbeReplyMsg>(is_arbiter_));
}

void ArbiterMutex::on_probe_reply(const net::Envelope& env,
                                  const ProbeReplyMsg& msg) {
  cancel_timer(probe_timer_);
  if (msg.is_arbiter || is_arbiter_ || arbiter_ != env.src) {
    // The successor is alive and on duty (it may simply have no demand to
    // dispatch yet): the hand-off window is confirmed and the watchdog's
    // job is done.  Not re-arming also lets an idle system go quiet.
  } else {
    // The successor is alive but never learned it was elected (its
    // NEW-ARBITER was lost): arbitership is orphaned — take over.
    takeover_arbitership();
  }
}

// ---------------------------------------------------------------------------
// REQUEST plane
// ---------------------------------------------------------------------------

void ArbiterMutex::on_request(const net::Envelope&, const RequestMsg& msg) {
  if (is_arbiter_) {
    arbiter_add_request(msg.entry, msg.from_monitor);
    return;
  }
  if (params_.starvation_free && msg.to_monitor && id() == monitor_) {
    // §4.1: the monitor stores potential victims of indefinite forwarding
    // until the token visits.
    if (!q_contains(QList(monitor_buffer_.begin(), monitor_buffer_.end()),
                    msg.entry.request_id)) {
      monitor_buffer_.push_back(msg.entry);
      ++stats_.monitor_buffered;
      emitf(kEvMonitorBuffered,
            [&msg] { return "buffered " + msg.describe(); },
            msg.entry.request_id);
      if (params_.monitor_patience > sim::SimTime::zero() &&
          !timer_pending(monitor_patience_timer_)) {
        monitor_patience_timer_ = set_timer(params_.monitor_patience,
                                            [this] { monitor_release_buffer(); });
      }
    }
    return;
  }
  if (forwarding_ && arbiter_ != id()) {
    // Request forwarding phase (§2.1): relay to the current arbiter.
    QEntry fwd = msg.entry;
    ++fwd.forward_count;
    ++stats_.requests_forwarded;
    emit(obs::kEvReqForwarded, fwd.request_id, arbiter_.value());
    send(arbiter_, net::make_payload<RequestMsg>(fwd, /*to_monitor=*/false,
                                                 msg.from_monitor));
    return;
  }
  if (params_.starvation_free && id() == monitor_ && arbiter_ != id()) {
    // A stray REQUEST reached the monitor (e.g. routed here during a
    // via-monitor hand-off); the monitor always knows a recent arbiter.
    QEntry fwd = msg.entry;
    ++fwd.forward_count;
    ++stats_.requests_forwarded;
    emit(obs::kEvReqForwarded, fwd.request_id, arbiter_.value());
    send(arbiter_, net::make_payload<RequestMsg>(fwd, /*to_monitor=*/false,
                                                 msg.from_monitor));
    return;
  }
  // Outside both phases: the basic algorithm drops the request; the
  // requester detects the omission from NEW-ARBITER Q-lists (§6) and
  // retransmits.
  ++stats_.requests_dropped_stale;
}

void ArbiterMutex::arbiter_add_request(const QEntry& entry, bool from_monitor) {
  if (params_.starvation_free && !from_monitor &&
      entry.forward_count > static_cast<int>(params_.tau)) {
    ++stats_.requests_dropped_overforwarded;
    return;
  }
  if (q_contains(collect_q_, entry.request_id) ||
      q_contains(last_batch_q_, entry.request_id) ||
      (have_token_ && q_contains(q_, entry.request_id))) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (params_.sequenced &&
      entry.node.index() < last_granted_.size() &&
      entry.sequence <= last_granted_[entry.node.index()]) {
    ++stats_.duplicates_dropped;
    return;
  }
  collect_q_.push_back(entry);
  emit(obs::kEvReqQueued, entry.request_id, id().value());
  if (phase_ == ArbiterPhase::kIdleWithToken) {
    // First demand after an idle spell opens a fresh collection window
    // (Fig. 1's re-entered request-collection, event-driven).
    open_collection_window();
  }
}

// ---------------------------------------------------------------------------
// Arbiter plane
// ---------------------------------------------------------------------------

void ArbiterMutex::become_arbiter(net::NodeId prev_arbiter, QList last_batch) {
  if (is_arbiter_) return;
  is_arbiter_ = true;
  phase_ = ArbiterPhase::kAwaitingToken;
  prev_arbiter_ = prev_arbiter;
  last_batch_q_ = std::move(last_batch);
  ++times_arbiter_;
  emitf(kEvArbiterElected, [] { return std::string("became arbiter"); });
  if (params_.recovery) arm_token_timeout();
}

void ArbiterMutex::open_collection_window() {
  phase_ = ArbiterPhase::kWindow;
  cancel_timer(window_timer_);
  window_timer_ =
      set_timer(params_.t_req, [this] { on_collection_window_end(); });
}

void ArbiterMutex::on_collection_window_end() {
  if (collect_q_.empty()) {
    phase_ = ArbiterPhase::kIdleWithToken;
    return;
  }
  dispatch();
}

std::uint32_t ArbiterMutex::monitor_period() const {
  const double avg = q_sizes_.mean(/*fallback=*/1.0);
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(avg)));
}

void ArbiterMutex::dedup_batch(QList& q) const {
  std::unordered_set<std::uint64_t> seen;
  std::erase_if(q, [&](const QEntry& e) {
    if (params_.sequenced && e.node.index() < last_granted_.size() &&
        e.sequence <= last_granted_[e.node.index()]) {
      return true;
    }
    return !seen.insert(e.request_id).second;
  });
}

void ArbiterMutex::dispatch() {
  dedup_batch(collect_q_);
  if (collect_q_.empty()) {
    phase_ = ArbiterPhase::kIdleWithToken;
    return;
  }
  order_batch(collect_q_, params_.order);
  // Swap rather than move-assign: q_'s previous batch is dead here, and its
  // buffer becomes the next collection round's capacity, keeping the
  // steady-state enqueue path allocation-free.
  q_.swap(collect_q_);
  collect_q_.clear();
  ++stats_.dispatches;
  emitf(kEvDispatch, [this] { return "Q=" + q_to_string(q_); }, 0,
        static_cast<std::int64_t>(q_.size()));
  note_scheduled_batch(q_);

  if (params_.starvation_free && counter_ + 1 >= monitor_period()) {
    // §4.1: route the token via the monitor, without a NEW-ARBITER
    // broadcast; the monitor appends its buffer and broadcasts instead.
    ++stats_.monitor_dispatches;
    if (monitor_ == id()) {
      monitor_token_visit();
      return;
    }
    send_privilege(monitor_, /*via_monitor=*/true);
    have_token_ = false;
    is_arbiter_ = false;
    phase_ = ArbiterPhase::kNone;
    arbiter_ = monitor_;  // best forwarding target until the broadcast lands
    enter_forwarding_phase();
    arm_arbiter_watchdog();
    return;
  }
  finish_dispatch_normal();
}

void ArbiterMutex::finish_dispatch_normal() {
  const net::NodeId head = q_.front().node;
  const net::NodeId tail = q_.back().node;
  ++counter_;
  const bool keep_arbitership = (tail == id());
  // A batch holding only the arbiter's own request needs no messages at all
  // (the 1/N zero-message case of the paper's Eq. (1)).  Every other batch
  // is announced with a NEW-ARBITER broadcast, matching Eq. (4)'s N-1
  // broadcasts per batch — even when the tail is the arbiter itself, unless
  // the suppress_self_broadcast ablation is on.  Under recovery the
  // broadcast is always sent so the previous arbiter's watchdog sees
  // progress.
  const bool sole_self_batch = keep_arbitership && q_.size() == 1;
  const bool skip_broadcast =
      params_.suppress_self_broadcast ? keep_arbitership : sole_self_batch;
  if (!skip_broadcast || params_.recovery) {
    auto msg = net::make_payload_mut<NewArbiterMsg>();
    msg->new_arbiter = tail;
    msg->q = q_;
    msg->counter = counter_;
    msg->monitor = monitor_;
    msg->epoch = epoch_;
    broadcast(msg);
    ++stats_.new_arbiter_broadcasts;
  }
  q_sizes_.add(static_cast<double>(q_.size()));  // broadcast skips self
  arbiter_ = tail;
  note_dispatch_view(epoch_, tail, q_);
  served_this_batch_ = false;
  if (keep_arbitership) {
    phase_ = ArbiterPhase::kAwaitingToken;
    prev_arbiter_ = id();
    last_batch_q_ = q_;
    if (params_.recovery) arm_token_timeout();
  } else {
    is_arbiter_ = false;
    phase_ = ArbiterPhase::kNone;
    enter_forwarding_phase();
    arm_arbiter_watchdog();
  }
  if (head == id()) {
    process_token();  // grants our own pending request (we keep the token)
  } else {
    send_privilege(head, /*via_monitor=*/false);
    have_token_ = false;
  }
}

void ArbiterMutex::enter_forwarding_phase() {
  forwarding_ = true;
  cancel_timer(forwarding_timer_);
  forwarding_timer_ = set_timer(params_.t_fwd, [this] { forwarding_ = false; });
}

// ---------------------------------------------------------------------------
// Token plane
// ---------------------------------------------------------------------------

void ArbiterMutex::send_privilege(net::NodeId dst, bool via_monitor) {
  auto msg = net::make_payload_mut<PrivilegeMsg>();
  msg->q = q_;
  if (params_.sequenced) msg->last_granted = last_granted_;
  msg->epoch = epoch_;
  msg->via_monitor = via_monitor;
  send(dst, std::move(msg));
}

void ArbiterMutex::on_privilege(const net::Envelope&,
                                const PrivilegeMsg& msg) {
  if (msg.epoch < epoch_) {
    // A token from before an invalidation: it has been superseded.
    ++stats_.stale_tokens_discarded;
    emitf(kEvTokenStale,
          [&msg] { return "discarded stale " + msg.describe(); });
    return;
  }
  epoch_ = msg.epoch;
  have_token_ = true;
  q_ = msg.q;
  note_dispatch_view(msg.epoch, arbiter_, msg.q);
  if (params_.sequenced && !msg.last_granted.empty()) {
    for (std::size_t i = 0; i < last_granted_.size() &&
                            i < msg.last_granted.size(); ++i) {
      last_granted_[i] = std::max(last_granted_[i], msg.last_granted[i]);
    }
  }
  cancel_timer(token_timeout_timer_);
  if (replied_waiting_round_ != 0) {
    // We told an in-progress invalidation round "I am waiting"; entering the
    // CS now could race a token regeneration.  Hold the token suspended and
    // tell the arbiter it surfaced.
    suspended_ = true;
    auto reply = net::make_payload_mut<EnquiryReplyMsg>();
    reply->round = replied_waiting_round_;
    reply->status = TokenStatus::kHaveToken;
    send(arbiter_, std::move(reply));
    return;
  }
  if (msg.via_monitor && params_.starvation_free && id() == monitor_) {
    monitor_token_visit();
    return;
  }
  process_token();
}

void ArbiterMutex::process_token() {
  if (!have_token_ || suspended_) return;
  while (!q_.empty() && q_.front().node == id()) {
    if (pending_.has_value() && pending_state_ != PendingState::kInCs &&
        q_.front().request_id == pending_->request_id) {
      pending_state_ = PendingState::kInCs;
      cancel_timer(token_timeout_timer_);
      emitf(kEvCsEnter,
            [] { return std::string("entering critical section"); },
            pending_->request_id);
      grant(*pending_);
      return;  // release() resumes from here
    }
    // A stale entry for us (e.g. a resubmitted duplicate already served):
    // consume it so the token keeps moving.
    ++stats_.stale_token_entries;
    q_.erase(q_.begin());
  }
  if (q_.empty()) {
    arbiter_token_arrived();
    return;
  }
  emitf(kEvTokenPass,
        [this] {
          return "passing to node " + std::to_string(q_.front().node.value());
        },
        q_.front().request_id, q_.front().node.value());
  send_privilege(q_.front().node, /*via_monitor=*/false);
  have_token_ = false;
}

void ArbiterMutex::arbiter_token_arrived() {
  if (!is_arbiter_) {
    // The token arriving with an exhausted Q-list is itself proof of
    // arbitership (§3.1), covering a lost or suppressed NEW-ARBITER.
    become_arbiter(arbiter_, QList{});
    arbiter_ = id();
  }
  cancel_timer(token_timeout_timer_);
  clear_quorum_backoff();
  emitf(kEvTokenArrived,
        [this] {
          return "token arrived; collected=" + q_to_string(collect_q_);
        },
        0, static_cast<std::int64_t>(collect_q_.size()));
  if (collect_q_.empty()) {
    phase_ = ArbiterPhase::kIdleWithToken;
  } else {
    open_collection_window();
  }
}

void ArbiterMutex::monitor_token_visit() {
  ++stats_.monitor_visits;
  // Append buffered (potentially starving) requests to the Q-list, then
  // broadcast the NEW-ARBITER the dispatching arbiter suppressed.
  for (const QEntry& e : monitor_buffer_) q_.push_back(e);
  monitor_buffer_.clear();
  cancel_timer(monitor_patience_timer_);
  dedup_batch(q_);
  counter_ = 0;
  if (params_.rotate_monitor) {
    monitor_ = net::NodeId{
        static_cast<std::int32_t>((id().index() + 1) % n_)};
  }
  if (q_.empty()) {
    // Every entry was a duplicate; keep the token here as a fresh arbiter.
    become_arbiter(arbiter_, QList{});
    arbiter_ = id();
    phase_ = collect_q_.empty() ? ArbiterPhase::kIdleWithToken
                                : ArbiterPhase::kWindow;
    if (phase_ == ArbiterPhase::kWindow) open_collection_window();
    return;
  }
  const net::NodeId tail = q_.back().node;
  auto msg = net::make_payload_mut<NewArbiterMsg>();
  msg->new_arbiter = tail;
  msg->q = q_;
  msg->counter = 0;
  msg->monitor = monitor_;
  msg->epoch = epoch_;
  broadcast(msg);
  ++stats_.new_arbiter_broadcasts;
  q_sizes_.add(static_cast<double>(q_.size()));
  arbiter_ = tail;
  note_dispatch_view(epoch_, tail, q_);
  served_this_batch_ = false;
  note_scheduled_batch(q_);
  if (tail == id()) {
    if (is_arbiter_) {
      // We dispatched to ourselves as monitor and are also the next arbiter.
      phase_ = ArbiterPhase::kAwaitingToken;
      prev_arbiter_ = id();
      last_batch_q_ = q_;
      if (params_.recovery) arm_token_timeout();
    } else {
      become_arbiter(id(), q_);
    }
  } else if (is_arbiter_) {
    // Inline monitor visit at the dispatching arbiter: arbitership moves on.
    is_arbiter_ = false;
    phase_ = ArbiterPhase::kNone;
    enter_forwarding_phase();
    arm_arbiter_watchdog();
  }
  emitf(kEvMonitorTokenVisit,
        [this] { return "token visit; Q=" + q_to_string(q_); }, 0,
        static_cast<std::int64_t>(q_.size()));
  process_token();
}

void ArbiterMutex::monitor_release_buffer() {
  if (monitor_buffer_.empty()) return;
  // Implementation safeguard beyond the paper: the adaptive period only
  // advances on dispatches, so a system that goes idle while the monitor
  // buffers requests would starve them.  Release them to the arbiter as
  // undroppable REQUESTs.
  ++stats_.monitor_patience_releases;
  for (const QEntry& e : monitor_buffer_) {
    if (arbiter_ == id()) break;  // we became arbiter; re-buffering is moot
    send(arbiter_, net::make_payload<RequestMsg>(e, /*to_monitor=*/false,
                                                 /*from_monitor=*/true));
  }
  if (arbiter_ == id()) {
    for (const QEntry& e : monitor_buffer_) {
      arbiter_add_request(e, /*from_monitor=*/true);
    }
  }
  monitor_buffer_.clear();
}

// ---------------------------------------------------------------------------
// NEW-ARBITER plane (requester bookkeeping, §6 implicit acks)
// ---------------------------------------------------------------------------

void ArbiterMutex::note_scheduled_batch(const QList& q) {
  if (pending_.has_value() && pending_state_ == PendingState::kSent &&
      q_contains(q, pending_->request_id)) {
    pending_state_ = PendingState::kScheduled;
    miss_count_ = 0;
    retry_count_ = 0;
    cancel_timer(request_retry_timer_);
    if (params_.recovery) arm_token_timeout();
  }
}

void ArbiterMutex::on_new_arbiter(const net::Envelope& env,
                                  const NewArbiterMsg& msg) {
  if (msg.epoch < epoch_) return;  // superseded by an invalidation
  epoch_ = msg.epoch;
  note_dispatch_view(msg.epoch, msg.new_arbiter, msg.q);
  if (msg.new_arbiter != id() && is_arbiter_) {
    // Someone else claims arbitership while we believe we hold it (only
    // possible after recovery takeovers or lost broadcasts).
    if (have_token_) {
      // The token is the ground truth: re-assert our claim; the token-less
      // claimant abdicates on receiving it.
      ++stats_.arbiter_reasserts;
      emitf(kEvRecoveryReassert, [] {
        return std::string("re-asserting arbitership (we hold the token)");
      });
      auto assert_msg = net::make_payload_mut<NewArbiterMsg>();
      assert_msg->new_arbiter = id();
      assert_msg->counter = counter_;
      assert_msg->monitor = monitor_;
      assert_msg->epoch = epoch_;
      broadcast(assert_msg);
      ++stats_.new_arbiter_broadcasts;
      return;  // keep our own arbiter_ = self
    }
    // Token-less: step down and hand our collected batch to the claimant.
    ++stats_.arbiter_abdications;
    emitf(kEvRecoveryAbdicate,
          [&msg] {
            return "abdicating to node " +
                   std::to_string(msg.new_arbiter.value());
          },
          0, msg.new_arbiter.value());
    is_arbiter_ = false;
    phase_ = ArbiterPhase::kNone;
    cancel_timer(window_timer_);
    clear_quorum_backoff();
    for (const QEntry& e : collect_q_) {
      if (e.node != id()) {
        send(msg.new_arbiter,
             net::make_payload<RequestMsg>(e, /*to_monitor=*/false,
                                           /*from_monitor=*/true));
      }
    }
    collect_q_.clear();
    if (pending_.has_value() && pending_state_ != PendingState::kInCs) {
      pending_state_ = PendingState::kSent;  // re-register below via miss path
    }
  }
  arbiter_ = msg.new_arbiter;
  if (msg.monitor.valid()) monitor_ = msg.monitor;
  counter_ = msg.counter;
  if (!msg.q.empty()) q_sizes_.add(static_cast<double>(msg.q.size()));
  served_this_batch_ = false;
  replied_waiting_round_ = 0;  // progress resolves any invalidation round
  cancel_timer(watchdog_timer_);
  cancel_timer(probe_timer_);

  if (msg.new_arbiter == id() && !is_arbiter_) {
    become_arbiter(env.src, msg.q);
  }

  if (!pending_.has_value() || pending_state_ == PendingState::kInCs) return;

  if (q_contains(msg.q, pending_->request_id)) {
    // The Q-list doubles as the implicit acknowledgment (§6).
    if (pending_state_ == PendingState::kSent) {
      pending_state_ = PendingState::kScheduled;
    }
    miss_count_ = 0;
    retry_count_ = 0;
    cancel_timer(request_retry_timer_);
    if (params_.recovery) arm_token_timeout();
    return;
  }

  if (pending_state_ == PendingState::kScheduled) {
    // A new batch was announced without the token ever reaching us: our
    // PRIVILEGE (or our entry) was lost.  Retransmit immediately (§6).
    pending_state_ = PendingState::kSent;
    miss_count_ = 0;
    resubmit_pending(/*to_monitor=*/false);
    return;
  }

  // Still unscheduled: count the miss.
  ++miss_count_;
  if (params_.starvation_free && params_.tau > 0 && miss_count_ >= params_.tau &&
      miss_count_ % params_.tau == 0) {
    resubmit_pending(/*to_monitor=*/true);
  } else if (params_.resubmit_after_misses > 0 &&
             miss_count_ % params_.resubmit_after_misses == 0) {
    resubmit_pending(/*to_monitor=*/false);
  }
}

void ArbiterMutex::resubmit_pending(bool to_monitor) {
  if (!pending_.has_value()) return;
  if (is_arbiter_) {
    arbiter_add_request(make_own_entry(), /*from_monitor=*/true);
    return;
  }
  if (to_monitor) {
    ++stats_.monitor_resubmissions;
    emitf(kEvResubmitMonitor,
          [this] { return "to monitor " + std::to_string(monitor_.value()); },
          pending_->request_id, monitor_.value());
    if (monitor_ == id()) {
      // We are the monitor: buffer our own entry directly.
      if (!q_contains(QList(monitor_buffer_.begin(), monitor_buffer_.end()),
                      pending_->request_id)) {
        monitor_buffer_.push_back(make_own_entry());
        ++stats_.monitor_buffered;
        if (params_.monitor_patience > sim::SimTime::zero() &&
            !timer_pending(monitor_patience_timer_)) {
          monitor_patience_timer_ = set_timer(
              params_.monitor_patience, [this] { monitor_release_buffer(); });
        }
      }
      return;
    }
    send(monitor_,
         net::make_payload<RequestMsg>(make_own_entry(), /*to_monitor=*/true));
    return;
  }
  ++stats_.resubmissions;
  emitf(kEvResubmitArbiter,
        [this] { return "to arbiter " + std::to_string(arbiter_.value()); },
        pending_->request_id, arbiter_.value());
  send(arbiter_, net::make_payload<RequestMsg>(make_own_entry()));
  arm_request_retry();
}

// ---------------------------------------------------------------------------
// Recovery plane (§6)
// ---------------------------------------------------------------------------

void ArbiterMutex::arm_token_timeout() {
  if (!params_.recovery) return;
  cancel_timer(token_timeout_timer_);
  token_timeout_timer_ =
      set_timer(params_.token_timeout, [this] { on_token_timeout(); });
}

void ArbiterMutex::on_token_timeout() {
  if (have_token_) return;
  if (is_arbiter_) {
    if (!invalidation_running_) start_invalidation();
  } else if (arbiter_.valid() && arbiter_ != id()) {
    ++stats_.warnings_sent;
    const std::uint64_t rid = pending_ ? pending_->request_id : 0;
    auto w = net::make_payload_mut<WarningMsg>();
    w->request_id = rid;
    send(arbiter_, std::move(w));
  }
  arm_token_timeout();  // keep watching until the token shows up
}

void ArbiterMutex::on_warning(const net::Envelope&, const WarningMsg&) {
  if (!params_.recovery) return;
  if (!is_arbiter_ || have_token_ || invalidation_running_) return;
  start_invalidation();
}

void ArbiterMutex::start_invalidation() {
  invalidation_running_ = true;
  ++enquiry_round_;
  replies_.clear();
  waiting_entries_.clear();
  enquiry_recipients_.clear();
  std::unordered_set<net::NodeId> targets;
  if (params_.recovery_quorum) {
    // Quorum mode enquires the whole cluster: the majority count is over N,
    // and any node may carry the freshest view of who could hold the token.
    for (std::size_t i = 0; i < n_; ++i) {
      const net::NodeId nid{static_cast<std::int32_t>(i)};
      if (nid != id()) targets.insert(nid);
    }
  } else {
    for (const QEntry& e : last_batch_q_) {
      if (e.node != id()) targets.insert(e.node);
    }
    if (prev_arbiter_.valid() && prev_arbiter_ != id()) {
      targets.insert(prev_arbiter_);
    }
    if (targets.empty()) {
      // Takeover case: no known batch — ask everyone.
      for (std::size_t i = 0; i < n_; ++i) {
        const net::NodeId nid{static_cast<std::int32_t>(i)};
        if (nid != id()) targets.insert(nid);
      }
    }
  }
  emitf(kEvRecoveryInvalidation,
        [&] {
          return "two-phase invalidation round " +
                 std::to_string(enquiry_round_) + " (" +
                 std::to_string(targets.size()) + " enquiries)";
        },
        0, static_cast<std::int64_t>(enquiry_round_),
        static_cast<double>(targets.size()));
  for (net::NodeId t : targets) {
    enquiry_recipients_.push_back(t);
    auto e = net::make_payload_mut<EnquiryMsg>();
    e->round = enquiry_round_;
    send(t, std::move(e));
    ++stats_.enquiries_sent;
  }
  cancel_timer(enquiry_timer_);
  enquiry_timer_ =
      set_timer(params_.enquiry_timeout, [this] { conclude_invalidation(); });
}

void ArbiterMutex::on_enquiry(const net::Envelope& env, const EnquiryMsg& msg) {
  auto reply = net::make_payload_mut<EnquiryReplyMsg>();
  reply->round = msg.round;
  if (have_token_) {
    reply->status = TokenStatus::kHaveToken;
    suspended_ = true;  // phase 1: freeze the token until RESUME/INVALIDATE
  } else if (pending_.has_value() &&
             pending_state_ == PendingState::kScheduled) {
    reply->status = TokenStatus::kWaiting;
    reply->entry = make_own_entry();
    replied_waiting_round_ = msg.round;
  } else {
    reply->status = TokenStatus::kExecutedAndPassed;
  }
  reply->view_epoch = view_epoch_;
  reply->view_arbiter = view_arbiter_;
  reply->view_q = view_q_;
  send(env.src, std::move(reply));
  if (params_.recovery_quorum && have_token_ && is_arbiter_) {
    // Heal-time reconciliation: an ENQUIRY reaching a token-holding arbiter
    // means some other node believes arbitership is orphaned — typically a
    // candidate on the far side of a healed partition.  Its arrival is
    // proof the link works again; re-announce arbitership so that side
    // repoints without replaying stale grants (our epoch rides along,
    // superseding older beliefs).
    ++stats_.quorum_reconciles;
    emitf(kEvQuorumReconcile,
          [&env] {
            return "re-announcing arbitership to healed node " +
                   std::to_string(env.src.value());
          },
          0, env.src.value());
    auto assert_msg = net::make_payload_mut<NewArbiterMsg>();
    assert_msg->new_arbiter = id();
    assert_msg->counter = counter_;
    assert_msg->monitor = monitor_;
    assert_msg->epoch = epoch_;
    broadcast(assert_msg);
    ++stats_.new_arbiter_broadcasts;
  }
}

void ArbiterMutex::on_enquiry_reply(const net::Envelope& env,
                                    const EnquiryReplyMsg& msg) {
  if (!invalidation_running_ || msg.round != enquiry_round_) {
    if (msg.status == TokenStatus::kHaveToken) {
      if (params_.recovery_quorum && last_regen_round_ < msg.round) {
        // Quorum mode parked that round without regenerating: the surfaced
        // token is the genuine one, not a superseded duplicate — let it
        // proceed instead of ordering the only token destroyed.
        auto r = net::make_payload_mut<ResumeMsg>();
        r->round = msg.round;
        send(env.src, std::move(r));
        ++stats_.resumes_sent;
        arm_token_timeout();
        clear_quorum_backoff();
        return;
      }
      // A token surfaced after we concluded loss and regenerated: it is
      // stale under the new epoch — order it discarded.
      auto inv = net::make_payload_mut<InvalidateMsg>();
      inv->round = msg.round;
      inv->new_epoch = epoch_;
      send(env.src, std::move(inv));
      ++stats_.invalidates_sent;
    }
    return;
  }
  ReplyInfo& info = replies_[env.src];
  info.status = msg.status;
  info.view_epoch = msg.view_epoch;
  info.view_arbiter = msg.view_arbiter;
  info.view_q = msg.view_q;
  if (msg.status == TokenStatus::kHaveToken) {
    // Phase 2, token found: everything resumes.
    auto r = net::make_payload_mut<ResumeMsg>();
    r->round = msg.round;
    send(env.src, std::move(r));
    ++stats_.resumes_sent;
    invalidation_running_ = false;
    cancel_timer(enquiry_timer_);
    arm_token_timeout();  // keep waiting for the token to finish its route
    clear_quorum_backoff();
    return;
  }
  if (msg.status == TokenStatus::kWaiting) {
    if (!q_contains(QList(waiting_entries_.begin(), waiting_entries_.end()),
                    msg.entry.request_id)) {
      waiting_entries_.push_back(msg.entry);
    }
  }
  if (replies_.size() >= enquiry_recipients_.size()) {
    conclude_invalidation();
  }
}

void ArbiterMutex::conclude_invalidation() {
  if (!invalidation_running_) return;
  invalidation_running_ = false;
  cancel_timer(enquiry_timer_);
  if (params_.recovery_quorum && !quorum_regeneration_allowed()) {
    park_invalidation();
    return;
  }
  // Phase 2, token lost: invalidate the waiting nodes' expectations and
  // regenerate the token under a new epoch, with the waiters at the front
  // of the Q-list.  Non-responders are presumed failed and excluded.
  ++epoch_;
  last_regen_round_ = enquiry_round_;
  clear_quorum_backoff();
  for (const QEntry& e : waiting_entries_) {
    auto inv = net::make_payload_mut<InvalidateMsg>();
    inv->round = enquiry_round_;
    inv->new_epoch = epoch_;
    send(e.node, std::move(inv));
    ++stats_.invalidates_sent;
  }
  collect_q_.insert(collect_q_.begin(), waiting_entries_.begin(),
                    waiting_entries_.end());
  if (pending_.has_value() && pending_state_ == PendingState::kScheduled &&
      !q_contains(collect_q_, pending_->request_id)) {
    collect_q_.insert(collect_q_.begin(), make_own_entry());
  }
  waiting_entries_.clear();
  have_token_ = true;
  suspended_ = false;
  q_.clear();
  last_batch_q_.clear();
  // The regenerated token lives here until the next dispatch.
  view_epoch_ = epoch_;
  view_arbiter_ = id();
  view_q_.clear();
  ++stats_.tokens_regenerated;
  emitf(kEvTokenRegenerated,
        [this] {
          return "token regenerated, epoch " + std::to_string(epoch_);
        },
        0, static_cast<std::int64_t>(epoch_));
  if (collect_q_.empty()) {
    phase_ = ArbiterPhase::kIdleWithToken;
  } else {
    open_collection_window();
  }
}

// ---------------------------------------------------------------------------
// Partition-safe recovery plane (quorum mode, beyond the paper)
// ---------------------------------------------------------------------------

void ArbiterMutex::note_dispatch_view(std::uint64_t epoch, net::NodeId arb,
                                      const QList& q) {
  if (epoch < view_epoch_) return;
  // An empty Q at the same epoch is a role announcement (takeover,
  // reassert), not a dispatch: it moves no token, so it must not erase the
  // holder knowledge carried by the last real dispatch (or the initial
  // configuration).
  if (epoch == view_epoch_ && q.empty()) return;
  view_epoch_ = epoch;
  view_arbiter_ = arb;
  view_q_ = q;
}

bool ArbiterMutex::quorum_regeneration_allowed() const {
  // (a) Fresh ENQUIRY-REPLYs from a strict majority of N (the candidate
  // counts itself).  A minority partition can never pass this — that alone
  // rules out simultaneous regeneration on both sides of a single cut.
  if (2 * (replies_.size() + 1) <= n_) return false;
  // (b) A majority is not sufficient: the token may sit in the minority
  // (the classic hazard has the cut isolate the in-CS holder).  Every node
  // the freshest views name as a possible holder — the believed arbiter
  // and the Q-list members of each max-epoch dispatch view — must have
  // replied it does not hold the token.  Views at older epochs describe
  // superseded tokens and are ignored.
  std::uint64_t max_epoch = view_epoch_;
  for (const auto& [node, r] : replies_) {
    max_epoch = std::max(max_epoch, r.view_epoch);
  }
  bool unaccounted = false;
  auto check_holder = [&](net::NodeId h) {
    if (h.valid() && h != id() && replies_.find(h) == replies_.end()) {
      unaccounted = true;
    }
  };
  auto scan_view = [&](std::uint64_t e, net::NodeId arb, const QList& q) {
    if (e != max_epoch) return;
    check_holder(arb);
    for (const QEntry& qe : q) check_holder(qe.node);
  };
  scan_view(view_epoch_, view_arbiter_, view_q_);
  for (const auto& [node, r] : replies_) {
    scan_view(r.view_epoch, r.view_arbiter, r.view_q);
  }
  return !unaccounted;
}

void ArbiterMutex::park_invalidation() {
  // Graceful degradation: no second token without the quorum's blessing.
  // Release the round's "waiting" repliers (so a genuinely surfacing token
  // is not stuck suspended at them), keep the collected demand, and retry
  // the invalidation round under bounded exponential backoff — on heal the
  // retried ENQUIRYs reach the other side and resolve the round properly.
  ++stats_.quorum_blocked;
  ++quorum_blocked_streak_;
  emitf(kEvQuorumBlocked,
        [this] {
          return "regeneration blocked: " + std::to_string(replies_.size()) +
                 "/" + std::to_string(n_ - 1) +
                 " replies, quorum or holder coverage unmet (round " +
                 std::to_string(enquiry_round_) + ")";
        },
        0, static_cast<std::int64_t>(enquiry_round_),
        static_cast<double>(replies_.size()));
  for (const auto& [node, r] : replies_) {
    if (r.status == TokenStatus::kWaiting) {
      auto resume = net::make_payload_mut<ResumeMsg>();
      resume->round = enquiry_round_;
      send(node, std::move(resume));
      ++stats_.resumes_sent;
    }
  }
  waiting_entries_.clear();
  replies_.clear();
  enquiry_recipients_.clear();
  const std::uint32_t shift =
      std::min<std::uint32_t>(quorum_blocked_streak_ - 1, 20);
  sim::SimTime delay = params_.quorum_backoff * (std::int64_t{1} << shift);
  if (delay > params_.quorum_backoff_cap || delay <= sim::SimTime::zero()) {
    delay = params_.quorum_backoff_cap;
  }
  cancel_timer(quorum_retry_timer_);
  quorum_retry_timer_ = set_timer(delay, [this] {
    if (is_arbiter_ && !have_token_ && !invalidation_running_) {
      start_invalidation();
    }
  });
}

void ArbiterMutex::clear_quorum_backoff() {
  quorum_blocked_streak_ = 0;
  cancel_timer(quorum_retry_timer_);
}

void ArbiterMutex::on_resume(const net::Envelope&, const ResumeMsg& msg) {
  if (replied_waiting_round_ == msg.round) replied_waiting_round_ = 0;
  if (!suspended_) return;
  suspended_ = false;
  emitf(kEvRecoveryResumed, [] { return std::string("resumed"); });
  if (have_token_ && pending_state_ != PendingState::kInCs) process_token();
}

void ArbiterMutex::on_invalidate(const net::Envelope&,
                                 const InvalidateMsg& msg) {
  if (params_.recovery_quorum && msg.new_epoch <= epoch_ && have_token_) {
    // Quorum mode: only a genuinely newer epoch may destroy a held token.
    // A candidate that parked (no epoch bump) knows less than we do — its
    // stale INVALIDATE must not kill the cluster's only token.  Treat it
    // as a resume so a phase-1 freeze cannot wedge us.
    replied_waiting_round_ = 0;
    if (suspended_) {
      suspended_ = false;
      if (pending_state_ != PendingState::kInCs) process_token();
    }
    return;
  }
  if (msg.new_epoch > epoch_) epoch_ = msg.new_epoch;
  replied_waiting_round_ = 0;
  if (have_token_) {
    // Our (suspended or late-arriving) token has been superseded.
    have_token_ = false;
    suspended_ = false;
    q_.clear();
    ++stats_.stale_tokens_discarded;
    emitf(kEvTokenInvalidated,
          [] { return std::string("held token invalidated"); });
  }
  if (pending_.has_value() && pending_state_ == PendingState::kScheduled) {
    arm_token_timeout();  // the regenerated token will reach us
  }
}

void ArbiterMutex::arm_arbiter_watchdog() {
  if (!params_.recovery) return;
  cancel_timer(watchdog_timer_);
  watchdog_timer_ =
      set_timer(params_.arbiter_timeout, [this] { on_successor_silent(); });
}

void ArbiterMutex::on_successor_silent() {
  if (is_arbiter_ || arbiter_ == id()) return;
  // A probe is already in flight: let it reach its verdict (a reply, or the
  // probe_timeout takeover) instead of resetting the clock.  Under loss,
  // repeated broadcast-retry escalations would otherwise keep cancelling
  // and re-arming the probe, and a live-but-slow arbiter whose replies are
  // being dropped would be usurped by whichever probe happens to time out.
  if (timer_pending(probe_timer_)) return;
  ++stats_.probes_sent;
  emitf(kEvRecoveryProbe,
        [this] {
          return "probing silent arbiter " + std::to_string(arbiter_.value());
        },
        0, arbiter_.value());
  send(arbiter_, net::make_payload<ProbeMsg>());
  cancel_timer(probe_timer_);
  probe_timer_ =
      set_timer(params_.probe_timeout, [this] { takeover_arbitership(); });
}

void ArbiterMutex::takeover_arbitership() {
  ++stats_.arbiter_takeovers;
  emitf(kEvRecoveryTakeover, [] { return std::string("arbiter takeover"); });
  arbiter_ = id();
  become_arbiter(net::NodeId{}, QList{});
  auto msg = net::make_payload_mut<NewArbiterMsg>();
  msg->new_arbiter = id();
  msg->counter = counter_;
  msg->monitor = monitor_;
  msg->epoch = epoch_;
  broadcast(msg);
  ++stats_.new_arbiter_broadcasts;
  if (pending_.has_value() && pending_state_ != PendingState::kInCs &&
      !q_contains(collect_q_, pending_->request_id)) {
    pending_state_ = PendingState::kSent;
    arbiter_add_request(make_own_entry(), /*from_monitor=*/true);
  }
}

}  // namespace dmx::core
