#include "core/q_list.hpp"

namespace dmx::core {

std::string q_to_string(const QList& q) {
  std::string out = "{";
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(q[i].node.value());
  }
  out += "}";
  return out;
}

}  // namespace dmx::core
