#include "core/params.hpp"

#include <stdexcept>

namespace dmx::core {

ArbiterParams ArbiterParams::from_params(const mutex::ParamSet& p) {
  ArbiterParams a;
  a.t_req = p.get_time("t_req", a.t_req);
  a.t_fwd = p.get_time("t_fwd", a.t_fwd);
  a.initial_arbiter =
      net::NodeId{static_cast<std::int32_t>(p.get_num("initial_arbiter", 0))};
  const std::string order = p.get_str("order", "fcfs");
  if (order == "fcfs") {
    a.order = BatchOrder::kFcfs;
  } else if (order == "sequence") {
    a.order = BatchOrder::kSequence;
  } else if (order == "priority") {
    a.order = BatchOrder::kPriority;
  } else {
    throw std::invalid_argument("ArbiterParams: unknown order: " + order);
  }
  a.sequenced = p.get_bool("sequenced", a.sequenced);
  a.suppress_self_broadcast =
      p.get_bool("suppress_self_broadcast", a.suppress_self_broadcast);
  a.resubmit_after_misses = static_cast<std::uint32_t>(
      p.get_num("resubmit_after_misses", a.resubmit_after_misses));
  a.request_retry_timeout =
      p.get_time("request_retry_timeout", a.request_retry_timeout);
  a.starvation_free = p.get_bool("starvation_free", a.starvation_free);
  a.monitor = net::NodeId{
      static_cast<std::int32_t>(p.get_num("monitor", a.monitor.value()))};
  a.tau = static_cast<std::uint32_t>(p.get_num("tau", a.tau));
  a.q_window = static_cast<std::uint32_t>(p.get_num("q_window", a.q_window));
  a.rotate_monitor = p.get_bool("rotate_monitor", a.rotate_monitor);
  a.monitor_patience = p.get_time("monitor_patience", a.monitor_patience);
  a.recovery = p.get_bool("recovery", a.recovery);
  a.token_timeout = p.get_time("token_timeout", a.token_timeout);
  a.enquiry_timeout = p.get_time("enquiry_timeout", a.enquiry_timeout);
  a.arbiter_timeout = p.get_time("arbiter_timeout", a.arbiter_timeout);
  a.probe_timeout = p.get_time("probe_timeout", a.probe_timeout);
  a.recovery_quorum = p.get_bool("recovery_quorum", a.recovery_quorum);
  a.quorum_backoff = p.get_time("quorum_backoff", a.quorum_backoff);
  a.quorum_backoff_cap =
      p.get_time("quorum_backoff_cap", a.quorum_backoff_cap);
  return a;
}

}  // namespace dmx::core
