// Wire messages of the arbiter token-passing algorithm.
//
// The basic protocol (paper §2.1) uses three messages: REQUEST, PRIVILEGE
// (the token, carrying the Q-list) and NEW-ARBITER (carrying the Q-list and,
// for the starvation-free variant of §4.1, a dispatch counter and the
// monitor identity).  The failure-recovery protocol (§6) adds WARNING,
// ENQUIRY, ENQUIRY-REPLY, RESUME, INVALIDATE, PROBE and PROBE-REPLY.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/q_list.hpp"
#include "net/payload.hpp"

namespace dmx::core {

/// REQUEST(j[, n]): node j asks for its n-th critical section.
struct RequestMsg final : net::Msg<RequestMsg> {
  DMX_REGISTER_MESSAGE(RequestMsg, "REQUEST");

  QEntry entry;
  bool to_monitor = false;    ///< §4.1 resubmission: buffer at the monitor.
  bool from_monitor = false;  ///< Monitor releases are never dropped (§4.1).

  explicit RequestMsg(QEntry e, bool to_mon = false, bool from_mon = false)
      : entry(e), to_monitor(to_mon), from_monitor(from_mon) {}

  [[nodiscard]] std::string describe() const override {
    return "REQUEST(node=" + std::to_string(entry.node.value()) +
           ", seq=" + std::to_string(entry.sequence) +
           ", fwd=" + std::to_string(entry.forward_count) + ")";
  }
};

/// PRIVILEGE(Q[, L]): the token.  L (sequenced variant, §2.4) holds the
/// sequence number of the last granted request per node.
struct PrivilegeMsg final : net::Msg<PrivilegeMsg> {
  DMX_REGISTER_MESSAGE(PrivilegeMsg, "PRIVILEGE");

  QList q;
  std::vector<std::uint64_t> last_granted;  ///< Empty unless sequenced mode.
  std::uint64_t epoch = 0;  ///< Token generation; bumped on regeneration (§6).
  bool via_monitor = false;  ///< True when routed to the monitor node (§4.1).

  [[nodiscard]] std::string describe() const override {
    return "PRIVILEGE(Q=" + q_to_string(q) +
           ", epoch=" + std::to_string(epoch) + ")";
  }
  [[nodiscard]] std::size_t size_hint() const override {
    return 16 + q.size() * 16 + last_granted.size() * 8;
  }
};

/// NEW-ARBITER(j): node j is the new arbiter.  Carries the scheduled Q-list
/// (it doubles as the implicit acknowledgment of scheduled requests, §6) and
/// the starvation-free variant's dispatch counter + monitor identity.
struct NewArbiterMsg final : net::Msg<NewArbiterMsg> {
  DMX_REGISTER_MESSAGE(NewArbiterMsg, "NEW-ARBITER");

  net::NodeId new_arbiter;
  QList q;                   ///< The batch just scheduled (token's Q-list).
  std::uint32_t counter = 0; ///< Dispatches since the last monitor visit.
  net::NodeId monitor;       ///< Current monitor (rotating-monitor extension).
  std::uint64_t epoch = 0;

  [[nodiscard]] std::string describe() const override {
    return "NEW-ARBITER(" + std::to_string(new_arbiter.value()) +
           ", Q=" + q_to_string(q) + ", c=" + std::to_string(counter) + ")";
  }
  [[nodiscard]] std::size_t size_hint() const override {
    return 24 + q.size() * 16;
  }
};

// --- §6 failure recovery ----------------------------------------------------

/// A scheduled node timed out waiting for the token.
struct WarningMsg final : net::Msg<WarningMsg> {
  DMX_REGISTER_MESSAGE(WarningMsg, "WARNING");

  std::uint64_t request_id = 0;
};

/// Phase 1 of token invalidation: the arbiter asks Q-list members about the
/// token's whereabouts.
struct EnquiryMsg final : net::Msg<EnquiryMsg> {
  DMX_REGISTER_MESSAGE(EnquiryMsg, "ENQUIRY");

  std::uint64_t round = 0;  ///< Matches replies to the arbiter's round.
};

enum class TokenStatus : std::uint8_t {
  kExecutedAndPassed,  ///< "I had the token, and have executed my CS."
  kHaveToken,          ///< "I have the token."  (CS/forwarding suspended.)
  kWaiting,            ///< "I am waiting for the token."
};

struct EnquiryReplyMsg final : net::Msg<EnquiryReplyMsg> {
  DMX_REGISTER_MESSAGE(EnquiryReplyMsg, "ENQUIRY-REPLY");

  std::uint64_t round = 0;
  TokenStatus status = TokenStatus::kWaiting;
  QEntry entry;  ///< The replier's pending request when status is kWaiting,
                 ///< so the arbiter can rebuild the regenerated Q-list.

  // Partition-safe recovery (quorum mode): the replier's freshest dispatch
  // view, so the candidate arbiter can compute the set of possible token
  // holders before daring to regenerate.  Unused (zero/empty) in plain mode.
  std::uint64_t view_epoch = 0;  ///< Highest token epoch the replier has seen.
  net::NodeId view_arbiter{-1};  ///< Arbiter of that epoch's last dispatch.
  QList view_q;                  ///< Q-list of that dispatch (possible holders).

  [[nodiscard]] std::string describe() const override {
    static constexpr std::array<const char*, 3> kNames = {
        "executed-and-passed", "have-token", "waiting"};
    return std::string("ENQUIRY-REPLY(") +
           kNames[static_cast<std::size_t>(status)] + ")";
  }
  [[nodiscard]] std::size_t size_hint() const override {
    return 32 + view_q.size() * 16;
  }
};

/// Phase 2, token found: normal operation resumes.
struct ResumeMsg final : net::Msg<ResumeMsg> {
  DMX_REGISTER_MESSAGE(ResumeMsg, "RESUME");

  std::uint64_t round = 0;
};

/// Phase 2, token lost: outstanding PRIVILEGE expectations are void; the
/// arbiter regenerates the token under a higher epoch.
struct InvalidateMsg final : net::Msg<InvalidateMsg> {
  DMX_REGISTER_MESSAGE(InvalidateMsg, "INVALIDATE");

  std::uint64_t round = 0;
  std::uint64_t new_epoch = 0;
};

/// Previous arbiter probing a silent current arbiter.
struct ProbeMsg final : net::Msg<ProbeMsg> {
  DMX_REGISTER_MESSAGE(ProbeMsg, "PROBE");
};

struct ProbeReplyMsg final : net::Msg<ProbeReplyMsg> {
  DMX_REGISTER_MESSAGE(ProbeReplyMsg, "PROBE-REPLY");

  /// Whether the probed node actually considers itself the arbiter.  A
  /// successor that never received the NEW-ARBITER electing it is alive but
  /// not collecting; the prober must take over rather than probe forever.
  bool is_arbiter = false;
  explicit ProbeReplyMsg(bool arb) : is_arbiter(arb) {}
};

}  // namespace dmx::core
