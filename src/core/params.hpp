// Tunable parameters of the arbiter token-passing algorithm and its variants.
#pragma once

#include <cstdint>

#include "core/q_list.hpp"
#include "mutex/params.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace dmx::core {

struct ArbiterParams {
  // --- basic algorithm (§2.1) ----------------------------------------------
  /// Duration of the timed request-collection window the arbiter runs once it
  /// holds the token (paper: REQUEST-COLLECTION-TIME, swept as 0.1 / 0.2).
  sim::SimTime t_req = sim::SimTime::units(0.1);
  /// Duration of the request-forwarding phase after handing off the token.
  sim::SimTime t_fwd = sim::SimTime::units(0.1);
  /// The node initially designated arbiter (and initial token holder).
  net::NodeId initial_arbiter{0};
  /// Batch ordering policy (§2.4 sequence fairness, §5.2 priorities).
  BatchOrder order = BatchOrder::kFcfs;
  /// Sequenced variant (§2.4): token carries the last-granted array L and
  /// duplicate requests (seq <= L[j]) are discarded.
  bool sequenced = false;
  /// Ablation: skip the NEW-ARBITER broadcast whenever the tail of the batch
  /// is the dispatching arbiter itself (arbitership unchanged), not only for
  /// sole-self-request batches.  Under FCFS at saturation the arbiter's own
  /// re-request always sorts last, making the arbiter sticky and eliminating
  /// nearly all broadcasts (~1.9 msgs/CS instead of the paper's 3 - 2/N) at
  /// the cost of arbiter-role rotation.  Off by default (paper-faithful).
  bool suppress_self_broadcast = false;

  // --- request-loss resilience (§6, "Lost Request") -------------------------
  /// After this many consecutive NEW-ARBITER messages without seeing its
  /// request scheduled, a requester retransmits (to the arbiter, or to the
  /// monitor in the starvation-free variant).  0 disables retransmission.
  std::uint32_t resubmit_after_misses = 2;
  /// §6's complementary timeout rule: an unscheduled request also
  /// retransmits after this long even if no NEW-ARBITER arrives at all
  /// (covers a request dropped while the system went idle).  0 disables.
  sim::SimTime request_retry_timeout = sim::SimTime::units(10.0);

  // --- starvation-free variant (§4.1) ---------------------------------------
  bool starvation_free = false;
  /// Monitor node identity (known to all nodes).
  net::NodeId monitor{0};
  /// Drop requests forwarded more than tau times; requesters divert to the
  /// monitor after tau consecutive NEW-ARBITER misses.
  std::uint32_t tau = 3;
  /// Moving-window length for the average Q-list size estimate that drives
  /// the adaptive token-to-monitor period.
  std::uint32_t q_window = 10;
  /// Rotate the monitor role round-robin on every monitor visit (§5.1).
  bool rotate_monitor = false;
  /// Implementation safeguard: if the monitor sits on buffered requests this
  /// long without a token visit (system went idle), it releases them to the
  /// current arbiter as undroppable REQUESTs.  Zero disables.
  sim::SimTime monitor_patience = sim::SimTime::units(5.0);

  // --- failure recovery (§6, "Lost Token" / "Failed Arbiter") ----------------
  bool recovery = false;
  /// How long a scheduled node waits for the token before sending WARNING.
  sim::SimTime token_timeout = sim::SimTime::units(10.0);
  /// How long the arbiter collects ENQUIRY replies before presuming silence.
  sim::SimTime enquiry_timeout = sim::SimTime::units(1.0);
  /// How long the previous arbiter waits for the successor's NEW-ARBITER.
  sim::SimTime arbiter_timeout = sim::SimTime::units(10.0);
  /// How long the previous arbiter waits for a PROBE-REPLY.
  sim::SimTime probe_timeout = sim::SimTime::units(1.0);

  // --- partition-safe recovery (beyond the paper) ----------------------------
  /// Quorum-guarded token regeneration: an invalidation round may mint a new
  /// token only when (a) ENQUIRY-REPLYs arrived from a strict majority of N
  /// and (b) every node the freshest replies name as a possible token holder
  /// (believed arbiter and Q-list members of the max-epoch views) has replied
  /// that it does not hold the token.  Otherwise the candidate parks: no
  /// epoch bump, a structured obs event, and a bounded-backoff retry of the
  /// invalidation round.  Off by default (paper-faithful §6 behavior, which
  /// admits split brain under partition — DESIGN.md §13).
  bool recovery_quorum = false;
  /// Initial retry delay after a quorum-blocked invalidation round.
  sim::SimTime quorum_backoff = sim::SimTime::units(1.0);
  /// Backoff doubles per consecutive blocked round up to this cap.
  sim::SimTime quorum_backoff_cap = sim::SimTime::units(8.0);

  /// Build from a generic ParamSet (registry/bench path); unknown keys are
  /// ignored, missing keys keep the defaults above.
  static ArbiterParams from_params(const mutex::ParamSet& p);
};

}  // namespace dmx::core
