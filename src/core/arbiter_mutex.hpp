// The paper's arbiter token-passing distributed mutual exclusion algorithm.
//
// One node at a time is the *arbiter*: it collects REQUESTs, and once it
// holds the token it runs a timed request-collection window (T_req), then
// dispatches the token — PRIVILEGE(Q) — down the ordered batch Q while
// broadcasting NEW-ARBITER(tail(Q)) so everyone learns the next arbiter.
// After handing off, the old arbiter forwards late REQUESTs for T_fwd, then
// drops them.  The token visits each scheduled node in Q order; each node
// executes its critical section, pops its entry and passes the token on.
// The token reaching the tail (= the new arbiter) closes the cycle.
//
// Variants, all selected through ArbiterParams:
//  * sequenced        — REQUEST(j,n) + PRIVILEGE(Q,L) duplicate suppression
//                       and fewest-entries-first fairness (§2.4).
//  * starvation_free  — monitor node, forward-count threshold tau, and the
//                       adaptive token-to-monitor period (§4.1).
//  * order=priority   — incremental static-priority scheduling (§5.2).
//  * recovery         — lost-request retransmission, WARNING + two-phase
//                       token invalidation/regeneration, previous-arbiter
//                       watchdog with PROBE/takeover (§6).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/messages.hpp"
#include "core/params.hpp"
#include "core/q_list.hpp"
#include "mutex/api.hpp"
#include "runtime/dispatch.hpp"
#include "stats/moving_window.hpp"

namespace dmx::core {

/// Per-node protocol counters, summed across nodes by the harness.
struct ArbiterStats {
  // Request plane.
  std::uint64_t requests_sent = 0;        ///< First transmissions to arbiter.
  std::uint64_t requests_forwarded = 0;   ///< Forwarding-phase relays.
  std::uint64_t requests_dropped_stale = 0;      ///< Arrived outside phases.
  std::uint64_t requests_dropped_overforwarded = 0;  ///< fwd count > tau.
  std::uint64_t duplicates_dropped = 0;   ///< Dedup at arbiter / sequenced L.
  std::uint64_t resubmissions = 0;        ///< Retransmits to the arbiter.
  std::uint64_t monitor_resubmissions = 0;  ///< Diverted to the monitor.
  // Arbiter plane.
  std::uint64_t dispatches = 0;
  std::uint64_t monitor_dispatches = 0;   ///< Token routed via the monitor.
  std::uint64_t new_arbiter_broadcasts = 0;
  // Monitor plane.
  std::uint64_t monitor_buffered = 0;
  std::uint64_t monitor_patience_releases = 0;
  std::uint64_t monitor_visits = 0;
  // Token plane.
  std::uint64_t stale_token_entries = 0;  ///< Q heads popped without a match.
  std::uint64_t stale_tokens_discarded = 0;  ///< Old-epoch PRIVILEGE killed.
  // Recovery plane.
  std::uint64_t warnings_sent = 0;
  std::uint64_t enquiries_sent = 0;
  std::uint64_t resumes_sent = 0;
  std::uint64_t invalidates_sent = 0;
  std::uint64_t tokens_regenerated = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t arbiter_takeovers = 0;
  std::uint64_t broadcast_retries = 0;   ///< Last-resort REQUEST broadcasts.
  std::uint64_t arbiter_reasserts = 0;   ///< Token holder re-claimed the role.
  std::uint64_t arbiter_abdications = 0; ///< Token-less arbiter stepped down.
  // Partition-safe recovery plane (quorum mode).
  std::uint64_t quorum_blocked = 0;      ///< Regenerations refused (no quorum).
  std::uint64_t quorum_reconciles = 0;   ///< Heal-time NEW-ARBITER reasserts.

  void merge(const ArbiterStats& o);
};

class ArbiterMutex final : public mutex::MutexAlgorithm {
 public:
  ArbiterMutex(ArbiterParams params, std::size_t n_nodes);

  // --- mutex::MutexAlgorithm -------------------------------------------------
  void request(const mutex::CsRequest& req) override;
  void release() override;
  [[nodiscard]] std::string_view algorithm_name() const override;
  [[nodiscard]] std::string debug_state() const override;

  // --- introspection (tests, harness) ----------------------------------------
  [[nodiscard]] const ArbiterStats& protocol_stats() const { return stats_; }
  [[nodiscard]] bool is_arbiter() const { return is_arbiter_; }
  [[nodiscard]] bool has_token() const { return have_token_; }
  [[nodiscard]] std::optional<bool> holds_token() const override {
    return have_token_;
  }
  [[nodiscard]] std::optional<std::uint64_t> token_epoch() const override {
    return epoch_;
  }
  [[nodiscard]] net::NodeId known_arbiter() const { return arbiter_; }
  [[nodiscard]] net::NodeId known_monitor() const { return monitor_; }
  [[nodiscard]] const QList& token_q() const { return q_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t times_arbiter() const { return times_arbiter_; }
  [[nodiscard]] const ArbiterParams& params() const { return params_; }

 protected:
  void on_start() override;
  void handle(const net::Envelope& env) override;
  void on_restart() override;

 private:
  enum class ArbiterPhase { kNone, kAwaitingToken, kIdleWithToken, kWindow };
  enum class PendingState { kNone, kSent, kScheduled, kInCs };

  // Message handlers, dispatched by kind through dispatch_table().
  void on_request(const net::Envelope& env, const RequestMsg& msg);
  void on_privilege(const net::Envelope& env, const PrivilegeMsg& msg);
  void on_new_arbiter(const net::Envelope& env, const NewArbiterMsg& msg);
  void on_warning(const net::Envelope& env, const WarningMsg& msg);
  void on_enquiry(const net::Envelope& env, const EnquiryMsg& msg);
  void on_enquiry_reply(const net::Envelope& env, const EnquiryReplyMsg& msg);
  void on_resume(const net::Envelope& env, const ResumeMsg& msg);
  void on_invalidate(const net::Envelope& env, const InvalidateMsg& msg);
  void on_probe(const net::Envelope& env, const ProbeMsg& msg);
  void on_probe_reply(const net::Envelope& env, const ProbeReplyMsg& msg);

  static const runtime::MsgDispatcher<ArbiterMutex>& dispatch_table();

  // Arbiter plane.
  void become_arbiter(net::NodeId prev_arbiter, QList last_batch);
  void arbiter_add_request(const QEntry& entry, bool from_monitor);
  void open_collection_window();
  void on_collection_window_end();
  void dispatch();
  void finish_dispatch_normal();
  void enter_forwarding_phase();

  // Token plane.
  void arbiter_token_arrived();
  void process_token();
  void send_privilege(net::NodeId dst, bool via_monitor);
  void monitor_token_visit();

  // Requester plane.
  void note_scheduled_batch(const QList& q);
  void resubmit_pending(bool to_monitor);
  void arm_token_timeout();
  void arm_request_retry();
  void monitor_release_buffer();

  // Recovery plane.
  void on_token_timeout();
  void start_invalidation();
  void conclude_invalidation();
  void arm_arbiter_watchdog();
  void on_successor_silent();
  void takeover_arbitership();

  // Partition-safe recovery plane (quorum mode).
  void note_dispatch_view(std::uint64_t epoch, net::NodeId arb,
                          const QList& q);
  [[nodiscard]] bool quorum_regeneration_allowed() const;
  void park_invalidation();
  void clear_quorum_backoff();

  [[nodiscard]] QEntry make_own_entry() const;
  [[nodiscard]] std::uint32_t monitor_period() const;
  void dedup_batch(QList& q) const;

  ArbiterParams params_;
  std::size_t n_;
  ArbiterStats stats_;

  // Shared beliefs.
  net::NodeId arbiter_;
  net::NodeId monitor_;
  std::uint64_t epoch_ = 1;
  std::uint32_t counter_ = 0;           ///< NEW-ARBITER dispatch counter.
  stats::MovingWindow q_sizes_;         ///< Observed Q-list sizes (§4.1).

  // Requester state.
  std::optional<mutex::CsRequest> pending_;
  PendingState pending_state_ = PendingState::kNone;
  std::uint32_t miss_count_ = 0;
  std::uint32_t retry_count_ = 0;
  runtime::TimerId token_timeout_timer_;
  runtime::TimerId request_retry_timer_;

  // Token state.
  bool have_token_ = false;
  bool suspended_ = false;              ///< Held still during invalidation.
  QList q_;
  std::vector<std::uint64_t> last_granted_;  ///< Sequenced variant's L array.
  bool served_this_batch_ = false;

  // Arbiter state.
  bool is_arbiter_ = false;
  ArbiterPhase phase_ = ArbiterPhase::kNone;
  QList collect_q_;
  runtime::TimerId window_timer_;
  net::NodeId prev_arbiter_;
  QList last_batch_q_;                  ///< Q that elected me (ENQUIRY set).
  std::uint64_t times_arbiter_ = 0;

  // Forwarding phase.
  bool forwarding_ = false;
  runtime::TimerId forwarding_timer_;

  // Monitor state.
  std::vector<QEntry> monitor_buffer_;
  runtime::TimerId monitor_patience_timer_;

  // Recovery state.
  bool invalidation_running_ = false;
  std::uint64_t enquiry_round_ = 0;
  std::uint64_t replied_waiting_round_ = 0;  ///< Round I told "waiting".
  std::vector<net::NodeId> enquiry_recipients_;
  struct ReplyInfo {
    TokenStatus status = TokenStatus::kWaiting;
    std::uint64_t view_epoch = 0;
    net::NodeId view_arbiter{-1};
    QList view_q;
  };
  std::unordered_map<net::NodeId, ReplyInfo> replies_;
  std::vector<QEntry> waiting_entries_;
  runtime::TimerId enquiry_timer_;
  runtime::TimerId watchdog_timer_;
  runtime::TimerId probe_timer_;

  // Partition-safe recovery state (quorum mode).  The freshest dispatch
  // view this node has witnessed: the epoch, the arbiter it elected, and
  // the Q-list it scheduled — i.e. who could legitimately hold the token.
  std::uint64_t view_epoch_ = 0;
  net::NodeId view_arbiter_{-1};
  QList view_q_;
  std::uint64_t last_regen_round_ = 0;   ///< Round that last minted a token.
  std::uint32_t quorum_blocked_streak_ = 0;
  runtime::TimerId quorum_retry_timer_;
};

}  // namespace dmx::core
