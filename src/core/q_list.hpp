// The token's ordered list of scheduled requests (the paper's "Q-list").
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "net/node_id.hpp"

namespace dmx::core {

/// One scheduled request inside the token / NEW-ARBITER Q-list.
struct QEntry {
  net::NodeId node;
  std::uint64_t request_id = 0;
  std::uint64_t sequence = 0;  ///< The requester's CS count (1-based).
  int priority = 0;
  int forward_count = 0;       ///< How many times the REQUEST was forwarded.
};

using QList = std::vector<QEntry>;

/// How an arbiter orders the batch it collected (paper §2.4, §5.2).
enum class BatchOrder {
  kFcfs,      ///< Arrival order at the arbiter (the basic algorithm).
  kSequence,  ///< Fewest prior CS entries first (Suzuki–Kasami-style fairness).
  kPriority,  ///< Higher priority first, FCFS within a level (§5.2).
};

[[nodiscard]] inline bool q_contains(const QList& q, std::uint64_t request_id) {
  return std::any_of(q.begin(), q.end(), [&](const QEntry& e) {
    return e.request_id == request_id;
  });
}

[[nodiscard]] inline bool q_contains_node(const QList& q, net::NodeId node) {
  return std::any_of(q.begin(), q.end(),
                     [&](const QEntry& e) { return e.node == node; });
}

/// Apply the configured batch ordering.  All orderings are stable so FCFS is
/// the tie-break within equal keys.
inline void order_batch(QList& q, BatchOrder order) {
  switch (order) {
    case BatchOrder::kFcfs:
      break;
    case BatchOrder::kSequence:
      std::stable_sort(q.begin(), q.end(), [](const QEntry& a, const QEntry& b) {
        return a.sequence < b.sequence;
      });
      break;
    case BatchOrder::kPriority:
      std::stable_sort(q.begin(), q.end(), [](const QEntry& a, const QEntry& b) {
        return a.priority > b.priority;
      });
      break;
  }
}

[[nodiscard]] std::string q_to_string(const QList& q);

}  // namespace dmx::core
