// Experiment runner: one (algorithm, load, seed) point -> metrics.
//
// Reproduces the paper's methodology (§3.3): N nodes, per-node Poisson
// arrivals at rate lambda, constant message delay T_msg and constant CS
// execution time T_exec, event-driven simulation processing a fixed number
// of CS requests, measuring messages per CS invocation, delay per CS, and
// the fraction of forwarded request messages.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/arbiter_mutex.hpp"
#include "mutex/params.hpp"
#include "mutex/violation.hpp"
#include "net/reliable_transport.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"
#include "stats/counter_map.hpp"
#include "stats/histogram.hpp"
#include "stats/kind_counter.hpp"
#include "stats/welford.hpp"

namespace dmx::harness {

struct LockServiceReport;  // harness/lock_service.hpp

enum class DelayKind { kConstant, kUniform, kExponential };

/// What carries algorithm messages: the raw (lossy) network, or the
/// per-peer reliability layer (net/reliable_transport.hpp) that gives every
/// algorithm exactly-once in-order delivery under loss/dup/reorder faults.
enum class TransportKind { kRaw, kReliable };

struct ExperimentConfig {
  std::string algorithm = "arbiter-tp";
  std::size_t n_nodes = 10;
  /// Per-node Poisson arrival rate, requests per time unit.
  double lambda = 1.0;
  double t_msg = 0.1;
  double t_exec = 0.1;
  /// Algorithm parameters forwarded to the factory (t_req, t_fwd, tau, ...).
  mutex::ParamSet params;
  std::uint64_t total_requests = 200'000;
  std::uint64_t seed = 42;
  /// Hard wall on simulated time (liveness backstop; a healthy run drains
  /// its event queue long before this).
  double max_sim_units = 0;  ///< 0 = auto (generous bound from the load).
  /// Hard wall on executed events.  The sim-time wall cannot catch a
  /// schedule that spins without advancing the clock (e.g. a zero-delay
  /// retry loop); this one can.  0 = auto (generous bound from the load);
  /// hitting it fails the run with a per-node diagnosis.
  std::uint64_t max_events = 0;
  bool strict_safety = false;
  DelayKind delay_kind = DelayKind::kConstant;
  /// Jitter knob for kUniform ([t_msg, t_msg+jitter)) / kExponential (mean).
  double delay_jitter = 0.0;
  /// Per-message-type loss probabilities (recovery experiments).
  std::map<std::string, double> loss_by_type;
  /// Scripted chaos campaign: a fault-plan spec string (see
  /// fault/fault_plan.hpp), e.g. "t=5 crash 3; t=9 restart 3".  Empty = no
  /// campaign.  Parsed and validated before the run starts.
  std::string fault_plan;
  /// Liveness stall threshold in sim units for the ProgressMonitor:
  ///   > 0  monitor with this threshold;
  ///   == 0 auto — monitor only when a fault plan is present, with a
  ///        threshold derived from the load and recovery timeouts;
  ///   < 0  monitoring off.
  double stall_threshold = 0.0;
  /// Message transport.  kRaw preserves the pre-transport behavior exactly;
  /// kReliable interposes a ReliableEndpoint per node, with timing defaults
  /// scaled to t_msg and overridable via params (ack_delay, rto_initial,
  /// rto_max, rto_backoff, rto_jitter, max_retries).
  TransportKind transport = TransportKind::kRaw;
  /// Structured trace output: every protocol/lifecycle event of the run is
  /// written here (obs/sinks.hpp ships text, JSONL and Chrome-trace sinks).
  /// Null = tracing disabled, which costs one predictable branch per emit
  /// site and nothing else.
  std::shared_ptr<obs::Sink> trace_sink;
  /// Assemble request-lifecycle spans (obs/span.hpp) during the run and
  /// attach the per-phase latency decomposition to the result.  Independent
  /// of trace_sink: spans can be collected without writing a trace, and a
  /// trace can be written without the collector in the chain.
  bool collect_spans = false;
  /// Replication parallelism: worker threads used by run_replicated (and
  /// any driver fanning this config out over seeds).  1 = serial, 0 = one
  /// worker per hardware thread.  An execution knob, not a simulation
  /// parameter: results, tables and manifests are byte-identical for every
  /// value (harness/parallel.hpp), so the manifest does not record it.
  std::size_t jobs = 1;

  // --- Sharded lock-service scenario (harness/lock_service.hpp) ----------
  /// Number of lock resources.  1 = the classic single-CS experiment; > 1
  /// switches drivers (the dmx_sweep CLI, table_lockservice) into the
  /// sharded lock-service scenario: aggregate demand is Zipf-split over the
  /// resources and each shard runs the hot or cold algorithm below.
  std::size_t n_resources = 1;
  /// Zipf popularity skew across resources (0 = uniform); meaningful only
  /// when n_resources > 1.
  double zipf_s = 0.0;
  /// Per-shard algorithm choice: hot shards (demand at or above the mean)
  /// run shard_algo_hot, the rest run shard_algo_cold.
  std::string shard_algo_hot = "arbiter-tp";
  std::string shard_algo_cold = "path-reversal";

  /// Validate without running: returns one actionable message per problem
  /// (unknown algorithm name, non-positive rates, malformed fault plan,
  /// out-of-range loss probability, ...); empty means runnable.
  /// run_experiment calls this and throws the joined messages, so a driver
  /// surfaces every configuration error at once instead of dying on the
  /// first — use it directly to report problems before committing to a run.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Fluent construction with fail-fast validation: build() runs
/// ExperimentConfig::validate() and throws std::invalid_argument listing
/// every problem.  Plain aggregate initialization of ExperimentConfig keeps
/// working; the builder is for call sites assembling a config from user
/// input (CLI flags, sweep scripts) that want errors surfaced immediately.
class ExperimentConfigBuilder {
 public:
  ExperimentConfigBuilder& algorithm(std::string name) {
    cfg_.algorithm = std::move(name);
    return *this;
  }
  ExperimentConfigBuilder& nodes(std::size_t n) {
    cfg_.n_nodes = n;
    return *this;
  }
  ExperimentConfigBuilder& lambda(double rate) {
    cfg_.lambda = rate;
    return *this;
  }
  ExperimentConfigBuilder& t_msg(double units) {
    cfg_.t_msg = units;
    return *this;
  }
  ExperimentConfigBuilder& t_exec(double units) {
    cfg_.t_exec = units;
    return *this;
  }
  ExperimentConfigBuilder& total_requests(std::uint64_t n) {
    cfg_.total_requests = n;
    return *this;
  }
  ExperimentConfigBuilder& seed(std::uint64_t s) {
    cfg_.seed = s;
    return *this;
  }
  ExperimentConfigBuilder& param(const std::string& key, double value) {
    cfg_.params.set(key, value);
    return *this;
  }
  ExperimentConfigBuilder& param(const std::string& key,
                                 const std::string& value) {
    cfg_.params.set(key, value);
    return *this;
  }
  ExperimentConfigBuilder& delay(DelayKind kind, double jitter = 0.0) {
    cfg_.delay_kind = kind;
    cfg_.delay_jitter = jitter;
    return *this;
  }
  ExperimentConfigBuilder& loss(const std::string& msg_type, double p) {
    cfg_.loss_by_type[msg_type] = p;
    return *this;
  }
  ExperimentConfigBuilder& fault_plan(std::string plan) {
    cfg_.fault_plan = std::move(plan);
    return *this;
  }
  ExperimentConfigBuilder& stall_threshold(double units) {
    cfg_.stall_threshold = units;
    return *this;
  }
  ExperimentConfigBuilder& max_events(std::uint64_t n) {
    cfg_.max_events = n;
    return *this;
  }
  ExperimentConfigBuilder& strict_safety(bool on = true) {
    cfg_.strict_safety = on;
    return *this;
  }
  ExperimentConfigBuilder& transport(TransportKind kind) {
    cfg_.transport = kind;
    return *this;
  }
  ExperimentConfigBuilder& trace_sink(std::shared_ptr<obs::Sink> sink) {
    cfg_.trace_sink = std::move(sink);
    return *this;
  }
  ExperimentConfigBuilder& collect_spans(bool on = true) {
    cfg_.collect_spans = on;
    return *this;
  }
  ExperimentConfigBuilder& jobs(std::size_t n) {
    cfg_.jobs = n;
    return *this;
  }
  ExperimentConfigBuilder& resources(std::size_t n) {
    cfg_.n_resources = n;
    return *this;
  }
  ExperimentConfigBuilder& zipf_s(double s) {
    cfg_.zipf_s = s;
    return *this;
  }
  ExperimentConfigBuilder& shard_algorithms(std::string hot, std::string cold) {
    cfg_.shard_algo_hot = std::move(hot);
    cfg_.shard_algo_cold = std::move(cold);
    return *this;
  }

  /// Throws std::invalid_argument joining every validation error.
  [[nodiscard]] ExperimentConfig build() const;

 private:
  ExperimentConfig cfg_;
};

struct ExperimentResult {
  std::string algorithm;
  double lambda = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;

  // Message economy (the paper's headline metric).  The kind-indexed
  // counter is the source of truth (a copy of the network's dense per-kind
  // tally); messages_by_type() derives the name-keyed view through the one
  // registry translation point (net::counts_by_name) on demand.
  std::uint64_t messages_total = 0;
  std::uint64_t bytes_total = 0;
  stats::KindCounter messages_by_kind;
  [[nodiscard]] stats::CounterMap messages_by_type() const;
  double messages_per_cs = 0.0;
  double bytes_per_cs = 0.0;
  double forwarded_fraction_of_requests = 0.0;  ///< Fig. 5 numerator choice.
  double forwarded_fraction_of_all = 0.0;

  // Delay metrics (time units).
  stats::Welford response_time;  ///< issue -> grant
  stats::Welford service_time;   ///< issue -> CS exit (the paper's X-bar)
  stats::Welford sojourn_time;   ///< arrival -> CS exit
  double service_p50 = 0.0;      ///< Percentiles of the service time.
  double service_p95 = 0.0;
  double service_p99 = 0.0;

  // Correctness.
  std::uint64_t safety_violations = 0;
  int max_occupancy = 0;
  bool drained = false;  ///< Every live-node demand completed (demand that
                         ///< died with a crashed node is excluded).

  // Robustness (meaningful when a fault plan / progress monitor ran).
  std::uint64_t aborted_by_crash = 0;   ///< Demand killed by node crashes.
  std::uint64_t faults_injected = 0;    ///< Disruptive campaign actions.
  std::uint64_t faults_recovered = 0;
  stats::Welford time_to_recovery;      ///< Per-fault TTR samples (units).
  double unavailability = 0.0;          ///< Union of recovery windows.
  std::uint64_t unfired_targeted_drops = 0;  ///< lose-next that never matched.
  // Partition attribution (meaningful when the plan carried partition cuts):
  // per-group blocked time = cut until the first CS completion *by a member
  // of that group*, so the side of a cut that cannot progress is billed
  // separately from the cluster-wide TTR.
  double group_blocked_max = 0.0;       ///< Worst single group (minority).
  double group_blocked_total = 0.0;     ///< Summed over all groups and cuts.
  std::uint64_t partition_groups_blocked = 0;  ///< Groups censored at end.
  bool stalled = false;                 ///< ProgressMonitor declared a stall.
  double stall_time = 0.0;
  std::string stall_diagnosis;          ///< Per-node debug_state() dump.
  bool hit_event_limit = false;         ///< --max-events backstop fired.
  std::string event_limit_diagnosis;    ///< Per-node dump at the cutoff.
  /// Structured reports: safety violations first (capped at
  /// SafetyMonitor::kMaxReports), then a starvation report if the progress
  /// monitor stalled, then an event-limit report if the backstop fired.
  std::vector<mutex::Violation> violation_reports;
  std::vector<std::string> fault_log;   ///< Executed campaign actions.

  // Fairness (§5.1).
  std::vector<std::uint64_t> completions_per_node;
  std::vector<std::uint64_t> arbiter_terms_per_node;  ///< arbiter-tp only.

  // Protocol detail (arbiter-tp only; zero for baselines).
  core::ArbiterStats protocol;

  // Reliability plane (all-zero when transport == kRaw).
  net::TransportStats transport;

  // Request-lifecycle latency decomposition; set iff cfg.collect_spans.
  std::shared_ptr<const obs::SpanReport> spans;

  // Sharded lock-service scorecard (per-shard SLOs, Zipf demand split);
  // set only by lock-service drivers when cfg.n_resources > 1, null for
  // classic single-resource runs.
  std::shared_ptr<const LockServiceReport> lock_service;

  double sim_duration_units = 0.0;
  std::uint64_t sim_events = 0;
};

/// Run a single simulation to completion and collect metrics.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Run `replications` seeds and return per-seed results (CI material).
/// Seeds follow harness::seed_schedule (harness/parallel.hpp); cfg.jobs > 1
/// fans the replications out over a thread pool with byte-identical
/// results in the same replication order.
std::vector<ExperimentResult> run_replicated(ExperimentConfig cfg,
                                             std::size_t replications);

/// Register every algorithm shipped with the library ("arbiter-tp",
/// "arbiter-tp-sf", "suzuki-kasami", "raymond", "path-reversal",
/// "ricart-agrawala", "singhal", "maekawa", "lamport", "centralized",
/// "token-ring", "tree-quorum") in the global registry.
/// Idempotent.
void register_builtin_algorithms();

}  // namespace dmx::harness
