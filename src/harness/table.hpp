// Aligned text tables and CSV output for bench/example programs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dmx::harness {

/// Collects rows of strings and prints them with aligned columns, in the
/// style of the paper's figures rendered as tables (one row per x-value,
/// one column per series).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 3);
  static std::string integer(std::uint64_t v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmx::harness
