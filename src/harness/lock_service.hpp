// Sharded lock-service scenario: many Zipf-skewed resources behind the
// LockSpace API, fanned across cores.
//
// The paper evaluates one critical section under uniform load; a real lock
// service guards thousands of resources whose popularity follows a heavy
// tail.  This scenario models that end to end:
//
//   * Aggregate demand (100k .. millions of lock requests) is split over
//     `n_resources` by workload::zipf_demand_vector — THE canonical Zipf
//     split; every consumer (bench, CLI, tests) sees the same per-shard
//     demand vector for a given (resources, skew, total, seed).
//   * Each resource is one shard: a self-contained mutex::LockSpace (own
//     simulator, network, per-client protocol instances).  Hot shards
//     (demand >= the mean, i.e. demand * n_resources >= total) run the
//     hot algorithm over `hot_nodes` clients — the paper's arbiter
//     token-passing by default, built for contention; cold shards run a
//     cheaper topology algorithm (path-reversal by default) over fewer
//     clients.
//   * Each shard is driven by a closed-loop client population
//     (workload::ClosedLoopGenerator, generic SubmitFn binding): every
//     client thinks ~Exp(think_mean), calls LockSpace::acquire, and
//     resubmits when its on_released notification arrives.  Demands enter
//     the protocol through the space's batching layer (batch_size).
//   * Shards are independent simulations, so ParallelRunner::run_indexed
//     fans them across `jobs` workers with byte-identical per-shard
//     results in shard order for ANY job count: shard r always runs with
//     seed `seed + 1000*r + 17` (the replication seed schedule applied to
//     shards).
//   * SLO metrics come from the obs/span.hpp lifecycle decomposition: each
//     shard reports p50/p99 time-to-grant (the grant_wait phase), Jain
//     fairness over its clients' completions, and its message bill per CS.
//
// bench/table_lockservice.cpp renders the report and the dmx_sweep CLI
// (--resources/--zipf-s/--shard-algo) embeds it in the dmx.run.v1 manifest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mutex/params.hpp"
#include "obs/sink.hpp"

namespace dmx::harness {

struct LockServiceConfig {
  std::size_t n_resources = 16;
  double zipf_s = 0.9;  ///< Zipf skew; 0 = uniform popularity.
  /// Aggregate demand across all resources, Zipf-split per shard.
  std::uint64_t total_demands = 100'000;
  std::string hot_algorithm = "arbiter-tp";
  std::string cold_algorithm = "path-reversal";
  std::size_t hot_nodes = 16;  ///< Clients on a hot shard.
  std::size_t cold_nodes = 8;  ///< Clients on a cold shard.
  double t_msg = 0.1;
  double t_exec = 0.1;
  /// Mean client think time between a release and the next acquire
  /// (exponential); the closed-loop load knob (smaller = hotter).
  double think_mean = 1.0;
  /// LockSpace demand batching (0 = unbatched).
  std::size_t batch_size = 16;
  mutex::ParamSet params;  ///< Forwarded to every shard's algorithm.
  std::uint64_t seed = 42;
  /// Shard fan-out workers: 1 = serial, 0 = one per hardware thread.
  /// Execution knob only — per-shard results are byte-identical for every
  /// value.
  std::size_t jobs = 1;
  double span_hist_max = 1000.0;  ///< grant_wait histogram upper edge.
  /// Structured trace of ONE shard (the Perfetto drill-down view): the
  /// sink receives every protocol/lifecycle event of shard `trace_shard`.
  /// Exactly one shard writes to it, from whichever worker runs that
  /// shard, so a plain file sink is safe at any job count.  Null = off.
  std::shared_ptr<obs::Sink> trace_sink;
  std::size_t trace_shard = 0;  ///< Shard 0 = the Zipf-hottest resource.

  /// Every configuration problem at once (same contract as
  /// ExperimentConfig::validate / LockSpaceSpec::validate); empty = runnable.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One shard's scorecard.
struct ShardResult {
  std::size_t resource = 0;
  std::string algorithm;
  bool hot = false;
  std::size_t nodes = 0;
  std::uint64_t demand = 0;     ///< Zipf share of total_demands.
  std::uint64_t completed = 0;
  std::uint64_t messages = 0;
  double messages_per_cs = 0.0;
  // Time-to-grant (span grant_wait phase, time units).
  double grant_mean = 0.0;
  double grant_p50 = 0.0;
  double grant_p99 = 0.0;
  /// Jain fairness over per-client completions; 1.0 when demand < clients
  /// (perfect evenness is unreachable, the index is not meaningful).
  double fairness = 1.0;
  std::uint64_t safety_violations = 0;
  bool drained = false;  ///< completed == demand.
  double sim_duration_units = 0.0;
};

/// The whole service's scorecard: per-shard results in shard order plus
/// cross-shard aggregates.
struct LockServiceReport {
  std::vector<ShardResult> shards;
  std::uint64_t total_demands = 0;
  std::uint64_t total_completed = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t safety_violations = 0;
  std::size_t hot_shards = 0;
  double messages_per_cs = 0.0;
  double grant_p99_worst = 0.0;  ///< Max per-shard p99 time-to-grant.
  double fairness_min = 1.0;     ///< Worst per-shard Jain index.
  bool drained = false;          ///< Every shard drained its demand.
};

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 1.0 for empty input or
/// all-zero counts.
[[nodiscard]] double jain_fairness(const std::vector<std::uint64_t>& counts);

/// Run the scenario: Zipf split, per-shard closed-loop simulations fanned
/// over cfg.jobs workers, per-shard SLOs.  Throws std::invalid_argument
/// joining every validate() error.
[[nodiscard]] LockServiceReport run_lock_service(const LockServiceConfig& cfg);

}  // namespace dmx::harness
