#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace dmx::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong column count");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  ";
      os << std::string(widths[c] - cells[c].size(), ' ') << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace dmx::harness
