#include "harness/experiment.hpp"

#include <memory>
#include <optional>
#include <stdexcept>

#include "fault/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "harness/parallel.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/progress_monitor.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "net/msg_kind.hpp"
#include "obs/tracer.hpp"
#include "runtime/cluster.hpp"
#include "stats/recovery_metrics.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace dmx::harness {

namespace {

std::unique_ptr<net::DelayModel> make_delay(const ExperimentConfig& cfg) {
  const sim::SimTime base = sim::SimTime::units(cfg.t_msg);
  switch (cfg.delay_kind) {
    case DelayKind::kConstant:
      return std::make_unique<net::ConstantDelay>(base);
    case DelayKind::kUniform:
      return std::make_unique<net::UniformDelay>(
          base, sim::SimTime::units(cfg.delay_jitter));
    case DelayKind::kExponential:
      return std::make_unique<net::ExponentialDelay>(
          base, sim::SimTime::units(cfg.delay_jitter));
  }
  throw std::logic_error("unknown delay kind");
}

double auto_sim_bound(const ExperimentConfig& cfg) {
  // Generous liveness backstop: the time to generate all requests at rate
  // N*lambda plus the time to serve them all back-to-back, times ten.
  const double gen_time = static_cast<double>(cfg.total_requests) /
                          (cfg.lambda * static_cast<double>(cfg.n_nodes));
  const double serve_time = static_cast<double>(cfg.total_requests) *
                            (cfg.t_exec + 2.0 * cfg.t_msg + 0.5);
  return 10.0 * (gen_time + serve_time) + 1000.0;
}

void check_positive(std::vector<std::string>& errors, const char* what,
                    double v) {
  if (v <= 0.0) {
    errors.push_back(std::string(what) + " must be positive, got " +
                     std::to_string(v));
  }
}

std::uint64_t auto_event_bound(const ExperimentConfig& cfg) {
  // Generous: a healthy run costs O(N) messages per CS (the broadcast
  // baselines) plus timer/arrival chatter; give 100x headroom over that and
  // a large absolute floor for tiny runs.  Computed in double to saturate
  // instead of overflowing for astronomic request counts.
  const double bound = 100.0 * static_cast<double>(cfg.total_requests) *
                           (static_cast<double>(cfg.n_nodes) + 16.0) +
                       10'000'000.0;
  if (bound >= 9e18) return UINT64_MAX;
  return static_cast<std::uint64_t>(bound);
}

double auto_stall_threshold(const ExperimentConfig& cfg) {
  // Must comfortably exceed the longest legitimate service pause: a node's
  // worst-case queueing plus one complete recovery episode (token timeout,
  // an enquiry round per node, the previous-arbiter watchdog and probe),
  // with 3x margin.  Still orders of magnitude below auto_sim_bound, which
  // is the point: a stalled run fails fast with a diagnosis.
  const double recovery = cfg.params.get_num("token_timeout", 3.0) +
                          cfg.params.get_num("enquiry_timeout", 1.0) *
                              static_cast<double>(cfg.n_nodes) +
                          cfg.params.get_num("arbiter_timeout", 6.0) +
                          cfg.params.get_num("probe_timeout", 1.0);
  const double service = static_cast<double>(cfg.n_nodes) *
                         (cfg.t_exec + 2.0 * cfg.t_msg);
  return 3.0 * (recovery + service) + 10.0;
}

}  // namespace

std::vector<std::string> ExperimentConfig::validate() const {
  register_builtin_algorithms();
  std::vector<std::string> errors;
  if (!mutex::Registry::instance().contains(algorithm)) {
    std::string known;
    for (const std::string& n : mutex::Registry::instance().names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    errors.push_back("unknown algorithm \"" + algorithm + "\" (known: " +
                     known + ")");
  }
  if (n_nodes == 0) errors.emplace_back("n_nodes must be at least 1");
  check_positive(errors, "lambda", lambda);
  check_positive(errors, "t_msg", t_msg);
  check_positive(errors, "t_exec", t_exec);
  if (total_requests == 0) {
    errors.emplace_back("total_requests must be at least 1");
  }
  if (max_sim_units < 0.0) {
    errors.push_back("max_sim_units must be >= 0 (0 = auto), got " +
                     std::to_string(max_sim_units));
  }
  if (delay_jitter < 0.0) {
    errors.push_back("delay_jitter must be >= 0, got " +
                     std::to_string(delay_jitter));
  }
  if (delay_kind != DelayKind::kConstant && delay_jitter <= 0.0) {
    errors.emplace_back(
        "non-constant delay model needs a positive delay_jitter");
  }
  for (const auto& [type, p] : loss_by_type) {
    // Every shipped message type registers its kind during static
    // initialization, so an unknown name here is a configuration typo (e.g.
    // --loss PRIVILEDGE=0.1) that would otherwise silently never match.
    if (!net::MsgKindRegistry::instance().find(type).valid()) {
      errors.push_back("loss_by_type names unregistered message type \"" +
                       type + "\"");
    }
    if (p < 0.0 || p > 1.0) {
      errors.push_back("loss probability for \"" + type +
                       "\" must be in [0, 1], got " + std::to_string(p));
    }
  }
  if (!fault_plan.empty()) {
    try {
      (void)fault::FaultPlan::parse(fault_plan);
    } catch (const std::exception& e) {
      errors.push_back(std::string("fault plan: ") + e.what());
    }
  }
  if (n_resources == 0) errors.emplace_back("n_resources must be at least 1");
  if (zipf_s < 0.0) {
    errors.push_back("zipf_s must be >= 0, got " + std::to_string(zipf_s));
  }
  if (n_resources > 1) {
    if (!mutex::Registry::instance().contains(shard_algo_hot)) {
      errors.push_back("unknown hot shard algorithm \"" + shard_algo_hot +
                       "\"");
    }
    if (!mutex::Registry::instance().contains(shard_algo_cold)) {
      errors.push_back("unknown cold shard algorithm \"" + shard_algo_cold +
                       "\"");
    }
  }
  return errors;
}

ExperimentConfig ExperimentConfigBuilder::build() const {
  const std::vector<std::string> errors = cfg_.validate();
  if (!errors.empty()) {
    std::string joined = "invalid experiment config:";
    for (const std::string& e : errors) joined += "\n  - " + e;
    throw std::invalid_argument(joined);
  }
  return cfg_;
}

stats::CounterMap ExperimentResult::messages_by_type() const {
  return net::counts_by_name(messages_by_kind);
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  register_builtin_algorithms();
  if (const std::vector<std::string> errors = cfg.validate();
      !errors.empty()) {
    std::string joined = "run_experiment: invalid config:";
    for (const std::string& e : errors) joined += "\n  - " + e;
    throw std::invalid_argument(joined);
  }

  // Sink chain: [SpanCollector ->] cfg.trace_sink.  The collector forwards
  // events downstream, so one tracer serves both consumers.
  std::shared_ptr<obs::SpanCollector> span_collector;
  std::shared_ptr<obs::Sink> sink = cfg.trace_sink;
  if (cfg.collect_spans) {
    span_collector = std::make_shared<obs::SpanCollector>(
        sink, 50.0 * (cfg.t_msg + cfg.t_exec) *
                  static_cast<double>(cfg.n_nodes));
    sink = span_collector;
  }
  const obs::Tracer tracer =
      sink ? obs::Tracer(sink) : obs::Tracer();

  runtime::Cluster cluster(cfg.n_nodes, make_delay(cfg), cfg.seed ^ 0x5eedULL,
                           tracer);
  if (cfg.transport == TransportKind::kReliable) {
    auto tc = net::ReliableTransportConfig::scaled_to(
        sim::SimTime::units(cfg.t_msg));
    tc.ack_delay = sim::SimTime::units(
        cfg.params.get_num("ack_delay", tc.ack_delay.to_units()));
    tc.rto_initial = sim::SimTime::units(
        cfg.params.get_num("rto_initial", tc.rto_initial.to_units()));
    tc.rto_max = sim::SimTime::units(
        cfg.params.get_num("rto_max", tc.rto_max.to_units()));
    tc.backoff_factor = cfg.params.get_num("rto_backoff", tc.backoff_factor);
    tc.jitter_frac = cfg.params.get_num("rto_jitter", tc.jitter_frac);
    tc.max_retries = static_cast<int>(
        cfg.params.get_num("max_retries", tc.max_retries));
    cluster.use_reliable_transport(tc);
  }
  for (const auto& [type, p] : cfg.loss_by_type) {
    cluster.network().faults().set_loss_probability(type, p);
  }

  auto& registry = mutex::Registry::instance();
  std::vector<mutex::MutexAlgorithm*> algos(cfg.n_nodes);
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    const net::NodeId nid{static_cast<std::int32_t>(i)};
    mutex::FactoryContext ctx{nid, cfg.n_nodes, cfg.params};
    auto algo = registry.create(cfg.algorithm, ctx);
    algos[i] = algo.get();
    cluster.install(nid, std::move(algo));
  }

  mutex::SafetyMonitor monitor(cfg.strict_safety);
  mutex::RequestIdSource ids;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  drivers.reserve(cfg.n_nodes);
  // Service-time distribution for percentile reporting.  The range covers
  // saturation-level waits (~N * (t_msg + t_exec)) with margin; overflow is
  // clamped to the top edge by Histogram::quantile.
  stats::Histogram service_hist(
      0.0, 50.0 * (cfg.t_msg + cfg.t_exec) * static_cast<double>(cfg.n_nodes),
      4'096);
  stats::RecoveryMetrics recovery;
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *algos[i], sim::SimTime::units(cfg.t_exec),
        &monitor, &ids));
    drivers.back()->set_tracer(tracer);
    drivers.back()->set_completion_callback(
        [&service_hist, &cluster, &recovery](const mutex::CsRequest& req) {
          const double now = cluster.simulator().now().to_units();
          service_hist.add(now - req.issued_at.to_units());
          recovery.on_progress(now, req.node.value());
        });
  }

  // Scripted chaos campaign: parse + validate up front, execute on the
  // virtual clock, and measure each disruptive action's recovery window.
  std::optional<fault::CampaignRunner> campaign;
  if (!cfg.fault_plan.empty()) {
    campaign.emplace(cluster, fault::FaultPlan::parse(cfg.fault_plan));
    campaign->set_crash_hook([&drivers](net::NodeId id) {
      drivers[id.index()]->on_node_crashed();
    });
    campaign->set_observer(
        [&recovery](sim::SimTime t, const fault::FaultAction& a) {
          if (a.disruptive()) recovery.on_fault(t.to_units(), a.describe());
          if (a.kind == fault::FaultAction::Kind::kPartition) {
            recovery.on_partition(t.to_units(), a.groups);
          }
        });
  }

  // Liveness watchdog: on when requested or whenever a campaign runs.
  std::optional<mutex::ProgressMonitor> progress;
  if (cfg.stall_threshold > 0.0 ||
      (cfg.stall_threshold == 0.0 && campaign.has_value())) {
    mutex::ProgressMonitor::Config pm;
    pm.stall_threshold = sim::SimTime::units(cfg.stall_threshold > 0.0
                                                 ? cfg.stall_threshold
                                                 : auto_stall_threshold(cfg));
    progress.emplace(cluster.simulator(), pm);
    for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
      progress->watch(drivers[i].get(), algos[i]);
    }
  }

  std::vector<mutex::CsDriver*> driver_ptrs;
  std::vector<std::unique_ptr<workload::ArrivalProcess>> arrivals;
  for (auto& d : drivers) {
    driver_ptrs.push_back(d.get());
    arrivals.push_back(std::make_unique<workload::PoissonArrivals>(cfg.lambda));
  }
  workload::OpenLoopGenerator gen(cluster.simulator(), std::move(driver_ptrs),
                                  std::move(arrivals), cfg.total_requests,
                                  cfg.seed);

  cluster.start();
  gen.start();
  if (campaign) campaign->start();
  if (progress) progress->start();
  const double bound =
      cfg.max_sim_units > 0.0 ? cfg.max_sim_units : auto_sim_bound(cfg);
  cluster.simulator().set_event_limit(
      cfg.max_events > 0 ? cfg.max_events : auto_event_bound(cfg));
  cluster.simulator().run_until(sim::SimTime::units(bound));
  if (progress) progress->stop();
  recovery.end_run(cluster.simulator().now().to_units());

  ExperimentResult r;
  r.algorithm = cfg.algorithm;
  r.lambda = cfg.lambda;
  r.submitted = gen.submitted();
  // Live demand excludes requests that died with a crashed node: demand
  // aborted mid-flight plus demand that arrived while the node was down
  // (the generator counts it; the driver of a dead node swallows it).
  std::uint64_t live_demand = 0;
  for (const auto& d : drivers) {
    r.completed += d->completed();
    r.aborted_by_crash += d->aborted_by_crash();
    live_demand += d->submitted() - d->aborted_by_crash();
    r.response_time.merge(d->response_time());
    r.service_time.merge(d->service_time());
    r.sojourn_time.merge(d->sojourn_time());
    r.completions_per_node.push_back(d->completed());
  }
  r.drained = (r.completed == live_demand) && r.submitted > 0;

  if (campaign) {
    r.faults_injected = recovery.faults();
    r.faults_recovered = recovery.recovered();
    r.time_to_recovery = recovery.ttr();
    r.unavailability = recovery.unavailability();
    r.unfired_targeted_drops = campaign->unfired_targeted_drops();
    r.fault_log = campaign->log();
    for (const auto& g : recovery.partitions()) {
      r.partition_groups_blocked += g.recovered ? 0 : 1;
      r.group_blocked_total += g.blocked;
    }
    r.group_blocked_max = recovery.max_group_blocked();
  }
  if (progress) {
    r.stalled = progress->stalled();
    r.stall_time = progress->stall_time().to_units();
    r.stall_diagnosis = progress->diagnosis();
  }
  if (cluster.simulator().event_limit_hit()) {
    r.hit_event_limit = true;
    r.event_limit_diagnosis =
        "event limit of " + std::to_string(cluster.simulator().event_limit()) +
        " events hit at t=" + cluster.simulator().now().to_string() +
        " with " + std::to_string(cluster.simulator().pending_count()) +
        " events still pending (runaway schedule?)\n";
    for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
      r.event_limit_diagnosis += "  node " + std::to_string(i) + ": " +
                                 (algos[i]->crashed()
                                      ? std::string("CRASHED")
                                      : algos[i]->debug_state()) +
                                 "\n";
    }
  }

  // Unified structured reports: safety first, then liveness, then backstop.
  r.violation_reports = monitor.reports();
  if (progress && progress->violation()) {
    r.violation_reports.push_back(*progress->violation());
  }
  if (r.hit_event_limit) {
    mutex::Violation v;
    v.kind = mutex::Violation::Kind::kEventLimit;
    v.time = cluster.simulator().now();
    v.detail = "executed " +
               std::to_string(cluster.simulator().events_executed()) +
               " events without draining the schedule";
    r.violation_reports.push_back(std::move(v));
  }

  const auto& net_stats = cluster.network().stats();
  r.messages_total = net_stats.sent;
  r.messages_by_kind = net_stats.sent_by_kind;
  r.messages_per_cs =
      r.completed > 0 ? static_cast<double>(net_stats.sent) /
                            static_cast<double>(r.completed)
                      : 0.0;
  r.bytes_total = net_stats.bytes_sent;
  r.bytes_per_cs =
      r.completed > 0 ? static_cast<double>(net_stats.bytes_sent) /
                            static_cast<double>(r.completed)
                      : 0.0;
  r.service_p50 = service_hist.quantile(0.50);
  r.service_p95 = service_hist.quantile(0.95);
  r.service_p99 = service_hist.quantile(0.99);

  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    if (auto* arb = dynamic_cast<core::ArbiterMutex*>(algos[i])) {
      r.protocol.merge(arb->protocol_stats());
      r.arbiter_terms_per_node.push_back(arb->times_arbiter());
    }
  }
  const std::uint64_t request_msgs =
      r.messages_by_kind.get(core::RequestMsg::message_kind().index());
  if (request_msgs > 0) {
    r.forwarded_fraction_of_requests =
        static_cast<double>(r.protocol.requests_forwarded) /
        static_cast<double>(request_msgs);
  }
  if (net_stats.sent > 0) {
    r.forwarded_fraction_of_all =
        static_cast<double>(r.protocol.requests_forwarded) /
        static_cast<double>(net_stats.sent);
  }

  if (span_collector) {
    r.spans = std::make_shared<obs::SpanReport>(span_collector->report());
  }
  if (sink) sink->flush();

  r.transport = cluster.transport_stats();
  r.safety_violations = monitor.violations();
  r.max_occupancy = monitor.max_occupancy();
  r.sim_duration_units = cluster.simulator().now().to_units();
  r.sim_events = cluster.simulator().events_executed();
  return r;
}

std::vector<ExperimentResult> run_replicated(ExperimentConfig cfg,
                                             std::size_t replications) {
  const ExperimentConfig base = cfg;
  std::vector<ExperimentConfig> configs;
  configs.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    cfg.seed = seed_schedule(base, i);
    configs.push_back(cfg);
  }
  return ParallelRunner(base.jobs).run(configs);
}

}  // namespace dmx::harness
