// Registration of every algorithm shipped with the library.
#include "baselines/registration.hpp"
#include "core/arbiter_mutex.hpp"
#include "harness/experiment.hpp"
#include "mutex/registry.hpp"

namespace dmx::harness {

namespace {

std::unique_ptr<mutex::MutexAlgorithm> make_arbiter(
    const mutex::FactoryContext& ctx, bool starvation_free) {
  core::ArbiterParams p = core::ArbiterParams::from_params(ctx.params);
  p.starvation_free = starvation_free;
  if (starvation_free && !ctx.params.has("monitor")) {
    // Default the monitor to the highest node id (distinct from the default
    // initial arbiter at node 0).
    p.monitor = net::NodeId{static_cast<std::int32_t>(ctx.n_nodes - 1)};
  }
  return std::make_unique<core::ArbiterMutex>(p, ctx.n_nodes);
}

}  // namespace

void register_builtin_algorithms() {
  static const bool once = [] {
    auto& reg = mutex::Registry::instance();
    reg.add("arbiter-tp", [](const mutex::FactoryContext& ctx) {
      return make_arbiter(ctx, /*starvation_free=*/false);
    });
    reg.add("arbiter-tp-sf", [](const mutex::FactoryContext& ctx) {
      return make_arbiter(ctx, /*starvation_free=*/true);
    });
    baselines::register_all();
    return true;
  }();
  (void)once;
}

}  // namespace dmx::harness
