// Parallel experiment executor: thread-pooled seed×point replication.
//
// Every figure and table in the paper's evaluation aggregates independent
// simulation replications — a flattened list of (config point, seed) jobs
// with no shared state between them.  ParallelRunner runs that list on a
// fixed pool of J worker threads, one fully independent simulation
// (Cluster, Simulator, Rng, network, sinks) per job, and returns results in
// job-index order, so tables, manifests and traces are byte-identical to
// the serial path regardless of J or OS scheduling.
//
// What makes the fan-out sound is that the process-wide mutable state is
// sealed first: freeze_registries() makes the MsgKind / EventKind tables
// immutable (lock-free lookups, late intern throws) and the algorithm
// factory registry is internally locked.  Everything else a run touches is
// owned by the run.  tests/test_parallel_runner.cpp pins byte-identical
// output across --jobs 1/2/8 and the TSan CI job proves the absence of
// races rather than assuming it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "harness/experiment.hpp"

namespace dmx::harness {

/// Seal the process-wide kind registries (net::MsgKindRegistry and
/// obs::EventKindRegistry) after forcing builtin algorithm registration.
/// Idempotent and irreversible; called by ParallelRunner before the first
/// worker spawns.  Safe to call from single-threaded code too — the serial
/// path behaves identically against a frozen registry.
void freeze_registries();

/// THE seed schedule for replicated runs: replication `i` of a config with
/// base seed `s` always runs with seed `s + 1000*i + 17`, whether it is run
/// alone, in a serial batch, or on any parallel worker.  Every replication
/// loop (run_replicated, the dmx_sweep CLI, the bench harness) routes
/// through this one function; tests pin the schedule.
[[nodiscard]] std::uint64_t seed_schedule(const ExperimentConfig& cfg,
                                          std::size_t replication);

/// Fixed thread pool over an indexed job list.  No work stealing: workers
/// claim the next unclaimed job index from a shared atomic cursor and write
/// the result into that job's slot, so the output order is the input order
/// no matter which worker ran what.
class ParallelRunner {
 public:
  /// `jobs` = worker count; 0 = one per hardware thread.  A runner with one
  /// job executes inline on the calling thread (the exact serial path, no
  /// pool, no freeze requirement).
  explicit ParallelRunner(std::size_t jobs);

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Run every config as an independent simulation; results in job-index
  /// order.  If any job throws, the remaining queued jobs still run and the
  /// lowest-index exception is rethrown after the pool drains (a sweep
  /// never half-finishes silently).
  std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& configs) const;

  /// Generic indexed fan-out: run fn(0) .. fn(n-1), each call one job
  /// claimed from the shared atomic cursor.  Same semantics as run(): with
  /// one effective worker the loop executes inline on the calling thread
  /// (no pool, no freeze); otherwise registries are frozen first, every job
  /// runs even if others throw, and the lowest-index exception is rethrown
  /// after the pool drains.  `fn` must write results into its own indexed
  /// slot — the runner provides ordering, not output storage.  run() and
  /// the sharded lock-service fan-out (harness/lock_service.hpp) are both
  /// built on this.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

  /// 0 -> std::thread::hardware_concurrency() (min 1).
  [[nodiscard]] static std::size_t resolve(std::size_t jobs);

 private:
  std::size_t jobs_;
};

}  // namespace dmx::harness
