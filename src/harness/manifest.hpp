// Machine-readable run manifest ("dmx.run.v1").
//
// One JSON document per sweep: every run's full configuration and result,
// including the per-phase span histograms when the run collected them.  The
// schema is documented in DESIGN.md §9 and validated by
// scripts/obs_smoke.sh in CI; bump the schema string on any breaking field
// change.  Output is deterministic (std::to_chars number formatting, sorted
// maps), so manifests from the same seed diff clean.
#pragma once

#include <ostream>
#include <vector>

#include "harness/experiment.hpp"

namespace dmx::harness {

/// One executed run: the exact config it ran with and what came back.
struct RunRecord {
  ExperimentConfig config;
  ExperimentResult result;
};

/// Writes {"schema":"dmx.run.v1","runs":[...]} to `os`.
void write_run_manifest(std::ostream& os, const std::vector<RunRecord>& runs);

}  // namespace dmx::harness
