#include "harness/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "net/msg_kind.hpp"
#include "obs/event.hpp"

namespace dmx::harness {

void freeze_registries() {
  // Force every lazy registration that matters before sealing: the builtin
  // algorithm factories intern nothing themselves, but registering them
  // here keeps the "freeze happens after setup" contract in one place.
  // Message and event kinds were interned during static initialization
  // (DMX_REGISTER_MESSAGE / DMX_REGISTER_EVENT), so by the time any code
  // can call this, the tables are complete.
  register_builtin_algorithms();
  net::MsgKindRegistry::instance().freeze();
  obs::EventKindRegistry::instance().freeze();
}

std::uint64_t seed_schedule(const ExperimentConfig& cfg,
                            std::size_t replication) {
  return cfg.seed + 1000 * static_cast<std::uint64_t>(replication) + 17;
}

std::size_t ParallelRunner::resolve(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ParallelRunner::ParallelRunner(std::size_t jobs) : jobs_(resolve(jobs)) {}

void ParallelRunner::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  const std::size_t workers = std::min(jobs_, n);
  if (workers <= 1) {
    // Inline serial path: identical to the historical loop, and usable
    // before registries are frozen (e.g. unit tests interning ad hoc).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  freeze_registries();

  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<ExperimentResult> ParallelRunner::run(
    const std::vector<ExperimentConfig>& configs) const {
  std::vector<ExperimentResult> results(configs.size());
  run_indexed(configs.size(),
              [&](std::size_t i) { results[i] = run_experiment(configs[i]); });
  return results;
}

}  // namespace dmx::harness
