#include "harness/cli.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "harness/lock_service.hpp"
#include "harness/manifest.hpp"
#include "harness/parallel.hpp"
#include "harness/table.hpp"
#include "mutex/registry.hpp"
#include "obs/sinks.hpp"
#include "stats/confidence.hpp"

namespace dmx::harness {

namespace {

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing junk");
    return d;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric value for " + flag + ": '" +
                                value + "'");
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw std::invalid_argument("bad integer value for " + flag + ": '" +
                                value + "'");
  }
  return out;
}

std::vector<double> parse_double_list(const std::string& flag,
                                      const std::string& value) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string item = value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(parse_double(flag, item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("empty list for " + flag);
  }
  return out;
}

std::pair<std::string, std::string> split_kv(const std::string& flag,
                                             const std::string& value) {
  const std::size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= value.size()) {
    throw std::invalid_argument(flag + " expects key=value, got '" + value +
                                "'");
  }
  return {value.substr(0, eq), value.substr(eq + 1)};
}

/// The sharded lock-service branch of run_cli (--resources > 1): one
/// scenario run instead of a lambda×seed sweep.  --requests is the
/// aggregate demand, Zipf-split per shard; the table reports per-shard
/// SLOs (p99 time-to-grant, Jain fairness) for the hottest shards plus
/// service-wide aggregates, and --emit-json embeds the full per-shard
/// scorecard in the dmx.run.v1 manifest's lock_service block.
int run_lock_service_cli(const CliOptions& opts, std::ostream& os,
                         std::shared_ptr<obs::Sink> trace_sink) {
  // The scenario knobs ride the standard ExperimentConfig so the manifest
  // record is self-describing and validation is uniform.
  ExperimentConfig cfg;
  cfg.algorithm = opts.shard_algo_hot;
  cfg.n_nodes = opts.n_nodes;
  cfg.lambda = opts.lambdas.front();
  cfg.total_requests = opts.requests;
  cfg.t_msg = opts.t_msg;
  cfg.t_exec = opts.t_exec;
  cfg.params = opts.params;
  cfg.jobs = opts.jobs;
  cfg.n_resources = opts.n_resources;
  cfg.zipf_s = opts.zipf_s;
  cfg.shard_algo_hot = opts.shard_algo_hot;
  cfg.shard_algo_cold = opts.shard_algo_cold;
  {
    const std::vector<std::string> errors = cfg.validate();
    if (!errors.empty()) {
      os << "invalid configuration:\n";
      for (const std::string& e : errors) os << "  - " << e << "\n";
      return 2;
    }
  }

  LockServiceConfig ls;
  ls.n_resources = opts.n_resources;
  ls.zipf_s = opts.zipf_s;
  ls.total_demands = opts.requests;
  ls.hot_algorithm = opts.shard_algo_hot;
  ls.cold_algorithm = opts.shard_algo_cold;
  ls.hot_nodes = opts.n_nodes;
  ls.cold_nodes = std::max<std::size_t>(2, opts.n_nodes / 2);
  ls.t_msg = opts.t_msg;
  ls.t_exec = opts.t_exec;
  ls.think_mean = 1.0 / opts.lambdas.front();
  ls.batch_size = opts.batch;
  ls.params = opts.params;
  ls.seed = seed_schedule(cfg, 0);
  ls.jobs = opts.jobs;
  ls.trace_sink = std::move(trace_sink);
  ls.trace_shard = 0;  // the Zipf-hottest resource

  const LockServiceReport report = run_lock_service(ls);

  os << "lock service: " << opts.n_resources << " resources  zipf_s="
     << Table::num(opts.zipf_s, 2) << "  demand=" << opts.requests
     << "  hot=" << opts.shard_algo_hot << "/" << opts.n_nodes
     << "  cold=" << opts.shard_algo_cold << "/" << ls.cold_nodes
     << "  batch=" << opts.batch << "\n";

  // Shards sorted hottest-first for the report; CSV mode emits every shard,
  // the pretty table the head of the ranking.
  std::vector<const ShardResult*> ranked;
  ranked.reserve(report.shards.size());
  for (const ShardResult& s : report.shards) ranked.push_back(&s);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ShardResult* a, const ShardResult* b) {
                     return a->demand > b->demand;
                   });
  const std::size_t shown =
      opts.csv ? ranked.size() : std::min<std::size_t>(ranked.size(), 10);
  Table table({"shard", "algo", "class", "clients", "demand", "completed",
               "msgs/cs", "grant p50", "grant p99", "fairness", "safety",
               "drained"});
  for (std::size_t k = 0; k < shown; ++k) {
    const ShardResult& s = *ranked[k];
    table.add_row({Table::integer(s.resource), s.algorithm,
                   s.hot ? "hot" : "cold", Table::integer(s.nodes),
                   Table::integer(s.demand), Table::integer(s.completed),
                   Table::num(s.messages_per_cs, 3),
                   Table::num(s.grant_p50, 3), Table::num(s.grant_p99, 3),
                   Table::num(s.fairness, 4),
                   s.safety_violations == 0 ? "ok" : "VIOLATED",
                   s.drained ? "yes" : "NO"});
  }
  if (opts.csv) {
    table.print_csv(os);
  } else {
    table.print(os);
    if (shown < ranked.size()) {
      os << "(" << ranked.size() - shown
         << " colder shards elided; --csv or --emit-json for all)\n";
    }
  }
  os << "\naggregate: completed " << report.total_completed << "/"
     << report.total_demands << "  hot shards " << report.hot_shards << "/"
     << report.shards.size() << "  msgs/cs "
     << Table::num(report.messages_per_cs, 3) << "  worst p99 "
     << Table::num(report.grant_p99_worst, 3) << "  min fairness "
     << Table::num(report.fairness_min, 4) << "  safety "
     << (report.safety_violations == 0 ? "ok" : "VIOLATED") << "  drained "
     << (report.drained ? "yes" : "NO") << "\n";

  if (!opts.emit_json.empty()) {
    ExperimentResult result;
    result.algorithm = "lock-service";
    result.lambda = cfg.lambda;
    result.submitted = report.total_demands;
    result.completed = report.total_completed;
    result.messages_total = report.total_messages;
    result.messages_per_cs = report.messages_per_cs;
    result.safety_violations = report.safety_violations;
    result.drained = report.drained;
    for (const ShardResult& s : report.shards) {
      result.sim_duration_units =
          std::max(result.sim_duration_units, s.sim_duration_units);
    }
    result.lock_service = std::make_shared<const LockServiceReport>(report);
    std::ofstream manifest(opts.emit_json);
    if (!manifest) {
      os << "cannot open --emit-json file '" << opts.emit_json << "'\n";
      return 2;
    }
    write_run_manifest(manifest, {RunRecord{cfg, result}});
  }
  return report.drained && report.safety_violations == 0 ? 0 : 1;
}

}  // namespace

std::string cli_usage() {
  return R"(dmx_sweep — sweep the distributed mutual exclusion simulator

usage: dmx_sweep [flags]
  --algo NAME            algorithm (see --list)        [arbiter-tp]
  --n N                  number of nodes               [10]
  --lambda X[,Y,...]     per-node arrival rate sweep   [0.5]
  --requests K           CS requests per run           [100000]
  --seeds R              replications per point        [3]
  --t-msg X              message delay, time units     [0.1]
  --t-exec X             CS execution time             [0.1]
  --param key=value      algorithm parameter (repeatable), e.g.
                         --param t_req=0.2 --param recovery=1
  --delay KIND           constant | uniform | exponential [constant]
  --jitter X             jitter width / mean for non-constant delays
  --loss TYPE=P          drop probability per message type (repeatable)
  --fault "SPEC"         scripted chaos campaign, e.g.
                         --fault "t=5 crash 3; t=9 restart 3"
  --transport KIND       raw | reliable                [raw]
                         reliable adds per-peer acks, backoff retransmission
                         and exactly-once in-order delivery under loss
  --stall X              liveness stall threshold in sim units
                         (< 0 off; default: auto when --fault is given)
  --max-events K         hard backstop on executed events per run
                         (default 0 = auto from the load); a run that hits
                         it fails with a per-node diagnosis
  --jobs J               run the seed×point job list on J worker threads
                         (default 1 = serial, 0 = one per hardware thread);
                         table, manifest and trace output is byte-identical
                         for every J
  --resources K          lock resources                [1]
                         K > 1 switches into the sharded lock-service
                         scenario: --requests becomes aggregate demand,
                         Zipf-split over the resources; --n sizes hot
                         shards; shards fan out over --jobs workers
  --zipf-s S             Zipf popularity skew          [0.9]
  --shard-algo SPEC      per-shard algorithms, e.g.
                         hot=arbiter-tp,cold=path-reversal (key alone ok)
  --batch B              LockSpace demand batching     [16] (0 = unbatched)
  --trace-out FILE       write a structured event trace of the sweep's
                         first run (first lambda, first seed)
  --trace-format FMT     jsonl | chrome | text         [jsonl]
                         chrome loads in Perfetto / chrome://tracing with
                         per-request latency spans
  --emit-json FILE       write a dmx.run.v1 JSON manifest of every run
                         (config + metrics + span phase histograms)
  --csv                  CSV output
  --list                 list registered algorithms
  --help                 this text
)";
}

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions o;
  auto need_value = [&](std::size_t i, const std::string& flag) {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument("missing value for " + flag);
    }
    return args[i + 1];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      o.help = true;
    } else if (a == "--list") {
      o.list = true;
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--algo") {
      o.algorithm = need_value(i++, a);
    } else if (a == "--n") {
      o.n_nodes = static_cast<std::size_t>(parse_u64(a, need_value(i++, a)));
      if (o.n_nodes == 0) throw std::invalid_argument("--n must be > 0");
    } else if (a == "--lambda") {
      o.lambdas = parse_double_list(a, need_value(i++, a));
      for (double l : o.lambdas) {
        if (l <= 0) throw std::invalid_argument("--lambda entries must be > 0");
      }
    } else if (a == "--requests") {
      o.requests = parse_u64(a, need_value(i++, a));
    } else if (a == "--seeds") {
      o.seeds = static_cast<std::size_t>(parse_u64(a, need_value(i++, a)));
      if (o.seeds == 0) throw std::invalid_argument("--seeds must be > 0");
    } else if (a == "--t-msg") {
      o.t_msg = parse_double(a, need_value(i++, a));
    } else if (a == "--t-exec") {
      o.t_exec = parse_double(a, need_value(i++, a));
    } else if (a == "--param") {
      const auto [k, v] = split_kv(a, need_value(i++, a));
      // Numeric if it parses as a number, string otherwise.
      try {
        o.params.set(k, parse_double(a, v));
      } catch (const std::invalid_argument&) {
        o.params.set(k, v);
      }
    } else if (a == "--delay") {
      const std::string v = need_value(i++, a);
      if (v == "constant") {
        o.delay_kind = DelayKind::kConstant;
      } else if (v == "uniform") {
        o.delay_kind = DelayKind::kUniform;
      } else if (v == "exponential") {
        o.delay_kind = DelayKind::kExponential;
      } else {
        throw std::invalid_argument("unknown --delay kind: " + v);
      }
    } else if (a == "--jitter") {
      o.jitter = parse_double(a, need_value(i++, a));
    } else if (a == "--loss") {
      const auto [k, v] = split_kv(a, need_value(i++, a));
      o.loss_by_type[k] = parse_double(a, v);
    } else if (a == "--fault") {
      o.fault_plan = need_value(i++, a);
    } else if (a == "--transport") {
      const std::string v = need_value(i++, a);
      if (v == "raw") {
        o.transport = TransportKind::kRaw;
      } else if (v == "reliable") {
        o.transport = TransportKind::kReliable;
      } else {
        throw std::invalid_argument("unknown --transport kind: " + v);
      }
    } else if (a == "--stall") {
      o.stall_threshold = parse_double(a, need_value(i++, a));
    } else if (a == "--max-events") {
      o.max_events = parse_u64(a, need_value(i++, a));
    } else if (a == "--jobs") {
      o.jobs = static_cast<std::size_t>(parse_u64(a, need_value(i++, a)));
    } else if (a == "--resources") {
      o.n_resources =
          static_cast<std::size_t>(parse_u64(a, need_value(i++, a)));
      if (o.n_resources == 0) {
        throw std::invalid_argument("--resources must be > 0");
      }
    } else if (a == "--zipf-s") {
      o.zipf_s = parse_double(a, need_value(i++, a));
      if (o.zipf_s < 0.0) {
        throw std::invalid_argument("--zipf-s must be >= 0");
      }
    } else if (a == "--shard-algo") {
      // hot=NAME,cold=NAME — either key alone is fine, unknown keys are not.
      const std::string spec = need_value(i++, a);
      std::size_t start = 0;
      while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string item = spec.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        if (!item.empty()) {
          const auto [k, v] = split_kv(a, item);
          if (k == "hot") {
            o.shard_algo_hot = v;
          } else if (k == "cold") {
            o.shard_algo_cold = v;
          } else {
            throw std::invalid_argument(
                "--shard-algo keys are hot/cold, got '" + k + "'");
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (a == "--batch") {
      o.batch = static_cast<std::size_t>(parse_u64(a, need_value(i++, a)));
    } else if (a == "--trace-out") {
      o.trace_out = need_value(i++, a);
    } else if (a == "--trace-format") {
      const std::string v = need_value(i++, a);
      if (v != "jsonl" && v != "chrome" && v != "text") {
        throw std::invalid_argument("unknown --trace-format: " + v +
                                    " (expected jsonl, chrome, or text)");
      }
      o.trace_format = v;
    } else if (a == "--emit-json") {
      o.emit_json = need_value(i++, a);
    } else {
      throw std::invalid_argument("unknown flag: " + a + "\n" + cli_usage());
    }
  }
  return o;
}

int run_cli(const CliOptions& opts, std::ostream& os) {
  register_builtin_algorithms();
  if (opts.help) {
    os << cli_usage();
    return 0;
  }
  if (opts.list) {
    for (const auto& name : mutex::Registry::instance().names()) {
      os << name << "\n";
    }
    return 0;
  }
  // File streams must outlive the sinks writing to them: the Chrome-trace
  // sink closes its JSON envelope in its destructor, so trace_file is
  // declared first and destroyed last.
  std::ofstream trace_file;
  std::shared_ptr<obs::Sink> trace_sink;
  if (!opts.trace_out.empty()) {
    trace_file.open(opts.trace_out);
    if (!trace_file) {
      os << "cannot open --trace-out file '" << opts.trace_out << "'\n";
      return 2;
    }
    obs::TraceFormat fmt = obs::TraceFormat::kJsonl;
    if (opts.trace_format == "chrome") fmt = obs::TraceFormat::kChrome;
    if (opts.trace_format == "text") fmt = obs::TraceFormat::kText;
    trace_sink = obs::make_format_sink(fmt, trace_file);
  }

  if (opts.n_resources > 1) {
    // Sharded lock-service scenario: one Zipf-split run, not a lambda
    // sweep.  The trace sink (if any) captures the hottest shard.
    return run_lock_service_cli(opts, os, std::move(trace_sink));
  }

  const bool chaos = !opts.fault_plan.empty();
  const bool reliable = opts.transport == TransportKind::kReliable;
  std::vector<std::string> cols = {"lambda",   "msgs/cs", "response",
                                   "service",  "sojourn", "fwd_frac",
                                   "drained",  "safety"};
  if (chaos) {
    cols.insert(cols.end(),
                {"faults", "recovered", "ttr_mean", "ttr_max", "unavail",
                 "aborted", "stall"});
  }
  if (reliable) {
    cols.insert(cols.end(), {"retrans", "dup_dropped", "acks"});
  }
  Table table(cols);
  bool sound = true;
  bool first_run = true;
  std::vector<std::string> stall_reports;
  std::vector<RunRecord> records;
  // Flatten the sweep into the indexed seed×point job list.  The first job
  // (first lambda, first seed) carries the trace sink; seeds follow the one
  // seed_schedule shared with run_replicated.
  std::vector<ExperimentConfig> jobs;
  jobs.reserve(opts.lambdas.size() * opts.seeds);
  for (double lambda : opts.lambdas) {
    ExperimentConfig cfg;
    cfg.algorithm = opts.algorithm;
    cfg.n_nodes = opts.n_nodes;
    cfg.lambda = lambda;
    cfg.total_requests = opts.requests;
    cfg.t_msg = opts.t_msg;
    cfg.t_exec = opts.t_exec;
    cfg.params = opts.params;
    cfg.delay_kind = opts.delay_kind;
    cfg.delay_jitter = opts.jitter;
    cfg.fault_plan = opts.fault_plan;
    cfg.transport = opts.transport;
    cfg.stall_threshold = opts.stall_threshold;
    cfg.max_events = opts.max_events;
    for (const auto& [type, p] : opts.loss_by_type) {
      cfg.loss_by_type[type] = p;
    }
    if (first_run) {
      // Surface every configuration problem (unknown algorithm, malformed
      // fault plan, bad loss spec, ...) before committing to a sweep.
      const std::vector<std::string> errors = cfg.validate();
      if (!errors.empty()) {
        os << "invalid configuration:\n";
        for (const std::string& e : errors) os << "  - " << e << "\n";
        return 2;
      }
    }
    for (std::size_t s = 0; s < opts.seeds; ++s) {
      ExperimentConfig run_cfg = cfg;
      run_cfg.seed = seed_schedule(cfg, s);
      run_cfg.collect_spans =
          !opts.emit_json.empty() || (first_run && trace_sink != nullptr);
      if (first_run && trace_sink) run_cfg.trace_sink = trace_sink;
      first_run = false;
      jobs.push_back(std::move(run_cfg));
    }
  }
  // Each job is a fully independent simulation; the runner returns results
  // in job-index order, so everything below — table rows, stall reports,
  // manifest records, the exit code — is byte-identical for any --jobs.
  const std::vector<ExperimentResult> results =
      ParallelRunner(opts.jobs).run(jobs);
  if (!opts.emit_json.empty()) {
    records.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      records.push_back(RunRecord{jobs[i], results[i]});
    }
  }
  std::size_t next_job = 0;
  for (double lambda : opts.lambdas) {
    const auto runs_begin = results.begin() +
                            static_cast<std::ptrdiff_t>(next_job);
    const std::vector<ExperimentResult> runs(
        runs_begin, runs_begin + static_cast<std::ptrdiff_t>(opts.seeds));
    next_job += opts.seeds;
    stats::Welford msgs, resp, svc, soj, fwd, ttr, unavail;
    bool drained = true;
    bool stalled = false;
    bool event_limited = false;
    std::uint64_t violations = 0;
    std::uint64_t faults = 0, recovered = 0, aborted = 0;
    std::uint64_t retrans = 0, dup_dropped = 0, acks = 0;
    double ttr_max = 0.0;
    for (const auto& r : runs) {
      msgs.add(r.messages_per_cs);
      resp.add(r.response_time.mean());
      svc.add(r.service_time.mean());
      soj.add(r.sojourn_time.mean());
      fwd.add(r.forwarded_fraction_of_requests);
      drained = drained && r.drained;
      violations += r.safety_violations;
      faults += r.faults_injected;
      recovered += r.faults_recovered;
      aborted += r.aborted_by_crash;
      retrans += r.transport.retransmits;
      dup_dropped += r.transport.dup_dropped;
      acks += r.transport.acks_sent;
      if (r.time_to_recovery.count() > 0) {
        ttr.add(r.time_to_recovery.mean());
        ttr_max = std::max(ttr_max, r.time_to_recovery.max());
      }
      unavail.add(r.unavailability);
      if (r.stalled) {
        stalled = true;
        std::string report = "lambda=" + Table::num(lambda, 3) +
                             " STALLED at t=" + Table::num(r.stall_time, 3);
        for (const auto& line : r.fault_log) {
          report += "\n  fault: " + line;
        }
        report += "\n" + r.stall_diagnosis;
        stall_reports.push_back(std::move(report));
      }
      if (r.hit_event_limit) {
        event_limited = true;
        stall_reports.push_back("lambda=" + Table::num(lambda, 3) +
                                " EVENT LIMIT\n" + r.event_limit_diagnosis);
      }
    }
    sound =
        sound && drained && violations == 0 && !stalled && !event_limited;
    std::vector<std::string> row = {Table::num(lambda, 3),
                                    stats::mean_ci_95(msgs).to_string(3),
                                    Table::num(resp.mean(), 4),
                                    Table::num(svc.mean(), 4),
                                    Table::num(soj.mean(), 4),
                                    Table::num(fwd.mean(), 4),
                                    drained ? "yes" : "NO",
                                    violations == 0 ? "ok" : "VIOLATED"};
    if (chaos) {
      row.insert(row.end(),
                 {std::to_string(faults), std::to_string(recovered),
                  Table::num(ttr.mean(), 3), Table::num(ttr_max, 3),
                  Table::num(unavail.mean(), 3), std::to_string(aborted),
                  stalled ? "STALL" : "no"});
    }
    if (reliable) {
      row.insert(row.end(), {std::to_string(retrans),
                             std::to_string(dup_dropped),
                             std::to_string(acks)});
    }
    table.add_row(std::move(row));
  }
  os << "algorithm: " << opts.algorithm << "  N=" << opts.n_nodes
     << "  requests/run=" << opts.requests << "  seeds=" << opts.seeds
     << "\n";
  if (chaos) {
    os << "fault plan: " << opts.fault_plan << "\n";
  }
  if (reliable) {
    os << "transport: reliable\n";
  }
  if (opts.csv) {
    table.print_csv(os);
  } else {
    table.print(os);
  }
  for (const auto& report : stall_reports) {
    os << "\n" << report << "\n";
  }
  if (!opts.emit_json.empty()) {
    std::ofstream manifest(opts.emit_json);
    if (!manifest) {
      os << "cannot open --emit-json file '" << opts.emit_json << "'\n";
      return 2;
    }
    write_run_manifest(manifest, records);
  }
  return sound ? 0 : 1;
}

}  // namespace dmx::harness
