// Command-line front end for the experiment harness (the dmx_sweep tool).
//
// Grammar (flags may repeat where noted):
//   --algo NAME             algorithm to run        (default arbiter-tp)
//   --n N                   cluster size            (default 10)
//   --lambda X[,Y,...]      per-node arrival rates  (default 0.5)
//   --requests K            CS requests per run     (default 100000)
//   --seeds R               replications per point  (default 3)
//   --t-msg X / --t-exec X  network / CS durations  (default 0.1 / 0.1)
//   --param key=value       algorithm parameter     (repeatable)
//   --delay constant|uniform|exponential [--jitter X]
//   --loss TYPE=P           message-type loss       (repeatable)
//   --fault "SPEC"          scripted chaos campaign (fault/fault_plan.hpp),
//                           e.g. "t=5 crash 3; t=9 restart 3"
//   --transport raw|reliable  message transport (default raw); reliable
//                           interposes the ack/retransmit layer per node
//   --stall X               liveness stall threshold (sim units); X < 0
//                           disables the monitor, omit for auto
//   --max-events K          hard backstop on executed events per run
//                           (0 = auto from the load); hitting it fails the
//                           run with a per-node diagnosis
//   --jobs J                parallel sweep workers (default 1 = serial,
//                           0 = one per hardware thread); output is
//                           byte-identical for every J
//   --resources K           lock resources; K > 1 switches the run into the
//                           sharded lock-service scenario (Zipf-split
//                           aggregate demand, per-shard SLO table)
//   --zipf-s S              Zipf popularity skew across resources
//   --shard-algo SPEC       per-shard algorithm choice, e.g.
//                           hot=arbiter-tp,cold=path-reversal (either key
//                           may be given alone)
//   --batch B               LockSpace demand batching (0 = unbatched)
//   --trace-out FILE        structured event trace of the first run
//   --trace-format FMT      jsonl | chrome | text   (default jsonl)
//   --emit-json FILE        machine-readable run manifest (dmx.run.v1)
//   --csv                   emit CSV instead of an aligned table
//   --list                  list registered algorithms and exit
//   --help                  usage
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace dmx::harness {

struct CliOptions {
  std::string algorithm = "arbiter-tp";
  std::size_t n_nodes = 10;
  std::vector<double> lambdas = {0.5};
  std::uint64_t requests = 100'000;
  std::size_t seeds = 3;
  double t_msg = 0.1;
  double t_exec = 0.1;
  mutex::ParamSet params;
  DelayKind delay_kind = DelayKind::kConstant;
  double jitter = 0.0;
  std::map<std::string, double> loss_by_type;
  std::string fault_plan;
  TransportKind transport = TransportKind::kRaw;
  double stall_threshold = 0.0;  ///< See ExperimentConfig::stall_threshold.
  std::uint64_t max_events = 0;  ///< See ExperimentConfig::max_events.
  /// Worker threads for the seed×point job list (harness::ParallelRunner).
  /// 1 = serial, 0 = one per hardware thread.  Table, manifest and trace
  /// output is byte-identical for every value.
  std::size_t jobs = 1;
  // --- Sharded lock-service scenario (harness/lock_service.hpp) ----------
  /// 1 = the classic single-CS sweep; > 1 switches run_cli into the
  /// lock-service scenario: --requests becomes the aggregate demand,
  /// Zipf(zipf_s)-split over the resources, --n the hot-shard client count,
  /// and --lambda's first entry the closed-loop think rate (think_mean =
  /// 1/lambda).  Shards fan out over --jobs workers, byte-identically.
  std::size_t n_resources = 1;
  double zipf_s = 0.9;  ///< Zipf skew across resources (0 = uniform).
  std::string shard_algo_hot = "arbiter-tp";
  std::string shard_algo_cold = "path-reversal";
  std::size_t batch = 16;  ///< LockSpace demand batching (0 = unbatched).
  /// Structured trace of the sweep's first run (first lambda, first seed);
  /// empty = no trace.  Format: "jsonl", "chrome" (Perfetto-loadable), or
  /// "text" (the human-readable dmx_trace format).
  std::string trace_out;
  std::string trace_format = "jsonl";
  /// Run manifest (dmx.run.v1 JSON, every run of the sweep) output path;
  /// empty = no manifest.  Implies span collection on every run so the
  /// manifest carries the per-phase latency decomposition.
  std::string emit_json;
  bool csv = false;
  bool list = false;
  bool help = false;
};

/// Parses argv; throws std::invalid_argument with a message on bad input.
CliOptions parse_cli(const std::vector<std::string>& args);

/// Usage text for --help / errors.
std::string cli_usage();

/// Runs the sweep described by the options and writes the report to `os`.
/// Returns a process exit code (non-zero if any run was unsafe or stuck).
int run_cli(const CliOptions& opts, std::ostream& os);

}  // namespace dmx::harness
