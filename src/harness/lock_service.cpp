#include "harness/lock_service.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "mutex/lock_space.hpp"
#include "mutex/registry.hpp"
#include "workload/arrivals.hpp"
#include "workload/closed_loop.hpp"
#include "workload/zipf.hpp"

namespace dmx::harness {

namespace {

std::string join_errors(const std::vector<std::string>& errors) {
  std::string msg = "LockServiceConfig invalid:";
  for (const auto& e : errors) {
    msg += "\n  - ";
    msg += e;
  }
  return msg;
}

/// One shard, in isolation: its own LockSpace (1 resource) driven by a
/// closed-loop client population until the shard's demand budget drains.
ShardResult run_shard(const LockServiceConfig& cfg, std::size_t r,
                      std::uint64_t demand, bool hot) {
  ShardResult out;
  out.resource = r;
  out.hot = hot;
  out.algorithm = hot ? cfg.hot_algorithm : cfg.cold_algorithm;
  out.nodes = hot ? cfg.hot_nodes : cfg.cold_nodes;
  out.demand = demand;
  if (demand == 0) {
    out.drained = true;  // vacuously: nobody ever wants this resource
    return out;
  }

  // The replication seed schedule applied to shards: shard r is
  // "replication r" of the service's base seed, whether it runs serially
  // or on any worker.
  const std::uint64_t shard_seed =
      cfg.seed + 1000 * static_cast<std::uint64_t>(r) + 17;

  mutex::LockSpaceBuilder builder;
  builder.resources(1)
      .nodes(out.nodes)
      .algorithm(out.algorithm)
      .t_msg(cfg.t_msg)
      .t_exec(cfg.t_exec)
      .seed(shard_seed)
      .batch(cfg.batch_size)
      .collect_spans()
      .span_hist_max(cfg.span_hist_max);
  if (cfg.trace_sink && r == cfg.trace_shard) {
    builder.trace_sink(cfg.trace_sink);
  }
  mutex::LockSpaceSpec spec = builder.build();
  spec.params = cfg.params;
  mutex::LockSpace space(spec);

  // Closed-loop clients: one per node, submitting through the redesigned
  // acquire() API; the on_released hook is the resubmission signal.
  std::vector<workload::ClosedLoopGenerator::SubmitFn> submit;
  std::vector<std::unique_ptr<workload::ArrivalProcess>> think;
  submit.reserve(out.nodes);
  think.reserve(out.nodes);
  for (std::size_t i = 0; i < out.nodes; ++i) {
    submit.emplace_back([&space, i] { space.acquire(i, 0); });
    think.push_back(
        std::make_unique<workload::PoissonArrivals>(1.0 / cfg.think_mean));
  }
  workload::ClosedLoopGenerator gen(space.simulator(), std::move(submit),
                                    std::move(think), demand,
                                    shard_seed * 31 + 7);
  space.set_on_released([&gen](const mutex::LockEvent& e) {
    gen.notify_complete(e.node);
  });
  gen.start();
  space.simulator().run();

  out.completed = space.completed(0);
  out.messages = space.messages(0);
  out.messages_per_cs =
      out.completed == 0
          ? 0.0
          : static_cast<double>(out.messages) / static_cast<double>(out.completed);
  out.safety_violations = space.safety_violations();
  out.drained = out.completed == demand;
  out.sim_duration_units = space.simulator().now().to_units();

  const obs::SpanReport* spans = space.span_report(0);
  if (spans != nullptr && spans->completed > 0) {
    out.grant_mean = spans->grant_wait.moments.mean();
    out.grant_p50 = spans->grant_wait.hist.quantile(0.50);
    out.grant_p99 = spans->grant_wait.hist.quantile(0.99);
  }
  // With fewer demands than clients, even a perfectly fair service leaves
  // some clients at zero; the index is not meaningful there.
  out.fairness =
      demand < out.nodes ? 1.0 : jain_fairness(space.completions_per_node(0));
  return out;
}

}  // namespace

std::vector<std::string> LockServiceConfig::validate() const {
  std::vector<std::string> errors;
  auto& registry = mutex::Registry::instance();
  if (n_resources == 0) errors.push_back("n_resources must be > 0");
  if (zipf_s < 0.0) errors.push_back("zipf_s must be >= 0");
  if (total_demands == 0) errors.push_back("total_demands must be > 0");
  if (hot_nodes == 0) errors.push_back("hot_nodes must be > 0");
  if (cold_nodes == 0) errors.push_back("cold_nodes must be > 0");
  if (t_msg < 0.0) errors.push_back("t_msg must be >= 0");
  if (t_exec < 0.0) errors.push_back("t_exec must be >= 0");
  if (think_mean <= 0.0) errors.push_back("think_mean must be > 0");
  if (span_hist_max <= 0.0) errors.push_back("span_hist_max must be > 0");
  if (!registry.contains(hot_algorithm)) {
    errors.push_back("hot algorithm not registered: " + hot_algorithm);
  }
  if (!registry.contains(cold_algorithm)) {
    errors.push_back("cold algorithm not registered: " + cold_algorithm);
  }
  return errors;
}

double jain_fairness(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::uint64_t c : counts) {
    const auto x = static_cast<double>(c);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(counts.size()) * sum_sq);
}

LockServiceReport run_lock_service(const LockServiceConfig& cfg) {
  register_builtin_algorithms();
  const auto errors = cfg.validate();
  if (!errors.empty()) throw std::invalid_argument(join_errors(errors));

  LockServiceReport report;
  report.total_demands = cfg.total_demands;

  // THE canonical Zipf split: every consumer of this config derives the
  // same per-shard demand vector.
  const std::vector<std::uint64_t> demand = workload::zipf_demand_vector(
      cfg.n_resources, cfg.zipf_s, cfg.total_demands, cfg.seed);

  report.shards.resize(cfg.n_resources);
  const ParallelRunner runner(cfg.jobs);
  runner.run_indexed(cfg.n_resources, [&](std::size_t r) {
    // Hot = at or above the mean per-shard demand, computed without
    // division so the classification is exact in integers.
    const bool hot =
        demand[r] * static_cast<std::uint64_t>(cfg.n_resources) >=
        cfg.total_demands;
    report.shards[r] = run_shard(cfg, r, demand[r], hot);
  });

  for (const ShardResult& s : report.shards) {
    report.total_completed += s.completed;
    report.total_messages += s.messages;
    report.safety_violations += s.safety_violations;
    if (s.hot) ++report.hot_shards;
    if (s.grant_p99 > report.grant_p99_worst) {
      report.grant_p99_worst = s.grant_p99;
    }
    if (s.fairness < report.fairness_min) report.fairness_min = s.fairness;
  }
  report.messages_per_cs =
      report.total_completed == 0
          ? 0.0
          : static_cast<double>(report.total_messages) /
                static_cast<double>(report.total_completed);
  report.drained = true;
  for (const ShardResult& s : report.shards) {
    if (!s.drained) report.drained = false;
  }
  return report;
}

}  // namespace dmx::harness
