#include "harness/manifest.hpp"

#include <cstdint>
#include <string_view>

#include "harness/lock_service.hpp"
#include "obs/json.hpp"

namespace dmx::harness {

namespace {

std::string_view delay_name(DelayKind k) {
  switch (k) {
    case DelayKind::kConstant:
      return "constant";
    case DelayKind::kUniform:
      return "uniform";
    case DelayKind::kExponential:
      return "exponential";
  }
  return "?";
}

std::string_view transport_name(TransportKind k) {
  return k == TransportKind::kReliable ? "reliable" : "raw";
}

void write_config(obs::JsonWriter& w, const ExperimentConfig& cfg) {
  w.begin_object();
  w.key("algorithm");
  w.string(cfg.algorithm);
  w.key("n_nodes");
  w.number(static_cast<std::uint64_t>(cfg.n_nodes));
  w.key("lambda");
  w.number(cfg.lambda);
  w.key("t_msg");
  w.number(cfg.t_msg);
  w.key("t_exec");
  w.number(cfg.t_exec);
  w.key("total_requests");
  w.number(cfg.total_requests);
  w.key("seed");
  w.number(cfg.seed);
  w.key("transport");
  w.string(transport_name(cfg.transport));
  w.key("n_resources");
  w.number(static_cast<std::uint64_t>(cfg.n_resources));
  w.key("zipf_s");
  w.number(cfg.zipf_s);
  w.key("shard_algo_hot");
  w.string(cfg.shard_algo_hot);
  w.key("shard_algo_cold");
  w.string(cfg.shard_algo_cold);
  w.key("delay");
  w.string(delay_name(cfg.delay_kind));
  w.key("delay_jitter");
  w.number(cfg.delay_jitter);
  w.key("fault_plan");
  w.string(cfg.fault_plan);
  w.key("stall_threshold");
  w.number(cfg.stall_threshold);
  w.key("params");
  w.begin_object();
  for (const auto& [k, v] : cfg.params.nums()) {
    w.key(k);
    w.number(v);
  }
  w.end_object();
  w.key("loss_by_type");
  w.begin_object();
  for (const auto& [k, v] : cfg.loss_by_type) {
    w.key(k);
    w.number(v);
  }
  w.end_object();
  w.end_object();
}

void write_welford(obs::JsonWriter& w, const stats::Welford& s) {
  w.begin_object();
  w.key("count");
  w.number(s.count());
  w.key("mean");
  w.number(s.mean());
  w.key("stddev");
  w.number(s.stddev());
  w.key("min");
  w.number(s.count() > 0 ? s.min() : 0.0);
  w.key("max");
  w.number(s.count() > 0 ? s.max() : 0.0);
  w.end_object();
}

void write_phase(obs::JsonWriter& w, const obs::PhaseStats& p) {
  w.begin_object();
  w.key("count");
  w.number(p.moments.count());
  w.key("mean");
  w.number(p.moments.mean());
  w.key("p50");
  w.number(p.hist.quantile(0.50));
  w.key("p95");
  w.number(p.hist.quantile(0.95));
  w.key("p99");
  w.number(p.hist.quantile(0.99));
  w.key("max");
  w.number(p.moments.count() > 0 ? p.moments.max() : 0.0);
  w.end_object();
}

void write_result(obs::JsonWriter& w, const ExperimentResult& r) {
  w.begin_object();
  w.key("submitted");
  w.number(r.submitted);
  w.key("completed");
  w.number(r.completed);
  w.key("messages_total");
  w.number(r.messages_total);
  w.key("bytes_total");
  w.number(r.bytes_total);
  w.key("messages_per_cs");
  w.number(r.messages_per_cs);
  w.key("bytes_per_cs");
  w.number(r.bytes_per_cs);
  w.key("messages_by_type");
  w.begin_object();
  const stats::CounterMap by_type = r.messages_by_type();
  for (const auto& [type, count] : by_type.entries()) {
    w.key(type);
    w.number(count);
  }
  w.end_object();
  w.key("forwarded_fraction_of_requests");
  w.number(r.forwarded_fraction_of_requests);
  w.key("response_time");
  write_welford(w, r.response_time);
  w.key("service_time");
  write_welford(w, r.service_time);
  w.key("sojourn_time");
  write_welford(w, r.sojourn_time);
  w.key("service_p50");
  w.number(r.service_p50);
  w.key("service_p95");
  w.number(r.service_p95);
  w.key("service_p99");
  w.number(r.service_p99);
  w.key("safety_violations");
  w.number(r.safety_violations);
  w.key("max_occupancy");
  w.number(static_cast<std::int64_t>(r.max_occupancy));
  w.key("drained");
  w.boolean(r.drained);
  w.key("stalled");
  w.boolean(r.stalled);
  w.key("hit_event_limit");
  w.boolean(r.hit_event_limit);
  w.key("aborted_by_crash");
  w.number(r.aborted_by_crash);
  w.key("faults_injected");
  w.number(r.faults_injected);
  w.key("faults_recovered");
  w.number(r.faults_recovered);
  w.key("unavailability");
  w.number(r.unavailability);
  w.key("time_to_recovery");
  write_welford(w, r.time_to_recovery);
  w.key("transport");
  w.begin_object();
  w.key("data_sent");
  w.number(r.transport.data_sent);
  w.key("retransmits");
  w.number(r.transport.retransmits);
  w.key("acks_sent");
  w.number(r.transport.acks_sent);
  w.key("dup_dropped");
  w.number(r.transport.dup_dropped);
  w.key("reorder_buffered");
  w.number(r.transport.reorder_buffered);
  w.key("stale_dropped");
  w.number(r.transport.stale_dropped);
  w.key("abandoned");
  w.number(r.transport.abandoned);
  w.end_object();
  w.key("sim_duration_units");
  w.number(r.sim_duration_units);
  w.key("sim_events");
  w.number(r.sim_events);
  if (r.spans) {
    w.key("spans");
    w.begin_object();
    w.key("completed");
    w.number(r.spans->completed);
    w.key("aborted");
    w.number(r.spans->aborted);
    w.key("open");
    w.number(r.spans->open);
    w.key("phases");
    w.begin_object();
    w.key("queue");
    write_phase(w, r.spans->queue);
    w.key("transit");
    write_phase(w, r.spans->transit);
    w.key("token_wait");
    write_phase(w, r.spans->token_wait);
    w.key("acquire");
    write_phase(w, r.spans->acquire);
    w.key("grant_wait");
    write_phase(w, r.spans->grant_wait);
    w.key("cs");
    write_phase(w, r.spans->cs);
    w.end_object();
    w.end_object();
  }
  if (r.lock_service) {
    const LockServiceReport& ls = *r.lock_service;
    w.key("lock_service");
    w.begin_object();
    w.key("total_demands");
    w.number(ls.total_demands);
    w.key("total_completed");
    w.number(ls.total_completed);
    w.key("total_messages");
    w.number(ls.total_messages);
    w.key("messages_per_cs");
    w.number(ls.messages_per_cs);
    w.key("safety_violations");
    w.number(ls.safety_violations);
    w.key("hot_shards");
    w.number(static_cast<std::uint64_t>(ls.hot_shards));
    w.key("grant_p99_worst");
    w.number(ls.grant_p99_worst);
    w.key("fairness_min");
    w.number(ls.fairness_min);
    w.key("drained");
    w.boolean(ls.drained);
    w.key("shards");
    w.begin_array();
    for (const ShardResult& s : ls.shards) {
      w.begin_object();
      w.key("resource");
      w.number(static_cast<std::uint64_t>(s.resource));
      w.key("algorithm");
      w.string(s.algorithm);
      w.key("hot");
      w.boolean(s.hot);
      w.key("nodes");
      w.number(static_cast<std::uint64_t>(s.nodes));
      w.key("demand");
      w.number(s.demand);
      w.key("completed");
      w.number(s.completed);
      w.key("messages");
      w.number(s.messages);
      w.key("messages_per_cs");
      w.number(s.messages_per_cs);
      w.key("grant_mean");
      w.number(s.grant_mean);
      w.key("grant_p50");
      w.number(s.grant_p50);
      w.key("grant_p99");
      w.number(s.grant_p99);
      w.key("fairness");
      w.number(s.fairness);
      w.key("safety_violations");
      w.number(s.safety_violations);
      w.key("drained");
      w.boolean(s.drained);
      w.key("sim_duration_units");
      w.number(s.sim_duration_units);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

}  // namespace

void write_run_manifest(std::ostream& os, const std::vector<RunRecord>& runs) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string("dmx.run.v1");
  w.key("runs");
  w.begin_array();
  for (const RunRecord& run : runs) {
    w.begin_object();
    w.key("config");
    write_config(w, run.config);
    w.key("result");
    write_result(w, run.result);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << w.str() << "\n";
}

}  // namespace dmx::harness
