#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dmx::fault {

namespace {

[[noreturn]] void fail(const std::string& what, std::string_view action) {
  throw std::invalid_argument("fault plan: " + what + " in action '" +
                              std::string(action) + "'");
}

std::vector<std::string> tokenize(std::string_view action) {
  std::vector<std::string> out;
  std::string tok;
  for (char c : action) {
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!tok.empty()) out.push_back(std::move(tok)), tok.clear();
    } else {
      tok.push_back(c);
    }
  }
  if (!tok.empty()) out.push_back(std::move(tok));
  return out;
}

double parse_num(const std::string& text, std::string_view what,
                 std::string_view action) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing junk");
    return d;
  } catch (const std::exception&) {
    fail("bad " + std::string(what) + " '" + text + "'", action);
  }
}

int parse_node(const std::string& text, std::string_view action) {
  const double d = parse_num(text, "node index", action);
  const int n = static_cast<int>(d);
  if (d != static_cast<double>(n) || n < 0) {
    fail("bad node index '" + text + "'", action);
  }
  return n;
}

std::vector<std::vector<int>> parse_groups(const std::string& text,
                                           std::string_view action) {
  std::vector<std::vector<int>> groups;
  std::vector<int> group;
  std::string item;
  auto flush_item = [&] {
    if (item.empty()) fail("empty node in partition groups", action);
    group.push_back(parse_node(item, action));
    item.clear();
  };
  for (char c : text) {
    if (c == ',') {
      flush_item();
    } else if (c == '|') {
      flush_item();
      groups.push_back(std::move(group));
      group.clear();
    } else {
      item.push_back(c);
    }
  }
  flush_item();
  groups.push_back(std::move(group));
  return groups;
}

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

FaultAction parse_action(std::string_view action) {
  const std::vector<std::string> toks = tokenize(action);
  if (toks.empty()) fail("empty action", action);
  if (toks[0] == "reorder-window") {
    // Verb-first special form: 'reorder-window t=<a>..<b>'.  The window
    // start doubles as the fire time.
    if (toks.size() != 2 || toks[1].rfind("t=", 0) != 0) {
      fail("'reorder-window' takes t=<a>..<b>", action);
    }
    const std::string range = toks[1].substr(2);
    const std::size_t dots = range.find("..");
    if (dots == std::string::npos || dots == 0 || dots + 2 >= range.size()) {
      fail("'reorder-window' takes t=<a>..<b>", action);
    }
    FaultAction a;
    a.kind = FaultAction::Kind::kReorderWindow;
    a.at = parse_num(range.substr(0, dots), "time", action);
    a.until = parse_num(range.substr(dots + 2), "time", action);
    if (a.at < 0.0) fail("negative time", action);
    if (a.until <= a.at) {
      fail("'reorder-window' end must be after its start", action);
    }
    return a;
  }
  if (toks[0].rfind("t=", 0) != 0) {
    fail("expected 't=TIME' first", action);
  }
  FaultAction a;
  a.at = parse_num(toks[0].substr(2), "time", action);
  if (a.at < 0.0) fail("negative time", action);
  if (toks.size() < 2) fail("missing verb", action);
  const std::string& verb = toks[1];
  auto expect_argc = [&](std::size_t n) {
    if (toks.size() != n) fail("wrong argument count for '" + verb + "'",
                               action);
  };
  if (verb == "crash" || verb == "restart") {
    expect_argc(3);
    a.kind = verb == "crash" ? FaultAction::Kind::kCrash
                             : FaultAction::Kind::kRestart;
    a.node = parse_node(toks[2], action);
  } else if (verb == "lose-next" || verb == "dup-next") {
    if (toks.size() < 3 || toks.size() > 5) {
      fail("'" + verb + "' takes TYPE [from=N] [to=N]", action);
    }
    a.kind = verb == "lose-next" ? FaultAction::Kind::kLoseNext
                                 : FaultAction::Kind::kDupNext;
    a.msg_type = toks[2];
    for (std::size_t i = 3; i < toks.size(); ++i) {
      if (toks[i].rfind("from=", 0) == 0) {
        a.src = parse_node(toks[i].substr(5), action);
      } else if (toks[i].rfind("to=", 0) == 0) {
        a.dst = parse_node(toks[i].substr(3), action);
      } else {
        fail("unknown " + verb + " option '" + toks[i] + "'", action);
      }
    }
  } else if (verb == "loss") {
    if (toks.size() < 3 || toks.size() > 4) {
      fail("'loss' takes TYPE=P [until=TIME]", action);
    }
    a.kind = FaultAction::Kind::kSetLoss;
    const std::size_t eq = toks[2].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= toks[2].size()) {
      fail("'loss' expects TYPE=P, got '" + toks[2] + "'", action);
    }
    a.msg_type = toks[2].substr(0, eq);
    a.probability = parse_num(toks[2].substr(eq + 1), "probability", action);
    if (a.probability < 0.0 || a.probability > 1.0) {
      fail("probability outside [0,1]", action);
    }
    if (toks.size() == 4) {
      if (toks[3].rfind("until=", 0) != 0) {
        fail("unknown loss option '" + toks[3] + "'", action);
      }
      a.until = parse_num(toks[3].substr(6), "time", action);
      if (a.until <= a.at) fail("'until' must be after the action time",
                                action);
    }
  } else if (verb == "partition") {
    expect_argc(3);
    a.kind = FaultAction::Kind::kPartition;
    a.groups = parse_groups(toks[2], action);
  } else if (verb == "heal") {
    expect_argc(2);
    a.kind = FaultAction::Kind::kHeal;
  } else {
    fail("unknown verb '" + verb + "'", action);
  }
  return a;
}

}  // namespace

bool FaultAction::disruptive() const {
  switch (kind) {
    case Kind::kCrash:
    case Kind::kLoseNext:
    case Kind::kPartition:
    case Kind::kReorderWindow:
      return true;
    case Kind::kSetLoss:
      return probability > 0.0;
    case Kind::kRestart:
    case Kind::kDupNext:
    case Kind::kHeal:
      return false;
  }
  return false;
}

std::string FaultAction::describe() const {
  std::ostringstream os;
  if (kind == Kind::kReorderWindow) {  // Verb-first form.
    os << "reorder-window t=" << fmt_num(at) << ".." << fmt_num(until);
    return os.str();
  }
  os << "t=" << fmt_num(at) << ' ';
  switch (kind) {
    case Kind::kCrash:
      os << "crash " << node;
      break;
    case Kind::kRestart:
      os << "restart " << node;
      break;
    case Kind::kLoseNext:
    case Kind::kDupNext:
      os << (kind == Kind::kLoseNext ? "lose-next " : "dup-next ") << msg_type;
      if (src >= 0) os << " from=" << src;
      if (dst >= 0) os << " to=" << dst;
      break;
    case Kind::kSetLoss:
      os << "loss " << msg_type << '=' << fmt_num(probability);
      if (until >= 0.0) os << " until=" << fmt_num(until);
      break;
    case Kind::kPartition: {
      os << "partition ";
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (g > 0) os << '|';
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
          if (i > 0) os << ',';
          os << groups[g][i];
        }
      }
      break;
    }
    case Kind::kHeal:
      os << "heal";
      break;
    case Kind::kReorderWindow:
      break;  // Handled above (verb-first form).
  }
  return os.str();
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string_view action = spec.substr(
        start, semi == std::string_view::npos ? std::string_view::npos
                                              : semi - start);
    if (!tokenize(action).empty()) {
      plan.actions.push_back(parse_action(action));
    }
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  std::stable_sort(
      plan.actions.begin(), plan.actions.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultAction& a : actions) {
    if (!out.empty()) out += "; ";
    out += a.describe();
  }
  return out;
}

}  // namespace dmx::fault
