// Typed trace events for the fault-injection layer.
//
// Field conventions:
//   fault.injected  node=targeted node (-1 for cluster-wide actions)
//                   arg=FaultAction::Kind as an integer
//                   detail=FaultAction::describe()
#pragma once

#include "obs/event.hpp"

namespace dmx::fault {

DMX_REGISTER_EVENT(kEvFaultInjected, "fault.injected", "fault");

}  // namespace dmx::fault
