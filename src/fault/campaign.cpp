#include "fault/campaign.hpp"

#include <stdexcept>
#include <utility>

#include "fault/events.hpp"
#include "net/fault_injector.hpp"
#include "net/msg_kind.hpp"
#include "obs/tracer.hpp"

namespace dmx::fault {

namespace {

net::NodeId to_node(int n) {
  return n < 0 ? net::NodeId{} : net::NodeId{static_cast<std::int32_t>(n)};
}

}  // namespace

CampaignRunner::CampaignRunner(runtime::Cluster& cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)) {}

void CampaignRunner::validate() const {
  const auto& registry = net::MsgKindRegistry::instance();
  auto check_node = [&](int n, const FaultAction& a) {
    if (n >= 0 && static_cast<std::size_t>(n) >= cluster_.size()) {
      throw std::invalid_argument("fault plan: node " + std::to_string(n) +
                                  " out of range in '" + a.describe() + "'");
    }
  };
  auto check_type = [&](const std::string& type, const FaultAction& a) {
    // Every shipped message type registers during static initialization, so
    // an unknown name is a typo that would otherwise silently never match.
    if (type != "*" && !registry.find(type).valid()) {
      throw std::invalid_argument(
          "fault plan: unregistered message type \"" + type + "\" in '" +
          a.describe() + "'");
    }
  };
  for (const FaultAction& a : plan_.actions) {
    switch (a.kind) {
      case FaultAction::Kind::kCrash:
      case FaultAction::Kind::kRestart:
        check_node(a.node, a);
        break;
      case FaultAction::Kind::kLoseNext:
      case FaultAction::Kind::kDupNext:
        check_type(a.msg_type, a);
        check_node(a.src, a);
        check_node(a.dst, a);
        break;
      case FaultAction::Kind::kSetLoss:
        check_type(a.msg_type, a);
        break;
      case FaultAction::Kind::kPartition:
        for (const auto& group : a.groups) {
          for (int n : group) check_node(n, a);
        }
        break;
      case FaultAction::Kind::kReorderWindow:
      case FaultAction::Kind::kHeal:
        break;
    }
    if (a.at < cluster_.simulator().now().to_units()) {
      throw std::invalid_argument("fault plan: action '" + a.describe() +
                                  "' is scheduled in the past");
    }
  }
}

void CampaignRunner::start() {
  if (started_) throw std::logic_error("CampaignRunner::start: already started");
  validate();
  started_ = true;
  events_.reserve(plan_.size());
  for (const FaultAction& a : plan_.actions) {
    events_.push_back(cluster_.simulator().schedule_at(
        sim::SimTime::units(a.at), [this, &a] { execute(a); }));
  }
}

void CampaignRunner::cancel() {
  for (sim::EventId ev : events_) cluster_.simulator().cancel(ev);
  events_.clear();
}

std::size_t CampaignRunner::unfired_targeted_drops() const {
  const auto& faults = cluster_.network().faults();
  std::size_t unfired = 0;
  for (std::uint64_t id : one_shot_ids_) {
    if (faults.one_shot_pending(id)) ++unfired;
  }
  return unfired;
}

void CampaignRunner::execute(const FaultAction& action) {
  auto& faults = cluster_.network().faults();
  switch (action.kind) {
    case FaultAction::Kind::kCrash: {
      const net::NodeId id = to_node(action.node);
      cluster_.crash_node(id);
      if (crash_hook_) crash_hook_(id);
      break;
    }
    case FaultAction::Kind::kRestart: {
      const net::NodeId id = to_node(action.node);
      cluster_.restart_node(id);
      if (restart_hook_) restart_hook_(id);
      break;
    }
    case FaultAction::Kind::kLoseNext:
      one_shot_ids_.push_back(faults.drop_next_of_type(
          action.msg_type, to_node(action.src), to_node(action.dst)));
      break;
    case FaultAction::Kind::kDupNext:
      // Tracked with the drop one-shots: a dup-next that never matches is
      // the same campaign misfire as a lose-next that never matches.
      one_shot_ids_.push_back(faults.duplicate_next_of_type(
          action.msg_type, to_node(action.src), to_node(action.dst)));
      break;
    case FaultAction::Kind::kSetLoss:
      if (action.msg_type == "*") {
        const double previous = faults.global_loss_probability();
        faults.set_loss_probability(action.probability);
        if (action.until >= 0.0) {
          events_.push_back(cluster_.simulator().schedule_at(
              sim::SimTime::units(action.until), [this, previous] {
                cluster_.network().faults().set_loss_probability(previous);
              }));
        }
      } else {
        const net::MsgKind kind =
            net::MsgKindRegistry::instance().intern(action.msg_type);
        faults.set_loss_probability(kind, action.probability);
        if (action.until >= 0.0) {
          events_.push_back(cluster_.simulator().schedule_at(
              sim::SimTime::units(action.until), [this, kind] {
                cluster_.network().faults().clear_loss_probability(kind);
              }));
        }
      }
      break;
    case FaultAction::Kind::kPartition: {
      std::vector<std::vector<net::NodeId>> groups;
      groups.reserve(action.groups.size());
      for (const auto& group : action.groups) {
        std::vector<net::NodeId>& out = groups.emplace_back();
        out.reserve(group.size());
        for (int n : group) out.push_back(to_node(n));
      }
      faults.set_partition(std::move(groups));
      break;
    }
    case FaultAction::Kind::kReorderWindow:
      faults.set_reorder(true);
      events_.push_back(cluster_.simulator().schedule_at(
          sim::SimTime::units(action.until),
          [this] { cluster_.network().faults().set_reorder(false); }));
      break;
    case FaultAction::Kind::kHeal:
      faults.heal_partition();
      break;
  }
  ++executed_;
  log_.push_back(action.describe());
  const obs::Tracer& tracer = cluster_.tracer();
  if (tracer.enabled()) {
    const auto fmt = [&action] { return action.describe(); };
    tracer.write(
        obs::Event{cluster_.simulator().now(), kEvFaultInjected,
                   action.node >= 0 ? action.node : -1, 0,
                   static_cast<std::int64_t>(action.kind), 0.0},
        obs::DetailRef(fmt));
  }
  if (observer_) observer_(cluster_.simulator().now(), action);
}

}  // namespace dmx::fault
