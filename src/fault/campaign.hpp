// Chaos campaign execution: a FaultPlan scheduled against a live Cluster.
//
// The runner turns each FaultAction into a cancellable simulator event that
// fires at its scripted time and acts on the cluster's FaultInjector and
// Process lifecycle (crash/restart).  Hooks let the harness ride along:
// crash/restart hooks abort per-node driver demand, and the fault observer
// feeds the RecoveryMetrics layer so time-to-recovery is measured per
// disruptive action.  Everything executes on the deterministic virtual
// clock, so the same seed plus the same plan is the same run, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/node_id.hpp"
#include "runtime/cluster.hpp"
#include "sim/simulator.hpp"

namespace dmx::fault {

class CampaignRunner {
 public:
  using NodeHook = std::function<void(net::NodeId)>;
  /// Observes every executed action (at its fire time); `disruptive()`
  /// tells whether it opens a recovery window.
  using Observer = std::function<void(sim::SimTime, const FaultAction&)>;

  CampaignRunner(runtime::Cluster& cluster, FaultPlan plan);

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;
  ~CampaignRunner() { cancel(); }

  /// Invoked right after the cluster crashes / restarts a node, so the
  /// harness can abort driver demand or resume workload.
  void set_crash_hook(NodeHook hook) { crash_hook_ = std::move(hook); }
  void set_restart_hook(NodeHook hook) { restart_hook_ = std::move(hook); }
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Validate the plan against the cluster (node indices in range, message
  /// types registered) and schedule every action.  Throws
  /// std::invalid_argument on a bad plan; call before the simulation runs.
  void start();

  /// Cancel all not-yet-fired actions (idempotent).
  void cancel();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_actions() const {
    return plan_.size() - executed_;
  }

  /// Targeted drops ("lose-next") that executed but whose one-shot predicate
  /// has not yet matched a message.  A finished campaign can assert this is
  /// zero to prove every scripted drop actually fired.
  [[nodiscard]] std::size_t unfired_targeted_drops() const;

  /// Executed actions, in execution order, as "t=<time> <action>" lines.
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  void validate() const;
  void execute(const FaultAction& action);

  runtime::Cluster& cluster_;
  FaultPlan plan_;
  NodeHook crash_hook_;
  NodeHook restart_hook_;
  Observer observer_;
  bool started_ = false;
  std::size_t executed_ = 0;
  std::vector<sim::EventId> events_;
  std::vector<std::uint64_t> one_shot_ids_;  ///< From lose-next actions.
  std::vector<std::string> log_;
};

}  // namespace dmx::fault
