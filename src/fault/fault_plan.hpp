// Scripted fault plans: the vocabulary of the chaos campaign engine.
//
// A FaultPlan is an ordered, sim-time-scheduled list of fault actions —
// crash a node, restart it, drop the next message of a kind, raise a loss
// rate over a window, partition the network into groups, heal it — that the
// CampaignRunner executes against a live Cluster.  Plans are parseable from
// a compact spec string so the CLI (and CI) can run the paper's §6 failure
// scenarios as seeded, repeatable experiments:
//
//   "t=5000 crash 3; t=9000 restart 3; t=12000 lose-next PRIVILEGE"
//
// Grammar (actions separated by ';', tokens by whitespace):
//
//   action := 't=' TIME verb
//   verb   := 'crash' NODE
//           | 'restart' NODE
//           | 'lose-next' TYPE ['from=' NODE] ['to=' NODE]
//           | 'loss' (TYPE | '*') '=' P ['until=' TIME]
//           | 'partition' GROUP ('|' GROUP)*     (GROUP = NODE[,NODE...])
//           | 'heal'
//
// TIME and P are doubles (sim time units / probability in [0,1]); NODE is a
// 0-based node index; TYPE is a registered message-type name ("PRIVILEGE").
// A 'loss' with 'until=' reverts at that time: a per-type window clears the
// override (back to the global rate), a global ('*') window restores the
// global rate captured when the window opened.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dmx::fault {

struct FaultAction {
  enum class Kind {
    kCrash,
    kRestart,
    kLoseNext,
    kSetLoss,
    kPartition,
    kHeal,
  };

  double at = 0.0;  ///< Absolute sim time (units) the action fires.
  Kind kind = Kind::kHeal;
  int node = -1;          ///< crash / restart target.
  std::string msg_type;   ///< lose-next / loss; "*" = global loss.
  int src = -1;           ///< lose-next 'from=' filter (-1 = any).
  int dst = -1;           ///< lose-next 'to=' filter (-1 = any).
  double probability = 0.0;  ///< loss rate.
  double until = -1.0;       ///< loss window end (< 0 = open-ended).
  std::vector<std::vector<int>> groups;  ///< partition groups.

  /// True for actions that disturb the system (open a recovery window):
  /// crash, lose-next, partition, and loss with p > 0.  restart / heal /
  /// loss 0 are healing actions.
  [[nodiscard]] bool disruptive() const;

  /// Round-trips through parse(): "t=5000 crash 3".
  [[nodiscard]] std::string describe() const;
};

/// An ordered fault schedule.  Actions are kept sorted by time (stable for
/// equal times, preserving spec order).
struct FaultPlan {
  std::vector<FaultAction> actions;

  [[nodiscard]] bool empty() const { return actions.empty(); }
  [[nodiscard]] std::size_t size() const { return actions.size(); }

  /// Parse the compact spec grammar above; throws std::invalid_argument
  /// with a pointed message on any syntax error.  Message-type names are
  /// NOT validated here (the registry may not be populated yet); the
  /// CampaignRunner validates them against the MsgKindRegistry at start().
  static FaultPlan parse(std::string_view spec);

  /// Spec string that parses back to this plan.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace dmx::fault
