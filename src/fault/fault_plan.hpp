// Scripted fault plans: the vocabulary of the chaos campaign engine.
//
// A FaultPlan is an ordered, sim-time-scheduled list of fault actions —
// crash a node, restart it, drop the next message of a kind, raise a loss
// rate over a window, partition the network into groups, heal it — that the
// CampaignRunner executes against a live Cluster.  Plans are parseable from
// a compact spec string so the CLI (and CI) can run the paper's §6 failure
// scenarios as seeded, repeatable experiments:
//
//   "t=5000 crash 3; t=9000 restart 3; t=12000 lose-next PRIVILEGE"
//
// Grammar (actions separated by ';', tokens by whitespace):
//
//   action := 't=' TIME verb
//           | 'reorder-window' 't=' TIME '..' TIME
//   verb   := 'crash' NODE
//           | 'restart' NODE
//           | 'lose-next' TYPE ['from=' NODE] ['to=' NODE]
//           | 'dup-next' TYPE ['from=' NODE] ['to=' NODE]
//           | 'loss' (TYPE | '*') '=' P ['until=' TIME]
//           | 'partition' GROUP ('|' GROUP)*     (GROUP = NODE[,NODE...])
//           | 'heal'
//
// TIME and P are doubles (sim time units / probability in [0,1]); NODE is a
// 0-based node index; TYPE is a registered message-type name ("PRIVILEGE").
// A 'loss' with 'until=' reverts at that time: a per-type window clears the
// override (back to the global rate), a global ('*') window restores the
// global rate captured when the window opened.
//
// 'dup-next' mirrors 'lose-next' but injects one extra copy of the matched
// message instead of dropping it; stack several to get several duplicates
// of the same frame.  'reorder-window t=<a>..<b>' is verb-first: the window
// start is the fire time, and while it is open the network routes alternate
// messages over a slower path so they overtake their successors (see
// FaultInjector::reorder_penalty).  Both exist to exercise a reliable
// transport's dedup and resequencing machinery.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dmx::fault {

struct FaultAction {
  enum class Kind {
    kCrash,
    kRestart,
    kLoseNext,
    kDupNext,
    kSetLoss,
    kReorderWindow,
    kPartition,
    kHeal,
  };

  double at = 0.0;  ///< Absolute sim time (units) the action fires.
  Kind kind = Kind::kHeal;
  int node = -1;          ///< crash / restart target.
  std::string msg_type;   ///< lose-next / dup-next / loss; "*" = global loss.
  int src = -1;           ///< lose-next / dup-next 'from=' filter (-1 = any).
  int dst = -1;           ///< lose-next / dup-next 'to=' filter (-1 = any).
  double probability = 0.0;  ///< loss rate.
  double until = -1.0;       ///< loss / reorder window end (< 0 = open-ended).
  std::vector<std::vector<int>> groups;  ///< partition groups.

  /// True for actions that disturb the system (open a recovery window):
  /// crash, lose-next, partition, reorder-window, and loss with p > 0.
  /// restart / heal / loss 0 are healing actions, and dup-next only adds an
  /// extra copy — nothing an algorithm was waiting on goes missing.
  [[nodiscard]] bool disruptive() const;

  /// Round-trips through parse(): "t=5000 crash 3".
  [[nodiscard]] std::string describe() const;
};

/// An ordered fault schedule.  Actions are kept sorted by time (stable for
/// equal times, preserving spec order).
struct FaultPlan {
  std::vector<FaultAction> actions;

  [[nodiscard]] bool empty() const { return actions.empty(); }
  [[nodiscard]] std::size_t size() const { return actions.size(); }

  /// Parse the compact spec grammar above; throws std::invalid_argument
  /// with a pointed message on any syntax error.  Message-type names are
  /// NOT validated here (the registry may not be populated yet); the
  /// CampaignRunner validates them against the MsgKindRegistry at start().
  static FaultPlan parse(std::string_view spec);

  /// Spec string that parses back to this plan.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace dmx::fault
