#include "workload/generator.hpp"

#include <stdexcept>

namespace dmx::workload {

OpenLoopGenerator::OpenLoopGenerator(
    sim::Simulator& sim, std::vector<mutex::CsDriver*> drivers,
    std::vector<std::unique_ptr<ArrivalProcess>> processes,
    std::uint64_t total_requests, std::uint64_t seed)
    : sim_(sim), drivers_(std::move(drivers)), processes_(std::move(processes)),
      per_node_count_(drivers_.size(), 0), stopped_(drivers_.size(), false),
      total_requests_(total_requests) {
  if (drivers_.size() != processes_.size()) {
    throw std::invalid_argument(
        "OpenLoopGenerator: drivers/processes size mismatch");
  }
  sim::Rng root(seed);
  rngs_.reserve(drivers_.size());
  for (std::size_t i = 0; i < drivers_.size(); ++i) {
    if (drivers_[i] == nullptr || processes_[i] == nullptr) {
      throw std::invalid_argument("OpenLoopGenerator: null driver or process");
    }
    rngs_.push_back(root.fork());
  }
}

void OpenLoopGenerator::start() {
  for (std::size_t i = 0; i < drivers_.size(); ++i) schedule_next(i);
}

void OpenLoopGenerator::stop_node(std::size_t node) {
  if (node >= stopped_.size()) {
    throw std::out_of_range("OpenLoopGenerator::stop_node: bad node index");
  }
  stopped_[node] = true;
}

void OpenLoopGenerator::schedule_next(std::size_t node) {
  if (submitted_ >= total_requests_ || stopped_[node]) return;
  const sim::SimTime gap = processes_[node]->next_gap(rngs_[node]);
  sim_.schedule_after(gap, [this, node] {
    if (submitted_ >= total_requests_ || stopped_[node]) return;
    ++submitted_;
    const std::uint64_t k = ++per_node_count_[node];
    const int prio = priority_fn_ ? priority_fn_(node, k) : 0;
    drivers_[node]->submit(prio);
    schedule_next(node);
  });
}

}  // namespace dmx::workload
