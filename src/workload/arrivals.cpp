#include "workload/arrivals.hpp"

namespace dmx::workload {

BurstyArrivals::BurstyArrivals(double on_rate, sim::SimTime mean_on,
                               sim::SimTime mean_off)
    : on_rate_(on_rate), mean_on_(mean_on), mean_off_(mean_off) {
  if (on_rate <= 0.0) {
    throw std::invalid_argument("BurstyArrivals: on_rate <= 0");
  }
  if (mean_on <= sim::SimTime::zero() || mean_off < sim::SimTime::zero()) {
    throw std::invalid_argument("BurstyArrivals: bad period durations");
  }
}

sim::SimTime BurstyArrivals::next_gap(sim::Rng& rng) {
  sim::SimTime gap = sim::SimTime::zero();
  for (;;) {
    if (remaining_on_ <= sim::SimTime::zero()) {
      // Start a new cycle: an OFF pause then an ON burst window.
      gap += rng.exponential_time(mean_off_);
      remaining_on_ = rng.exponential_time(mean_on_);
    }
    const sim::SimTime candidate =
        sim::SimTime::units(rng.exponential(on_rate_));
    if (candidate <= remaining_on_) {
      remaining_on_ -= candidate;
      return gap + candidate;
    }
    // Burst window ended before the next arrival; spend it and loop.
    gap += remaining_on_;
    remaining_on_ = sim::SimTime::zero();
  }
}

double BurstyArrivals::mean_rate() const {
  const double on = mean_on_.to_units();
  const double off = mean_off_.to_units();
  return on_rate_ * on / (on + off);
}

}  // namespace dmx::workload
