// Zipf-skewed resource popularity for multi-resource lock workloads.
//
// Production lock traffic is never uniform: a handful of hot keys absorb
// most of the demand while a long tail stays nearly idle (the classic
// Zipf(s) shape web caches and key-value stores are benchmarked with).  The
// sharded lock-service scenario draws each client demand's target resource
// from this distribution, so shard 0 is the hottest and the tail exercises
// the cheap cold-shard protocols.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace dmx::workload {

/// Draws ranks 0..K-1 with probability proportional to 1/(rank+1)^s.
/// s = 0 degenerates to uniform; s = 1 is the canonical Zipf web-traffic
/// skew.  Sampling is a binary search over the precomputed cumulative
/// weights, so a draw costs O(log K) with zero allocation.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n_ranks, double skew);

  [[nodiscard]] std::size_t ranks() const { return cumulative_.size(); }
  [[nodiscard]] double skew() const { return skew_; }

  /// Probability mass of one rank (normalized).
  [[nodiscard]] double probability(std::size_t rank) const;

  /// One draw: a rank in [0, ranks()).
  [[nodiscard]] std::size_t pick(sim::Rng& rng) const;

 private:
  double skew_;
  std::vector<double> cumulative_;  ///< Normalized inclusive prefix sums.
};

/// THE per-resource demand split for a lock-service run: `total` Zipf(s)
/// draws over `n_resources` ranks, tallied per rank, from a dedicated
/// Rng(seed).  Every consumer of the split (the shard scheduler, the bench
/// tables, the manifest) calls this one function so a (seed, K, s, total)
/// tuple always yields byte-identical demand vectors — the property the
/// --jobs byte-equality gates and the Zipf determinism pins rely on.
[[nodiscard]] std::vector<std::uint64_t> zipf_demand_vector(
    std::size_t n_resources, double skew, std::uint64_t total,
    std::uint64_t seed);

}  // namespace dmx::workload
