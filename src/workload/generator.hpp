// Open-loop workload generator.
//
// Drives each node's CsDriver with an independent arrival process (each
// node gets a forked RNG stream) until a global submission budget is
// exhausted.  The simulation then drains: every submitted request is served
// before the run ends, which doubles as a liveness check.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mutex/cs_driver.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/arrivals.hpp"

namespace dmx::workload {

class OpenLoopGenerator {
 public:
  /// Maps a (node, per-node submission index) to a request priority.
  using PriorityFn = std::function<int(std::size_t node, std::uint64_t k)>;

  /// One arrival process per node; `total_requests` is the global budget.
  OpenLoopGenerator(sim::Simulator& sim,
                    std::vector<mutex::CsDriver*> drivers,
                    std::vector<std::unique_ptr<ArrivalProcess>> processes,
                    std::uint64_t total_requests, std::uint64_t seed);

  OpenLoopGenerator(const OpenLoopGenerator&) = delete;
  OpenLoopGenerator& operator=(const OpenLoopGenerator&) = delete;

  void set_priority_fn(PriorityFn fn) { priority_fn_ = std::move(fn); }

  /// Schedule the first arrival of every node.  Call before Simulator::run.
  void start();

  /// Permanently stop a node's arrivals (e.g. it crashed).
  void stop_node(std::size_t node);

  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t budget() const { return total_requests_; }

 private:
  void schedule_next(std::size_t node);

  sim::Simulator& sim_;
  std::vector<mutex::CsDriver*> drivers_;
  std::vector<std::unique_ptr<ArrivalProcess>> processes_;
  std::vector<sim::Rng> rngs_;
  std::vector<std::uint64_t> per_node_count_;
  std::vector<bool> stopped_;
  PriorityFn priority_fn_;
  std::uint64_t total_requests_;
  std::uint64_t submitted_ = 0;
};

}  // namespace dmx::workload
