// Closed-loop workload: each client thinks, requests, executes, thinks again.
//
// The open-loop Poisson model (the paper's) keeps submitting regardless of
// backlog; a closed-loop model — each client cycles think -> request -> CS —
// is the classic alternative (machine-repairman style) and keeps the system
// at a bounded population of at most one pending request per client, which
// matches the paper's heavy-load analysis ("all nodes will have at least
// one pending request") exactly when think time is zero.
//
// Two client bindings:
//  * the historical one drives mutex::CsDriver instances directly (one
//    client per driver, completion detected via the driver callback);
//  * the generic one drives opaque submit functions and is told about
//    completions via notify_complete(client) — this is how the sharded
//    lock-service scenario runs closed loops against the LockSpace API
//    (acquire + on_released hook) without reaching into its drivers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mutex/cs_driver.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/arrivals.hpp"

namespace dmx::workload {

class ClosedLoopGenerator {
 public:
  /// One client's demand entry point (e.g. LockSpace::acquire bound to a
  /// fixed node+resource).
  using SubmitFn = std::function<void()>;

  /// Historical binding: each driver is one client; a client resubmits
  /// `think` after each CS completion (the generator owns the drivers'
  /// completion callbacks).  Stops after `total_requests` global
  /// submissions.
  ClosedLoopGenerator(sim::Simulator& sim,
                      std::vector<mutex::CsDriver*> drivers,
                      std::vector<std::unique_ptr<ArrivalProcess>> think,
                      std::uint64_t total_requests, std::uint64_t seed);

  /// Generic binding: each submit function is one client; the caller must
  /// call notify_complete(client) when that client's demand finishes (e.g.
  /// from a LockSpace on_released hook).
  ClosedLoopGenerator(sim::Simulator& sim, std::vector<SubmitFn> submit,
                      std::vector<std::unique_ptr<ArrivalProcess>> think,
                      std::uint64_t total_requests, std::uint64_t seed);

  ClosedLoopGenerator(const ClosedLoopGenerator&) = delete;
  ClosedLoopGenerator& operator=(const ClosedLoopGenerator&) = delete;

  void start();
  void stop_node(std::size_t node);

  /// Completion signal for the generic binding: client `client` finished
  /// its outstanding demand; think, then resubmit (budget permitting).
  void notify_complete(std::size_t client);

  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::size_t clients() const { return submit_.size(); }

 private:
  void think_then_submit(std::size_t node);

  sim::Simulator& sim_;
  std::vector<SubmitFn> submit_;
  std::vector<std::unique_ptr<ArrivalProcess>> think_;
  std::vector<sim::Rng> rngs_;
  std::vector<bool> stopped_;
  std::uint64_t total_requests_;
  std::uint64_t submitted_ = 0;
};

}  // namespace dmx::workload
