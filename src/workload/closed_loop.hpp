// Closed-loop workload: each node thinks, requests, executes, thinks again.
//
// The open-loop Poisson model (the paper's) keeps submitting regardless of
// backlog; a closed-loop model — each node cycles think -> request -> CS —
// is the classic alternative (machine-repairman style) and keeps the system
// at a bounded population of at most one pending request per node, which
// matches the paper's heavy-load analysis ("all nodes will have at least
// one pending request") exactly when think time is zero.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mutex/cs_driver.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/arrivals.hpp"

namespace dmx::workload {

class ClosedLoopGenerator {
 public:
  /// Each node draws its think gap from its own process; a node resubmits
  /// `think` after each CS completion.  Stops after `total_requests` global
  /// submissions.
  ClosedLoopGenerator(sim::Simulator& sim,
                      std::vector<mutex::CsDriver*> drivers,
                      std::vector<std::unique_ptr<ArrivalProcess>> think,
                      std::uint64_t total_requests, std::uint64_t seed);

  ClosedLoopGenerator(const ClosedLoopGenerator&) = delete;
  ClosedLoopGenerator& operator=(const ClosedLoopGenerator&) = delete;

  void start();
  void stop_node(std::size_t node);

  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }

 private:
  void think_then_submit(std::size_t node);

  sim::Simulator& sim_;
  std::vector<mutex::CsDriver*> drivers_;
  std::vector<std::unique_ptr<ArrivalProcess>> think_;
  std::vector<sim::Rng> rngs_;
  std::vector<bool> stopped_;
  std::uint64_t total_requests_;
  std::uint64_t submitted_ = 0;
};

}  // namespace dmx::workload
