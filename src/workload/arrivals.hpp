// Arrival processes for critical-section demand.
//
// The paper's simulation drives each node with a Poisson process of rate
// lambda requests/second ("each of the nodes generated requests using a
// Poisson probability distribution with the same arrival rate").  We provide
// that plus deterministic, uniform and bursty (two-state on/off) processes
// for robustness studies.
#pragma once

#include <memory>
#include <stdexcept>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dmx::workload {

/// Generates successive interarrival gaps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual sim::SimTime next_gap(sim::Rng& rng) = 0;
  /// Long-run arrival rate in requests per time unit (for reporting).
  [[nodiscard]] virtual double mean_rate() const = 0;
};

/// Poisson arrivals: exponential interarrival gaps with the given rate.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate) : rate_(rate) {
    if (rate <= 0.0) throw std::invalid_argument("PoissonArrivals: rate <= 0");
  }
  sim::SimTime next_gap(sim::Rng& rng) override {
    return sim::SimTime::units(rng.exponential(rate_));
  }
  [[nodiscard]] double mean_rate() const override { return rate_; }

 private:
  double rate_;
};

/// Fixed-interval arrivals.
class DeterministicArrivals final : public ArrivalProcess {
 public:
  explicit DeterministicArrivals(sim::SimTime interval) : interval_(interval) {
    if (interval <= sim::SimTime::zero()) {
      throw std::invalid_argument("DeterministicArrivals: interval <= 0");
    }
  }
  sim::SimTime next_gap(sim::Rng&) override { return interval_; }
  [[nodiscard]] double mean_rate() const override {
    return 1.0 / interval_.to_units();
  }

 private:
  sim::SimTime interval_;
};

/// Interarrival gaps uniform in [lo, hi).
class UniformArrivals final : public ArrivalProcess {
 public:
  UniformArrivals(sim::SimTime lo, sim::SimTime hi) : lo_(lo), hi_(hi) {
    if (lo <= sim::SimTime::zero() || hi <= lo) {
      throw std::invalid_argument("UniformArrivals: need 0 < lo < hi");
    }
  }
  sim::SimTime next_gap(sim::Rng& rng) override {
    return rng.uniform_time(lo_, hi_);
  }
  [[nodiscard]] double mean_rate() const override {
    return 2.0 / (lo_.to_units() + hi_.to_units());
  }

 private:
  sim::SimTime lo_;
  sim::SimTime hi_;
};

/// Two-state Markov-modulated on/off arrivals: Poisson at `on_rate` during
/// exponentially distributed ON periods, silent during OFF periods.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double on_rate, sim::SimTime mean_on, sim::SimTime mean_off);
  sim::SimTime next_gap(sim::Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;

 private:
  double on_rate_;
  sim::SimTime mean_on_;
  sim::SimTime mean_off_;
  sim::SimTime remaining_on_ = sim::SimTime::zero();
};

}  // namespace dmx::workload
