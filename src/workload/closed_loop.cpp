#include "workload/closed_loop.hpp"

#include <stdexcept>

namespace dmx::workload {

ClosedLoopGenerator::ClosedLoopGenerator(
    sim::Simulator& sim, std::vector<mutex::CsDriver*> drivers,
    std::vector<std::unique_ptr<ArrivalProcess>> think,
    std::uint64_t total_requests, std::uint64_t seed)
    : sim_(sim), drivers_(std::move(drivers)), think_(std::move(think)),
      stopped_(drivers_.size(), false), total_requests_(total_requests) {
  if (drivers_.size() != think_.size()) {
    throw std::invalid_argument("ClosedLoopGenerator: size mismatch");
  }
  sim::Rng root(seed);
  for (std::size_t i = 0; i < drivers_.size(); ++i) {
    if (drivers_[i] == nullptr || think_[i] == nullptr) {
      throw std::invalid_argument("ClosedLoopGenerator: null entry");
    }
    rngs_.push_back(root.fork());
    // Resubmission loop: the next think period starts when a CS completes.
    const std::size_t node = i;
    drivers_[i]->set_completion_callback(
        [this, node](const mutex::CsRequest&) { think_then_submit(node); });
  }
}

void ClosedLoopGenerator::start() {
  for (std::size_t i = 0; i < drivers_.size(); ++i) think_then_submit(i);
}

void ClosedLoopGenerator::stop_node(std::size_t node) {
  if (node >= stopped_.size()) {
    throw std::out_of_range("ClosedLoopGenerator::stop_node");
  }
  stopped_[node] = true;
}

void ClosedLoopGenerator::think_then_submit(std::size_t node) {
  if (submitted_ >= total_requests_ || stopped_[node]) return;
  const sim::SimTime gap = think_[node]->next_gap(rngs_[node]);
  sim_.schedule_after(gap, [this, node] {
    if (submitted_ >= total_requests_ || stopped_[node]) return;
    ++submitted_;
    drivers_[node]->submit();
  });
}

}  // namespace dmx::workload
