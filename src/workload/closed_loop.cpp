#include "workload/closed_loop.hpp"

#include <stdexcept>

namespace dmx::workload {

namespace {

std::vector<ClosedLoopGenerator::SubmitFn> wrap_drivers(
    const std::vector<mutex::CsDriver*>& drivers) {
  std::vector<ClosedLoopGenerator::SubmitFn> submit;
  submit.reserve(drivers.size());
  for (mutex::CsDriver* d : drivers) {
    if (d == nullptr) {
      throw std::invalid_argument("ClosedLoopGenerator: null driver");
    }
    submit.emplace_back([d] { d->submit(); });
  }
  return submit;
}

}  // namespace

ClosedLoopGenerator::ClosedLoopGenerator(
    sim::Simulator& sim, std::vector<mutex::CsDriver*> drivers,
    std::vector<std::unique_ptr<ArrivalProcess>> think,
    std::uint64_t total_requests, std::uint64_t seed)
    : ClosedLoopGenerator(sim, wrap_drivers(drivers), std::move(think),
                          total_requests, seed) {
  // Resubmission loop: the next think period starts when a CS completes.
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    const std::size_t client = i;
    drivers[i]->set_completion_callback(
        [this, client](const mutex::CsRequest&) { notify_complete(client); });
  }
}

ClosedLoopGenerator::ClosedLoopGenerator(
    sim::Simulator& sim, std::vector<SubmitFn> submit,
    std::vector<std::unique_ptr<ArrivalProcess>> think,
    std::uint64_t total_requests, std::uint64_t seed)
    : sim_(sim), submit_(std::move(submit)), think_(std::move(think)),
      stopped_(submit_.size(), false), total_requests_(total_requests) {
  if (submit_.size() != think_.size()) {
    throw std::invalid_argument("ClosedLoopGenerator: size mismatch");
  }
  sim::Rng root(seed);
  for (std::size_t i = 0; i < submit_.size(); ++i) {
    if (!submit_[i] || think_[i] == nullptr) {
      throw std::invalid_argument("ClosedLoopGenerator: null entry");
    }
    rngs_.push_back(root.fork());
  }
}

void ClosedLoopGenerator::start() {
  for (std::size_t i = 0; i < submit_.size(); ++i) think_then_submit(i);
}

void ClosedLoopGenerator::stop_node(std::size_t node) {
  if (node >= stopped_.size()) {
    throw std::out_of_range("ClosedLoopGenerator::stop_node");
  }
  stopped_[node] = true;
}

void ClosedLoopGenerator::notify_complete(std::size_t client) {
  if (client >= submit_.size()) {
    throw std::out_of_range("ClosedLoopGenerator::notify_complete");
  }
  think_then_submit(client);
}

void ClosedLoopGenerator::think_then_submit(std::size_t node) {
  if (submitted_ >= total_requests_ || stopped_[node]) return;
  const sim::SimTime gap = think_[node]->next_gap(rngs_[node]);
  sim_.schedule_after(gap, [this, node] {
    if (submitted_ >= total_requests_ || stopped_[node]) return;
    ++submitted_;
    submit_[node]();
  });
}

}  // namespace dmx::workload
