#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmx::workload {

ZipfPicker::ZipfPicker(std::size_t n_ranks, double skew) : skew_(skew) {
  if (n_ranks == 0) {
    throw std::invalid_argument("ZipfPicker: need at least one rank");
  }
  if (skew < 0.0) {
    throw std::invalid_argument("ZipfPicker: skew must be >= 0");
  }
  cumulative_.resize(n_ranks);
  double running = 0.0;
  for (std::size_t r = 0; r < n_ranks; ++r) {
    running += std::pow(static_cast<double>(r + 1), -skew);
    cumulative_[r] = running;
  }
  const double norm = running;
  for (double& c : cumulative_) c /= norm;
  cumulative_.back() = 1.0;  // guard against rounding in the last bucket
}

double ZipfPicker::probability(std::size_t rank) const {
  if (rank >= cumulative_.size()) {
    throw std::out_of_range("ZipfPicker::probability: rank out of range");
  }
  return rank == 0 ? cumulative_[0] : cumulative_[rank] - cumulative_[rank - 1];
}

std::size_t ZipfPicker::pick(sim::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return it == cumulative_.end()
             ? cumulative_.size() - 1
             : static_cast<std::size_t>(it - cumulative_.begin());
}

std::vector<std::uint64_t> zipf_demand_vector(std::size_t n_resources,
                                              double skew,
                                              std::uint64_t total,
                                              std::uint64_t seed) {
  const ZipfPicker picker(n_resources, skew);
  sim::Rng rng(seed);
  std::vector<std::uint64_t> demand(n_resources, 0);
  for (std::uint64_t i = 0; i < total; ++i) ++demand[picker.pick(rng)];
  return demand;
}

}  // namespace dmx::workload
