// Configuration of one exhaustive small-N verification run.
//
// A VerifyConfig describes a *closed* system: every node submits its whole
// demand at t=0 (no stochastic arrivals, no seeds — the explorer itself is
// the only source of nondeterminism), message delay and CS execution time
// are constants, and an optional fault plan contributes crash / restart /
// lose-next *choices* rather than timed actions.  The explorer then owns
// every remaining decision: which pending delivery, timer or CS exit fires
// next, and when each fault choice strikes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mutex/params.hpp"

namespace dmx::verify {

struct VerifyConfig {
  std::string algorithm = "arbiter-tp";
  std::size_t n_nodes = 3;            ///< Exhaustive exploration: keep <= 4.
  std::uint64_t requests_per_node = 1;
  double t_msg = 0.1;                 ///< Constant network delay (units).
  double t_exec = 0.1;                ///< Constant CS hold time (units).
  mutex::ParamSet params;             ///< Algorithm parameters.

  /// Fault-plan spec (fault/fault_plan.hpp grammar).  Only the crash,
  /// restart, lose-next, partition and heal verbs are allowed; the t= times
  /// are parsed but ignored — each action becomes an always-available
  /// *choice* the explorer may take at any reachable state (or never; a
  /// heal choice is enabled only while a cut is in force).
  std::string fault_plan;

  /// Time-window abstraction: a pending event is an enabled choice iff its
  /// scheduled time is within `time_slack` units of the earliest pending
  /// event.  0 explores only same-instant races (pure FIFO tie-breaks),
  /// negative values explore full asynchrony (any pending event may fire
  /// next, as if every delay were arbitrary).  The default covers one
  /// message delay plus scheduling jitter around it.
  double time_slack = 0.25;

  /// Model links as FIFO: only the oldest in-flight message per (src, dst)
  /// link is an enabled choice.  Matches the constant-delay network the
  /// harness runs (which never reorders a link); turn off to explore
  /// per-link reordering too.
  bool fifo_links = true;

  /// Run every node behind the reliable transport (acks, retransmission,
  /// exactly-once in-order delivery) with jitter disabled, so lose-next
  /// choices attack transport frames and the explorer proves the
  /// reliability layer itself — not the protocol's own loss tolerance.
  bool reliable = false;

  std::size_t max_depth = 48;         ///< Truncate schedules beyond this.
  std::uint64_t max_schedules = 2'000'000;  ///< Exploration budget.

  /// Empty when well-formed; one message per problem otherwise.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// validate(), throwing std::invalid_argument on any problem.
  void check() const;
};

}  // namespace dmx::verify
