#include "verify/explorer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "verify/choice.hpp"
#include "verify/world.hpp"

namespace dmx::verify {

namespace {

/// One committed decision level of the DFS.
struct Frame {
  std::vector<Choice> enabled;
  std::vector<char> sleeping;  ///< Inherited sleep set (indices into enabled).
  std::vector<char> done;      ///< Subtrees already fully explored.
  std::size_t chosen = 0;

  [[nodiscard]] bool select_first(std::size_t from = 0) {
    for (std::size_t i = from; i < enabled.size(); ++i) {
      if (sleeping[i] == 0 && done[i] == 0) {
        chosen = i;
        return true;
      }
    }
    return false;
  }
};

}  // namespace

VerifyResult explore(const VerifyConfig& cfg) {
  cfg.check();
  VerifyResult res;
  std::vector<Frame> stack;
  bool capped = false;

  auto path_keys = [&stack]() {
    std::vector<std::string> keys;
    keys.reserve(stack.size());
    for (const Frame& f : stack) keys.push_back(f.enabled[f.chosen].key());
    return keys;
  };

  while (true) {
    // ---- one execution: rebuild the committed prefix statelessly ----
    // The last frame holds the branch's freshly selected sibling, which has
    // never been executed: a violation there is a genuine finding.  A
    // violation at any earlier frame re-executes a choice that was clean
    // the first time, which can only mean the world is nondeterministic.
    World world(cfg);
    for (std::size_t depth = 0; depth < stack.size(); ++depth) {
      const Frame& f = stack[depth];
      std::optional<Choice> c = world.find_enabled(f.enabled[f.chosen].key());
      if (!c.has_value()) {
        throw std::logic_error(
            "verify: replay diverged — a committed choice is no longer "
            "enabled (nondeterministic world?)");
      }
      world.apply(*c);
      ++res.stats.replayed;
      if (std::optional<mutex::Violation> v = world.check()) {
        if (depth + 1 == stack.size()) {
          ++res.stats.schedules;
          res.violation = std::move(v);
          res.counterexample = path_keys();
          res.diagnosis = world.debug_dump();
          return res;
        }
        std::string msg =
            "verify: a violation appeared while replaying a clean prefix: " +
            v->describe() + "\nprefix:";
        for (const std::string& k : path_keys()) msg += "\n  " + k;
        throw std::logic_error(msg);
      }
    }
    // Sleep set inherited by the state the prefix just reached: siblings
    // already explored (or slept) at the parent stay asleep across every
    // transition independent of them.
    std::vector<Choice> sleep;
    if (!stack.empty()) {
      const Frame& f = stack.back();
      const Choice& taken = f.enabled[f.chosen];
      for (std::size_t i = 0; i < f.enabled.size(); ++i) {
        if (i == f.chosen) continue;
        if ((f.sleeping[i] != 0 || f.done[i] != 0) &&
            f.enabled[i].independent_with(taken)) {
          sleep.push_back(f.enabled[i]);
        }
      }
    }

    // ---- extend the execution until it ends ----
    while (true) {
      if (world.quiescent()) {
        ++res.stats.schedules;
        ++res.stats.terminal;
        break;
      }
      std::vector<Choice> enabled = world.enabled();
      if (enabled.empty()) {
        ++res.stats.schedules;
        if (std::optional<mutex::Violation> v = world.terminal_check()) {
          res.violation = std::move(v);
          res.counterexample = path_keys();
          res.diagnosis = world.debug_dump();
          return res;
        }
        ++res.stats.terminal;
        break;
      }
      if (stack.size() >= cfg.max_depth) {
        ++res.stats.schedules;
        ++res.stats.truncated;
        break;
      }
      Frame f;
      f.enabled = std::move(enabled);
      f.sleeping.assign(f.enabled.size(), 0);
      f.done.assign(f.enabled.size(), 0);
      for (std::size_t i = 0; i < f.enabled.size(); ++i) {
        for (const Choice& z : sleep) {
          if (same_choice(f.enabled[i], z)) {
            f.sleeping[i] = 1;
            ++res.stats.sleep_pruned;
            break;
          }
        }
      }
      res.stats.max_frontier =
          std::max(res.stats.max_frontier, f.enabled.size());
      if (!f.select_first()) {
        // Every enabled choice is asleep: this whole subtree commutes with
        // schedules explored elsewhere.
        ++res.stats.schedules;
        ++res.stats.sleep_blocked;
        break;
      }
      const Choice taken = f.enabled[f.chosen];
      world.apply(taken);
      ++res.stats.transitions;
      std::vector<Choice> next_sleep;
      for (std::size_t i = 0; i < f.enabled.size(); ++i) {
        if (f.sleeping[i] != 0 && i != f.chosen &&
            f.enabled[i].independent_with(taken)) {
          next_sleep.push_back(f.enabled[i]);
        }
      }
      stack.push_back(std::move(f));
      res.stats.max_depth_reached =
          std::max(res.stats.max_depth_reached, stack.size());
      sleep = std::move(next_sleep);
      if (std::optional<mutex::Violation> v = world.check()) {
        ++res.stats.schedules;
        res.violation = std::move(v);
        res.counterexample = path_keys();
        res.diagnosis = world.debug_dump();
        return res;
      }
    }

    // ---- backtrack to the next unexplored branch ----
    if (res.stats.schedules >= cfg.max_schedules) capped = true;
    bool advanced = false;
    while (!stack.empty()) {
      Frame& f = stack.back();
      f.done[f.chosen] = 1;
      if (!capped && f.select_first(f.chosen + 1)) {
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) {
      res.stats.complete = !capped;
      return res;
    }
  }
}

}  // namespace dmx::verify
