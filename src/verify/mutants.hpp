// Deliberately broken token algorithms: the explorer's mutation tests.
//
// A model checker that has never caught a bug proves nothing.  This module
// registers a small, readable token-passing algorithm (a naive
// Suzuki–Kasami-style broadcast scheme) in four flavours:
//
//   mutant-naive-token       correct control: verifies clean, fault-free
//   mutant-token-regen       a watchdog fabricates a second token while the
//                            real one is still out -> mutual exclusion /
//                            token uniqueness violations
//   mutant-release-amnesia   node 0 parks the token forever after its first
//                            release -> starvation of every other requester
//   mutant-amnesiac-restart  node 0 resurrects "its" token from its restart
//                            hook even when it crashed without holding it
//                            -> token duplication, reachable only through a
//                            crash + restart choice sequence
//
// Plus one mutation of a *real* baseline (baselines/path_reversal.hpp):
//
//   mutant-no-reversal       Naimi–Trehel that skips the probable-owner flip
//                            when a REQUEST crosses a node: the old root
//                            gives the token away but stays "root", so later
//                            requests park behind it forever -> starvation
//
// The verify test suite asserts that exploration finds each seeded bug and
// that the recorded counterexamples replay byte-identically.
#pragma once

namespace dmx::verify {

/// Registers the mutant algorithms in mutex::Registry (idempotent).
/// Numeric parameter "regen_delay" (default 0.3) sets the fabrication
/// watchdog of mutant-token-regen; keep it within time_slack of a message
/// delay or the racing timer is never an enabled choice.
void register_mutant_algorithms();

}  // namespace dmx::verify
