// Counterexample files: serialized violating schedules (dmx.cex.v1).
//
// A counterexample is the full verification config plus the ordered list of
// choice keys that drove the world into a violation.  Because a World is a
// closed deterministic system, re-applying the same keys reproduces the
// violating execution exactly — same virtual times, same message contents,
// same monitor reports — so a replay with an attached trace sink yields a
// byte-identical structured trace of the bug on every run, ready for
// dmx_trace / Perfetto.
//
// Format (line-oriented text; a line starting with '#' is a comment —
// trailing comments are not supported because choice keys contain '#'):
//
//   dmx.cex.v1
//   algo arbiter-tp
//   n 3
//   requests 1
//   t_msg 0.1
//   t_exec 0.1
//   slack 0.25
//   fifo 1
//   depth 48
//   param recovery 1            (repeatable)
//   fault t=0 crash 1           (optional, FaultPlan spec)
//   violation mutual-exclusion  (optional, informational)
//   choice d 1>0 REQUEST #0     (ordered)
//   choice x 0 #1
//   end
//
// Doubles are printed with max_digits10 so the parsed config is bit-equal
// to the one that produced the file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mutex/violation.hpp"
#include "obs/sink.hpp"
#include "verify/config.hpp"

namespace dmx::verify {

struct Counterexample {
  VerifyConfig config;
  std::string violation_kind;        ///< Kind name; informational.
  std::vector<std::string> choices;  ///< Choice keys, in schedule order.

  /// Serializes to the dmx.cex.v1 text format.
  [[nodiscard]] std::string to_string() const;

  /// Parses the text format; throws std::invalid_argument on malformed
  /// input (with the offending line in the message).
  static Counterexample parse(std::string_view text);
};

struct ReplayResult {
  std::size_t steps = 0;  ///< Choices successfully applied.
  std::optional<mutex::Violation> violation;
  std::string diagnosis;  ///< Per-node dump at the violation / final state.
  /// Non-empty if a recorded choice was not enabled when its turn came
  /// (file corrupted or produced by a different build).
  std::string error;

  [[nodiscard]] bool reproduced() const {
    return error.empty() && violation.has_value();
  }
};

/// Re-executes the recorded schedule.  `sink` (optional) receives the full
/// structured event trace of the replayed execution.  After the last
/// recorded choice the terminal starvation check runs if nothing is
/// enabled, so liveness counterexamples reproduce too.
ReplayResult replay(const Counterexample& cex,
                    std::shared_ptr<obs::Sink> sink = nullptr);

}  // namespace dmx::verify
