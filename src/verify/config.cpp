#include "verify/config.hpp"

#include <stdexcept>

#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "mutex/registry.hpp"
#include "net/msg_kind.hpp"
#include "verify/mutants.hpp"

namespace dmx::verify {

std::vector<std::string> VerifyConfig::validate() const {
  harness::register_builtin_algorithms();
  register_mutant_algorithms();
  std::vector<std::string> errors;
  if (!mutex::Registry::instance().contains(algorithm)) {
    errors.push_back("unknown algorithm \"" + algorithm + "\"");
  }
  if (n_nodes == 0 || n_nodes > 4) {
    errors.push_back("n_nodes must be in [1, 4] for exhaustive exploration, "
                     "got " + std::to_string(n_nodes));
  }
  if (requests_per_node == 0) {
    errors.emplace_back("requests_per_node must be at least 1");
  }
  if (t_msg <= 0.0) errors.emplace_back("t_msg must be positive");
  if (t_exec <= 0.0) errors.emplace_back("t_exec must be positive");
  if (max_depth == 0) errors.emplace_back("max_depth must be at least 1");
  if (max_schedules == 0) {
    errors.emplace_back("max_schedules must be at least 1");
  }
  if (!fault_plan.empty()) {
    try {
      const fault::FaultPlan plan = fault::FaultPlan::parse(fault_plan);
      for (const fault::FaultAction& act : plan.actions) {
        switch (act.kind) {
          case fault::FaultAction::Kind::kCrash:
          case fault::FaultAction::Kind::kRestart:
            if (act.node < 0 ||
                static_cast<std::size_t>(act.node) >= n_nodes) {
              errors.push_back("fault plan targets node " +
                               std::to_string(act.node) +
                               " outside the cluster");
            }
            break;
          case fault::FaultAction::Kind::kLoseNext:
            if (act.msg_type != "*" &&
                !net::MsgKindRegistry::instance().find(act.msg_type)
                     .valid()) {
              errors.push_back("lose-next names unregistered message type \"" +
                               act.msg_type + "\"");
            }
            break;
          case fault::FaultAction::Kind::kPartition:
            if (act.groups.empty()) {
              errors.emplace_back("partition action has no groups");
            }
            for (const auto& group : act.groups) {
              for (const int n : group) {
                if (n < 0 || static_cast<std::size_t>(n) >= n_nodes) {
                  errors.push_back("partition group names node " +
                                   std::to_string(n) +
                                   " outside the cluster");
                }
              }
            }
            break;
          case fault::FaultAction::Kind::kHeal:
            break;
          default:
            errors.push_back(
                "fault plan action \"" + act.describe() +
                "\": only crash, restart, lose-next, partition and heal "
                "become explorable choices");
            break;
        }
      }
    } catch (const std::exception& e) {
      errors.push_back(std::string("fault plan: ") + e.what());
    }
  }
  return errors;
}

void VerifyConfig::check() const {
  const std::vector<std::string> errors = validate();
  if (errors.empty()) return;
  std::string joined = "invalid verify config:";
  for (const std::string& e : errors) joined += "\n  - " + e;
  throw std::invalid_argument(joined);
}

}  // namespace dmx::verify
