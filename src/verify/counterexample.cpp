#include "verify/counterexample.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

#include "verify/choice.hpp"
#include "verify/world.hpp"

namespace dmx::verify {

namespace {

/// Round-trip-exact double formatting (max_digits10 significant digits).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

double parse_double(const std::string& s, const std::string& line) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::invalid_argument("dmx.cex: bad number in line: " + line);
  }
  return v;
}

std::uint64_t parse_u64(const std::string& s, const std::string& line) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw std::invalid_argument("dmx.cex: bad integer in line: " + line);
  }
  return v;
}

}  // namespace

std::string Counterexample::to_string() const {
  std::string out = "dmx.cex.v1\n";
  out += "algo " + config.algorithm + "\n";
  out += "n " + std::to_string(config.n_nodes) + "\n";
  out += "requests " + std::to_string(config.requests_per_node) + "\n";
  out += "t_msg " + fmt_double(config.t_msg) + "\n";
  out += "t_exec " + fmt_double(config.t_exec) + "\n";
  out += "slack " + fmt_double(config.time_slack) + "\n";
  out += "fifo " + std::string(config.fifo_links ? "1" : "0") + "\n";
  if (config.reliable) out += "reliable 1\n";
  out += "depth " + std::to_string(config.max_depth) + "\n";
  for (const auto& [key, value] : config.params.nums()) {
    out += "param " + key + " " + fmt_double(value) + "\n";
  }
  if (!config.fault_plan.empty()) {
    out += "fault " + config.fault_plan + "\n";
  }
  if (!violation_kind.empty()) {
    out += "violation " + violation_kind + "\n";
  }
  for (const std::string& c : choices) out += "choice " + c + "\n";
  out += "end\n";
  return out;
}

Counterexample Counterexample::parse(std::string_view text) {
  Counterexample cex;
  bool saw_magic = false;
  bool saw_end = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string line(text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos));
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    // Whole-line comments only: choice keys legitimately contain '#'.
    if (line.empty() || line.front() == '#') continue;
    if (!saw_magic) {
      if (line != "dmx.cex.v1") {
        throw std::invalid_argument(
            "dmx.cex: expected header dmx.cex.v1, got: " + line);
      }
      saw_magic = true;
      continue;
    }
    if (saw_end) {
      throw std::invalid_argument("dmx.cex: content after end: " + line);
    }
    const std::size_t sp = line.find(' ');
    const std::string kw = line.substr(0, sp);
    const std::string rest =
        sp == std::string::npos ? std::string() : line.substr(sp + 1);
    if (kw == "end") {
      saw_end = true;
    } else if (kw == "algo") {
      cex.config.algorithm = rest;
    } else if (kw == "n") {
      cex.config.n_nodes = parse_u64(rest, line);
    } else if (kw == "requests") {
      cex.config.requests_per_node = parse_u64(rest, line);
    } else if (kw == "t_msg") {
      cex.config.t_msg = parse_double(rest, line);
    } else if (kw == "t_exec") {
      cex.config.t_exec = parse_double(rest, line);
    } else if (kw == "slack") {
      cex.config.time_slack = parse_double(rest, line);
    } else if (kw == "fifo") {
      cex.config.fifo_links = parse_u64(rest, line) != 0;
    } else if (kw == "reliable") {
      cex.config.reliable = parse_u64(rest, line) != 0;
    } else if (kw == "depth") {
      cex.config.max_depth = parse_u64(rest, line);
    } else if (kw == "param") {
      const std::size_t sep = rest.find(' ');
      if (sep == std::string::npos) {
        throw std::invalid_argument("dmx.cex: param needs key value: " + line);
      }
      cex.config.params.set(rest.substr(0, sep),
                            parse_double(rest.substr(sep + 1), line));
    } else if (kw == "fault") {
      cex.config.fault_plan = rest;
    } else if (kw == "violation") {
      cex.violation_kind = rest;
    } else if (kw == "choice") {
      if (rest.empty()) {
        throw std::invalid_argument("dmx.cex: empty choice line");
      }
      cex.choices.push_back(rest);
    } else {
      throw std::invalid_argument("dmx.cex: unknown keyword in line: " + line);
    }
  }
  if (!saw_magic) throw std::invalid_argument("dmx.cex: empty input");
  if (!saw_end) throw std::invalid_argument("dmx.cex: missing end line");
  return cex;
}

ReplayResult replay(const Counterexample& cex,
                    std::shared_ptr<obs::Sink> sink) {
  World world(cex.config, std::move(sink));
  ReplayResult res;
  for (const std::string& key : cex.choices) {
    std::optional<Choice> c = world.find_enabled(key);
    if (!c.has_value()) {
      res.error = "recorded choice not enabled at step " +
                  std::to_string(res.steps) + ": " + key;
      res.diagnosis = world.debug_dump();
      return res;
    }
    world.apply(*c);
    ++res.steps;
    if (std::optional<mutex::Violation> v = world.check()) {
      res.violation = std::move(v);
      res.diagnosis = world.debug_dump();
      return res;
    }
  }
  // A liveness counterexample ends in a dry state rather than on a
  // violating transition: run the terminal verdict if nothing is enabled.
  if (world.enabled().empty()) {
    if (std::optional<mutex::Violation> v = world.terminal_check()) {
      res.violation = std::move(v);
    }
  }
  res.diagnosis = world.debug_dump();
  return res;
}

}  // namespace dmx::verify
