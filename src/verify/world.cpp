#include "verify/world.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mutex/registry.hpp"
#include "net/delay_model.hpp"
#include "obs/tracer.hpp"

namespace dmx::verify {

namespace {

// Canonical "0,1|2" rendering of partition groups for choice identity.
std::string groups_key(const std::vector<std::vector<int>>& groups) {
  std::string out;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) out += "|";
    for (std::size_t i = 0; i < groups[g].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(groups[g][i]);
    }
  }
  return out;
}

}  // namespace

World::World(const VerifyConfig& cfg, std::shared_ptr<obs::Sink> sink)
    : cfg_(cfg) {
  cfg_.check();  // also populates the algorithm registry
  cluster_ = std::make_unique<runtime::Cluster>(
      cfg_.n_nodes,
      std::make_unique<net::ConstantDelay>(sim::SimTime::units(cfg_.t_msg)),
      /*seed=*/1, sink ? obs::Tracer(std::move(sink)) : obs::Tracer());
  cluster_->network().set_tap([this](const net::Envelope& env, bool dropped) {
    // Sends adjudicated dead on the spot (destination already down) never
    // become pending events, so only surviving transmissions need identity.
    if (!dropped) record_send(env);
  });
  if (cfg_.reliable) {
    auto tc = net::ReliableTransportConfig::scaled_to(
        sim::SimTime::units(cfg_.t_msg));
    tc.jitter_frac = 0.0;  // keep the timer schedule seed-free
    cluster_->use_reliable_transport(tc);
  }
  if (!cfg_.fault_plan.empty()) {
    actions_ = fault::FaultPlan::parse(cfg_.fault_plan).actions;
  }
  action_done_.assign(actions_.size(), 0);

  algos_.reserve(cfg_.n_nodes);
  drivers_.reserve(cfg_.n_nodes);
  for (std::size_t i = 0; i < cfg_.n_nodes; ++i) {
    const net::NodeId id{static_cast<std::int32_t>(i)};
    std::unique_ptr<mutex::MutexAlgorithm> algo =
        mutex::Registry::instance().create(
            cfg_.algorithm,
            mutex::FactoryContext{id, cfg_.n_nodes, cfg_.params});
    mutex::MutexAlgorithm* raw = algo.get();
    auto driver = std::make_unique<mutex::CsDriver>(
        cluster_->simulator(), *raw, sim::SimTime::units(cfg_.t_exec),
        &monitor_, &ids_);
    driver->set_tracer(cluster_->tracer());
    cluster_->install(id, std::move(algo));
    algos_.push_back(raw);
    drivers_.push_back(std::move(driver));
  }
  cluster_->start();
  // The whole closed-system demand, round-robin at t=0: surplus beyond one
  // outstanding request per node queues inside the drivers.
  for (std::uint64_t r = 0; r < cfg_.requests_per_node; ++r) {
    for (auto& d : drivers_) d->submit();
  }
}

void World::record_send(const net::Envelope& env) {
  MsgInfo info;
  info.src = env.src.value();
  info.type = std::string(env.payload->fault_target().type_name());
  std::string link = std::to_string(info.src) + ">" +
                     std::to_string(env.dst.value()) + " " + info.type;
  info.index = occurrence_[link]++;
  msg_info_.emplace(env.msg_id, std::move(info));
}

std::vector<Choice> World::enabled() {
  cluster_->simulator().collect_pending(pending_);
  std::vector<Choice> out;
  out.reserve(pending_.size() + actions_.size());
  const bool bounded = cfg_.time_slack >= 0.0;
  sim::SimTime horizon;
  if (!pending_.empty()) {
    // pending_ is sorted by (time, seq): front() is the earliest event.
    horizon = pending_.front().time + sim::SimTime::units(cfg_.time_slack);
  }
  std::vector<std::int32_t> seen_links;
  std::uint32_t timer_nodes = 0;
  for (const sim::PendingEvent& ev : pending_) {
    Choice c;
    c.klass = ev.tag.klass;
    c.node = ev.tag.node;
    c.event = ev.id;
    c.time = ev.time;
    switch (ev.tag.klass) {
      case sim::EventClass::kDelivery: {
        const auto it = msg_info_.find(ev.tag.detail);
        if (it == msg_info_.end()) {
          throw std::logic_error("verify: pending delivery without a send "
                                 "record (tap installed too late?)");
        }
        c.src = it->second.src;
        c.msg_type = it->second.type;
        c.index = it->second.index;
        if (cfg_.fifo_links) {
          // Only the oldest in-flight frame per link is eligible; younger
          // ones stay shadowed even when the head falls outside the slack
          // window (FIFO means they cannot overtake it).
          const std::int32_t link = c.src * 64 + c.node;
          if (std::find(seen_links.begin(), seen_links.end(), link) !=
              seen_links.end()) {
            continue;
          }
          seen_links.push_back(link);
        }
        break;
      }
      case sim::EventClass::kTimer: {
        // A process's timers fire in deadline order; only its earliest is
        // a real scheduling alternative.
        const std::uint32_t bit = 1u << (ev.tag.node & 31);
        if ((timer_nodes & bit) != 0) continue;
        timer_nodes |= bit;
        c.index = ev.tag.detail;
        break;
      }
      case sim::EventClass::kCsExit:
        c.index = ev.tag.detail;
        break;
      default:
        throw std::logic_error(
            "verify: untagged event in a verification world");
    }
    if (bounded && ev.time > horizon) continue;
    out.push_back(std::move(c));
  }

  // Fault choices: each unconsumed plan action is available at every state
  // where it applies (its t= is ignored — timing is the explorer's job).
  const std::size_t fires = out.size();
  for (std::size_t a = 0; a < actions_.size(); ++a) {
    if (action_done_[a] != 0) continue;
    const fault::FaultAction& act = actions_[a];
    if (act.kind == fault::FaultAction::Kind::kCrash) {
      if (!algos_[static_cast<std::size_t>(act.node)]->crashed()) {
        Choice c;
        c.kind = Choice::Kind::kCrash;
        c.node = act.node;
        c.action = static_cast<std::int32_t>(a);
        out.push_back(std::move(c));
      }
    } else if (act.kind == fault::FaultAction::Kind::kRestart) {
      if (algos_[static_cast<std::size_t>(act.node)]->crashed()) {
        Choice c;
        c.kind = Choice::Kind::kRestart;
        c.node = act.node;
        c.action = static_cast<std::int32_t>(a);
        out.push_back(std::move(c));
      }
    } else if (act.kind == fault::FaultAction::Kind::kPartition) {
      // A cut is a real scheduling alternative at any un-partitioned state;
      // in-flight messages keep their delivery events (a cut severs links,
      // not packets already in the air).
      if (!cluster_->network().faults().partitioned()) {
        Choice c;
        c.kind = Choice::Kind::kPartition;
        c.action = static_cast<std::int32_t>(a);
        c.groups = groups_key(act.groups);
        out.push_back(std::move(c));
      }
    } else if (act.kind == fault::FaultAction::Kind::kHeal) {
      if (cluster_->network().faults().partitioned()) {
        Choice c;
        c.kind = Choice::Kind::kHeal;
        c.action = static_cast<std::int32_t>(a);
        out.push_back(std::move(c));
      }
    } else {  // kLoseNext (the only other verb the config validator admits)
      for (std::size_t i = 0; i < fires; ++i) {
        const Choice& f = out[i];
        if (f.klass != sim::EventClass::kDelivery) continue;
        if (act.msg_type != "*" && f.msg_type != act.msg_type) continue;
        if (act.src >= 0 && f.src != act.src) continue;
        if (act.dst >= 0 && f.node != act.dst) continue;
        Choice d = f;
        d.kind = Choice::Kind::kDrop;
        d.action = static_cast<std::int32_t>(a);
        out.push_back(std::move(d));
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Choice& x, const Choice& y) {
    return x.key() < y.key();
  });
  return out;
}

std::optional<Choice> World::find_enabled(std::string_view key) {
  for (Choice& c : enabled()) {
    if (c.key() == key) return std::move(c);
  }
  return std::nullopt;
}

void World::apply(const Choice& c) {
  switch (c.kind) {
    case Choice::Kind::kFire:
      if (!cluster_->simulator().fire(c.event)) {
        throw std::logic_error("verify: fire() on an event no longer pending");
      }
      break;
    case Choice::Kind::kDrop:
      if (!cluster_->simulator().cancel(c.event)) {
        throw std::logic_error("verify: drop of an event no longer pending");
      }
      ++cluster_->network().mutable_stats().dropped;
      action_done_[static_cast<std::size_t>(c.action)] = 1;
      break;
    case Choice::Kind::kCrash:
      cluster_->crash_node(net::NodeId{c.node});
      drivers_[static_cast<std::size_t>(c.node)]->on_node_crashed();
      action_done_[static_cast<std::size_t>(c.action)] = 1;
      break;
    case Choice::Kind::kRestart:
      cluster_->restart_node(net::NodeId{c.node});
      action_done_[static_cast<std::size_t>(c.action)] = 1;
      break;
    case Choice::Kind::kPartition: {
      const fault::FaultAction& act =
          actions_[static_cast<std::size_t>(c.action)];
      std::vector<std::vector<net::NodeId>> groups;
      groups.reserve(act.groups.size());
      for (const auto& group : act.groups) {
        std::vector<net::NodeId>& g = groups.emplace_back();
        g.reserve(group.size());
        for (int n : group) g.push_back(net::NodeId{n});
      }
      cluster_->network().faults().set_partition(std::move(groups));
      action_done_[static_cast<std::size_t>(c.action)] = 1;
      break;
    }
    case Choice::Kind::kHeal:
      cluster_->network().faults().heal_partition();
      action_done_[static_cast<std::size_t>(c.action)] = 1;
      break;
  }
  ++steps_;
}

std::optional<mutex::Violation> World::check() {
  const std::vector<mutex::Violation>& reports = monitor_.reports();
  if (consumed_reports_ < reports.size()) {
    return reports[consumed_reports_++];
  }
  std::vector<net::NodeId> holders;
  for (const mutex::MutexAlgorithm* algo : algos_) {
    if (algo->crashed()) continue;
    if (algo->holds_token().value_or(false)) holders.push_back(algo->id());
  }
  if (holders.size() > 1) {
    mutex::Violation v;
    v.kind = mutex::Violation::Kind::kTokenDuplicated;
    v.time = cluster_->simulator().now();
    v.nodes = std::move(holders);
    v.detail = std::to_string(v.nodes.size()) +
               " live nodes hold the token simultaneously";
    // Epochs tell a regenerated second token (different epochs — the
    // split-brain signature) from a plain duplication bug (same epoch).
    std::string epochs;
    for (const net::NodeId h : v.nodes) {
      const auto e = algos_[static_cast<std::size_t>(h.index())]->token_epoch();
      if (!e.has_value()) continue;
      if (!epochs.empty()) epochs += ", ";
      epochs +=
          "node " + std::to_string(h.value()) + " epoch " + std::to_string(*e);
    }
    if (!epochs.empty()) v.detail += " (" + epochs + ")";
    return v;
  }
  return std::nullopt;
}

std::optional<mutex::Violation> World::terminal_check() {
  std::vector<net::NodeId> starving;
  for (std::size_t i = 0; i < algos_.size(); ++i) {
    if (!drivers_[i]->idle() && !algos_[i]->crashed()) {
      starving.push_back(algos_[i]->id());
    }
  }
  if (starving.empty()) return std::nullopt;
  mutex::Violation v;
  v.kind = mutex::Violation::Kind::kStarvation;
  v.time = cluster_->simulator().now();
  v.nodes = std::move(starving);
  v.detail = "pending live demand with no enabled transition left";
  return v;
}

bool World::quiescent() const {
  for (const auto& d : drivers_) {
    if (!d->idle()) return false;
  }
  for (const char done : action_done_) {
    if (done == 0) return false;
  }
  return true;
}

std::string World::debug_dump() const {
  std::string out;
  for (std::size_t i = 0; i < algos_.size(); ++i) {
    out += "  node " + std::to_string(i) + ": ";
    out += algos_[i]->crashed() ? "CRASHED" : algos_[i]->debug_state();
    if (!drivers_[i]->idle()) out += " [demand pending]";
    out += "\n";
  }
  return out;
}

std::uint64_t World::completed() const {
  std::uint64_t total = 0;
  for (const auto& d : drivers_) total += d->completed();
  return total;
}

}  // namespace dmx::verify
