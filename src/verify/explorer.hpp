// Exhaustive schedule exploration with sleep-set partial-order reduction.
//
// The explorer enumerates every schedule of a VerifyConfig world up to
// max_depth: at each state it takes the enabled choice set (deliveries,
// timers, CS exits, crash / restart / lose-next fault choices), explores
// each in depth-first order, and re-checks the invariants after every
// transition — mutual exclusion and phantom exits via the SafetyMonitor,
// global token uniqueness via MutexAlgorithm::holds_token(), and starvation
// as "pending live demand in a state with no enabled transition".
//
// Pruning is Godefroid-style sleep sets: after exploring choice c at state
// s, every sibling branch inherits c in its sleep set as long as the
// executed transitions stay independent of c (only same-node events
// conflict), so commuting permutations — e.g. deliveries to different nodes
// — are explored once instead of factorially.  States are never stored:
// backtracking re-executes the committed choice prefix in a fresh World,
// which is cheap at this scale and keeps the explorer trivially correct
// against any hidden protocol state.
//
// The search stops at the first violation and reports the exact choice-key
// path as a counterexample (see verify/counterexample.hpp for the replay
// file format).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mutex/violation.hpp"
#include "verify/config.hpp"

namespace dmx::verify {

struct ExploreStats {
  std::uint64_t schedules = 0;    ///< Maximal paths examined.
  std::uint64_t transitions = 0;  ///< Fresh transitions executed.
  std::uint64_t replayed = 0;     ///< Prefix transitions re-executed by DFS.
  std::uint64_t sleep_pruned = 0;  ///< Branches skipped via sleep sets.
  std::uint64_t terminal = 0;     ///< Paths ending in a dry / quiescent state.
  std::uint64_t truncated = 0;    ///< Paths cut at max_depth.
  std::uint64_t sleep_blocked = 0;  ///< States whose whole frontier slept.
  std::size_t max_frontier = 0;   ///< Largest enabled set seen.
  std::size_t max_depth_reached = 0;
  bool complete = false;  ///< False if max_schedules capped the search.
};

struct VerifyResult {
  ExploreStats stats;
  /// First invariant violation found, if any (the search stops on it).
  std::optional<mutex::Violation> violation;
  /// Choice keys from the initial state to the violation, in order.
  std::vector<std::string> counterexample;
  /// Per-node state dump captured at the violating state.
  std::string diagnosis;

  [[nodiscard]] bool ok() const { return !violation.has_value(); }
};

/// Runs the exploration.  Deterministic: identical configs produce
/// identical stats, verdicts and counterexamples on every run.
VerifyResult explore(const VerifyConfig& cfg);

}  // namespace dmx::verify
