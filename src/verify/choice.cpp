#include "verify/choice.hpp"

#include <stdexcept>

namespace dmx::verify {

std::string Choice::key() const {
  std::string k;
  if (kind == Kind::kCrash || kind == Kind::kRestart) {
    k = "f" + std::to_string(action);
    k += kind == Kind::kCrash ? " crash " : " restart ";
    k += std::to_string(node);
    return k;
  }
  if (kind == Kind::kPartition) {
    k = "p";
    k += std::to_string(action);
    k += " cut ";
    k += groups;
    return k;
  }
  if (kind == Kind::kHeal) {
    k = "h";
    k += std::to_string(action);
    k += " heal";
    return k;
  }
  if (kind == Kind::kDrop) k = "l" + std::to_string(action) + " ";
  switch (klass) {
    case sim::EventClass::kDelivery:
      k += "d " + std::to_string(src) + ">" + std::to_string(node) + " " +
           msg_type + " #" + std::to_string(index);
      break;
    case sim::EventClass::kTimer:
      k += "t " + std::to_string(node) + " #" + std::to_string(index);
      break;
    case sim::EventClass::kCsExit:
      k += "x " + std::to_string(node) + " #" + std::to_string(index);
      break;
    default:
      throw std::logic_error("Choice::key: untagged event class");
  }
  return k;
}

bool Choice::independent_with(const Choice& other) const {
  if (kind != Kind::kFire || other.kind != Kind::kFire) return false;
  return node != other.node && node >= 0 && other.node >= 0;
}

bool same_choice(const Choice& a, const Choice& b) {
  return a.kind == b.kind && a.klass == b.klass && a.node == b.node &&
         a.src == b.src && a.index == b.index && a.action == b.action &&
         a.msg_type == b.msg_type && a.groups == b.groups;
}

}  // namespace dmx::verify
