// One controlled execution of a verification world.
//
// A World wires the ordinary production stack — Cluster, Network, the
// algorithm under test, CsDrivers, SafetyMonitor — but never calls
// Simulator::run().  Instead the explorer (or a counterexample replay)
// pulls the enabled choice set, picks one, applies it, and asks the world
// whether an invariant just broke.  All demand is submitted at t=0, so the
// world is a closed system whose only nondeterminism is the choice
// sequence: identical sequences produce identical executions, which is what
// makes stateless DFS re-execution and byte-identical replay possible.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/safety_monitor.hpp"
#include "mutex/violation.hpp"
#include "obs/sink.hpp"
#include "runtime/cluster.hpp"
#include "verify/choice.hpp"
#include "verify/config.hpp"

namespace dmx::verify {

class World {
 public:
  /// Builds the cluster, submits every request at t=0 and leaves the event
  /// queue untouched.  `sink` attaches structured tracing (counterexample
  /// replay); null runs dark.  Throws std::invalid_argument on a bad config.
  explicit World(const VerifyConfig& cfg,
                 std::shared_ptr<obs::Sink> sink = nullptr);

  /// The enabled choice set at the current state, sorted by key():
  /// deliveries (per-link FIFO heads under fifo_links), each node's
  /// earliest timer, CS exits — all within the time_slack window — plus
  /// every applicable unconsumed fault choice.  Deterministic.
  [[nodiscard]] std::vector<Choice> enabled();

  /// Re-derives the enabled set and returns the choice matching `key`.
  [[nodiscard]] std::optional<Choice> find_enabled(std::string_view key);

  /// Executes one choice (must come from this world's current enabled set).
  void apply(const Choice& c);

  /// Any invariant broken by the last transition: unconsumed SafetyMonitor
  /// reports first, then global token uniqueness over live nodes.
  [[nodiscard]] std::optional<mutex::Violation> check();

  /// Starvation verdict for a state with no enabled choices: pending
  /// demand at a live node can never be served once nothing can fire.
  [[nodiscard]] std::optional<mutex::Violation> terminal_check();

  /// All demand served (or voided by crashes) and every fault choice
  /// consumed: no future transition can break an invariant, so the
  /// explorer accepts the schedule without unwinding idle timer chains.
  [[nodiscard]] bool quiescent() const;

  /// Per-node protocol + driver state, one line per node (diagnostics).
  [[nodiscard]] std::string debug_dump() const;

  [[nodiscard]] sim::Simulator& simulator() { return cluster_->simulator(); }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::uint64_t completed() const;

 private:
  struct MsgInfo {
    std::int32_t src = -1;
    std::string type;
    std::uint64_t index = 0;  ///< k-th (src, dst, type) transmission.
  };

  void record_send(const net::Envelope& env);

  VerifyConfig cfg_;
  mutex::RequestIdSource ids_;
  mutex::SafetyMonitor monitor_{mutex::SafetyMonitor::Policy::kCollect};
  std::unique_ptr<runtime::Cluster> cluster_;
  std::vector<mutex::MutexAlgorithm*> algos_;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers_;
  std::vector<fault::FaultAction> actions_;
  std::vector<char> action_done_;
  std::unordered_map<std::uint64_t, MsgInfo> msg_info_;  ///< By msg_id.
  std::unordered_map<std::string, std::uint64_t> occurrence_;
  std::vector<sim::PendingEvent> pending_;  ///< Scratch for enabled().
  std::size_t consumed_reports_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace dmx::verify
