#include "verify/mutants.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/path_reversal.hpp"
#include "mutex/api.hpp"
#include "mutex/registry.hpp"
#include "net/payload.hpp"
#include "runtime/dispatch.hpp"

namespace dmx::verify {

namespace {

struct VerifyReqMsg final : net::Msg<VerifyReqMsg> {
  DMX_REGISTER_MESSAGE(VerifyReqMsg, "VRF-REQ");
  std::int32_t from;
  std::uint64_t seq;
  VerifyReqMsg(std::int32_t f, std::uint64_t s) : from(f), seq(s) {}
};

struct VerifyTokenMsg final : net::Msg<VerifyTokenMsg> {
  DMX_REGISTER_MESSAGE(VerifyTokenMsg, "VRF-TOKEN");
  std::vector<std::uint64_t> ln;  ///< Last-served sequence per node.
  explicit VerifyTokenMsg(std::vector<std::uint64_t> l) : ln(std::move(l)) {}
  [[nodiscard]] std::size_t size_hint() const override {
    return 8 + 8 * ln.size();
  }
};

/// Naive broadcast token algorithm (Suzuki–Kasami shaped): REQ carries a
/// per-node sequence number, the token carries the last-served sequence of
/// every node, and the holder hands it to the next node (in ring order from
/// itself) with an unserved request.  Correct without faults; the Bug enum
/// seeds one specific defect per registered variant.
class NaiveTokenMutex final : public mutex::MutexAlgorithm {
 public:
  enum class Bug : std::uint8_t {
    kNone,
    kTokenRegen,       ///< Fabricate a token if waiting regen_delay.
    kReleaseAmnesia,   ///< Node 0 never passes the token after serving.
    kAmnesiacRestart,  ///< Node 0's restart hook resurrects a token.
  };

  NaiveTokenMutex(std::size_t n_nodes, Bug bug, sim::SimTime regen_delay)
      : n_(n_nodes), bug_(bug), regen_delay_(regen_delay), rn_(n_nodes, 0),
        ln_(n_nodes, 0) {}

  void request(const mutex::CsRequest& req) override {
    pending_ = req;
    if (have_token_ && !in_cs_) {
      enter_cs();
      return;
    }
    ++rn_[me()];
    broadcast(net::make_payload<VerifyReqMsg>(id().value(), rn_[me()]));
    if (bug_ == Bug::kTokenRegen && me() + 1 == n_ && !regen_armed_) {
      regen_armed_ = true;
      set_timer(regen_delay_, [this] { regenerate(); });
    }
  }

  void release() override {
    in_cs_ = false;
    ln_[me()] = rn_[me()];
    pending_.reset();
    if (fabricated_) {
      // The real token is still out there: quietly discard the fake one.
      fabricated_ = false;
      have_token_ = false;
      return;
    }
    if (bug_ == Bug::kReleaseAmnesia && me() == 0) {
      dead_token_ = true;  // parked forever; REQs are ignored from now on
      return;
    }
    try_pass();
  }

  [[nodiscard]] std::string_view algorithm_name() const override {
    switch (bug_) {
      case Bug::kNone: return "mutant-naive-token";
      case Bug::kTokenRegen: return "mutant-token-regen";
      case Bug::kReleaseAmnesia: return "mutant-release-amnesia";
      case Bug::kAmnesiacRestart: return "mutant-amnesiac-restart";
    }
    return "mutant";
  }

  [[nodiscard]] std::string debug_state() const override {
    std::string out(algorithm_name());
    out += ": token=";
    out += have_token_ ? "yes" : "no";
    if (dead_token_) out += ",parked-dead";
    if (fabricated_) out += ",fabricated";
    if (in_cs_) out += " in-cs";
    if (pending_.has_value()) {
      out += " pending(req " + std::to_string(pending_->request_id) + ")";
    }
    return out;
  }

  [[nodiscard]] std::optional<bool> holds_token() const override {
    return have_token_;
  }

 protected:
  void on_start() override {
    if (me() == 0) have_token_ = true;
  }

  void on_restart() override {
    // Volatile protocol state is lost in the crash; the sequence arrays
    // survive (stable storage in the modeled system).
    have_token_ = false;
    in_cs_ = false;
    fabricated_ = false;
    dead_token_ = false;
    pending_.reset();
    if (bug_ == Bug::kAmnesiacRestart && me() == 0) {
      // "I started with the token, so I must still have it."  Harmless when
      // the node died holding the (then destroyed) token; a duplicate when
      // it died without it — reachable only through crash+restart choices.
      have_token_ = true;
      try_pass();
    }
  }

  void handle(const net::Envelope& env) override {
    static const auto kTable = [] {
      runtime::MsgDispatcher<NaiveTokenMutex> t;
      t.set(VerifyReqMsg::message_kind(),
            [](NaiveTokenMutex& self, const net::Envelope& e) {
              const auto& req = static_cast<const VerifyReqMsg&>(*e.payload);
              auto& rn = self.rn_[static_cast<std::size_t>(req.from)];
              rn = std::max(rn, req.seq);
              if (self.have_token_ && !self.in_cs_ && !self.dead_token_) {
                self.try_pass();
              }
            });
      t.set(VerifyTokenMsg::message_kind(),
            [](NaiveTokenMutex& self, const net::Envelope& e) {
              const auto& tok =
                  static_cast<const VerifyTokenMsg&>(*e.payload);
              self.have_token_ = true;
              self.ln_ = tok.ln;
              if (self.pending_.has_value() && !self.in_cs_) {
                self.enter_cs();
              } else {
                self.try_pass();
              }
            });
      return t;
    }();
    if (!kTable.dispatch(*this, env)) {
      throw std::logic_error("naive-token: unknown message");
    }
  }

 private:
  [[nodiscard]] std::size_t me() const {
    return static_cast<std::size_t>(id().value());
  }

  void enter_cs() {
    in_cs_ = true;
    grant(*pending_);
  }

  /// Hand the token to the nearest node (ring order from me) with an
  /// unserved request; keep it parked here otherwise.
  void try_pass() {
    if (!have_token_ || in_cs_ || dead_token_) return;
    for (std::size_t hop = 1; hop < n_; ++hop) {
      const std::size_t j = (me() + hop) % n_;
      if (rn_[j] == ln_[j] + 1) {
        have_token_ = false;
        send(net::NodeId{static_cast<std::int32_t>(j)},
             net::make_payload<VerifyTokenMsg>(ln_));
        return;
      }
    }
  }

  /// The seeded kTokenRegen defect: if this node's first request is still
  /// unserved when the watchdog fires, it concludes the token was lost and
  /// mints a new one — while the real token is alive elsewhere.
  void regenerate() {
    if (have_token_ || in_cs_ || !pending_.has_value()) return;
    have_token_ = true;
    fabricated_ = true;
    enter_cs();
  }

  std::size_t n_;
  Bug bug_;
  sim::SimTime regen_delay_;
  std::vector<std::uint64_t> rn_;  ///< Highest request seq heard, per node.
  std::vector<std::uint64_t> ln_;  ///< Last served seq, per node.
  std::optional<mutex::CsRequest> pending_;
  bool have_token_ = false;
  bool in_cs_ = false;
  bool fabricated_ = false;   ///< Current token was minted by regenerate().
  bool dead_token_ = false;   ///< kReleaseAmnesia parked the token for good.
  bool regen_armed_ = false;  ///< The kTokenRegen watchdog is one-shot.
};

mutex::AlgorithmFactory mutant_factory(NaiveTokenMutex::Bug bug) {
  return [bug](const mutex::FactoryContext& ctx) {
    return std::make_unique<NaiveTokenMutex>(
        ctx.n_nodes, bug,
        ctx.params.get_time("regen_delay", sim::SimTime::units(0.3)));
  };
}

}  // namespace

void register_mutant_algorithms() {
  auto& reg = mutex::Registry::instance();
  if (reg.contains("mutant-naive-token")) return;
  reg.add("mutant-naive-token",
          mutant_factory(NaiveTokenMutex::Bug::kNone));
  reg.add("mutant-token-regen",
          mutant_factory(NaiveTokenMutex::Bug::kTokenRegen));
  reg.add("mutant-release-amnesia",
          mutant_factory(NaiveTokenMutex::Bug::kReleaseAmnesia));
  reg.add("mutant-amnesiac-restart",
          mutant_factory(NaiveTokenMutex::Bug::kAmnesiacRestart));
  // Real-baseline mutation: Naimi–Trehel that forgets the path reversal.
  // The old root hands the token away but keeps believing it is the root,
  // so later REQUESTs park behind it forever -> starvation proof.
  reg.add("mutant-no-reversal", [](const mutex::FactoryContext& ctx) {
    return std::make_unique<baselines::PathReversalMutex>(
        ctx.n_nodes, baselines::PathReversalMutex::Defect::kNoReversal);
  });
}

}  // namespace dmx::verify
