// One scheduling decision the explorer can take at a state.
//
// A Choice is identified *across executions* by a canonical key built from
// protocol-level facts, never from simulator internals: slot indices, event
// sequence numbers and msg_ids all depend on the order previous choices were
// made in, but "the 2nd REQUEST from node 1 to node 0" or "timer #3 of node
// 2" or "node 0's 1st CS exit" name the same transition on every path that
// enables it.  The key doubles as the serialization in counterexample files
// and as the deterministic sort order of enabled sets.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"

namespace dmx::verify {

struct Choice {
  enum class Kind : std::uint8_t {
    kFire,   ///< Fire a pending delivery / timer / CS-exit event.
    kDrop,   ///< Consume a lose-next fault choice on a pending delivery.
    kCrash,  ///< Consume a crash fault choice.
    kRestart,  ///< Consume a restart fault choice.
    kPartition,  ///< Consume a one-shot partition-cut fault choice.
    kHeal,       ///< Consume a one-shot heal fault choice.
  };

  Kind kind = Kind::kFire;
  sim::EventClass klass = sim::EventClass::kInternal;

  /// Node the transition acts on: delivery destination, timer / CS-exit
  /// owner, crash / restart target.  The independence relation lives here.
  std::int32_t node = -1;

  // Delivery identity (kDelivery fires and drops).
  std::int32_t src = -1;
  std::string msg_type;
  /// Per-(src, dst, type) occurrence index of the message (kDelivery), the
  /// process-local timer id (kTimer), or the per-node CS sequence (kCsExit).
  std::uint64_t index = 0;

  /// Fault-plan action index backing a kDrop / kCrash / kRestart /
  /// kPartition / kHeal choice.
  std::int32_t action = -1;

  /// Partition groups rendered as "0,1|2" (kPartition only); part of the
  /// choice identity so distinct cuts of the same action never alias.
  std::string groups;

  // --- transient, valid only in the execution that produced the choice ---
  sim::EventId event;   ///< The pending event a kFire / kDrop acts on.
  sim::SimTime time;    ///< Its scheduled firing time.

  /// Canonical identity key: "d 1>0 REQUEST #2", "t 2 #3", "x 0 #1",
  /// "f0 crash 1", "l1 d 0>2 VRF-TOKEN #1", "p0 cut 0,1|2", "h1 heal".
  /// Equal keys = same transition.
  [[nodiscard]] std::string key() const;

  /// Two choices commute: executing them in either order from a state where
  /// both are enabled reaches the same state.  Conservative: only pure
  /// event firings on *different* nodes are declared independent; fault and
  /// drop choices depend on everything (they consume global one-shot fault
  /// state and crash/restart rewires who can receive at all).
  [[nodiscard]] bool independent_with(const Choice& other) const;
};

/// Key equality (identity, ignoring the transient fields).
[[nodiscard]] bool same_choice(const Choice& a, const Choice& b);

}  // namespace dmx::verify
