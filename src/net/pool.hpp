// Payload memory plane: a size-bucketed slab pool with a swappable policy.
//
// Every message the simulator moves is a small polymorphic object with a
// lifetime of a few simulated time units.  Allocating each one with operator
// new (as shared_ptr control blocks did) makes the general-purpose heap the
// hot loop of a 100k-node sweep.  The pool below carves thread-local slabs
// into fixed-size buckets and recycles freed blocks through intrusive free
// lists, so the steady-state send -> schedule -> deliver -> dispatch path
// never touches the heap.
//
// The allocation policy is a compile-time switch (the allocator-as-policy
// idiom): PoolAllocPolicy is the default, StdAllocPolicy routes every
// request through std::allocator instead.  Sanitizer builds select the
// fallback automatically — ASan/TSan instrument operator new, and a
// recycling pool would hide use-after-free and ownership races from them —
// and -DDMX_FORCE_STD_ALLOC forces it anywhere else.
//
// Thread safety: pools are thread-local and blocks must be freed on the
// thread that allocated them.  That is exactly the payload confinement
// invariant the parallel sweep runner already guarantees (each job runs
// start-to-finish on one worker thread and results carry no payloads), so
// no locks are needed and TSan has nothing to say.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#if !defined(DMX_FORCE_STD_ALLOC)
#  if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#    define DMX_FORCE_STD_ALLOC 1
#  elif defined(__has_feature)
#    if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#      define DMX_FORCE_STD_ALLOC 1
#    endif
#  endif
#endif
#if !defined(DMX_FORCE_STD_ALLOC)
#  define DMX_FORCE_STD_ALLOC 0
#endif

namespace dmx::net {

/// Allocation counters for one policy (per thread for the pool).  `served`
/// splits by where the block came from; `live` is blocks not yet freed.
struct AllocStats {
  std::uint64_t pool_served = 0;  ///< Blocks handed out of a bucket.
  std::uint64_t heap_served = 0;  ///< Oversize (or fallback) blocks.
  std::uint64_t slabs = 0;        ///< Slabs fetched from the heap so far.
  std::uint64_t live = 0;         ///< Outstanding blocks of either flavour.
};

/// Bucket geometry shared by both policies: sizes 64 << i, i in [0, 5), so
/// 64..1024 bytes.  The sentinel kHeapBucket marks an oversize block that
/// went straight to the heap and must go back there.
inline constexpr std::size_t kBucketCount = 5;
inline constexpr std::uint8_t kHeapBucket = 0xFF;

[[nodiscard]] constexpr std::size_t bucket_size(std::uint8_t bucket) {
  return std::size_t{64} << bucket;
}

[[nodiscard]] constexpr std::uint8_t bucket_for(std::size_t size) {
  for (std::uint8_t b = 0; b < kBucketCount; ++b) {
    if (size <= bucket_size(b)) return b;
  }
  return kHeapBucket;
}

/// Default policy: thread-local slab pool with per-bucket free lists.
/// allocate() writes the owning bucket into `bucket` so deallocate() is a
/// single free-list push with no size lookup.
struct PoolAllocPolicy {
  static void* allocate(std::size_t size, std::uint8_t& bucket);
  static void deallocate(void* p, std::uint8_t bucket) noexcept;
  [[nodiscard]] static const AllocStats& stats();
};

/// Fallback policy: every request goes through std::allocator (i.e. the
/// instrumented global heap).  Bucket bookkeeping is kept identical so the
/// two policies are behaviourally interchangeable.
struct StdAllocPolicy {
  static void* allocate(std::size_t size, std::uint8_t& bucket);
  static void deallocate(void* p, std::uint8_t bucket) noexcept;
  [[nodiscard]] static const AllocStats& stats();
};

#if DMX_FORCE_STD_ALLOC
using PayloadAlloc = StdAllocPolicy;
inline constexpr bool kPayloadPoolEnabled = false;
#else
using PayloadAlloc = PoolAllocPolicy;
inline constexpr bool kPayloadPoolEnabled = true;
#endif

/// True when payloads come from the recycling pool (false under sanitizers
/// or DMX_FORCE_STD_ALLOC).  Allocation-regression tests skip themselves
/// when this is false.
[[nodiscard]] constexpr bool payload_pool_enabled() {
  return kPayloadPoolEnabled;
}

/// Counters of the active policy, for tests and bench reporting.
[[nodiscard]] inline const AllocStats& payload_alloc_stats() {
  return PayloadAlloc::stats();
}

}  // namespace dmx::net
