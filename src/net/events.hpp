// Reliability-plane event kinds (emitted by ReliableEndpoint).
//
// Field conventions:
//   transport.retransmit  arg=peer node   value=retry count of the frame
//   transport.abandon     arg=peer node   value=frames dropped at the
//                                         retry cap (peer presumed dead)
//   transport.fence       arg=peer node   value=frames fenced by the
//                                         peer's epoch bump (it restarted)
#pragma once

#include "obs/event.hpp"

namespace dmx::net {

DMX_REGISTER_EVENT(kEvRtRetransmit, "transport.retransmit", "transport");
DMX_REGISTER_EVENT(kEvRtAbandon, "transport.abandon", "transport");
DMX_REGISTER_EVENT(kEvRtFence, "transport.fence", "transport");

}  // namespace dmx::net
