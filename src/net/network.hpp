// Simulated message-passing network.
//
// A Network connects N attached MessageHandlers over a full mesh.  Sends are
// asynchronous: the payload is enqueued as a simulator event that fires after
// the DelayModel's latency and invokes the destination handler — unless the
// FaultInjector drops it.  The network never reorders two messages between
// the same (src, dst) pair under a constant delay model, but can under
// jittered models, which is exactly the behaviour distributed algorithms must
// tolerate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/delay_model.hpp"
#include "net/fault_injector.hpp"
#include "net/msg_kind.hpp"
#include "net/payload.hpp"
#include "net/transport.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "stats/counter_map.hpp"
#include "stats/kind_counter.hpp"

namespace dmx::net {

/// Aggregate traffic statistics.  "sent" counts message transmissions (a
/// broadcast to N-1 destinations counts N-1), matching how the paper counts
/// messages per critical-section invocation.  Per-type counts are kept as a
/// dense kind-indexed vector on the send path; name-keyed views are built on
/// demand at table-output time.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;  ///< Extra copies injected by the fault layer.
  std::uint64_t bytes_sent = 0;  ///< Sum of payload size_hint()s.
  stats::KindCounter sent_by_kind;

  /// Name-keyed translation of sent_by_kind (cold path; only kinds with a
  /// nonzero count appear, matching the old CounterMap behaviour).
  [[nodiscard]] stats::CounterMap sent_by_type() const;

  void reset() {
    sent = delivered = dropped = duplicated = bytes_sent = 0;
    sent_by_kind.reset();
  }
};

class Network : public Transport {
 public:
  /// Observes every send (after fault adjudication; `dropped` tells the fate).
  using Tap = std::function<void(const Envelope&, bool dropped)>;

  Network(sim::Simulator& sim, std::size_t n_nodes,
          std::unique_ptr<DelayModel> delay, std::uint64_t rng_seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t size() const { return handlers_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Attach the handler for a node id (must be in range, previously empty).
  void attach(NodeId node, MessageHandler* handler);
  void detach(NodeId node);

  /// Send a payload from src to dst.  Counted even if dropped in flight
  /// (it was "generated"); drops are also counted separately.
  void send(NodeId src, NodeId dst, PayloadPtr payload) override;

  /// Send to every attached node except src.  N-1 transmissions.
  void broadcast(NodeId src, const PayloadPtr& payload) override;

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  NetworkStats& mutable_stats() { return stats_; }

  FaultInjector& faults() { return faults_; }
  sim::Rng& rng() { return rng_; }

  /// Install a tap observing all traffic (tests, message-trace tooling).
  void set_tap(Tap tap) { tap_ = std::move(tap); }

 private:
  void deliver(Envelope env);

  sim::Simulator& sim_;
  std::unique_ptr<DelayModel> delay_;
  sim::Rng rng_;
  std::vector<MessageHandler*> handlers_;
  FaultInjector faults_;
  NetworkStats stats_;
  Tap tap_;
  std::uint64_t next_msg_id_ = 1;
};

}  // namespace dmx::net
