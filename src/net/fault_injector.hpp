// Message- and node-level fault injection.
//
// Section 6 of the paper analyses lost requests, lost tokens, crashed token
// holders and crashed arbiters.  The injector lets experiments create exactly
// those situations: probabilistic message loss (global or per message kind),
// one-shot targeted drops ("drop the next PRIVILEGE message"), network
// partitions, and downed nodes (fail-silent: nothing in or out).
//
// Per-type loss is stored as a kind-indexed table: the per-send fate check
// is one vector index, not a string hash.  String-keyed configuration APIs
// remain (they are the stable public vocabulary) and intern the name into
// the message-kind registry, so configuring a type before its first message
// is constructed still matches later traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/msg_kind.hpp"
#include "net/payload.hpp"
#include "sim/rng.hpp"

namespace dmx::net {

class FaultInjector {
 public:
  using Predicate = std::function<bool(const Envelope&)>;

  /// Probability in [0,1] that any message is silently dropped.
  void set_loss_probability(double p);

  /// Per-message-kind loss probability (overrides the global one).
  void set_loss_probability(MsgKind kind, double p);

  /// Per-message-type loss probability, by name.  Interns the name: the
  /// configuration matches even if the payload type registers later.  Callers
  /// that want typo detection should check MsgKindRegistry::find() first (the
  /// experiment harness does).
  void set_loss_probability(std::string_view type_name, double p);

  /// Register a predicate that drops the first matching message, then
  /// retires.  Returns an id usable with cancel_one_shot.
  std::uint64_t drop_next(Predicate pred);
  bool cancel_one_shot(std::uint64_t id);

  /// Convenience: drop the next message of the given payload type
  /// (optionally restricted to a src and/or dst).
  std::uint64_t drop_next_of_type(std::string_view type_name,
                                  NodeId src = NodeId{},
                                  NodeId dst = NodeId{});
  std::uint64_t drop_next_of_kind(MsgKind kind, NodeId src = NodeId{},
                                  NodeId dst = NodeId{});

  /// Mark a node as down (fail-silent) / back up.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool is_node_down(NodeId node) const {
    return down_nodes_.contains(node);
  }

  /// Partition the network into groups; messages may only flow within a
  /// group.  An empty partition list removes the partition.
  void set_partition(std::vector<std::vector<NodeId>> groups);
  void heal_partition() { group_of_.clear(); }

  /// Decide the fate of a message about to be sent (or delivered).
  /// Mutates one-shot state; uses rng for probabilistic loss.
  bool should_drop(const Envelope& env, sim::Rng& rng);

  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }

 private:
  static constexpr double kUnsetLoss = -1.0;

  double global_loss_ = 0.0;
  std::vector<double> per_kind_loss_;  ///< kind index -> p; kUnsetLoss = none.
  bool any_per_kind_loss_ = false;
  struct OneShot {
    std::uint64_t id;
    Predicate pred;
  };
  std::vector<OneShot> one_shots_;
  std::uint64_t next_one_shot_id_ = 1;
  std::unordered_set<NodeId> down_nodes_;
  std::unordered_map<NodeId, int> group_of_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dmx::net
