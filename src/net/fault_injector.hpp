// Message- and node-level fault injection.
//
// Section 6 of the paper analyses lost requests, lost tokens, crashed token
// holders and crashed arbiters.  The injector lets experiments create exactly
// those situations: probabilistic message loss (global or per message kind),
// one-shot targeted drops ("drop the next PRIVILEGE message"), network
// partitions, and downed nodes (fail-silent: nothing in or out).
//
// Per-type loss is stored as a kind-indexed table: the per-send fate check
// is one vector index, not a string hash.  String-keyed configuration APIs
// remain (they are the stable public vocabulary) and intern the name into
// the message-kind registry, so configuring a type before its first message
// is constructed still matches later traffic.  All kind matching goes
// through Payload::fault_target(), so a reliability-layer frame wrapping a
// PRIVILEGE still counts as a PRIVILEGE for loss tables and one-shots.
//
// Beyond drops, the injector models the two other classic datagram sins:
// duplication (duplicate_next: every matching one-shot stacks one extra
// delivery of the frame) and reordering (a window during which alternate
// sends take a longer path, overtaking their successors).  Both exist to
// exercise a reliable transport's dedup and resequencing machinery.
//
// Every drop is adjudicated in exactly one place (classify(), first match
// wins) and counted exactly once, with the cause recorded: a message between
// two down-or-partitioned endpoints increments dropped_count() once, never
// twice.  One-shot drops are observable after the fact — fired vs. pending
// counts — so a scripted fault campaign can assert its targeted drop
// actually hit a message instead of silently never matching.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/msg_kind.hpp"
#include "net/payload.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dmx::net {

/// Why a message was dropped (kNone = delivered).
enum class DropReason : std::uint8_t {
  kNone = 0,
  kNodeDown,    ///< src or dst is down at send / dst down at delivery.
  kPartition,   ///< src and dst are in different partition groups.
  kOneShot,     ///< A targeted drop_next predicate matched.
  kRandomLoss,  ///< Probabilistic loss (global or per-kind).
};
inline constexpr std::size_t kDropReasonCount = 5;

[[nodiscard]] std::string_view drop_reason_name(DropReason r);

class FaultInjector {
 public:
  using Predicate = std::function<bool(const Envelope&)>;

  /// Pre-sizes the per-kind loss table to every kind registered so far
  /// (matching Network's sent_by_kind policy): the resize branch in
  /// set_loss_probability never fires for types linked into the binary.
  FaultInjector()
      : per_kind_loss_(MsgKindRegistry::instance().size(), kUnsetLoss) {}

  /// Probability in [0,1] that any message is silently dropped.
  void set_loss_probability(double p);

  /// Per-message-kind loss probability (overrides the global one).
  void set_loss_probability(MsgKind kind, double p);

  /// Per-message-type loss probability, by name.  Interns the name: the
  /// configuration matches even if the payload type registers later.  Callers
  /// that want typo detection should check MsgKindRegistry::find() first (the
  /// experiment harness does).
  void set_loss_probability(std::string_view type_name, double p);

  /// Remove a per-kind override: the kind reverts to the global probability.
  void clear_loss_probability(MsgKind kind);

  /// Effective loss probability a message of this kind faces right now.
  [[nodiscard]] double loss_probability(MsgKind kind) const;
  [[nodiscard]] double global_loss_probability() const { return global_loss_; }

  /// Register a predicate that drops the first matching message, then
  /// retires.  Returns an id usable with cancel_one_shot.
  std::uint64_t drop_next(Predicate pred);
  bool cancel_one_shot(std::uint64_t id);

  /// Convenience: drop the next message of the given payload type
  /// (optionally restricted to a src and/or dst).
  std::uint64_t drop_next_of_type(std::string_view type_name,
                                  NodeId src = NodeId{},
                                  NodeId dst = NodeId{});
  std::uint64_t drop_next_of_kind(MsgKind kind, NodeId src = NodeId{},
                                  NodeId dst = NodeId{});

  /// One-shot observability: how many drop_next predicates have fired (i.e.
  /// retired by dropping a message), how many one-shots of either flavour
  /// are still waiting, and whether a specific one is still pending (false
  /// once fired or cancelled).  one_shots_pending / one_shot_pending /
  /// cancel_one_shot also cover duplicate_next ids.
  [[nodiscard]] std::uint64_t one_shots_fired() const { return os_fired_; }
  [[nodiscard]] std::size_t one_shots_pending() const {
    return one_shots_.size() + dup_one_shots_.size();
  }
  [[nodiscard]] bool one_shot_pending(std::uint64_t id) const;

  /// Register a predicate that duplicates the first matching (delivered)
  /// message, then retires.  Unlike drops, duplications stack: N pending
  /// predicates matching the same message yield N extra copies.  Returns an
  /// id usable with cancel_one_shot / one_shot_pending.
  std::uint64_t duplicate_next(Predicate pred);
  std::uint64_t duplicate_next_of_kind(MsgKind kind, NodeId src = NodeId{},
                                       NodeId dst = NodeId{});
  std::uint64_t duplicate_next_of_type(std::string_view type_name,
                                       NodeId src = NodeId{},
                                       NodeId dst = NodeId{});

  /// Number of extra copies to inject for this (not dropped) message:
  /// retires every matching duplicate_next predicate.
  [[nodiscard]] std::size_t duplicate_copies(const Envelope& env);
  [[nodiscard]] std::uint64_t duplicates_injected() const {
    return duplicates_injected_;
  }

  /// Reorder window: while active, the network routes alternate messages
  /// over a slower path so they overtake their successors (see
  /// Network::send).  reorder_penalty() is called by the network per
  /// eligible send and returns the extra latency (zero for every other
  /// message); it never touches the RNG, so toggling a window does not
  /// perturb the loss stream.
  void set_reorder(bool active) { reorder_active_ = active; }
  [[nodiscard]] bool reorder_active() const { return reorder_active_; }
  [[nodiscard]] sim::SimTime reorder_penalty(sim::SimTime base_latency);
  [[nodiscard]] std::uint64_t reordered_count() const { return reordered_; }

  /// Mark a node as down (fail-silent) / back up.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool is_node_down(NodeId node) const {
    return down_nodes_.contains(node);
  }

  /// Partition the network into groups; messages may only flow within a
  /// group.  An empty partition list removes the partition.
  void set_partition(std::vector<std::vector<NodeId>> groups);
  void heal_partition() { group_of_.clear(); }
  [[nodiscard]] bool partitioned() const { return !group_of_.empty(); }

  /// Decide the fate of a message about to be sent.  Mutates one-shot state;
  /// uses rng for probabilistic loss.  Counts at most one drop.
  bool should_drop(const Envelope& env, sim::Rng& rng);

  /// Delivery-time fate re-check: the destination may have gone down while
  /// the message was in flight.  Counts (once) as a kNodeDown drop.  A
  /// message already dropped at send time never reaches this check, so no
  /// message is ever counted twice.
  bool should_drop_at_delivery(const Envelope& env);

  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }
  [[nodiscard]] std::uint64_t dropped_count(DropReason r) const {
    return dropped_by_reason_[static_cast<std::size_t>(r)];
  }

 private:
  static constexpr double kUnsetLoss = -1.0;

  /// Single adjudication point: first matching cause wins.
  DropReason classify(const Envelope& env, sim::Rng& rng);
  void count_drop(DropReason r);

  double global_loss_ = 0.0;
  std::vector<double> per_kind_loss_;  ///< kind index -> p; kUnsetLoss = none.
  bool any_per_kind_loss_ = false;
  struct OneShot {
    std::uint64_t id;
    Predicate pred;
  };
  std::vector<OneShot> one_shots_;
  std::vector<OneShot> dup_one_shots_;
  std::uint64_t next_one_shot_id_ = 1;
  std::uint64_t os_fired_ = 0;
  std::uint64_t duplicates_injected_ = 0;
  bool reorder_active_ = false;
  bool reorder_toggle_ = false;
  std::uint64_t reordered_ = 0;
  std::unordered_set<NodeId> down_nodes_;
  std::unordered_map<NodeId, int> group_of_;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, kDropReasonCount> dropped_by_reason_{};
};

}  // namespace dmx::net
