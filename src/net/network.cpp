#include "net/network.hpp"

#include <stdexcept>
#include <string>

namespace dmx::net {

stats::CounterMap NetworkStats::sent_by_type() const {
  return counts_by_name(sent_by_kind);
}

Network::Network(sim::Simulator& sim, std::size_t n_nodes,
                 std::unique_ptr<DelayModel> delay, std::uint64_t rng_seed)
    : sim_(sim), delay_(std::move(delay)), rng_(rng_seed),
      handlers_(n_nodes, nullptr) {
  if (!delay_) throw std::invalid_argument("Network: null delay model");
  if (n_nodes == 0) throw std::invalid_argument("Network: zero nodes");
  // Pre-size the per-kind table to every kind registered so far; the growth
  // branch in increment() then never fires for the common case.
  stats_.sent_by_kind.ensure(MsgKindRegistry::instance().size());
}

void Network::attach(NodeId node, MessageHandler* handler) {
  if (!node.valid() || node.index() >= handlers_.size()) {
    throw std::out_of_range("Network::attach: node id out of range");
  }
  if (!handler) throw std::invalid_argument("Network::attach: null handler");
  handlers_[node.index()] = handler;
}

void Network::detach(NodeId node) {
  if (!node.valid() || node.index() >= handlers_.size()) {
    throw std::out_of_range("Network::detach: node id out of range");
  }
  handlers_[node.index()] = nullptr;
}

void Network::send(NodeId src, NodeId dst, PayloadPtr payload) {
  if (!payload) throw std::invalid_argument("Network::send: null payload");
  if (!dst.valid() || dst.index() >= handlers_.size()) {
    throw std::out_of_range("Network::send: destination out of range");
  }
  Envelope env;
  env.src = src;
  env.dst = dst;
  env.sent_at = sim_.now();
  env.msg_id = next_msg_id_++;
  env.payload = std::move(payload);

  ++stats_.sent;
  stats_.bytes_sent += env.payload->size_hint();
  stats_.sent_by_kind.increment(env.payload->kind().index());

  const bool drop = faults_.should_drop(env, rng_);
  if (tap_) tap_(env, drop);
  if (drop) {
    ++stats_.dropped;
    return;
  }

  const sim::SimTime base =
      delay_->delay(src, dst, env.payload->size_hint(), rng_);
  // An active reorder window routes alternate frames over a 2x-slower path,
  // making them overtake later sends on the same link; zero when inactive.
  const sim::SimTime latency = base + faults_.reorder_penalty(base);
  env.delivered_at = sim_.now() + latency;

  // Fault-layer duplication: each retired duplicate_next one-shot injects one
  // extra copy of this very frame (same msg_id), arriving at the same instant
  // but after the original (FIFO tie-break) — the classic duplicated datagram
  // a reliable transport must suppress.  No-op (and no state touched) when no
  // duplicate one-shots are pending.
  const std::size_t copies = faults_.duplicate_copies(env);
  stats_.duplicated += copies;
  // Deliveries are tagged with (dst, msg_id) so a scheduling controller can
  // identify which in-flight message each pending event carries.
  const sim::EventTag tag{env.dst.value(), sim::EventClass::kDelivery,
                          env.msg_id};
  for (std::size_t c = 0; c < copies; ++c) {
    Envelope copy = env;
    sim_.schedule_after(
        latency,
        [this, copy = std::move(copy)]() mutable { deliver(std::move(copy)); },
        tag);
  }
  // The original goes last among same-instant copies, but identical frames
  // are interchangeable, so delivery order (and every trace) is unchanged —
  // and the common copies==0 case moves instead of copying the envelope.
  sim_.schedule_after(
      latency,
      [this, env = std::move(env)]() mutable { deliver(std::move(env)); },
      tag);
}

void Network::broadcast(NodeId src, const PayloadPtr& payload) {
  for (std::size_t i = 0; i < handlers_.size(); ++i) {
    const NodeId dst{static_cast<std::int32_t>(i)};
    if (dst == src) continue;
    send(src, dst, payload);
  }
}

void Network::deliver(Envelope env) {
  // Re-check fate at delivery time: the destination may have crashed while
  // the message was in flight.  The injector counts this drop; a message
  // already dropped at send time never gets here, so each transmission is
  // adjudicated and counted at most once.
  if (faults_.should_drop_at_delivery(env)) {
    ++stats_.dropped;
    return;
  }
  MessageHandler* h = handlers_[env.dst.index()];
  if (h == nullptr) {
    ++stats_.dropped;
    return;
  }
  ++stats_.delivered;
  h->on_message(env);
}

}  // namespace dmx::net
