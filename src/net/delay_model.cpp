#include "net/delay_model.hpp"

#include <stdexcept>

namespace dmx::net {

MatrixDelay::MatrixDelay(std::size_t n, std::vector<sim::SimTime> matrix)
    : n_(n), matrix_(std::move(matrix)) {
  if (matrix_.size() != n_ * n_) {
    throw std::invalid_argument("MatrixDelay: matrix must be N x N");
  }
}

sim::SimTime MatrixDelay::delay(NodeId src, NodeId dst, std::size_t,
                                sim::Rng&) {
  if (!src.valid() || !dst.valid() || src.index() >= n_ || dst.index() >= n_) {
    throw std::out_of_range("MatrixDelay: node id out of range");
  }
  if (src == dst) return sim::SimTime::ticks(1);
  return matrix_[src.index() * n_ + dst.index()];
}

}  // namespace dmx::net
