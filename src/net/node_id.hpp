// Strongly typed node identifier.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace dmx::net {

/// Identifies a node in the cluster.  Valid ids are 0..N-1; a default
/// constructed NodeId is invalid (kInvalid).
class NodeId {
 public:
  static constexpr std::int32_t kInvalid = -1;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::int32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::int32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

  friend std::ostream& operator<<(std::ostream& os, NodeId id) {
    return os << id.value_;
  }

 private:
  std::int32_t value_ = kInvalid;
};

}  // namespace dmx::net

template <>
struct std::hash<dmx::net::NodeId> {
  std::size_t operator()(dmx::net::NodeId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
