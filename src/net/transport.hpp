// Transport abstraction: where a Process hands off outgoing messages.
//
// The raw transport is the Network itself — fire-and-forget datagrams that
// the FaultInjector may drop, duplicate or reorder.  A reliability layer
// (net/reliable_transport.hpp) implements the same interface and slots
// between the Process and the Network, so algorithms are written once
// against send()/broadcast() and run unchanged over either service model.
#pragma once

#include "net/node_id.hpp"
#include "net/payload.hpp"

namespace dmx::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Hand one payload from src to dst for (eventual) delivery.
  virtual void send(NodeId src, NodeId dst, PayloadPtr payload) = 0;

  /// Hand one payload to every other node.  N-1 logical transmissions.
  virtual void broadcast(NodeId src, const PayloadPtr& payload) = 0;
};

}  // namespace dmx::net
