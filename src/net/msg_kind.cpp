#include "net/msg_kind.hpp"

#include <stdexcept>

namespace dmx::net {

MsgKindRegistry& MsgKindRegistry::instance() {
  static MsgKindRegistry registry;
  return registry;
}

MsgKind MsgKindRegistry::intern(std::string_view name) {
  if (name.empty()) {
    throw std::invalid_argument("MsgKindRegistry: empty message name");
  }
  if (frozen()) {
    // Sealed: known names resolve without the lock (the table is immutable
    // and was release-published by freeze()); new names are a registration
    // that arrived too late — fail fast instead of racing.
    if (auto it = by_name_.find(name); it != by_name_.end()) {
      return MsgKind(it->second);
    }
    throw std::logic_error(
        "MsgKindRegistry: frozen; cannot intern new message name \"" +
        std::string(name) + "\"");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return MsgKind(it->second);
  }
  if (names_.size() >= MsgKind::kInvalidRaw) {
    throw std::length_error("MsgKindRegistry: kind space exhausted");
  }
  const auto raw = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(name);
  by_name_.emplace(names_.back(), raw);
  return MsgKind(raw);
}

MsgKind MsgKindRegistry::find(std::string_view name) const {
  if (!frozen()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = by_name_.find(name); it != by_name_.end()) {
      return MsgKind(it->second);
    }
    return MsgKind{};
  }
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return MsgKind(it->second);
  }
  return MsgKind{};
}

std::string_view MsgKindRegistry::name(MsgKind kind) const {
  if (!frozen()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!kind.valid() || kind.index() >= names_.size()) return "<invalid>";
    return names_[kind.index()];
  }
  if (!kind.valid() || kind.index() >= names_.size()) return "<invalid>";
  return names_[kind.index()];
}

std::size_t MsgKindRegistry::size() const {
  if (frozen()) return names_.size();
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

std::vector<std::string> MsgKindRegistry::names() const {
  if (frozen()) return {names_.begin(), names_.end()};
  std::lock_guard<std::mutex> lock(mu_);
  return {names_.begin(), names_.end()};
}

void MsgKindRegistry::freeze() {
  // The lock orders this against any in-flight intern; the release store
  // publishes the completed table to lock-free readers.
  std::lock_guard<std::mutex> lock(mu_);
  frozen_.store(true, std::memory_order_release);
}

stats::CounterMap counts_by_name(const stats::KindCounter& c) {
  stats::CounterMap out;
  const auto& registry = MsgKindRegistry::instance();
  for (std::size_t i = 0; i < c.size(); ++i) {
    const std::uint64_t count = c.get(i);
    if (count == 0) continue;
    out.increment(std::string(registry.name(MsgKind::from_index(i))), count);
  }
  return out;
}

}  // namespace dmx::net
