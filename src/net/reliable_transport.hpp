// Per-peer sliding-window reliability layer between Process and Network.
//
// The raw network is a fair-weather datagram service: the FaultInjector may
// drop, duplicate or reorder any frame.  The paper handles that inside the
// arbiter protocol itself (Section 6 timeouts and NEW-ARBITER enquiry); the
// other baselines assume lossless FIFO channels and simply stall when a
// PRIVILEGE or REPLY evaporates.  A ReliableEndpoint gives every algorithm
// the transport those papers assume:
//
//   * monotonic per-(src,dst) sequence numbers on RT-DATA frames;
//   * cumulative + selective acks, piggybacked on reverse-path data and
//     otherwise sent standalone after a delayed-ack timer;
//   * retransmission on a per-peer timer with exponential backoff, seeded
//     deterministic jitter, and a retry cap (the peer is presumed dead and
//     the window abandoned under a fresh stream generation — see below);
//   * receive-side dedup and reorder buffering, so the algorithm above
//     observes exactly-once, in-order delivery per peer.
//
// Crash fencing.  Sequence numbers only mean something within one
// incarnation of each endpoint, so every frame carries an epoch pair:
// src_epoch (the sender's incarnation) and dst_epoch (the sender's view of
// the receiver's).  A restarted node bumps its epoch; frames addressed to a
// previous incarnation are counted stale_dropped and answered with a
// standalone RT-ACK announcing the new epoch, which makes the sender fence:
// abandon its window, restart its sequence space, and drop every piece of
// rx state it holds for the dead incarnation (so a piggybacked ack can
// never carry the old incarnation's cum/sack into the new one and falsely
// retire fresh frames).  Acks are likewise only applied when they describe
// the exact stream the current window belongs to.
//
// Stream generations.  Retry-cap abandonment clears the window; against a
// peer that was merely unreachable (a long loss window) rather than dead,
// the receiver would then hold a sequence gap nothing will ever fill and
// every later frame would buffer forever.  So each (src, dst, epoch) stream
// carries a generation number: abandonment bumps the sender's generation
// and restarts its sequence space, and a receiver seeing a newer generation
// adopts a fresh sequence space (the abandoned payloads are lost — that is
// what the retry cap means — but the link resynchronises by itself the
// moment loss heals).  Acks name the generation they describe and are
// ignored by a sender that has since moved on.
//
// Everything is deterministic: timers run on the simulation clock and
// retransmit jitter comes from a seeded per-endpoint Rng, so a (seed,
// config) pair fully determines a lossy run — golden traces hold.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "net/payload.hpp"
#include "net/transport.hpp"
#include "obs/tracer.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "stats/kind_counter.hpp"

namespace dmx::net {

/// Reliability-layer tuning.  Defaults suit the paper's T_msg = 0.1 units;
/// scaled_to() derives the same proportions for any message delay.
struct ReliableTransportConfig {
  sim::SimTime ack_delay = sim::SimTime::units(0.05);    ///< Delayed-ack wait.
  sim::SimTime rto_initial = sim::SimTime::units(0.3);   ///< First timeout.
  sim::SimTime rto_max = sim::SimTime::units(4.8);       ///< Backoff ceiling.
  double backoff_factor = 2.0;   ///< RTO multiplier per consecutive timeout.
  double jitter_frac = 0.1;      ///< RTO *= 1 + jitter_frac * U[0,1).
  int max_retries = 12;          ///< Retransmissions per frame before abandon.

  /// Proportional defaults for a given one-way message delay: half a delay
  /// of ack batching, an RTO of three delays (one round trip plus slack),
  /// and a ceiling that keeps a dead peer from being probed forever.
  [[nodiscard]] static ReliableTransportConfig scaled_to(sim::SimTime t_msg);
};

/// Reliability-plane counters for one endpoint (merged per cluster for the
/// sweep tables).  Per-kind counters are indexed by the *inner* payload kind,
/// so "retransmits of PRIVILEGE" is a first-class statistic.
struct TransportStats {
  /// Pre-sizes the per-kind tables to every registered kind (same policy as
  /// NetworkStats): the growth branch in increment() never fires mid-run.
  TransportStats() {
    const std::size_t n = MsgKindRegistry::instance().size();
    retrans_by_kind.ensure(n);
    dup_dropped_by_kind.ensure(n);
  }

  std::uint64_t data_sent = 0;     ///< Fresh RT-DATA frames.
  std::uint64_t retransmits = 0;   ///< RT-DATA frames resent on timeout.
  std::uint64_t acks_sent = 0;     ///< Standalone RT-ACK frames.
  std::uint64_t dup_dropped = 0;   ///< Frames suppressed as duplicates.
  std::uint64_t reorder_buffered = 0;  ///< Out-of-order frames parked.
  std::uint64_t stale_dropped = 0;     ///< Wrong-epoch frames fenced.
  std::uint64_t abandoned = 0;     ///< Payloads given up at the retry cap
                                   ///< or fenced by an epoch change.
  stats::KindCounter retrans_by_kind;      ///< By inner payload kind.
  stats::KindCounter dup_dropped_by_kind;  ///< By inner payload kind.

  void merge(const TransportStats& o);
};

/// Sequenced data frame.  Wraps one algorithm payload; fault configuration
/// keyed by message type matches the inner payload (fault_target()).
struct RtData final : Msg<RtData> {
  DMX_REGISTER_MESSAGE(RtData, "RT-DATA");

  RtData(std::uint32_t se, std::uint32_t de, std::uint32_t g,
         std::uint64_t sequence, std::uint64_t cum, std::uint64_t sack,
         std::uint32_t ag, bool rtx, PayloadPtr payload)
      : src_epoch(se), dst_epoch(de), gen(g), seq(sequence), cum_ack(cum),
        sack_mask(sack), ack_gen(ag), is_retransmit(rtx),
        inner(std::move(payload)) {}

  std::uint32_t src_epoch;
  std::uint32_t dst_epoch;
  std::uint32_t gen;        ///< Sender's stream generation for seq.
  std::uint64_t seq;
  std::uint64_t cum_ack;    ///< Reverse path: all peer seqs <= this received.
  std::uint64_t sack_mask;  ///< Bit i: peer seq cum_ack+1+i received.
  std::uint32_t ack_gen;    ///< Generation of the reverse-path stream that
                            ///< cum_ack/sack_mask describe.
  bool is_retransmit;
  PayloadPtr inner;

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t size_hint() const override {
    return 36 + inner->size_hint();  // epochs + gens + seq + cum/sack + flag.
  }
  [[nodiscard]] const Payload& fault_target() const override { return *inner; }
};

/// Standalone acknowledgement (delayed-ack timer fired, or an epoch
/// announcement in reply to a stale frame).
struct RtAck final : Msg<RtAck> {
  DMX_REGISTER_MESSAGE(RtAck, "RT-ACK");

  RtAck(std::uint32_t se, std::uint32_t de, std::uint32_t ag,
        std::uint64_t cum, std::uint64_t sack)
      : src_epoch(se), dst_epoch(de), ack_gen(ag), cum_ack(cum),
        sack_mask(sack) {}

  std::uint32_t src_epoch;
  std::uint32_t dst_epoch;
  std::uint32_t ack_gen;  ///< Generation of the stream cum_ack describes.
  std::uint64_t cum_ack;
  std::uint64_t sack_mask;

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t size_hint() const override { return 28; }
};

/// One node's end of the reliability layer.  Implements Transport for the
/// Process above it and MessageHandler for the Network below it; the Cluster
/// attaches it to the network in place of the Process and points the
/// Process's transport at it.
class ReliableEndpoint final : public Transport, public MessageHandler {
 public:
  /// `tracer` (optional) receives transport.retransmit / .abandon / .fence
  /// events so retransmission storms and fencing show up on run timelines.
  ReliableEndpoint(Network& net, NodeId self, MessageHandler& upper,
                   ReliableTransportConfig cfg, std::uint64_t rng_seed,
                   obs::Tracer tracer = {});

  // Transport: downcalls from the Process.  src must equal the owning node.
  void send(NodeId src, NodeId dst, PayloadPtr payload) override;
  void broadcast(NodeId src, const PayloadPtr& payload) override;

  // MessageHandler: raw frames up from the Network.
  void on_message(const Envelope& env) override;

  /// Crash lifecycle, driven by the Cluster in lockstep with the Process.
  /// on_restart() bumps the epoch and must run before the Process's own
  /// restart hook, so rejoin traffic already carries the new incarnation.
  void on_crash();
  void on_restart();

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

 private:
  struct Unacked {
    std::uint64_t seq;
    PayloadPtr inner;
    int retries = 0;
  };
  struct Buffered {
    PayloadPtr inner;
    sim::SimTime sent_at;
    std::uint64_t msg_id;
  };
  struct PeerState {
    // --- transmit side.
    std::uint32_t peer_epoch = 1;  ///< Our view of the peer's incarnation.
    std::uint32_t tx_gen = 1;  ///< Our stream generation (bumps on abandon).
    std::uint64_t next_seq = 1;
    std::deque<Unacked> window;
    sim::SimTime rto;  ///< Current timeout (backs off; resets on progress).
    sim::EventId rto_event;
    // --- receive side.
    std::uint32_t rx_epoch = 0;  ///< Incarnation this rx state belongs to.
    std::uint32_t rx_gen = 0;    ///< Generation of the peer stream we track.
    std::uint64_t cum = 0;       ///< Highest contiguously delivered seq.
    std::map<std::uint64_t, Buffered> buffer;  ///< Out-of-order frames.
    sim::EventId ack_event;      ///< Pending delayed-ack timer.
  };

  void handle_data(const Envelope& env, const RtData& d);
  void handle_ack(NodeId peer, const RtAck& a);

  /// Record a newly observed peer incarnation; if it is newer than the one
  /// our window addresses, fence: abandon the window, restart the sequence
  /// space (the new incarnation's rx state starts from zero), and discard
  /// our own rx state for the dead incarnation so no stale cum/sack is ever
  /// piggybacked — or acked standalone — into the new one.
  void note_peer_epoch(NodeId peer, std::uint32_t e);

  /// Retire window entries covered by (cum, sack); on progress the RTO
  /// resets to its initial value.
  void apply_ack(NodeId peer, PeerState& ps, std::uint64_t cum,
                 std::uint64_t sack);

  void deliver_ready(NodeId peer, PeerState& ps);
  void transmit(PeerState& ps, NodeId dst, const Unacked& u,
                bool is_retransmit);
  void schedule_ack(NodeId peer);
  void send_standalone_ack(NodeId peer);
  void arm_rto(NodeId peer);
  void on_rto(NodeId peer);
  void emit(obs::EventKind kind, NodeId peer, double value) const;
  [[nodiscard]] std::uint64_t sack_mask(const PeerState& ps) const;

  /// Per-peer state materializes on first contact: a node talks to O(active
  /// peers), not O(N), so a 100k-node cluster is not forced into N^2
  /// PeerStates (each of which owns a deque and a map) at construction.
  PeerState& peer_state(NodeId peer) {
    auto [it, inserted] = peers_.try_emplace(peer.value());
    if (inserted) it->second.rto = cfg_.rto_initial;
    return it->second;
  }

  Network& net_;
  sim::Simulator& sim_;
  NodeId self_;
  MessageHandler& upper_;
  ReliableTransportConfig cfg_;
  sim::Rng rng_;
  obs::Tracer tracer_;
  std::uint32_t epoch_ = 1;
  bool down_ = false;
  std::unordered_map<std::int32_t, PeerState> peers_;  ///< Keyed by peer id.
  TransportStats stats_;
  /// Timer identity for controlled scheduling (src/verify/): ack and RTO
  /// timers are tagged kTimer like process timers, but in a disjoint detail
  /// namespace so transport and protocol timers can never share a choice
  /// key on the same node.
  static constexpr std::uint64_t kTimerIdBase = 1u << 20;
  std::uint64_t next_timer_id_ = kTimerIdBase;
};

}  // namespace dmx::net
