// Message payloads and envelopes.
//
// Payloads are immutable, polymorphic and reference-counted: broadcasting one
// NEW-ARBITER message to N-1 nodes shares a single allocation.  Every payload
// type carries a dense MsgKind (see msg_kind.hpp) assigned once per type, so
// algorithms dispatch on an integer table index instead of a dynamic_cast
// chain, and per-type statistics index a vector instead of hashing a string.
// Concrete payloads derive from the CRTP base Msg<T> and bind their wire name
// with DMX_REGISTER_MESSAGE(T, "NAME"); type_name() is a registry lookup and
// is intended for cold paths only (traces, tables, configuration).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/msg_kind.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace dmx::net {

/// Base class for all message payloads.  Subclasses should be immutable
/// value bags deriving from Msg<T> below.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Dense message kind; the hot-path identity of this payload's type.
  [[nodiscard]] MsgKind kind() const { return kind_; }

  /// Stable message-type name, e.g. "REQUEST" or "PRIVILEGE".  Registry
  /// lookup — cold paths only (statistics tables, trace output).
  [[nodiscard]] std::string_view type_name() const {
    return MsgKindRegistry::instance().name(kind_);
  }

  /// Human-readable content summary for traces; defaults to the type name.
  [[nodiscard]] virtual std::string describe() const {
    return std::string(type_name());
  }

  /// Approximate serialized size in abstract bytes.  Delay models may use it;
  /// the paper's constant-delay model ignores it.
  [[nodiscard]] virtual std::size_t size_hint() const { return 16; }

  /// The payload that fault configuration should match against.  Transport
  /// frames carrying an inner algorithm message (see
  /// net/reliable_transport.hpp) return the inner payload, so per-type loss
  /// ("loss PRIVILEGE=0.2") and targeted faults ("lose-next PRIVILEGE")
  /// keep addressing logical protocol messages regardless of transport.
  [[nodiscard]] virtual const Payload& fault_target() const { return *this; }

 protected:
  explicit Payload(MsgKind kind) : kind_(kind) {}

 private:
  MsgKind kind_;
};

/// CRTP base wiring a payload type to its registered kind.  Derived types
/// must contain DMX_REGISTER_MESSAGE(Derived, "NAME") in their class body.
template <typename Derived>
class Msg : public Payload {
 protected:
  Msg() : Payload(Derived::message_kind()) {
    (void)kEagerKind;  // odr-use: registers the kind at static-init time
  }

 private:
  /// Forces registration during static initialization so name-keyed
  /// configuration (loss tables, drop predicates) can be validated against
  /// every linked message type before any message is constructed.
  static inline const MsgKind kEagerKind = Derived::message_kind();
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Convenience factory: make_payload<Req>(args...) -> PayloadPtr.
template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Typed view of a payload; nullptr if the payload is of a different type.
/// Kind-checked static downcast — no RTTI.
template <typename T>
const T* payload_cast(const PayloadPtr& p) {
  if (!p || p->kind() != T::message_kind()) return nullptr;
  return static_cast<const T*>(p.get());
}

/// A payload in flight (or delivered) together with its routing metadata.
struct Envelope {
  NodeId src;
  NodeId dst;
  sim::SimTime sent_at;
  sim::SimTime delivered_at;
  std::uint64_t msg_id = 0;  ///< Unique per transmission (per destination).
  PayloadPtr payload;

  template <typename T>
  [[nodiscard]] const T* as() const {
    return payload_cast<T>(payload);
  }
};

/// Interface for anything attached to the network that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(const Envelope& env) = 0;
};

}  // namespace dmx::net
