// Message payloads and envelopes.
//
// Payloads are immutable, polymorphic and reference-counted: broadcasting one
// NEW-ARBITER message to N-1 nodes shares a single allocation.  Every payload
// type carries a dense MsgKind (see msg_kind.hpp) assigned once per type, so
// algorithms dispatch on an integer table index instead of a dynamic_cast
// chain, and per-type statistics index a vector instead of hashing a string.
// Concrete payloads derive from the CRTP base Msg<T> and bind their wire name
// with DMX_REGISTER_MESSAGE(T, "NAME"); type_name() is a registry lookup and
// is intended for cold paths only (traces, tables, configuration).
//
// Memory plane (net/pool.hpp): payloads carry an intrusive refcount
// instead of a shared_ptr control block and are allocated by make_payload<T>
// from a size-bucketed slab pool, so the steady-state message path performs
// zero heap allocations and a broadcast stays one allocation total.  The
// refcount is deliberately non-atomic: a payload lives and dies on the one
// thread that runs its simulation (the sweep runner's confinement
// invariant), so there is nothing to synchronize.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "net/msg_kind.hpp"
#include "net/node_id.hpp"
#include "net/pool.hpp"
#include "sim/time.hpp"

namespace dmx::net {

class PayloadPtr;
template <typename T>
class MutPayload;
template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args);
template <typename T, typename... Args>
MutPayload<T> make_payload_mut(Args&&... args);

/// Base class for all message payloads.  Subclasses should be immutable
/// value bags deriving from Msg<T> below.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Dense message kind; the hot-path identity of this payload's type.
  [[nodiscard]] MsgKind kind() const { return kind_; }

  /// Stable message-type name, e.g. "REQUEST" or "PRIVILEGE".  Registry
  /// lookup — cold paths only (statistics tables, trace output).
  [[nodiscard]] std::string_view type_name() const {
    return MsgKindRegistry::instance().name(kind_);
  }

  /// Human-readable content summary for traces; defaults to the type name.
  [[nodiscard]] virtual std::string describe() const {
    return std::string(type_name());
  }

  /// Approximate serialized size in abstract bytes.  Delay models may use it;
  /// the paper's constant-delay model ignores it.
  [[nodiscard]] virtual std::size_t size_hint() const { return 16; }

  /// The payload that fault configuration should match against.  Transport
  /// frames carrying an inner algorithm message (see
  /// net/reliable_transport.hpp) return the inner payload, so per-type loss
  /// ("loss PRIVILEGE=0.2") and targeted faults ("lose-next PRIVILEGE")
  /// keep addressing logical protocol messages regardless of transport.
  [[nodiscard]] virtual const Payload& fault_target() const { return *this; }

 protected:
  explicit Payload(MsgKind kind) : kind_(kind) {}
  // Copies are fresh objects: identity (refcount, allocation bucket) stays.
  Payload(const Payload& o) : kind_(o.kind_) {}
  Payload& operator=(const Payload&) { return *this; }

 private:
  friend class PayloadPtr;
  template <typename T, typename... Args>
  friend PayloadPtr make_payload(Args&&... args);
  template <typename T>
  friend class MutPayload;
  template <typename T, typename... Args>
  friend MutPayload<T> make_payload_mut(Args&&... args);

  MsgKind kind_;
  std::uint8_t bucket_ = kHeapBucket;  ///< Pool bucket owning *this.
  mutable std::uint32_t refs_ = 0;  ///< Intrusive count; thread-confined.
};

/// CRTP base wiring a payload type to its registered kind.  Derived types
/// must contain DMX_REGISTER_MESSAGE(Derived, "NAME") in their class body.
template <typename Derived>
class Msg : public Payload {
 protected:
  Msg() : Payload(Derived::message_kind()) {
    (void)kEagerKind;  // odr-use: registers the kind at static-init time
  }

 private:
  /// Forces registration during static initialization so name-keyed
  /// configuration (loss tables, drop predicates) can be validated against
  /// every linked message type before any message is constructed.
  static inline const MsgKind kEagerKind = Derived::message_kind();
};

/// Intrusive shared owner of an immutable payload.  Mirrors the subset of
/// the shared_ptr surface the codebase uses; copying is one non-atomic
/// increment, no control block exists, and destruction hands the block back
/// to the pool bucket recorded in the payload itself.
class PayloadPtr {
 public:
  constexpr PayloadPtr() noexcept = default;
  constexpr PayloadPtr(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)
  PayloadPtr(const PayloadPtr& o) noexcept : p_(o.p_) { retain(p_); }
  PayloadPtr(PayloadPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  PayloadPtr& operator=(const PayloadPtr& o) noexcept {
    retain(o.p_);  // before release: self-assignment safe
    release(p_);
    p_ = o.p_;
    return *this;
  }
  PayloadPtr& operator=(PayloadPtr&& o) noexcept {
    if (this != &o) {
      release(p_);
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  PayloadPtr& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~PayloadPtr() { release(p_); }

  void reset() noexcept {
    release(p_);
    p_ = nullptr;
  }
  void swap(PayloadPtr& o) noexcept { std::swap(p_, o.p_); }

  [[nodiscard]] const Payload* get() const noexcept { return p_; }
  const Payload& operator*() const noexcept { return *p_; }
  const Payload* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  friend bool operator==(const PayloadPtr& a, const PayloadPtr& b) noexcept {
    return a.p_ == b.p_;
  }
  friend bool operator==(const PayloadPtr& a, std::nullptr_t) noexcept {
    return a.p_ == nullptr;
  }

 private:
  template <typename T, typename... Args>
  friend PayloadPtr make_payload(Args&&... args);
  template <typename T>
  friend class MutPayload;

  /// Takes ownership of a reference the caller already holds (no retain).
  static PayloadPtr adopt(const Payload* p) noexcept {
    PayloadPtr r;
    r.p_ = p;
    return r;
  }
  /// Shares an existing live object (+1).
  static PayloadPtr share(const Payload* p) noexcept {
    PayloadPtr r;
    r.p_ = p;
    retain(p);
    return r;
  }

  static void retain(const Payload* p) noexcept {
    if (p) ++p->refs_;
  }
  static void release(const Payload* p) noexcept {
    if (p && --p->refs_ == 0) destroy(p);
  }
  static void destroy(const Payload* p) noexcept {
    // Payload is the primary (offset-0) base of every message type, so the
    // Payload* is also the start of the allocation; make_payload asserts it.
    const std::uint8_t bucket = p->bucket_;
    void* mem = const_cast<void*>(static_cast<const void*>(p));
    p->~Payload();
    PayloadAlloc::deallocate(mem, bucket);
  }

  const Payload* p_ = nullptr;
};

/// Convenience factory: make_payload<Req>(args...) -> PayloadPtr.  One pool
/// allocation; the payload records its bucket so release needs no lookup.
template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  static_assert(std::is_base_of_v<Payload, T>);
  std::uint8_t bucket = kHeapBucket;
  void* mem = PayloadAlloc::allocate(sizeof(T), bucket);
  T* obj;
  try {
    obj = ::new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    PayloadAlloc::deallocate(mem, bucket);
    throw;
  }
  assert(static_cast<const void*>(static_cast<const Payload*>(obj)) == mem);
  obj->bucket_ = bucket;
  obj->refs_ = 1;
  return PayloadPtr::adopt(obj);
}

/// Exclusive handle to a payload under construction: protocol code that
/// builds a message field-by-field does
///
///   auto msg = make_payload_mut<PrivilegeMsg>();
///   msg->q = ...;
///   send(dst, std::move(msg));
///
/// Converting to PayloadPtr freezes the message (the const view); moving the
/// handle into the conversion transfers the reference with no count churn.
template <typename T>
class MutPayload {
 public:
  MutPayload(MutPayload&& o) noexcept : obj_(o.obj_) { o.obj_ = nullptr; }
  MutPayload(const MutPayload&) = delete;
  MutPayload& operator=(const MutPayload&) = delete;
  MutPayload& operator=(MutPayload&&) = delete;
  ~MutPayload() { PayloadPtr::release(obj_); }

  T* operator->() noexcept { return obj_; }
  T& operator*() noexcept { return *obj_; }

  // NOLINTNEXTLINE(runtime/explicit): implicit freeze is the point.
  operator PayloadPtr() const& noexcept { return PayloadPtr::share(obj_); }
  operator PayloadPtr() && noexcept {
    const T* p = obj_;
    obj_ = nullptr;
    return PayloadPtr::adopt(p);
  }

 private:
  template <typename U, typename... Args>
  friend MutPayload<U> make_payload_mut(Args&&... args);
  explicit MutPayload(T* adopted) noexcept : obj_(adopted) {}

  T* obj_;
};

/// make_payload, but the caller may still mutate the object before sending.
template <typename T, typename... Args>
MutPayload<T> make_payload_mut(Args&&... args) {
  static_assert(std::is_base_of_v<Payload, T>);
  std::uint8_t bucket = kHeapBucket;
  void* mem = PayloadAlloc::allocate(sizeof(T), bucket);
  T* obj;
  try {
    obj = ::new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    PayloadAlloc::deallocate(mem, bucket);
    throw;
  }
  assert(static_cast<const void*>(static_cast<const Payload*>(obj)) == mem);
  obj->bucket_ = bucket;
  obj->refs_ = 1;
  return MutPayload<T>(obj);
}

/// Typed view of a payload; nullptr if the payload is of a different type.
/// Kind-checked static downcast — no RTTI.
template <typename T>
const T* payload_cast(const PayloadPtr& p) {
  if (!p || p->kind() != T::message_kind()) return nullptr;
  return static_cast<const T*>(p.get());
}

/// A payload in flight (or delivered) together with its routing metadata.
struct Envelope {
  NodeId src;
  NodeId dst;
  sim::SimTime sent_at;
  sim::SimTime delivered_at;
  std::uint64_t msg_id = 0;  ///< Unique per transmission (per destination).
  PayloadPtr payload;

  template <typename T>
  [[nodiscard]] const T* as() const {
    return payload_cast<T>(payload);
  }
};

/// Interface for anything attached to the network that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(const Envelope& env) = 0;
};

}  // namespace dmx::net
