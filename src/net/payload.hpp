// Message payloads and envelopes.
//
// Payloads are immutable, polymorphic and reference-counted: broadcasting one
// NEW-ARBITER message to N-1 nodes shares a single allocation.  Algorithms
// identify messages via type_name() (also the key for per-type statistics)
// and downcast with payload_cast<T>().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace dmx::net {

/// Base class for all message payloads.  Subclasses should be immutable
/// value bags.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Stable message-type name, e.g. "REQUEST" or "PRIVILEGE".  Used for
  /// statistics keys and trace output.
  [[nodiscard]] virtual std::string_view type_name() const = 0;

  /// Human-readable content summary for traces; defaults to the type name.
  [[nodiscard]] virtual std::string describe() const {
    return std::string(type_name());
  }

  /// Approximate serialized size in abstract bytes.  Delay models may use it;
  /// the paper's constant-delay model ignores it.
  [[nodiscard]] virtual std::size_t size_hint() const { return 16; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Convenience factory: make_payload<Req>(args...) -> PayloadPtr.
template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Typed view of a payload; nullptr if the payload is of a different type.
template <typename T>
const T* payload_cast(const PayloadPtr& p) {
  return dynamic_cast<const T*>(p.get());
}

/// A payload in flight (or delivered) together with its routing metadata.
struct Envelope {
  NodeId src;
  NodeId dst;
  sim::SimTime sent_at;
  sim::SimTime delivered_at;
  std::uint64_t msg_id = 0;  ///< Unique per transmission (per destination).
  PayloadPtr payload;

  template <typename T>
  [[nodiscard]] const T* as() const {
    return payload_cast<T>(payload);
  }
};

/// Interface for anything attached to the network that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(const Envelope& env) = 0;
};

}  // namespace dmx::net
