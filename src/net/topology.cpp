#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace dmx::net {

Topology::Topology(std::size_t n) : n_(n), adj_(n) {
  if (n == 0) throw std::invalid_argument("Topology: zero nodes");
}

void Topology::add_edge(NodeId a, NodeId b) {
  if (!a.valid() || !b.valid() || a.index() >= n_ || b.index() >= n_) {
    throw std::out_of_range("Topology::add_edge: node out of range");
  }
  if (a == b) throw std::invalid_argument("Topology::add_edge: self loop");
  if (!has_edge(a, b)) {
    adj_[a.index()].push_back(b);
    adj_[b.index()].push_back(a);
  }
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  const auto& v = adj_[a.index()];
  return std::find(v.begin(), v.end(), b) != v.end();
}

std::vector<std::size_t> Topology::hops_from(NodeId src) const {
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(n_, kInf);
  std::deque<NodeId> queue{src};
  dist[src.index()] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : adj_[u.index()]) {
      if (dist[v.index()] == kInf) {
        dist[v.index()] = dist[u.index()] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool Topology::connected() const {
  const auto d = hops_from(NodeId{0});
  return std::none_of(d.begin(), d.end(), [](std::size_t x) {
    return x == std::numeric_limits<std::size_t>::max();
  });
}

std::size_t Topology::diameter() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const auto d = hops_from(NodeId{static_cast<std::int32_t>(i)});
    for (std::size_t x : d) {
      if (x != std::numeric_limits<std::size_t>::max()) {
        best = std::max(best, x);
      }
    }
  }
  return best;
}

Topology Topology::ring(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_edge(NodeId{static_cast<std::int32_t>(i)},
               NodeId{static_cast<std::int32_t>(i + 1)});
  }
  if (n > 2) t.add_edge(NodeId{static_cast<std::int32_t>(n - 1)}, NodeId{0});
  return t;
}

Topology Topology::star(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 1; i < n; ++i) {
    t.add_edge(NodeId{0}, NodeId{static_cast<std::int32_t>(i)});
  }
  return t;
}

Topology Topology::line(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_edge(NodeId{static_cast<std::int32_t>(i)},
               NodeId{static_cast<std::int32_t>(i + 1)});
  }
  return t;
}

Topology Topology::full_mesh(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      t.add_edge(NodeId{static_cast<std::int32_t>(i)},
                 NodeId{static_cast<std::int32_t>(j)});
    }
  }
  return t;
}

Topology Topology::binary_tree(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 1; i < n; ++i) {
    t.add_edge(NodeId{static_cast<std::int32_t>(i)},
               NodeId{static_cast<std::int32_t>((i - 1) / 2)});
  }
  return t;
}

HopDelay::HopDelay(Topology topology, sim::SimTime per_hop)
    : topo_(std::move(topology)), per_hop_(per_hop) {
  if (!topo_.connected()) {
    throw std::invalid_argument("HopDelay: topology must be connected");
  }
  hops_.reserve(topo_.size());
  for (std::size_t i = 0; i < topo_.size(); ++i) {
    hops_.push_back(topo_.hops_from(NodeId{static_cast<std::int32_t>(i)}));
  }
}

sim::SimTime HopDelay::delay(NodeId src, NodeId dst, std::size_t, sim::Rng&) {
  if (!src.valid() || !dst.valid() || src.index() >= topo_.size() ||
      dst.index() >= topo_.size()) {
    throw std::out_of_range("HopDelay: node out of range");
  }
  if (src == dst) return sim::SimTime::ticks(1);
  return per_hop_ * static_cast<std::int64_t>(hops_[src.index()][dst.index()]);
}

}  // namespace dmx::net
