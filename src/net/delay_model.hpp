// Message-delay models.
//
// The paper's analysis assumes a constant delay T_msg between any two nodes;
// its simulation uses the same.  For robustness experiments we also provide
// uniform and exponential jitter and an arbitrary per-pair latency matrix.
#pragma once

#include <memory>
#include <vector>

#include "net/node_id.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dmx::net {

/// Computes the in-flight latency for a message from src to dst.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  [[nodiscard]] virtual sim::SimTime delay(NodeId src, NodeId dst,
                                           std::size_t size_hint,
                                           sim::Rng& rng) = 0;
};

/// Constant delay between every pair (the paper's T_msg).  Local delivery
/// (src == dst) is instantaneous-but-asynchronous: one tick, preserving the
/// "never call a handler re-entrantly" rule.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(sim::SimTime d) : delay_(d) {}
  sim::SimTime delay(NodeId src, NodeId dst, std::size_t, sim::Rng&) override {
    return src == dst ? sim::SimTime::ticks(1) : delay_;
  }

 private:
  sim::SimTime delay_;
};

/// Uniformly jittered delay in [base, base + jitter).
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(sim::SimTime base, sim::SimTime jitter)
      : base_(base), jitter_(jitter) {}
  sim::SimTime delay(NodeId src, NodeId dst, std::size_t,
                     sim::Rng& rng) override {
    if (src == dst) return sim::SimTime::ticks(1);
    return base_ + rng.uniform_time(sim::SimTime::zero(), jitter_);
  }

 private:
  sim::SimTime base_;
  sim::SimTime jitter_;
};

/// base + Exp(mean) delay — heavy-tailed-ish variability for stress tests
/// (the paper notes real transmission times "depend on the current network
/// and processor loads").
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(sim::SimTime base, sim::SimTime mean_extra)
      : base_(base), mean_extra_(mean_extra) {}
  sim::SimTime delay(NodeId src, NodeId dst, std::size_t,
                     sim::Rng& rng) override {
    if (src == dst) return sim::SimTime::ticks(1);
    return base_ + rng.exponential_time(mean_extra_);
  }

 private:
  sim::SimTime base_;
  sim::SimTime mean_extra_;
};

/// Arbitrary per-pair latency matrix (row-major, N x N).
class MatrixDelay final : public DelayModel {
 public:
  MatrixDelay(std::size_t n, std::vector<sim::SimTime> matrix);
  sim::SimTime delay(NodeId src, NodeId dst, std::size_t, sim::Rng&) override;

 private:
  std::size_t n_;
  std::vector<sim::SimTime> matrix_;
};

}  // namespace dmx::net
