#include "net/fault_injector.hpp"

#include <stdexcept>

namespace dmx::net {

std::string_view drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kNone:
      return "none";
    case DropReason::kNodeDown:
      return "node-down";
    case DropReason::kPartition:
      return "partition";
    case DropReason::kOneShot:
      return "one-shot";
    case DropReason::kRandomLoss:
      return "random-loss";
  }
  return "<invalid>";
}

void FaultInjector::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("loss probability must be in [0,1]");
  }
  global_loss_ = p;
}

void FaultInjector::set_loss_probability(MsgKind kind, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("loss probability must be in [0,1]");
  }
  if (!kind.valid()) {
    throw std::invalid_argument("loss probability for invalid message kind");
  }
  if (kind.index() >= per_kind_loss_.size()) {
    per_kind_loss_.resize(kind.index() + 1, kUnsetLoss);
  }
  per_kind_loss_[kind.index()] = p;
  any_per_kind_loss_ = true;
}

void FaultInjector::set_loss_probability(std::string_view type_name,
                                         double p) {
  set_loss_probability(MsgKindRegistry::instance().intern(type_name), p);
}

void FaultInjector::clear_loss_probability(MsgKind kind) {
  if (!kind.valid() || kind.index() >= per_kind_loss_.size()) return;
  per_kind_loss_[kind.index()] = kUnsetLoss;
}

double FaultInjector::loss_probability(MsgKind kind) const {
  if (any_per_kind_loss_ && kind.valid() &&
      kind.index() < per_kind_loss_.size() &&
      per_kind_loss_[kind.index()] >= 0.0) {
    return per_kind_loss_[kind.index()];
  }
  return global_loss_;
}

std::uint64_t FaultInjector::drop_next(Predicate pred) {
  if (!pred) throw std::invalid_argument("drop_next: empty predicate");
  const std::uint64_t id = next_one_shot_id_++;
  one_shots_.push_back(OneShot{id, std::move(pred)});
  return id;
}

bool FaultInjector::cancel_one_shot(std::uint64_t id) {
  for (auto* list : {&one_shots_, &dup_one_shots_}) {
    for (auto it = list->begin(); it != list->end(); ++it) {
      if (it->id == id) {
        list->erase(it);
        return true;
      }
    }
  }
  return false;
}

bool FaultInjector::one_shot_pending(std::uint64_t id) const {
  for (const auto* list : {&one_shots_, &dup_one_shots_}) {
    for (const auto& os : *list) {
      if (os.id == id) return true;
    }
  }
  return false;
}

namespace {

/// Kind/src/dst match against the logical payload (fault_target unwraps
/// transport frames), shared by targeted drops and duplications.
FaultInjector::Predicate kind_predicate(MsgKind kind, NodeId src, NodeId dst) {
  return [kind, src, dst](const Envelope& env) {
    if (env.payload->fault_target().kind() != kind) return false;
    if (src.valid() && env.src != src) return false;
    if (dst.valid() && env.dst != dst) return false;
    return true;
  };
}

}  // namespace

std::uint64_t FaultInjector::drop_next_of_kind(MsgKind kind, NodeId src,
                                               NodeId dst) {
  return drop_next(kind_predicate(kind, src, dst));
}

std::uint64_t FaultInjector::drop_next_of_type(std::string_view type_name,
                                               NodeId src, NodeId dst) {
  return drop_next_of_kind(MsgKindRegistry::instance().intern(type_name), src,
                           dst);
}

std::uint64_t FaultInjector::duplicate_next(Predicate pred) {
  if (!pred) throw std::invalid_argument("duplicate_next: empty predicate");
  const std::uint64_t id = next_one_shot_id_++;
  dup_one_shots_.push_back(OneShot{id, std::move(pred)});
  return id;
}

std::uint64_t FaultInjector::duplicate_next_of_kind(MsgKind kind, NodeId src,
                                                    NodeId dst) {
  return duplicate_next(kind_predicate(kind, src, dst));
}

std::uint64_t FaultInjector::duplicate_next_of_type(std::string_view type_name,
                                                    NodeId src, NodeId dst) {
  return duplicate_next_of_kind(MsgKindRegistry::instance().intern(type_name),
                                src, dst);
}

std::size_t FaultInjector::duplicate_copies(const Envelope& env) {
  if (dup_one_shots_.empty()) return 0;
  std::size_t copies = 0;
  std::erase_if(dup_one_shots_, [&](const OneShot& os) {
    if (!os.pred(env)) return false;
    ++copies;
    return true;
  });
  duplicates_injected_ += copies;
  return copies;
}

sim::SimTime FaultInjector::reorder_penalty(sim::SimTime base_latency) {
  if (!reorder_active_) return sim::SimTime::zero();
  // Alternate messages take a path 2x slower: with the simulator's FIFO
  // tie-breaking this makes every delayed message arrive strictly after the
  // (later-sent) next message on the same link.  No RNG draw: an inactive
  // window is invisible to the loss stream.
  reorder_toggle_ = !reorder_toggle_;
  if (!reorder_toggle_) return sim::SimTime::zero();
  ++reordered_;
  return base_latency * 2;
}

void FaultInjector::set_node_down(NodeId node, bool down) {
  if (down) {
    down_nodes_.insert(node);
  } else {
    down_nodes_.erase(node);
  }
}

void FaultInjector::set_partition(std::vector<std::vector<NodeId>> groups) {
  group_of_.clear();
  int g = 0;
  for (const auto& group : groups) {
    for (NodeId n : group) group_of_[n] = g;
    ++g;
  }
}

DropReason FaultInjector::classify(const Envelope& env, sim::Rng& rng) {
  // First matching cause wins; checks that consume state (one-shots, the
  // RNG draw) come after the static endpoint checks, so a message that was
  // doomed anyway neither retires a one-shot nor perturbs the loss stream.
  if (down_nodes_.contains(env.src) || down_nodes_.contains(env.dst)) {
    return DropReason::kNodeDown;
  }
  if (!group_of_.empty()) {
    auto a = group_of_.find(env.src);
    auto b = group_of_.find(env.dst);
    const int ga = a == group_of_.end() ? -1 : a->second;
    const int gb = b == group_of_.end() ? -1 : b->second;
    if (ga != gb) return DropReason::kPartition;
  }
  for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
    if (it->pred(env)) {
      one_shots_.erase(it);
      ++os_fired_;
      return DropReason::kOneShot;
    }
  }
  double p = global_loss_;
  if (any_per_kind_loss_) {
    const std::size_t i = env.payload->fault_target().kind().index();
    if (i < per_kind_loss_.size() && per_kind_loss_[i] >= 0.0) {
      p = per_kind_loss_[i];
    }
  }
  if (p > 0.0 && rng.chance(p)) return DropReason::kRandomLoss;
  return DropReason::kNone;
}

void FaultInjector::count_drop(DropReason r) {
  ++dropped_;
  ++dropped_by_reason_[static_cast<std::size_t>(r)];
}

bool FaultInjector::should_drop(const Envelope& env, sim::Rng& rng) {
  const DropReason r = classify(env, rng);
  if (r == DropReason::kNone) return false;
  count_drop(r);
  return true;
}

bool FaultInjector::should_drop_at_delivery(const Envelope& env) {
  if (!down_nodes_.contains(env.dst)) return false;
  count_drop(DropReason::kNodeDown);
  return true;
}

}  // namespace dmx::net
