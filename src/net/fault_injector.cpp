#include "net/fault_injector.hpp"

#include <stdexcept>

namespace dmx::net {

void FaultInjector::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("loss probability must be in [0,1]");
  }
  global_loss_ = p;
}

void FaultInjector::set_loss_probability(const std::string& type_name,
                                         double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("loss probability must be in [0,1]");
  }
  per_type_loss_[type_name] = p;
}

std::uint64_t FaultInjector::drop_next(Predicate pred) {
  if (!pred) throw std::invalid_argument("drop_next: empty predicate");
  const std::uint64_t id = next_one_shot_id_++;
  one_shots_.push_back(OneShot{id, std::move(pred)});
  return id;
}

bool FaultInjector::cancel_one_shot(std::uint64_t id) {
  for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
    if (it->id == id) {
      one_shots_.erase(it);
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::drop_next_of_type(std::string type_name,
                                               NodeId src, NodeId dst) {
  return drop_next([type_name = std::move(type_name), src,
                    dst](const Envelope& env) {
    if (env.payload->type_name() != type_name) return false;
    if (src.valid() && env.src != src) return false;
    if (dst.valid() && env.dst != dst) return false;
    return true;
  });
}

void FaultInjector::set_node_down(NodeId node, bool down) {
  if (down) {
    down_nodes_.insert(node);
  } else {
    down_nodes_.erase(node);
  }
}

void FaultInjector::set_partition(std::vector<std::vector<NodeId>> groups) {
  group_of_.clear();
  int g = 0;
  for (const auto& group : groups) {
    for (NodeId n : group) group_of_[n] = g;
    ++g;
  }
}

bool FaultInjector::should_drop(const Envelope& env, sim::Rng& rng) {
  if (down_nodes_.contains(env.src) || down_nodes_.contains(env.dst)) {
    ++dropped_;
    return true;
  }
  if (!group_of_.empty()) {
    auto a = group_of_.find(env.src);
    auto b = group_of_.find(env.dst);
    const int ga = a == group_of_.end() ? -1 : a->second;
    const int gb = b == group_of_.end() ? -1 : b->second;
    if (ga != gb) {
      ++dropped_;
      return true;
    }
  }
  for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
    if (it->pred(env)) {
      one_shots_.erase(it);
      ++dropped_;
      return true;
    }
  }
  double p = global_loss_;
  if (!per_type_loss_.empty()) {
    auto it = per_type_loss_.find(std::string(env.payload->type_name()));
    if (it != per_type_loss_.end()) p = it->second;
  }
  if (p > 0.0 && rng.chance(p)) {
    ++dropped_;
    return true;
  }
  return false;
}

}  // namespace dmx::net
