#include "net/reliable_transport.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/events.hpp"

namespace dmx::net {

ReliableTransportConfig ReliableTransportConfig::scaled_to(sim::SimTime t_msg) {
  ReliableTransportConfig cfg;
  cfg.ack_delay = t_msg.scaled(0.5);
  cfg.rto_initial = t_msg.scaled(3.0);
  cfg.rto_max = t_msg.scaled(48.0);
  return cfg;
}

void TransportStats::merge(const TransportStats& o) {
  data_sent += o.data_sent;
  retransmits += o.retransmits;
  acks_sent += o.acks_sent;
  dup_dropped += o.dup_dropped;
  reorder_buffered += o.reorder_buffered;
  stale_dropped += o.stale_dropped;
  abandoned += o.abandoned;
  retrans_by_kind.merge(o.retrans_by_kind);
  dup_dropped_by_kind.merge(o.dup_dropped_by_kind);
}

std::string RtData::describe() const {
  std::ostringstream os;
  os << "RT-DATA seq=" << seq << " g=" << gen << " e=" << src_epoch << ">"
     << dst_epoch << " cum=" << cum_ack << "/g" << ack_gen;
  if (sack_mask != 0) os << " sack=0x" << std::hex << sack_mask << std::dec;
  if (is_retransmit) os << " rtx";
  os << " [" << inner->describe() << "]";
  return os.str();
}

std::string RtAck::describe() const {
  std::ostringstream os;
  os << "RT-ACK e=" << src_epoch << ">" << dst_epoch << " cum=" << cum_ack
     << "/g" << ack_gen;
  if (sack_mask != 0) os << " sack=0x" << std::hex << sack_mask << std::dec;
  return os.str();
}

ReliableEndpoint::ReliableEndpoint(Network& net, NodeId self,
                                   MessageHandler& upper,
                                   ReliableTransportConfig cfg,
                                   std::uint64_t rng_seed, obs::Tracer tracer)
    : net_(net), sim_(net.simulator()), self_(self), upper_(upper), cfg_(cfg),
      rng_(rng_seed), tracer_(std::move(tracer)) {
  if (!self.valid() || self.index() >= net.size()) {
    throw std::out_of_range("ReliableEndpoint: node id out of range");
  }
  // peers_ stays empty until first contact (see peer_state()): endpoints are
  // O(1) to build regardless of cluster size.
}

void ReliableEndpoint::emit(obs::EventKind kind, NodeId peer,
                            double value) const {
  if (!tracer_.enabled()) return;
  tracer_.write(obs::Event{sim_.now(), kind, self_.value(), 0,
                           static_cast<std::int64_t>(peer.value()), value});
}

void ReliableEndpoint::send(NodeId src, NodeId dst, PayloadPtr payload) {
  if (src != self_) {
    throw std::invalid_argument("ReliableEndpoint::send: src is not owner");
  }
  if (dst == self_) {
    // Self-traffic needs no reliability machinery (the network never drops
    // or reorders a node's messages to itself); forward raw so delivery
    // timing matches the raw transport exactly.
    net_.send(src, dst, std::move(payload));
    return;
  }
  PeerState& ps = peer_state(dst);
  ps.window.push_back(Unacked{ps.next_seq++, std::move(payload), 0});
  ++stats_.data_sent;
  transmit(ps, dst, ps.window.back(), /*is_retransmit=*/false);
  if (!ps.rto_event.valid() || !sim_.pending(ps.rto_event)) arm_rto(dst);
}

void ReliableEndpoint::broadcast(NodeId src, const PayloadPtr& payload) {
  for (std::size_t i = 0; i < net_.size(); ++i) {
    const NodeId dst{static_cast<std::int32_t>(i)};
    if (dst == src) continue;
    send(src, dst, payload);
  }
}

void ReliableEndpoint::transmit(PeerState& ps, NodeId dst, const Unacked& u,
                                bool is_retransmit) {
  // Piggyback the reverse-path ack state; a pending delayed ack becomes
  // redundant the moment this frame leaves.
  if (ps.ack_event.valid()) {
    sim_.cancel(ps.ack_event);
    ps.ack_event = sim::EventId{};
  }
  net_.send(self_, dst,
            make_payload<RtData>(epoch_, ps.peer_epoch, ps.tx_gen, u.seq,
                                 ps.cum, sack_mask(ps), ps.rx_gen,
                                 is_retransmit, u.inner));
}

void ReliableEndpoint::on_message(const Envelope& env) {
  if (down_) return;
  if (const auto* d = env.as<RtData>()) {
    handle_data(env, *d);
  } else if (const auto* a = env.as<RtAck>()) {
    handle_ack(env.src, *a);
  } else {
    // Unwrapped traffic (self-sends bypass the layer); pass straight up.
    upper_.on_message(env);
  }
}

void ReliableEndpoint::note_peer_epoch(NodeId peer, std::uint32_t e) {
  PeerState& ps = peer_state(peer);
  if (e <= ps.peer_epoch) return;
  // The peer restarted: every unacked frame in the window addresses an
  // incarnation that no longer exists.  Fence — abandon, never replay — and
  // restart the sequence space, matching the fresh rx state the new
  // incarnation holds for us.
  emit(kEvRtFence, peer, static_cast<double>(ps.window.size()));
  stats_.abandoned += ps.window.size();
  ps.window.clear();
  ps.next_seq = 1;
  ps.tx_gen = 1;
  ps.rto = cfg_.rto_initial;
  if (ps.rto_event.valid()) {
    sim_.cancel(ps.rto_event);
    ps.rto_event = sim::EventId{};
  }
  ps.peer_epoch = e;
  // The rx state likewise describes the dead incarnation.  Adopt the new
  // epoch with an empty stream immediately — not at the first data frame
  // from it — because until then every frame we transmit piggybacks
  // cum/sack, and the old incarnation's values would pass the receiver's
  // epoch checks and falsely retire fresh frames it has yet to deliver.
  // Pointing rx_epoch at the new incarnation also fences old-incarnation
  // stragglers still in flight (d.src_epoch < rx_epoch drops them) instead
  // of re-adopting their dead stream.
  ps.rx_epoch = e;
  ps.rx_gen = 0;
  ps.cum = 0;
  ps.buffer.clear();
  if (ps.ack_event.valid()) {
    sim_.cancel(ps.ack_event);
    ps.ack_event = sim::EventId{};
  }
}

void ReliableEndpoint::handle_data(const Envelope& env, const RtData& d) {
  // Frames addressed to a previous incarnation of this node are fenced, and
  // the sender is told the current epoch so it stops retransmitting them.
  if (d.dst_epoch != epoch_) {
    ++stats_.stale_dropped;
    ++stats_.acks_sent;
    // Epoch announcement; ack_gen 0 never matches a live stream, so the
    // zero cum/sack can never be applied — only the fence matters.
    net_.send(self_, env.src,
              make_payload<RtAck>(epoch_, d.src_epoch, std::uint32_t{0},
                                  std::uint64_t{0}, std::uint64_t{0}));
    return;
  }
  note_peer_epoch(env.src, d.src_epoch);
  PeerState& ps = peer_state(env.src);

  if (d.src_epoch < ps.rx_epoch) {  // Old incarnation of the peer.
    ++stats_.stale_dropped;
    return;
  }
  if (d.src_epoch > ps.rx_epoch) {  // New incarnation: fresh sequence space.
    ps.rx_epoch = d.src_epoch;
    ps.rx_gen = d.gen;
    ps.cum = 0;
    ps.buffer.clear();
  } else if (d.gen != ps.rx_gen) {
    if (d.gen < ps.rx_gen) {  // Pre-abandonment straggler: dead stream.
      ++stats_.stale_dropped;
      return;
    }
    // The peer hit its retry cap, abandoned its window and restarted its
    // stream under a new generation; adopt the fresh sequence space (any
    // buffered frames belong to the abandoned stream and will never become
    // deliverable).
    ps.rx_gen = d.gen;
    ps.cum = 0;
    ps.buffer.clear();
  }

  // Piggybacked ack, valid only for the exact stream our window belongs to:
  // the incarnation it addresses and the generation it numbers.
  if (d.src_epoch == ps.peer_epoch && d.ack_gen == ps.tx_gen) {
    apply_ack(env.src, ps, d.cum_ack, d.sack_mask);
  }

  if (d.seq <= ps.cum || ps.buffer.contains(d.seq)) {
    // Duplicate (fault-injected copy, or a retransmission whose original
    // got through).  Suppress, but still ack: the sender may be resending
    // precisely because our ack was lost.
    ++stats_.dup_dropped;
    stats_.dup_dropped_by_kind.increment(d.inner->kind().index());
    schedule_ack(env.src);
    return;
  }

  if (d.seq != ps.cum + 1) ++stats_.reorder_buffered;
  ps.buffer.emplace(d.seq, Buffered{d.inner, env.sent_at, env.msg_id});
  deliver_ready(env.src, ps);
  if (down_) return;  // The upcall may have crashed us: no new timers.
  schedule_ack(env.src);
}

void ReliableEndpoint::deliver_ready(NodeId peer, PeerState& ps) {
  while (!ps.buffer.empty() && ps.buffer.begin()->first == ps.cum + 1) {
    Buffered b = std::move(ps.buffer.begin()->second);
    ps.buffer.erase(ps.buffer.begin());
    ++ps.cum;
    Envelope up;
    up.src = peer;
    up.dst = self_;
    up.sent_at = b.sent_at;
    up.delivered_at = sim_.now();
    up.msg_id = b.msg_id;
    up.payload = std::move(b.inner);
    upper_.on_message(up);
    if (down_) return;  // The upcall may have crashed us (test harnesses).
  }
}

void ReliableEndpoint::handle_ack(NodeId peer, const RtAck& a) {
  if (a.dst_epoch != epoch_) {
    ++stats_.stale_dropped;
    return;
  }
  note_peer_epoch(peer, a.src_epoch);
  PeerState& ps = peer_state(peer);
  // Acks describing an older incarnation or a pre-abandonment generation
  // number a dead sequence space; applying one could wrongly retire fresh
  // frames that happen to reuse the same seqs.
  if (a.src_epoch == ps.peer_epoch && a.ack_gen == ps.tx_gen) {
    apply_ack(peer, ps, a.cum_ack, a.sack_mask);
  }
}

void ReliableEndpoint::apply_ack(NodeId peer, PeerState& ps, std::uint64_t cum,
                                 std::uint64_t sack) {
  bool progress = false;
  while (!ps.window.empty() && ps.window.front().seq <= cum) {
    ps.window.pop_front();
    progress = true;
  }
  if (sack != 0) {
    const auto sacked = [&](const Unacked& u) {
      return u.seq > cum && u.seq <= cum + 64 &&
             ((sack >> (u.seq - cum - 1)) & 1) != 0;
    };
    const auto n = std::erase_if(ps.window, sacked);
    progress = progress || n > 0;
  }
  if (!progress) return;
  ps.rto = cfg_.rto_initial;
  if (ps.rto_event.valid()) {
    sim_.cancel(ps.rto_event);
    ps.rto_event = sim::EventId{};
  }
  if (!ps.window.empty()) arm_rto(peer);
}

std::uint64_t ReliableEndpoint::sack_mask(const PeerState& ps) const {
  std::uint64_t mask = 0;
  for (const auto& [seq, b] : ps.buffer) {
    if (seq > ps.cum + 64) break;  // Map iterates in seq order.
    mask |= 1ULL << (seq - ps.cum - 1);
  }
  return mask;
}

void ReliableEndpoint::schedule_ack(NodeId peer) {
  if (down_) return;  // Never arm a timer on a crashed endpoint.
  PeerState& ps = peer_state(peer);
  if (ps.ack_event.valid() && sim_.pending(ps.ack_event)) return;
  ps.ack_event = sim_.schedule_after(
      cfg_.ack_delay, [this, peer] { send_standalone_ack(peer); },
      sim::EventTag{self_.value(), sim::EventClass::kTimer,
                    next_timer_id_++});
}

void ReliableEndpoint::send_standalone_ack(NodeId peer) {
  if (down_) return;
  PeerState& ps = peer_state(peer);
  ps.ack_event = sim::EventId{};
  ++stats_.acks_sent;
  net_.send(self_, peer,
            make_payload<RtAck>(epoch_, ps.rx_epoch, ps.rx_gen, ps.cum,
                                sack_mask(ps)));
}

void ReliableEndpoint::arm_rto(NodeId peer) {
  PeerState& ps = peer_state(peer);
  // Seeded jitter decorrelates retransmit bursts across endpoints without
  // breaking determinism (each endpoint owns a forked Rng).
  const sim::SimTime delay =
      ps.rto.scaled(1.0 + cfg_.jitter_frac * rng_.uniform01());
  ps.rto_event = sim_.schedule_after(
      delay, [this, peer] { on_rto(peer); },
      sim::EventTag{self_.value(), sim::EventClass::kTimer, next_timer_id_++});
}

void ReliableEndpoint::on_rto(NodeId peer) {
  if (down_) return;
  PeerState& ps = peer_state(peer);
  ps.rto_event = sim::EventId{};
  if (ps.window.empty()) return;

  if (ps.window.front().retries >= cfg_.max_retries) {
    // Retry cap: presume the peer dead and abandon everything outstanding,
    // restarting the stream under a new generation.  If the peer was in
    // fact alive behind a long loss window, its rx state holds a sequence
    // gap the abandoned frames will never fill; the generation bump makes
    // it adopt a fresh sequence space, so the link resynchronises by
    // itself once loss heals instead of buffering every later frame
    // forever.  If the peer really is dead, the eventual epoch exchange
    // resynchronises as before.
    emit(kEvRtAbandon, peer, static_cast<double>(ps.window.size()));
    stats_.abandoned += ps.window.size();
    ps.window.clear();
    ++ps.tx_gen;
    ps.next_seq = 1;
    ps.rto = cfg_.rto_initial;
    return;
  }
  emit(kEvRtRetransmit, peer, static_cast<double>(ps.window.size()));
  for (auto& u : ps.window) {
    ++u.retries;
    ++stats_.retransmits;
    stats_.retrans_by_kind.increment(u.inner->kind().index());
    transmit(ps, peer, u, /*is_retransmit=*/true);
  }
  const sim::SimTime backed = ps.rto.scaled(cfg_.backoff_factor);
  ps.rto = std::min(backed, cfg_.rto_max);
  arm_rto(peer);
}

void ReliableEndpoint::on_crash() {
  down_ = true;
  // Map iteration order is unspecified; every operation below is per-peer
  // and order-independent, so determinism is unaffected.
  for (auto& [peer, ps] : peers_) {
    if (ps.rto_event.valid()) sim_.cancel(ps.rto_event);
    if (ps.ack_event.valid()) sim_.cancel(ps.ack_event);
    ps.rto_event = sim::EventId{};
    ps.ack_event = sim::EventId{};
  }
}

void ReliableEndpoint::on_restart() {
  ++epoch_;
  for (auto& [peer, ps] : peers_) {
    // The old incarnation's outbound state dies with it...
    stats_.abandoned += ps.window.size();
    ps.window.clear();
    ps.next_seq = 1;
    ps.tx_gen = 1;
    ps.rto = cfg_.rto_initial;
    // ...and so does its receive state: rx_epoch 0 re-adopts whatever the
    // peer sends next.  peer_epoch survives — it is knowledge about the
    // *peer*, and keeping it avoids a gratuitous fence round-trip.
    ps.rx_epoch = 0;
    ps.rx_gen = 0;
    ps.cum = 0;
    ps.buffer.clear();
  }
  down_ = false;
}

}  // namespace dmx::net
