// Dense integer message-kind registry.
//
// The simulator's two hottest per-event operations used to pivot on the
// payload's dynamic type: delivery ran a chain of dynamic_casts and every
// send incremented a std::map<std::string> keyed by type_name().  A MsgKind
// is a small dense integer assigned once per payload type, so dispatch
// becomes one table index and per-type statistics become one vector index.
// Names still exist — they are the stable public vocabulary for traces,
// tables and loss configuration — but translation happens only at the
// registry boundary, never per message.
//
// Registration is one line inside the payload class body:
//
//   struct RequestMsg final : net::Msg<RequestMsg> {   // CRTP base (payload.hpp)
//     DMX_REGISTER_MESSAGE(RequestMsg, "REQUEST");
//     ...fields...
//   };
//
// The macro defines message_kind(), which interns the name on first use;
// the Msg<> base also forces that registration during static initialization
// so name-keyed configuration (e.g. per-type loss probabilities) can be
// validated against the full set of linked message types before any message
// is ever constructed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "stats/counter_map.hpp"
#include "stats/kind_counter.hpp"

namespace dmx::net {

/// Dense identifier of one registered message type.  Default-constructed
/// kinds are invalid and match nothing.
class MsgKind {
 public:
  constexpr MsgKind() = default;

  [[nodiscard]] constexpr bool valid() const { return raw_ != kInvalidRaw; }

  /// Dense index, suitable for vector-indexed tables.  Only meaningful on a
  /// valid kind.
  [[nodiscard]] constexpr std::size_t index() const { return raw_; }

  /// Rebuild a kind from a dense index (tooling / counter translation).
  [[nodiscard]] static constexpr MsgKind from_index(std::size_t i) {
    return MsgKind(static_cast<std::uint16_t>(i));
  }

  friend constexpr bool operator==(MsgKind, MsgKind) = default;

 private:
  friend class MsgKindRegistry;
  constexpr explicit MsgKind(std::uint16_t raw) : raw_(raw) {}

  static constexpr std::uint16_t kInvalidRaw = 0xFFFF;
  std::uint16_t raw_ = kInvalidRaw;
};

/// Process-wide name <-> kind table.  Interning is idempotent: the first
/// registration of a name allocates the next dense index, later ones return
/// it.  Lookups by kind are O(1); lookups by name are cold-path only.
///
/// The registry has a two-phase lifecycle.  During static initialization
/// (and single-threaded setup) it is mutable under a mutex.  Once every
/// linked payload type has registered, freeze() seals it: the table becomes
/// immutable, every lookup (find / name / size / names, and intern of an
/// already-known name) is lock-free, and intern of an *unknown* name throws
/// instead of mutating.  Sealing is what makes concurrent simulations safe
/// to run against the shared registry — after freeze there is no write left
/// to race with.  freeze() is idempotent and cannot be undone.
class MsgKindRegistry {
 public:
  static MsgKindRegistry& instance();

  /// Register `name` (or fetch its existing kind).  Throws on an empty name
  /// or on exhausting the 16-bit kind space.  On a frozen registry a known
  /// name still resolves (lock-free); a new name throws std::logic_error.
  MsgKind intern(std::string_view name);

  /// Look up a name without registering it; invalid kind if unknown.
  [[nodiscard]] MsgKind find(std::string_view name) const;

  /// Stable name of a kind; "<invalid>" for an invalid/unknown kind.
  [[nodiscard]] std::string_view name(MsgKind kind) const;

  /// Number of kinds registered so far.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of all registered names, in kind-index order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Seal the registry: no new kinds, lock-free lookups from any thread.
  /// Call after static registration is complete (harness::freeze_registries
  /// does this before spawning sweep workers).  Idempotent, irreversible.
  void freeze();

  [[nodiscard]] bool frozen() const {
    return frozen_.load(std::memory_order_acquire);
  }

  MsgKindRegistry(const MsgKindRegistry&) = delete;
  MsgKindRegistry& operator=(const MsgKindRegistry&) = delete;

 private:
  MsgKindRegistry() = default;

  mutable std::mutex mu_;
  std::deque<std::string> names_;  ///< Deque: element storage never moves.
  std::map<std::string, std::uint16_t, std::less<>> by_name_;
  /// Release-published by freeze(); an acquire load observing true
  /// guarantees visibility of every prior table write, so readers skip mu_.
  std::atomic<bool> frozen_{false};
};

/// THE translation point from dense kind-indexed counters to name-keyed
/// counts: every table, artifact and result view that spells message names
/// derives them through this one function, so the spellings cannot diverge.
/// Cold path; zero slots are skipped.
[[nodiscard]] stats::CounterMap counts_by_name(const stats::KindCounter& c);

}  // namespace dmx::net

/// Place inside a payload class body (paired with the net::Msg<T> CRTP base)
/// to bind the type to a stable wire name and a dense MsgKind.
#define DMX_REGISTER_MESSAGE(T, NAME)                                       \
  [[nodiscard]] static ::dmx::net::MsgKind message_kind() {                 \
    static_assert(std::is_base_of_v<::dmx::net::Payload, T>,                \
                  #T " must derive from net::Msg<" #T ">");                 \
    static const ::dmx::net::MsgKind kKind =                                \
        ::dmx::net::MsgKindRegistry::instance().intern(NAME);               \
    return kKind;                                                           \
  }                                                                         \
  static_assert(sizeof(NAME) > 1, "message name must be non-empty")
