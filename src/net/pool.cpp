#include "net/pool.hpp"

#include <new>
#include <vector>

namespace dmx::net {
namespace {

/// Intrusive free-list node, stored in the freed block itself.  Every bucket
/// is at least 64 bytes and at least max_align_t-aligned, so the overlay is
/// always in bounds and aligned.
struct FreeNode {
  FreeNode* next;
};

constexpr std::size_t kSlabBytes = 64 * 1024;

/// One thread's pool: per-bucket free lists fed by 64 KiB slabs.  Slabs are
/// returned to the heap when the pool (i.e. the thread) dies; individual
/// blocks only ever cycle through the free lists.  Payloads must therefore
/// not outlive the thread that created them — the sweep runner's payload
/// confinement invariant, which also makes the whole pool lock-free.
class ThreadPool {
 public:
  ~ThreadPool() {
    for (void* s : slabs_) ::operator delete(s);
  }

  void* allocate(std::size_t size, std::uint8_t& bucket) {
    bucket = bucket_for(size);
    ++stats_.live;
    if (bucket == kHeapBucket) {
      ++stats_.heap_served;
      return ::operator new(size);
    }
    FreeNode*& head = free_[bucket];
    if (head == nullptr) refill(bucket);
    FreeNode* node = head;
    head = node->next;
    ++stats_.pool_served;
    return node;
  }

  void deallocate(void* p, std::uint8_t bucket) noexcept {
    --stats_.live;
    if (bucket == kHeapBucket) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[bucket];
    free_[bucket] = node;
  }

  [[nodiscard]] const AllocStats& stats() const { return stats_; }

 private:
  /// Cold path: fetch a slab and carve it into blocks of this bucket's size.
  void refill(std::uint8_t bucket) {
    char* slab = static_cast<char*>(::operator new(kSlabBytes));
    slabs_.push_back(slab);
    ++stats_.slabs;
    const std::size_t step = bucket_size(bucket);
    FreeNode*& head = free_[bucket];
    for (std::size_t off = 0; off + step <= kSlabBytes; off += step) {
      auto* node = reinterpret_cast<FreeNode*>(slab + off);
      node->next = head;
      head = node;
    }
  }

  FreeNode* free_[kBucketCount] = {};
  std::vector<void*> slabs_;
  AllocStats stats_;
};

ThreadPool& local_pool() {
  static thread_local ThreadPool pool;
  return pool;
}

AllocStats& std_alloc_stats() {
  static thread_local AllocStats stats;
  return stats;
}

}  // namespace

void* PoolAllocPolicy::allocate(std::size_t size, std::uint8_t& bucket) {
  return local_pool().allocate(size, bucket);
}

void PoolAllocPolicy::deallocate(void* p, std::uint8_t bucket) noexcept {
  local_pool().deallocate(p, bucket);
}

const AllocStats& PoolAllocPolicy::stats() { return local_pool().stats(); }

void* StdAllocPolicy::allocate(std::size_t size, std::uint8_t& bucket) {
  // Identical bucket bookkeeping to the pool, so deallocate() can hand
  // std::allocator the exact size it was asked for.
  bucket = bucket_for(size);
  AllocStats& st = std_alloc_stats();
  ++st.live;
  ++st.heap_served;
  if (bucket == kHeapBucket) return ::operator new(size);
  return std::allocator<std::byte>{}.allocate(bucket_size(bucket));
}

void StdAllocPolicy::deallocate(void* p, std::uint8_t bucket) noexcept {
  --std_alloc_stats().live;
  // std::allocator wants the request size back; buckets encode it.  Oversize
  // blocks bypassed std::allocator (their exact size is gone by free time),
  // so they pair with plain operator new/delete.
  if (bucket == kHeapBucket) {
    ::operator delete(p);
    return;
  }
  std::allocator<std::byte>{}.deallocate(static_cast<std::byte*>(p),
                                         bucket_size(bucket));
}

const AllocStats& StdAllocPolicy::stats() { return std_alloc_stats(); }

}  // namespace dmx::net
