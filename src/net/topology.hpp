// Multi-hop network topologies.
//
// The paper makes "no assumptions ... with respect to the network
// topology": messages between any pair are simply delayed.  To study the
// algorithms on structured networks (the setting of Raymond's tree or
// Chaudhuri's mesh work the paper cites), HopDelay derives per-pair
// latencies from shortest-path hop counts over an explicit graph.
#pragma once

#include <cstdint>
#include <vector>

#include "net/delay_model.hpp"
#include "net/node_id.hpp"

namespace dmx::net {

/// Undirected graph over nodes 0..N-1.
class Topology {
 public:
  explicit Topology(std::size_t n);

  void add_edge(NodeId a, NodeId b);
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  /// True if every node can reach every other.
  [[nodiscard]] bool connected() const;

  /// Shortest-path hop counts from `src` (BFS); unreachable = SIZE_MAX.
  [[nodiscard]] std::vector<std::size_t> hops_from(NodeId src) const;

  /// Maximum shortest-path distance over all pairs.
  [[nodiscard]] std::size_t diameter() const;

  // Canned shapes.
  static Topology ring(std::size_t n);
  static Topology star(std::size_t n);        ///< Node 0 is the hub.
  static Topology line(std::size_t n);
  static Topology full_mesh(std::size_t n);
  static Topology binary_tree(std::size_t n); ///< parent(i) = (i-1)/2.

 private:
  std::size_t n_;
  std::vector<std::vector<NodeId>> adj_;
};

/// Delay = per_hop * hop_distance(src, dst) over the given topology.
class HopDelay final : public DelayModel {
 public:
  HopDelay(Topology topology, sim::SimTime per_hop);

  sim::SimTime delay(NodeId src, NodeId dst, std::size_t size_hint,
                     sim::Rng& rng) override;

  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  Topology topo_;
  sim::SimTime per_hop_;
  std::vector<std::vector<std::size_t>> hops_;  // precomputed all-pairs
};

}  // namespace dmx::net
