#include "runtime/process.hpp"

#include <utility>

#include "runtime/cluster.hpp"
#include "runtime/events.hpp"

namespace dmx::runtime {

Process::~Process() {
  // Timers hold a copy of `this` in their callbacks; the Cluster owns both
  // the simulator and the processes and destroys processes first, so cancel
  // everything to prevent dangling callbacks if the simulator kept running.
  if (net_ != nullptr) cancel_all_timers();
}

void Process::bind(Cluster* cluster, net::Network* net, net::NodeId id,
                   obs::Tracer tracer) {
  cluster_ = cluster;
  net_ = net;
  transport_ = net;  // Raw by default; Cluster may interpose a reliable layer.
  id_ = id;
  tracer_ = std::move(tracer);
}

sim::Simulator& Process::simulator() const { return net_->simulator(); }

sim::SimTime Process::now() const { return net_->simulator().now(); }

void Process::start() {
  if (net_ == nullptr) {
    throw std::logic_error("Process::start: not bound to a cluster");
  }
  on_start();
}

void Process::crash() {
  if (crashed_) return;
  crashed_ = true;
  cancel_all_timers();
  net_->faults().set_node_down(id_, true);
  emitf(kEvNodeCrashed, [] { return std::string("crashed"); });
  on_crash();
}

void Process::restart() {
  if (!crashed_) return;
  crashed_ = false;
  net_->faults().set_node_down(id_, false);
  emitf(kEvNodeRestarted, [] { return std::string("restarted"); });
  on_restart();
}

TimerId Process::set_timer(sim::SimTime delay, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("Process::set_timer: empty callback");
  const std::uint64_t tid = next_timer_id_++;
  // Tag with (owner node, process-local timer id): tid is assigned in
  // program order by this process, so it is a stable cross-execution
  // identity for scheduling controllers.
  sim::EventId ev = simulator().schedule_after(
      delay,
      [this, tid, fn = std::move(fn)]() {
        erase_timer(tid);
        if (!crashed_) fn();
      },
      sim::EventTag{id_.value(), sim::EventClass::kTimer, tid});
  timers_.emplace_back(tid, ev);
  return TimerId(tid);
}

void Process::erase_timer(std::uint64_t tid) {
  for (auto& entry : timers_) {
    if (entry.first == tid) {
      entry = timers_.back();  // order is irrelevant; swap-and-pop
      timers_.pop_back();
      return;
    }
  }
}

void Process::cancel_timer(TimerId& timer) {
  if (timer.valid()) {
    for (const auto& [tid, ev] : timers_) {
      if (tid == timer.id_) {
        simulator().cancel(ev);
        erase_timer(tid);
        break;
      }
    }
    timer = TimerId{};
  }
}

bool Process::timer_pending(TimerId timer) const {
  if (!timer.valid()) return false;
  for (const auto& entry : timers_) {
    if (entry.first == timer.id_) return true;
  }
  return false;
}

void Process::cancel_all_timers() {
  for (auto& [tid, ev] : timers_) simulator().cancel(ev);
  timers_.clear();
}

}  // namespace dmx::runtime
