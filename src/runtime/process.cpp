#include "runtime/process.hpp"

#include <utility>

#include "runtime/cluster.hpp"
#include "runtime/events.hpp"

namespace dmx::runtime {

Process::~Process() {
  // Timers hold a copy of `this` in their callbacks; the Cluster owns both
  // the simulator and the processes and destroys processes first, so cancel
  // everything to prevent dangling callbacks if the simulator kept running.
  if (net_ != nullptr) cancel_all_timers();
}

void Process::bind(Cluster* cluster, net::Network* net, net::NodeId id,
                   obs::Tracer tracer) {
  cluster_ = cluster;
  net_ = net;
  transport_ = net;  // Raw by default; Cluster may interpose a reliable layer.
  id_ = id;
  tracer_ = std::move(tracer);
}

sim::Simulator& Process::simulator() const { return net_->simulator(); }

sim::SimTime Process::now() const { return net_->simulator().now(); }

void Process::start() {
  if (net_ == nullptr) {
    throw std::logic_error("Process::start: not bound to a cluster");
  }
  on_start();
}

void Process::crash() {
  if (crashed_) return;
  crashed_ = true;
  cancel_all_timers();
  net_->faults().set_node_down(id_, true);
  emitf(kEvNodeCrashed, [] { return std::string("crashed"); });
  on_crash();
}

void Process::restart() {
  if (!crashed_) return;
  crashed_ = false;
  net_->faults().set_node_down(id_, false);
  emitf(kEvNodeRestarted, [] { return std::string("restarted"); });
  on_restart();
}

TimerId Process::set_timer(sim::SimTime delay, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("Process::set_timer: empty callback");
  const std::uint64_t tid = next_timer_id_++;
  sim::EventId ev = simulator().schedule_after(
      delay, [this, tid, fn = std::move(fn)]() {
        timers_.erase(tid);
        if (!crashed_) fn();
      });
  timers_.emplace(tid, ev);
  return TimerId(tid);
}

void Process::cancel_timer(TimerId& timer) {
  if (!timer.valid()) return;
  auto it = timers_.find(timer.id_);
  if (it != timers_.end()) {
    simulator().cancel(it->second);
    timers_.erase(it);
  }
  timer = TimerId{};
}

bool Process::timer_pending(TimerId timer) const {
  return timer.valid() && timers_.contains(timer.id_);
}

void Process::cancel_all_timers() {
  for (auto& [tid, ev] : timers_) simulator().cancel(ev);
  timers_.clear();
}

}  // namespace dmx::runtime
