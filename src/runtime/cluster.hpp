// Cluster: owns the simulator, the network and N processes.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "net/reliable_transport.hpp"
#include "obs/tracer.hpp"
#include "runtime/process.hpp"
#include "sim/simulator.hpp"

namespace dmx::runtime {

/// Wires a Simulator, a Network and a fleet of Processes together and
/// manages their lifecycle (start / crash / restart).
class Cluster {
 public:
  Cluster(std::size_t n_nodes, std::unique_ptr<net::DelayModel> delay,
          std::uint64_t seed, obs::Tracer tracer = {});

  /// Share an externally owned simulator (several clusters on one virtual
  /// clock, e.g. one network per lock resource in mutex::LockSpace).  The
  /// simulator must outlive the cluster.
  Cluster(sim::Simulator& shared_sim, std::size_t n_nodes,
          std::unique_ptr<net::DelayModel> delay, std::uint64_t seed,
          obs::Tracer tracer = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return processes_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }

  /// Interpose a ReliableEndpoint between every process and the network.
  /// Must be called before the first install(); each installed process then
  /// sends through its endpoint and receives exactly-once, in-order traffic.
  void use_reliable_transport(net::ReliableTransportConfig cfg);
  [[nodiscard]] bool reliable_transport() const { return reliable_; }

  /// The reliability endpoint of a node (null when running raw).
  [[nodiscard]] net::ReliableEndpoint* endpoint(net::NodeId id) const;

  /// Cluster-wide merge of all endpoints' reliability counters (empty stats
  /// when running raw).
  [[nodiscard]] net::TransportStats transport_stats() const;

  /// Install the process for a node slot.  All slots must be filled before
  /// start().  Returns a non-owning pointer to the installed process.
  Process* install(net::NodeId id, std::unique_ptr<Process> process);

  /// Typed accessor for an installed process.
  template <typename T>
  [[nodiscard]] T* process_as(net::NodeId id) const {
    auto* p = dynamic_cast<T*>(process(id));
    if (p == nullptr) {
      throw std::logic_error("Cluster::process_as: wrong process type");
    }
    return p;
  }

  [[nodiscard]] Process* process(net::NodeId id) const;

  /// Calls on_start() on every process (in node-id order).
  void start();

  /// Fail-silent crash / restart of a node.
  void crash_node(net::NodeId id);
  void restart_node(net::NodeId id);

 private:
  std::unique_ptr<sim::Simulator> owned_sim_;  ///< Null when shared.
  sim::Simulator* sim_;
  std::unique_ptr<net::Network> net_;
  obs::Tracer tracer_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<net::ReliableEndpoint>> endpoints_;
  net::ReliableTransportConfig transport_cfg_;
  std::uint64_t seed_;
  bool reliable_ = false;
  bool started_ = false;
};

}  // namespace dmx::runtime
