#include "runtime/cluster.hpp"

namespace dmx::runtime {

Cluster::Cluster(std::size_t n_nodes, std::unique_ptr<net::DelayModel> delay,
                 std::uint64_t seed, obs::Tracer tracer)
    : owned_sim_(std::make_unique<sim::Simulator>()), sim_(owned_sim_.get()),
      net_(std::make_unique<net::Network>(*sim_, n_nodes, std::move(delay),
                                          seed)),
      tracer_(std::move(tracer)), processes_(n_nodes), endpoints_(n_nodes),
      seed_(seed) {
  // Reserve event storage for a broadcast-heavy steady state (one in-flight
  // message per node plus timer slack) so large-N runs build their working
  // set once instead of growing it mid-run.
  sim_->reserve(2 * n_nodes + 64);
}

Cluster::Cluster(sim::Simulator& shared_sim, std::size_t n_nodes,
                 std::unique_ptr<net::DelayModel> delay, std::uint64_t seed,
                 obs::Tracer tracer)
    : sim_(&shared_sim),
      net_(std::make_unique<net::Network>(*sim_, n_nodes, std::move(delay),
                                          seed)),
      tracer_(std::move(tracer)), processes_(n_nodes), endpoints_(n_nodes),
      seed_(seed) {
  sim_->reserve(2 * n_nodes + 64);
}

void Cluster::use_reliable_transport(net::ReliableTransportConfig cfg) {
  for (const auto& p : processes_) {
    if (p != nullptr) {
      throw std::logic_error(
          "Cluster::use_reliable_transport: must precede install()");
    }
  }
  transport_cfg_ = cfg;
  reliable_ = true;
}

net::ReliableEndpoint* Cluster::endpoint(net::NodeId id) const {
  if (!id.valid() || id.index() >= endpoints_.size()) {
    throw std::out_of_range("Cluster::endpoint: node id out of range");
  }
  return endpoints_[id.index()].get();
}

net::TransportStats Cluster::transport_stats() const {
  net::TransportStats total;
  for (const auto& ep : endpoints_) {
    if (ep != nullptr) total.merge(ep->stats());
  }
  return total;
}

Process* Cluster::install(net::NodeId id, std::unique_ptr<Process> process) {
  if (!id.valid() || id.index() >= processes_.size()) {
    throw std::out_of_range("Cluster::install: node id out of range");
  }
  if (!process) throw std::invalid_argument("Cluster::install: null process");
  if (processes_[id.index()] != nullptr) {
    throw std::logic_error("Cluster::install: slot already filled");
  }
  process->bind(this, net_.get(), id, tracer_);
  if (reliable_) {
    // The endpoint takes the process's place on the wire; the process sends
    // through it and sees only deduped, in-order traffic.  Each endpoint
    // gets an independent deterministic jitter stream derived from the
    // cluster seed and its node id.
    const std::uint64_t ep_seed =
        seed_ ^ (0x9e3779b97f4a7c15ULL * (id.index() + 2));
    endpoints_[id.index()] = std::make_unique<net::ReliableEndpoint>(
        *net_, id, *process, transport_cfg_, ep_seed, tracer_);
    process->set_transport(endpoints_[id.index()].get());
    net_->attach(id, endpoints_[id.index()].get());
  } else {
    net_->attach(id, process.get());
  }
  processes_[id.index()] = std::move(process);
  return processes_[id.index()].get();
}

Process* Cluster::process(net::NodeId id) const {
  if (!id.valid() || id.index() >= processes_.size()) {
    throw std::out_of_range("Cluster::process: node id out of range");
  }
  return processes_[id.index()].get();
}

void Cluster::start() {
  if (started_) throw std::logic_error("Cluster::start: already started");
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] == nullptr) {
      throw std::logic_error("Cluster::start: node slot " + std::to_string(i) +
                             " is empty");
    }
  }
  started_ = true;
  for (auto& p : processes_) p->start();
}

void Cluster::crash_node(net::NodeId id) {
  process(id)->crash();
  if (auto* ep = endpoints_[id.index()].get()) ep->on_crash();
}

void Cluster::restart_node(net::NodeId id) {
  // Epoch bump first: any rejoin traffic the process emits from its restart
  // hook must already carry the new incarnation.
  if (auto* ep = endpoints_[id.index()].get()) ep->on_restart();
  process(id)->restart();
}

}  // namespace dmx::runtime
