#include "runtime/cluster.hpp"

namespace dmx::runtime {

Cluster::Cluster(std::size_t n_nodes, std::unique_ptr<net::DelayModel> delay,
                 std::uint64_t seed, trace::Tracer tracer)
    : owned_sim_(std::make_unique<sim::Simulator>()), sim_(owned_sim_.get()),
      net_(std::make_unique<net::Network>(*sim_, n_nodes, std::move(delay),
                                          seed)),
      tracer_(std::move(tracer)), processes_(n_nodes) {}

Cluster::Cluster(sim::Simulator& shared_sim, std::size_t n_nodes,
                 std::unique_ptr<net::DelayModel> delay, std::uint64_t seed,
                 trace::Tracer tracer)
    : sim_(&shared_sim),
      net_(std::make_unique<net::Network>(*sim_, n_nodes, std::move(delay),
                                          seed)),
      tracer_(std::move(tracer)), processes_(n_nodes) {}

Process* Cluster::install(net::NodeId id, std::unique_ptr<Process> process) {
  if (!id.valid() || id.index() >= processes_.size()) {
    throw std::out_of_range("Cluster::install: node id out of range");
  }
  if (!process) throw std::invalid_argument("Cluster::install: null process");
  if (processes_[id.index()] != nullptr) {
    throw std::logic_error("Cluster::install: slot already filled");
  }
  process->bind(this, net_.get(), id, tracer_);
  net_->attach(id, process.get());
  processes_[id.index()] = std::move(process);
  return processes_[id.index()].get();
}

Process* Cluster::process(net::NodeId id) const {
  if (!id.valid() || id.index() >= processes_.size()) {
    throw std::out_of_range("Cluster::process: node id out of range");
  }
  return processes_[id.index()].get();
}

void Cluster::start() {
  if (started_) throw std::logic_error("Cluster::start: already started");
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] == nullptr) {
      throw std::logic_error("Cluster::start: node slot " + std::to_string(i) +
                             " is empty");
    }
  }
  started_ = true;
  for (auto& p : processes_) p->start();
}

void Cluster::crash_node(net::NodeId id) { process(id)->crash(); }

void Cluster::restart_node(net::NodeId id) { process(id)->restart(); }

}  // namespace dmx::runtime
