// Node-lifecycle event kinds (crash / restart, emitted by Process).
#pragma once

#include "obs/event.hpp"

namespace dmx::runtime {

DMX_REGISTER_EVENT(kEvNodeCrashed, "node.crashed", "lifecycle");
DMX_REGISTER_EVENT(kEvNodeRestarted, "node.restarted", "lifecycle");

}  // namespace dmx::runtime
