// Actor-style process base class.
//
// A Process is one node's protocol state machine: it receives messages from
// the network, sets timers on the simulation clock, and sends/broadcasts
// messages.  Crash semantics are fail-silent (Section 6 of the paper): a
// crashed process receives nothing, all its pending timers are suppressed,
// and the network drops traffic addressed to it until restart.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/payload.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace dmx::runtime {

class Cluster;

/// Handle for a process-owned timer.
class TimerId {
 public:
  constexpr TimerId() = default;
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  friend constexpr bool operator==(TimerId, TimerId) = default;

 private:
  friend class Process;
  constexpr explicit TimerId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Process : public net::MessageHandler {
 public:
  ~Process() override;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Network entry point; filters messages while crashed.
  void on_message(const net::Envelope& env) final {
    if (crashed_) return;
    handle(env);
  }

  /// Lifecycle, driven by the Cluster.
  void start();
  void crash();
  void restart();

 protected:
  Process() = default;

  /// Subclass hooks.
  virtual void handle(const net::Envelope& env) = 0;
  virtual void on_start() {}
  virtual void on_crash() {}
  virtual void on_restart() {}

  [[nodiscard]] sim::Simulator& simulator() const;
  [[nodiscard]] net::Network& network() const { return *net_; }
  [[nodiscard]] sim::SimTime now() const;

  /// Outgoing traffic goes through the bound transport: the raw network by
  /// default, or a reliability layer when the cluster installs one.
  void send(net::NodeId dst, net::PayloadPtr payload) const {
    transport_->send(id_, dst, std::move(payload));
  }
  void broadcast(const net::PayloadPtr& payload) const {
    transport_->broadcast(id_, payload);
  }

  /// Schedule a callback `delay` from now.  Fires only if the process is
  /// still alive; automatically deregistered after firing.
  TimerId set_timer(sim::SimTime delay, std::function<void()> fn);

  /// Cancel a timer if still pending; resets the handle.
  void cancel_timer(TimerId& timer);
  [[nodiscard]] bool timer_pending(TimerId timer) const;

  /// Cancel every pending timer (also done automatically on crash).
  void cancel_all_timers();

  /// Structured trace emission (obs/event.hpp).  Disabled tracing costs
  /// exactly this one branch: no Event is built, nothing allocates.
  void emit(obs::EventKind kind, std::uint64_t req = 0, std::int64_t arg = 0,
            double value = 0.0) const {
    if (!tracer_.enabled()) return;
    tracer_.write(obs::Event{now(), kind, id_.value(), req, arg, value});
  }

  /// Emission with a lazy detail formatter — any callable returning
  /// std::string.  The formatter is passed by reference and runs only if a
  /// text-producing sink asks for it, so emitf sites pay nothing for the
  /// human-readable string on the JSONL/Chrome/disabled paths.
  template <typename F>
  void emitf(obs::EventKind kind, const F& fmt, std::uint64_t req = 0,
             std::int64_t arg = 0, double value = 0.0) const {
    if (!tracer_.enabled()) return;
    tracer_.write(obs::Event{now(), kind, id_.value(), req, arg, value},
                  obs::DetailRef(fmt));
  }

  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }

 private:
  friend class Cluster;
  void bind(Cluster* cluster, net::Network* net, net::NodeId id,
            obs::Tracer tracer);
  void erase_timer(std::uint64_t tid);
  void set_transport(net::Transport* t) { transport_ = t; }

  Cluster* cluster_ = nullptr;
  net::Network* net_ = nullptr;
  net::Transport* transport_ = nullptr;
  net::NodeId id_;
  obs::Tracer tracer_;
  bool crashed_ = false;
  std::uint64_t next_timer_id_ = 1;
  /// Live timers, flat: a process owns a handful at a time, so linear scans
  /// beat a hash map and the backing array is reused across arm/fire cycles.
  std::vector<std::pair<std::uint64_t, sim::EventId>> timers_;
};

}  // namespace dmx::runtime
