// Kind-indexed message dispatch tables.
//
// Replaces the per-delivery dynamic_cast chains that every algorithm's
// handle() used to run: each algorithm class builds one MsgDispatcher (a
// dense vector of plain function pointers indexed by MsgKind) at first use
// and shares it across all nodes.  Delivering a message is then one bounds
// check plus one indirect call, independent of how many message types the
// protocol has — the chain cost that dominated the simulator's delivery path
// is gone, and adding a message type to a protocol is one table entry.
//
// Two registration styles:
//
//   table.on<&Algo::on_request>();          // handler is a declared member:
//                                           //   void on_request(const Envelope&,
//                                           //                   const RequestMsg&)
//
//   table.set(HiddenMsg::message_kind(),    // handler for a payload type local
//       [](Algo& self, const net::Envelope& env) {   // to the .cpp file
//         const auto& msg = static_cast<const HiddenMsg&>(*env.payload);
//         ...
//       });
//
// Build the table inside a static member function of the algorithm so the
// lambdas enjoy the class's private access.
#pragma once

#include <cstddef>
#include <vector>

#include "net/msg_kind.hpp"
#include "net/payload.hpp"

namespace dmx::runtime {

namespace detail {
template <typename T>
struct HandlerTraits;
template <typename Self, typename M>
struct HandlerTraits<void (Self::*)(const net::Envelope&, const M&)> {
  using Msg = M;
};
}  // namespace detail

template <typename Self>
class MsgDispatcher {
 public:
  using Fn = void (*)(Self&, const net::Envelope&);

  /// Register a member-function handler; the message type is deduced from
  /// its second parameter and the downcast is pre-resolved by the table
  /// index (no per-delivery type check).
  template <auto Handler>
  MsgDispatcher& on() {
    using M = typename detail::HandlerTraits<decltype(Handler)>::Msg;
    return set(M::message_kind(), [](Self& self, const net::Envelope& env) {
      (self.*Handler)(env, static_cast<const M&>(*env.payload));
    });
  }

  /// Register a raw handler for a kind (for payload types private to a
  /// translation unit).
  MsgDispatcher& set(net::MsgKind kind, Fn fn) {
    const std::size_t i = kind.index();
    if (i >= table_.size()) table_.resize(i + 1, nullptr);
    table_[i] = fn;
    return *this;
  }

  /// Dispatch one delivered envelope; false if no handler is registered for
  /// its kind (callers typically throw — an unknown message is a bug).
  bool dispatch(Self& self, const net::Envelope& env) const {
    const std::size_t i = env.payload->kind().index();
    if (i >= table_.size() || table_[i] == nullptr) return false;
    table_[i](self, env);
    return true;
  }

 private:
  std::vector<Fn> table_;
};

}  // namespace dmx::runtime
