#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace dmx::sim {

EventId Simulator::schedule_at(SimTime t, Callback fn, EventTag tag) {
  if (t < now_) {
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Simulator::schedule_at: empty callback");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  slots_[slot].time = t;
  slots_[slot].seq = next_seq_;
  slots_[slot].tag = tag;
  const std::uint64_t id = pack(slot, slots_[slot].gen);
  heap_.push_back(HeapEntry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end());
  ++pending_;
  return EventId(id);
}

bool Simulator::cancel(EventId id) {
  if (!pending(id)) return false;
  free_slot(slot_of(id.id_));  // heap entry skipped lazily on pop
  return true;
}

bool Simulator::skip_cancelled() {
  while (!heap_.empty()) {
    const std::uint64_t id = heap_.front().id;
    const std::uint32_t slot = slot_of(id);
    if (slots_[slot].gen == gen_of(id)) return true;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  return false;
}

bool Simulator::step() {
  if (!skip_cancelled()) return false;
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.pop_back();
  const std::uint32_t slot = slot_of(top.id);
  Callback fn = std::move(slots_[slot].fn);
  // Vacate before running: the callback may reschedule into this very slot
  // (under a new generation) or cancel other events.
  free_slot(slot);
  now_ = top.time;
  ++events_executed_;
  fn();
  return true;
}

void Simulator::collect_pending(std::vector<PendingEvent>& out) const {
  out.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const EventSlot& s = slots_[i];
    if (!s.fn) continue;  // vacant (free-listed) slot
    out.push_back(PendingEvent{EventId(pack(i, s.gen)), s.time, s.seq, s.tag});
  }
  std::sort(out.begin(), out.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
}

bool Simulator::fire(EventId id) {
  if (!pending(id)) return false;
  const std::uint32_t slot = slot_of(id.id_);
  const SimTime t = slots_[slot].time;
  Callback fn = std::move(slots_[slot].fn);
  // Vacate before running, exactly as step() does; the generation bump makes
  // the event's heap entry stale, so skip_cancelled() drops it later.
  free_slot(slot);
  if (now_ < t) now_ = t;
  ++events_executed_;
  fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !budget_exhausted() && step()) {
  }
  if (budget_exhausted() && skip_cancelled()) event_limit_hit_ = true;
}

void Simulator::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !budget_exhausted() && skip_cancelled() &&
         heap_.front().time <= t) {
    step();
  }
  if (budget_exhausted() && skip_cancelled() && heap_.front().time <= t) {
    // Work remained inside the window: the budget, not the horizon, ended
    // the run.  Leave the clock at the last executed event.
    event_limit_hit_ = true;
    return;
  }
  // A stop() mid-run leaves the clock at the stopping event's time; only a
  // run that genuinely drained the window advances to the horizon.
  if (!stopped_ && now_ < t) now_ = t;
}

void Simulator::reserve(std::size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

}  // namespace dmx::sim
