#include "sim/simulator.hpp"

#include <utility>

namespace dmx::sim {

EventId Simulator::schedule_at(SimTime t, Callback fn) {
  if (t < now_) {
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Simulator::schedule_at: empty callback");
  }
  const std::uint64_t id = next_id_++;
  heap_.push(HeapEntry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId(id);
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id.id_) > 0;  // heap entry skipped lazily on pop
}

bool Simulator::skip_cancelled() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
  return !heap_.empty();
}

bool Simulator::step() {
  if (!skip_cancelled()) return false;
  const HeapEntry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = top.time;
  ++events_executed_;
  fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && skip_cancelled() && heap_.top().time <= t) {
    step();
  }
  // A stop() mid-run leaves the clock at the stopping event's time; only a
  // run that genuinely drained the window advances to the horizon.
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace dmx::sim
