// Seeded pseudo-random number generation for simulations.
//
// All stochastic behaviour in the library flows through a single Rng instance
// per simulation so that a (seed, configuration) pair fully determines a run.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace dmx::sim {

/// Deterministic random source.  Thin wrapper around mt19937_64 exposing the
/// distributions the workloads and delay models need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Exponentially distributed duration with mean `mean`.
  SimTime exponential_time(SimTime mean) {
    return SimTime::units(exponential(1.0 / mean.to_units()));
  }

  /// Uniformly distributed duration in [lo, hi).
  SimTime uniform_time(SimTime lo, SimTime hi) {
    return SimTime::units(uniform(lo.to_units(), hi.to_units()));
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  std::size_t weighted_index(std::span<const double> weights);

  /// Derive an independent child generator (e.g. one per node) such that the
  /// child streams do not overlap the parent stream in practice.
  Rng fork() {
    const std::uint64_t s =
        engine_() ^ 0x9e3779b97f4a7c15ULL;  // golden-ratio scramble
    return Rng(s);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace dmx::sim
