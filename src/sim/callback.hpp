// Small-buffer-optimized move-only callables for simulator events and hooks.
//
// Every message in flight is one scheduled closure; with std::function the
// typical capture (an Envelope plus a this-pointer, ~48 bytes) exceeds
// libstdc++'s 16-byte inline buffer and allocates.  SmallCallback inlines up
// to kInlineBytes of capture state in the event slot itself, so scheduling a
// delivery is pointer shuffling, not heap traffic.  Oversized or
// potentially-throwing-on-move callables transparently fall back to the
// heap; behaviour is identical either way.
//
// SmallCallback is templated on the call signature so typed notification
// hooks (e.g. mutex::LockSpace's on_granted/on_released, which pass a
// LockEvent) ride the same zero-allocation plane as the classic void()
// simulator events; SmallFn remains the alias every event-scheduling call
// site uses.  The type is move-only (closures holding PayloadPtr refcounts
// must not be silently duplicated) and deliberately tiny in API: construct
// from any compatible callable, test for emptiness, invoke.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace dmx::sim {

namespace detail {
template <typename T>
inline constexpr bool kIsStdFunction = false;
template <typename Sig>
inline constexpr bool kIsStdFunction<std::function<Sig>> = true;
}  // namespace detail

template <typename Sig>
class SmallCallback;

template <typename R, typename... Args>
class SmallCallback<R(Args...)> {
 public:
  /// Room for a network-delivery closure (this + Envelope = 48 bytes) with
  /// headroom for driver/timer lambdas; measured, not sacred.
  static constexpr std::size_t kInlineBytes = 80;

  constexpr SmallCallback() noexcept = default;
  constexpr SmallCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, SmallCallback> &&
                                        std::is_invocable_r_v<R, Fn&, Args...>>>
  SmallCallback(F&& f) {  // NOLINT(runtime/explicit)
    // Preserve std::function's empty state instead of wrapping it: callers
    // (and tests) rely on scheduling an empty callback being rejected.
    if constexpr (detail::kIsStdFunction<Fn>) {
      if (!f) return;
    }
    constexpr bool kInline = sizeof(Fn) <= kInlineBytes &&
                             alignof(Fn) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<Fn>;
    if constexpr (kInline) {
      obj_ = ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    } else {
      obj_ = new Fn(std::forward<F>(f));
    }
    ops_ = &OpsImpl<Fn, kInline>::kOps;
  }

  SmallCallback(SmallCallback&& o) noexcept { move_from(o); }
  SmallCallback& operator=(SmallCallback&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;
  ~SmallCallback() { destroy(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(obj_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*destroy)(void*) noexcept;
    /// Relocate src's target into dst_buf (inline) or steal it (heap);
    /// returns the new object pointer.  src is dead afterwards.
    void* (*relocate)(void* dst_buf, void* src) noexcept;
  };

  template <typename Fn, bool kInline>
  struct OpsImpl {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    }
    static void destroy(void* p) noexcept {
      if constexpr (kInline) {
        static_cast<Fn*>(p)->~Fn();
      } else {
        delete static_cast<Fn*>(p);
      }
    }
    static void* relocate(void* dst_buf, void* src) noexcept {
      if constexpr (kInline) {
        Fn* moved = ::new (dst_buf) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
        return moved;
      } else {
        (void)dst_buf;
        return src;
      }
    }
    static constexpr Ops kOps{&invoke, &destroy, &relocate};
  };

  void move_from(SmallCallback& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) obj_ = ops_->relocate(buf_, o.obj_);
    o.ops_ = nullptr;
    o.obj_ = nullptr;
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(obj_);
      ops_ = nullptr;
      obj_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  void* obj_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

/// The classic simulator-event callable: every scheduled closure is one of
/// these.
using SmallFn = SmallCallback<void()>;

}  // namespace dmx::sim
