// Simulation time as an exact integer tick count.
//
// The paper's evaluation parameterizes everything in abstract "time units"
// (message delay T_msg = 0.1 units, etc.).  We represent one time unit as
// kTicksPerUnit integer ticks so that simulation arithmetic is exact and runs
// are bit-reproducible for a given seed: there is no floating-point drift in
// event ordering, and equality comparisons between deadlines are meaningful.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace dmx::sim {

/// A point in (or duration of) simulated time, counted in integer ticks.
///
/// One abstract paper "time unit" equals kTicksPerUnit ticks, giving
/// microsecond-like resolution for unit-scale experiments while leaving
/// ~9.2e12 units of range in a signed 64-bit tick counter.
class SimTime {
 public:
  static constexpr std::int64_t kTicksPerUnit = 1'000'000;

  constexpr SimTime() = default;

  /// Named constructor from raw ticks.
  static constexpr SimTime ticks(std::int64_t t) { return SimTime(t); }

  /// Named constructor from fractional time units (rounded to nearest tick).
  static SimTime units(double u) {
    return SimTime(static_cast<std::int64_t>(
        std::llround(u * static_cast<double>(kTicksPerUnit))));
  }

  static constexpr SimTime zero() { return SimTime(0); }

  /// The largest representable time; used as "never" for disabled timeouts.
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t raw() const { return ticks_; }
  [[nodiscard]] double to_units() const {
    return static_cast<double>(ticks_) / static_cast<double>(kTicksPerUnit);
  }
  [[nodiscard]] constexpr bool is_zero() const { return ticks_ == 0; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    ticks_ += rhs.ticks_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ticks_ -= rhs.ticks_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ticks_ + b.ticks_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ticks_ - b.ticks_);
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ticks_ * k);
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return a * k;
  }

  /// Fractional scaling (rounded to the nearest tick); a named method avoids
  /// int-vs-double overload ambiguity on `t * 3`.
  [[nodiscard]] SimTime scaled(double k) const {
    return SimTime(static_cast<std::int64_t>(
        std::llround(static_cast<double>(ticks_) * k)));
  }

  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.to_string();
  }

 private:
  constexpr explicit SimTime(std::int64_t t) : ticks_(t) {}
  std::int64_t ticks_ = 0;
};

}  // namespace dmx::sim
