// Discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of scheduled events.
// Events at equal times fire in scheduling order (FIFO tie-breaking via a
// monotonically increasing sequence number), which makes runs deterministic.
// Cancellation is O(1) amortized via lazy deletion: cancelled event ids are
// removed from the callback map and skipped when popped from the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace dmx::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class Simulator;
  constexpr explicit EventId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_after(SimTime::units(1.0), [] { ... });
///   sim.run();
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` to run `delay` after now() (delay must be >= 0).
  EventId schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// True if the given event is still pending (scheduled and not yet fired).
  [[nodiscard]] bool pending(EventId id) const {
    return callbacks_.contains(id.id_);
  }

  /// Run the next pending event, if any.  Returns false when the queue is
  /// empty (after draining any cancelled entries).
  bool step();

  /// Run until the event queue is empty or stop() is called.
  void run();

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of events currently pending (excludes cancelled ones).
  [[nodiscard]] std::size_t pending_count() const { return callbacks_.size(); }

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    // Min-heap: std::priority_queue is a max-heap, so invert the comparison.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries; returns false when the heap is effectively empty.
  bool skip_cancelled();

  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<HeapEntry> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace dmx::sim
