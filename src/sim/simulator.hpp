// Discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of scheduled events.
// Events at equal times fire in scheduling order (FIFO tie-breaking via a
// monotonically increasing sequence number), which makes runs deterministic.
//
// Event storage is flat: callbacks live in a slot vector recycled through a
// free list, and an EventId packs (slot, generation) so cancellation and
// pending checks are one bounds-checked compare — no hash map, and at steady
// state (slots and heap at high-water capacity) scheduling an event is
// allocation-free.  Cancellation is O(1): the slot is freed immediately
// (bumping its generation) and the heap entry is skipped lazily when popped.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/callback.hpp"
#include "sim/schedule.hpp"
#include "sim/time.hpp"

namespace dmx::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class Simulator;
  constexpr explicit EventId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// One pending event as seen by a scheduling controller: its handle, when
/// the default schedule would fire it, its FIFO tie-break rank, and its
/// identity tag.  Snapshot only — firing or cancelling any event invalidates
/// previously collected views.
struct PendingEvent {
  EventId id;
  SimTime time;
  std::uint64_t seq = 0;
  EventTag tag;
};

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_after(SimTime::units(1.0), [] { ... });
///   sim.run();
class Simulator {
 public:
  using Callback = SmallFn;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback fn) {
    return schedule_at(t, std::move(fn), EventTag{});
  }

  /// Schedule `fn` at absolute time `t` with an identity tag that a
  /// scheduling controller (collect_pending/fire) can inspect.
  EventId schedule_at(SimTime t, Callback fn, EventTag tag);

  /// Schedule `fn` to run `delay` after now() (delay must be >= 0).
  EventId schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn), EventTag{});
  }

  /// Tagged variant of schedule_after.
  EventId schedule_after(SimTime delay, Callback fn, EventTag tag) {
    return schedule_at(now_ + delay, std::move(fn), tag);
  }

  /// Cancel a pending event.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// True if the given event is still pending (scheduled and not yet fired).
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t slot = slot_of(id.id_);
    return id.id_ != 0 && slot < slots_.size() &&
           slots_[slot].gen == gen_of(id.id_);
  }

  /// Run the next pending event, if any.  Returns false when the queue is
  /// empty (after draining any cancelled entries).
  bool step();

  /// Run until the event queue is empty or stop() is called.
  void run();

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of events currently pending (excludes cancelled ones).
  [[nodiscard]] std::size_t pending_count() const { return pending_; }

  /// Snapshot every pending event into `out` (cleared first), sorted by the
  /// default firing order (time, seq).  Scheduler-seam entry point: a
  /// controller picks one and calls fire() on it.  O(slots) scan — verify
  /// worlds are tiny, so simplicity wins over an indexed structure.
  void collect_pending(std::vector<PendingEvent>& out) const;

  /// Fire one specific pending event *now*, out of the default order.  The
  /// clock jumps forward to the event's scheduled time if that is later than
  /// now() (it never goes backwards: an out-of-order choice means earlier
  /// pending events will fire "late", which is exactly the asynchrony being
  /// explored).  Returns false if the event is no longer pending.
  bool fire(EventId id);

  /// Pre-size internal storage for an expected number of simultaneously
  /// pending events (large-N clusters reserve once instead of growing).
  void reserve(std::size_t events);

  /// Hard backstop on total events executed (0 = unlimited).  run() and
  /// run_until() stop once the budget is exhausted while work remains, and
  /// event_limit_hit() reports it; a runaway schedule then fails with a
  /// diagnosis instead of spinning forever.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  [[nodiscard]] std::uint64_t event_limit() const { return event_limit_; }

  /// True if a run stopped because the event budget ran out with events
  /// still pending.
  [[nodiscard]] bool event_limit_hit() const { return event_limit_hit_; }

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;  ///< Packed (generation, slot+1), as in EventId.
    // Min-heap via std::push_heap/pop_heap, which build a max-heap: invert.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// A scheduled (or recycled) callback.  `gen` counts lifetimes: it is
  /// bumped when the slot is vacated, so a stale EventId can never match.
  /// time/seq/tag mirror the heap entry so a controller can enumerate
  /// pending events without touching the heap.
  struct EventSlot {
    Callback fn;
    std::uint32_t gen = 0;
    SimTime time;
    std::uint64_t seq = 0;
    EventTag tag;
  };

  static constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
    return (std::uint64_t{gen} << 32) | (std::uint64_t{slot} + 1);
  }
  static constexpr std::uint32_t slot_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  }
  static constexpr std::uint32_t gen_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Vacate a slot: destroy the callback, invalidate outstanding ids, and
  /// make the slot reusable.
  void free_slot(std::uint32_t slot) {
    slots_[slot].fn = Callback{};
    ++slots_[slot].gen;
    free_slots_.push_back(slot);
    --pending_;
  }

  // Drops heap entries whose slot was cancelled; returns false when the
  // heap is effectively empty.
  bool skip_cancelled();

  /// True once the event budget is spent; used by run loops.
  [[nodiscard]] bool budget_exhausted() const {
    return event_limit_ != 0 && events_executed_ >= event_limit_;
  }

  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool event_limit_hit_ = false;
  std::size_t pending_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace dmx::sim
