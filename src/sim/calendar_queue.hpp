// Calendar queue: the classic O(1)-amortized pending-event set for
// discrete-event simulation (R. Brown, CACM 1988).
//
// The Simulator's default binary heap is O(log n) per operation; a calendar
// queue buckets events by time modulo a "year" of fixed-width "days" and
// dequeues in O(1) amortized when event times are roughly uniform — the
// regime of steady-state mutual exclusion sweeps.  Provided as a drop-in
// alternative for users running very large configurations; the micro
// benches let them measure which wins for their workload.
//
// This implementation resizes (doubling/halving days) to keep the average
// bucket occupancy near 1, the standard adaptive policy.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace dmx::sim {

class CalendarQueue {
 public:
  struct Entry {
    SimTime time;
    std::uint64_t seq = 0;  ///< FIFO tie-break, as in the Simulator.
    std::uint64_t id = 0;
  };

  /// `day_width` is the initial bucket width; it adapts as the queue grows.
  explicit CalendarQueue(SimTime day_width = SimTime::units(0.1),
                         std::size_t initial_days = 16);

  void push(Entry e);

  /// True if empty.
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Smallest (time, seq) entry.  Precondition: !empty().
  [[nodiscard]] const Entry& top();

  /// Remove and return the smallest entry.  Precondition: !empty().
  Entry pop();

 private:
  [[nodiscard]] std::size_t bucket_of(SimTime t) const;
  void locate_min();
  void resize(std::size_t new_days);

  std::vector<std::vector<Entry>> days_;  // each bucket kept sorted descending
  std::int64_t width_ticks_;
  std::size_t size_ = 0;
  // Cursor state: the current day and the year start of the search.
  std::size_t cursor_ = 0;
  SimTime cursor_time_ = SimTime::zero();
  bool min_valid_ = false;
  std::size_t min_bucket_ = 0;
};

}  // namespace dmx::sim
