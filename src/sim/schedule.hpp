// Scheduler seam: event classification for controlled scheduling.
//
// The simulator normally fires events in (time, seq) order — one fixed
// schedule per seed.  Systematic exploration (src/verify/) instead asks, at
// every step, *which of the currently pending events fires next*.  For the
// controller's choice to be meaningful it has to know what each pending
// event *is*; an EventTag carries that identity alongside the callback:
//
//   - which node the event belongs to (delivery destination, timer owner),
//   - what class of event it is (delivery / timer / CS exit / fault),
//   - a class-specific detail word (msg_id, process-local timer id, CS
//     sequence number) that lets the controller build stable cross-execution
//     signatures.
//
// Tags are pure metadata: the default schedule_at/schedule_after overloads
// attach an empty (kInternal) tag and the normal run() path never reads
// them, so the seeded fast path is unchanged.
#pragma once

#include <cstdint>

namespace dmx::sim {

/// Coarse classification of a scheduled event, from the perspective of a
/// scheduling controller deciding what may fire next.
enum class EventClass : std::uint8_t {
  kInternal = 0,  ///< Untagged bookkeeping (workload arrivals, monitors).
  kDelivery,      ///< A message delivery at its destination node.
  kTimer,         ///< A process-local timer.
  kCsExit,        ///< A critical-section completion (driver release).
  kFault,         ///< A fault-plan action (campaign-scheduled).
};

/// Identity metadata attached to a scheduled event.  `node` is the node the
/// event acts upon (-1 for kInternal); `detail` is class-specific:
/// msg_id for deliveries, process-local timer id for timers, per-node CS
/// sequence for exits, fault-plan action index for faults.
struct EventTag {
  std::int32_t node = -1;
  EventClass klass = EventClass::kInternal;
  std::uint64_t detail = 0;
};

}  // namespace dmx::sim
