#include "sim/rng.hpp"

#include <numeric>

namespace dmx::sim {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("Rng::weighted_index: empty weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("Rng::weighted_index: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: zero total weight");
  }
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

}  // namespace dmx::sim
