#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dmx::sim {

namespace {

// Ordering inside a bucket: keep *descending* so the minimum is at the back
// (pop_back is O(1)).
bool later(const CalendarQueue::Entry& a, const CalendarQueue::Entry& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

CalendarQueue::CalendarQueue(SimTime day_width, std::size_t initial_days)
    : days_(initial_days), width_ticks_(day_width.raw()) {
  if (day_width <= SimTime::zero()) {
    throw std::invalid_argument("CalendarQueue: day width must be positive");
  }
  if (initial_days == 0) {
    throw std::invalid_argument("CalendarQueue: need at least one day");
  }
}

std::size_t CalendarQueue::bucket_of(SimTime t) const {
  const auto day = static_cast<std::uint64_t>(t.raw() / width_ticks_);
  return static_cast<std::size_t>(day % days_.size());
}

void CalendarQueue::push(Entry e) {
  if (e.time < SimTime::zero()) {
    throw std::invalid_argument("CalendarQueue: negative time");
  }
  auto& bucket = days_[bucket_of(e.time)];
  bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), e, later), e);
  ++size_;
  min_valid_ = false;
  if (size_ > 2 * days_.size() && days_.size() < (1u << 20)) {
    resize(days_.size() * 2);
  }
}

void CalendarQueue::resize(std::size_t new_days) {
  std::vector<Entry> all;
  all.reserve(size_);
  for (auto& bucket : days_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  days_.assign(new_days, {});
  for (const Entry& e : all) {
    auto& bucket = days_[bucket_of(e.time)];
    bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), e, later), e);
  }
  min_valid_ = false;
}

void CalendarQueue::locate_min() {
  if (min_valid_) return;
  if (size_ == 0) throw std::logic_error("CalendarQueue: empty");
  // Scan all buckets for the global (time, seq) minimum.  A textbook
  // calendar queue walks days from a rotating cursor; the simple full scan
  // keeps correctness trivially right and is amortized away by bucket
  // resizing (scan cost ~ days ~ size).
  SimTime best_time = SimTime::max();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t b = 0; b < days_.size(); ++b) {
    if (days_[b].empty()) continue;
    const Entry& cand = days_[b].back();
    if (cand.time < best_time ||
        (cand.time == best_time && cand.seq < best_seq)) {
      best_time = cand.time;
      best_seq = cand.seq;
      min_bucket_ = b;
    }
  }
  min_valid_ = true;
}

const CalendarQueue::Entry& CalendarQueue::top() {
  locate_min();
  return days_[min_bucket_].back();
}

CalendarQueue::Entry CalendarQueue::pop() {
  locate_min();
  Entry out = days_[min_bucket_].back();
  days_[min_bucket_].pop_back();
  --size_;
  min_valid_ = false;
  if (days_.size() > 16 && size_ < days_.size() / 4) {
    resize(days_.size() / 2);
  }
  return out;
}

}  // namespace dmx::sim
