#include "sim/time.hpp"

#include <array>
#include <cstdio>

namespace dmx::sim {

std::string SimTime::to_string() const {
  std::array<char, 48> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.6f", to_units());
  return std::string(buf.data(), n > 0 ? static_cast<std::size_t>(n) : 0u);
}

}  // namespace dmx::sim
