// Minimal streaming JSON writer (no dependencies, deterministic output).
//
// Used by the machine-readable sinks and the run-manifest emitter.  Numbers
// are formatted with std::to_chars shortest-round-trip, so identical values
// always serialize to identical bytes — a requirement for the golden JSONL
// trace tests and for diffable artifacts.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace dmx::obs {

/// Append a JSON string literal (with quotes) to `out`.
void json_append_string(std::string& out, std::string_view s);

/// Append a shortest-round-trip number.  NaN/Inf (not valid JSON) are
/// serialized as null.
void json_append_number(std::string& out, double v);
void json_append_number(std::string& out, std::int64_t v);
void json_append_number(std::string& out, std::uint64_t v);

/// Streaming writer with automatic comma placement.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("schema"); w.string("dmx.run.v1");
///   w.key("runs"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   os << w.str();
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    comma();
    json_append_string(out_, k);
    out_.push_back(':');
    pending_value_ = true;
  }

  void string(std::string_view s) {
    comma();
    json_append_string(out_, s);
  }
  void number(double v) {
    comma();
    json_append_number(out_, v);
  }
  void number(std::int64_t v) {
    comma();
    json_append_number(out_, v);
  }
  void number(std::uint64_t v) {
    comma();
    json_append_number(out_, v);
  }
  void boolean(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }
  void null() {
    comma();
    out_ += "null";
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  void clear() {
    out_.clear();
    depth_ = 0;
    need_comma_ = false;
    pending_value_ = false;
  }

 private:
  void comma() {
    if (need_comma_ && !pending_value_) out_.push_back(',');
    need_comma_ = true;
    pending_value_ = false;
  }
  void open(char c) {
    comma();
    out_.push_back(c);
    ++depth_;
    need_comma_ = false;
  }
  void close(char c) {
    out_.push_back(c);
    --depth_;
    need_comma_ = true;
    pending_value_ = false;
  }

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

}  // namespace dmx::obs
