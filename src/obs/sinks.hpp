// The sink zoo: console text, in-memory capture, JSONL, Chrome trace, tee.
#pragma once

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sink.hpp"
#include "obs/span.hpp"

namespace dmx::obs {

/// Human-readable text, one line per event:
///   [      time] node  N category   detail
/// Events emitted without a detail formatter render their numeric fields
/// ("cs.issued req=12 val=0.3").
///
/// Output is buffered (`buffer_bytes`); call flush() before reading the
/// underlying stream.  Pass buffer_bytes = 0 for unbuffered line-at-a-time
/// insertion — interactive tools (dmx_trace) use that so trace lines stay
/// interleaved with other output on the same stream.
class TextSink final : public Sink {
 public:
  explicit TextSink(std::ostream& os, std::size_t buffer_bytes = 1 << 16)
      : os_(os), cap_(buffer_bytes) {}
  ~TextSink() override { flush_buffer(); }

  void on_event(const Event& e, const DetailRef& detail) override;
  void flush() override {
    flush_buffer();
    os_.flush();
  }

 private:
  void flush_buffer();

  std::ostream& os_;  // NOLINT: non-owning by design
  std::size_t cap_;
  std::string buf_;
};

/// Captures events (detail formatted eagerly — this is the test sink, it
/// pays for text so assertions can read it) and completed spans.
class MemorySink final : public Sink {
 public:
  struct Entry {
    Event event;
    std::string detail;
  };

  void on_event(const Event& e, const DetailRef& detail) override {
    entries_.push_back(Entry{e, detail()});
  }
  void on_span(const Span& s) override { spans_.push_back(s); }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }

  /// Typed queries (the fast path: integer compare per entry).
  [[nodiscard]] std::vector<Entry> by_kind(EventKind k) const;
  [[nodiscard]] std::size_t count_kind(EventKind k) const;

  /// String-compat queries, matching the old stringly-typed sink: category
  /// comes from the kind registry, substring search runs over the captured
  /// detail text.
  [[nodiscard]] std::vector<Entry> by_category(std::string_view cat) const;
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;

  void clear() {
    entries_.clear();
    spans_.clear();
  }

 private:
  std::vector<Entry> entries_;
  std::vector<Span> spans_;
};

/// Machine-readable JSON Lines.  One object per event:
///   {"t":0.3,"ev":"cs.issued","cat":"cs","node":1,"req":3,"arg":0,"val":0}
/// and one per completed span:
///   {"span":{"req":3,"node":1,"submitted":0.3,...,"aborted":false}}
/// Detail formatters are never invoked — the numeric fields are the record.
/// Schema: DESIGN.md §9.
class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(std::ostream& os, std::size_t buffer_bytes = 1 << 16)
      : os_(os), cap_(buffer_bytes) {}
  ~JsonlSink() override { flush_buffer(); }

  void on_event(const Event& e, const DetailRef& detail) override;
  void on_span(const Span& s) override;
  void flush() override {
    flush_buffer();
    os_.flush();
  }

 private:
  void flush_buffer();

  std::ostream& os_;  // NOLINT: non-owning by design
  std::size_t cap_;
  std::string buf_;
};

/// Chrome trace-event JSON ("catapult" format), loadable in Perfetto and
/// chrome://tracing.  Events become thread-scoped instants on row tid=node;
/// spans become four duration ("ph":"X") slices — queue, transit,
/// token_wait, cs — on the requesting node's row.  Timestamps are in
/// microseconds: one sim tick = 1 µs, so one time unit reads as one second
/// in the viewer.  The JSON envelope closes when the sink is destroyed.
class ChromeTraceSink final : public Sink {
 public:
  explicit ChromeTraceSink(std::ostream& os);
  ~ChromeTraceSink() override;

  void on_event(const Event& e, const DetailRef& detail) override;
  void on_span(const Span& s) override;
  void flush() override;

 private:
  void emit_slice(std::string_view name, std::int32_t node, sim::SimTime start,
                  double dur_units, std::uint64_t req);
  void entry();
  void flush_buffer();

  std::ostream& os_;  // NOLINT: non-owning by design
  std::string buf_;
  bool first_ = true;
};

/// Fans out to several sinks (e.g. console text + a file sink).
class TeeSink final : public Sink {
 public:
  explicit TeeSink(std::vector<std::shared_ptr<Sink>> sinks)
      : sinks_(std::move(sinks)) {}

  void on_event(const Event& e, const DetailRef& detail) override {
    for (const auto& s : sinks_) s->on_event(e, detail);
  }
  void on_span(const Span& sp) override {
    for (const auto& s : sinks_) s->on_span(sp);
  }
  void flush() override {
    for (const auto& s : sinks_) s->flush();
  }

 private:
  std::vector<std::shared_ptr<Sink>> sinks_;
};

/// Serialization format for --trace-out.
enum class TraceFormat { kText, kJsonl, kChrome };

/// Build the file sink for a format.  The caller owns the stream and must
/// keep it alive until the sink is destroyed (the Chrome sink writes its
/// closing bracket from the destructor).
std::shared_ptr<Sink> make_format_sink(TraceFormat format, std::ostream& os);

}  // namespace dmx::obs
