// Typed trace events: the structured sibling of net/msg_kind.hpp.
//
// The old tracing API shipped a std::string category and a std::string
// detail per record, which meant two heap allocations on every protocol
// step even when nobody was listening, and made questions like "how many
// dispatches happened" a substring scan.  An EventKind is a small dense
// integer assigned once per event type, carrying its stable name and its
// category; an Event is a fixed-size struct of numeric fields (time, node,
// request id, one integer argument, one double).  Human-readable detail
// text is produced lazily: emit sites pass a formatting callback by
// reference, and only sinks that actually want text (the console sink, the
// in-memory test sink) ever invoke it.  Machine-readable sinks (JSONL,
// Chrome trace) serialize the numeric fields directly and never format.
//
// Registration is one line at namespace scope in a per-module events
// header:
//
//   DMX_REGISTER_EVENT(kEvDispatch, "arbiter.dispatch", "dispatch");
//
// The macro defines an inline EventKind constant interned during static
// initialization, so kinds are comparable integers everywhere and name /
// category translation happens only at the registry boundary.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dmx::obs {

/// Dense identifier of one registered event type.  Default-constructed
/// kinds are invalid and match nothing.
class EventKind {
 public:
  constexpr EventKind() = default;

  [[nodiscard]] constexpr bool valid() const { return raw_ != kInvalidRaw; }

  /// Dense index, suitable for vector-indexed tables.  Only meaningful on a
  /// valid kind.
  [[nodiscard]] constexpr std::size_t index() const { return raw_; }

  /// Rebuild a kind from a dense index (tooling / counter translation).
  [[nodiscard]] static constexpr EventKind from_index(std::size_t i) {
    return EventKind(static_cast<std::uint16_t>(i));
  }

  friend constexpr bool operator==(EventKind, EventKind) = default;

 private:
  friend class EventKindRegistry;
  constexpr explicit EventKind(std::uint16_t raw) : raw_(raw) {}

  static constexpr std::uint16_t kInvalidRaw = 0xFFFF;
  std::uint16_t raw_ = kInvalidRaw;
};

/// Process-wide name <-> kind table.  Interning is idempotent: the first
/// registration of a name allocates the next dense index and pins the
/// category; later registrations of the same name return the same kind.
///
/// Like net::MsgKindRegistry, the registry can be sealed with freeze():
/// lookups (and intern of an already-known name) become lock-free on the
/// immutable table, and intern of a new name throws.  Concurrent
/// simulations share the frozen table without synchronization.
class EventKindRegistry {
 public:
  static EventKindRegistry& instance();

  /// Register `name` under `category` (or fetch the existing kind).  Throws
  /// on an empty name or on exhausting the 16-bit kind space.  On a frozen
  /// registry a known name still resolves; a new name throws
  /// std::logic_error.
  EventKind intern(std::string_view name, std::string_view category);

  /// Look up a name without registering it; invalid kind if unknown.
  [[nodiscard]] EventKind find(std::string_view name) const;

  /// Stable name of a kind; "<invalid>" for an invalid/unknown kind.
  [[nodiscard]] std::string_view name(EventKind kind) const;

  /// Category the kind was registered under; "" for an invalid kind.
  [[nodiscard]] std::string_view category(EventKind kind) const;

  /// Number of kinds registered so far.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of all registered names, in kind-index order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Seal the registry: no new kinds, lock-free lookups from any thread.
  /// Idempotent, irreversible (see harness::freeze_registries).
  void freeze();

  [[nodiscard]] bool frozen() const {
    return frozen_.load(std::memory_order_acquire);
  }

  EventKindRegistry(const EventKindRegistry&) = delete;
  EventKindRegistry& operator=(const EventKindRegistry&) = delete;

 private:
  EventKindRegistry() = default;

  struct Entry {
    std::string name;
    std::string category;
  };

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  ///< Deque: element storage never moves.
  std::map<std::string, std::uint16_t, std::less<>> by_name_;
  /// Release-published by freeze(); an acquire load observing true
  /// guarantees visibility of every prior table write, so readers skip mu_.
  std::atomic<bool> frozen_{false};
};

/// One structured trace event: fixed numeric fields, no strings.  The
/// meaning of `req`, `arg` and `value` is per-kind (documented where the
/// kind is registered); zero is the universal "not applicable".
struct Event {
  sim::SimTime time;
  EventKind kind;
  std::int32_t node = -1;   ///< Emitting node, -1 for system-level events.
  std::uint64_t req = 0;    ///< CsRequest id, the span correlation key.
  std::int64_t arg = 0;     ///< Kind-specific: peer node, count, epoch...
  double value = 0.0;       ///< Kind-specific measurement (time units...).
};

/// Non-owning reference to a detail formatter.  Emit sites construct one
/// around a local lambda returning std::string; it is only invoked if a
/// sink asks for text, so the formatting cost (and its allocations) is paid
/// exclusively by text-producing sinks.
class DetailRef {
 public:
  constexpr DetailRef() = default;

  template <typename F>
  explicit DetailRef(const F& fn)
      : obj_(&fn), fn_([](const void* o) -> std::string {
          return (*static_cast<const F*>(o))();
        }) {}

  [[nodiscard]] constexpr bool has_value() const { return fn_ != nullptr; }

  /// Format the detail text; empty string when no formatter was supplied.
  [[nodiscard]] std::string operator()() const {
    return fn_ != nullptr ? fn_(obj_) : std::string();
  }

 private:
  const void* obj_ = nullptr;
  std::string (*fn_)(const void*) = nullptr;
};

}  // namespace dmx::obs

/// Define an interned event-kind constant at namespace scope:
///   DMX_REGISTER_EVENT(kEvDispatch, "arbiter.dispatch", "dispatch");
/// The inline variable is shared across translation units and registered
/// during static initialization, mirroring DMX_REGISTER_MESSAGE.
#define DMX_REGISTER_EVENT(ident, NAME, CATEGORY)               \
  inline const ::dmx::obs::EventKind ident =                    \
      ::dmx::obs::EventKindRegistry::instance().intern(NAME, CATEGORY)
