// Request-lifecycle spans: one per CsRequest, assembled from events.
//
// The SpanCollector sits in the sink chain and watches the lifecycle kinds
// (lifecycle.hpp).  For every request it reconstructs the paper's delay
// decomposition (§3.3):
//
//   submitted --queue--> issued --transit--> queued --token_wait--> granted
//                                                     --cs--> released
//
//   queue       local wait behind this node's earlier demand (driver queue)
//   transit     issue -> first arrival in an arbiter/holder queue; only
//               algorithms that emit req.queued (the arbiter, centralized)
//               populate it
//   token_wait  queued -> granted (the token/permission wait proper); for
//               algorithms without req.queued this is folded into acquire
//   acquire     issue -> granted (always available, transit + token_wait)
//   cs          granted -> released (the critical section itself)
//
// Completed spans are forwarded downstream (on_span) so file sinks can
// serialize them, and reduced into a SpanReport of per-phase Welford stats
// and stats::Histogram distributions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "obs/sink.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/welford.hpp"

namespace dmx::obs {

/// One request's assembled lifecycle.  Durations are in time units and are
/// non-negative for any span built from a well-ordered event stream.
struct Span {
  std::uint64_t request_id = 0;
  std::int32_t node = -1;
  sim::SimTime submitted;
  sim::SimTime issued;
  sim::SimTime queued;     ///< First req.queued; meaningful iff has_queued.
  sim::SimTime granted;
  sim::SimTime released;   ///< Meaningful iff complete.
  bool has_queued = false;
  bool granted_seen = false;
  bool complete = false;   ///< cs.released observed.
  bool aborted = false;    ///< cs.aborted observed (node crash).
  std::int64_t forwards = 0;  ///< req.forwarded count.

  [[nodiscard]] double queue_wait() const {
    return (issued - submitted).to_units();
  }
  [[nodiscard]] double transit() const {
    return has_queued ? (queued - issued).to_units() : 0.0;
  }
  [[nodiscard]] double token_wait() const {
    return has_queued ? (granted - queued).to_units() : (granted - issued).to_units();
  }
  [[nodiscard]] double acquire() const { return (granted - issued).to_units(); }
  /// Workload arrival -> granted: queue + acquire, the client-visible
  /// time-to-grant the lock-service SLO tables report p99s of.
  [[nodiscard]] double grant_wait() const {
    return (granted - submitted).to_units();
  }
  [[nodiscard]] double cs_time() const { return (released - granted).to_units(); }
};

/// Per-phase accumulation: moments plus a distribution.
struct PhaseStats {
  stats::Welford moments;
  stats::Histogram hist;

  explicit PhaseStats(double hi, std::size_t bins = 1024)
      : hist(0.0, hi, bins) {}

  void add(double v) {
    moments.add(v);
    hist.add(v);
  }
};

/// Reduction of all completed spans in a run.
struct SpanReport {
  std::uint64_t completed = 0;  ///< Full submitted->released lifecycles.
  std::uint64_t aborted = 0;    ///< Requests killed by a node crash.
  std::uint64_t open = 0;       ///< Still unfinished when the run ended.
  PhaseStats queue;
  PhaseStats transit;
  PhaseStats token_wait;
  PhaseStats acquire;
  PhaseStats grant_wait;  ///< submitted -> granted (time-to-grant SLO).
  PhaseStats cs;

  /// `hist_max` bounds every phase histogram (overflow clamps to the top
  /// edge in quantile queries, same policy as the service-time histogram).
  explicit SpanReport(double hist_max)
      : queue(hist_max), transit(hist_max), token_wait(hist_max),
        acquire(hist_max), grant_wait(hist_max), cs(hist_max) {}
};

/// Assembles spans from the event stream and forwards everything (events
/// and completed spans) to an optional downstream sink.
class SpanCollector final : public Sink {
 public:
  explicit SpanCollector(std::shared_ptr<Sink> downstream = nullptr,
                         double hist_max = 100.0)
      : downstream_(std::move(downstream)), report_(hist_max) {}

  void on_event(const Event& e, const DetailRef& detail) override;
  void flush() override {
    if (downstream_) downstream_->flush();
  }

  /// The reduction over everything seen so far.  Spans still open are
  /// counted on the fly so the report is valid mid-run too.
  [[nodiscard]] const SpanReport& report() {
    report_.open = open_.size();
    return report_;
  }

  [[nodiscard]] const std::shared_ptr<Sink>& downstream() const {
    return downstream_;
  }

 private:
  void finalize(std::uint64_t req, Span& s);

  std::shared_ptr<Sink> downstream_;
  std::map<std::uint64_t, Span> open_;
  SpanReport report_;
};

}  // namespace dmx::obs
