#include "obs/sinks.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace dmx::obs {

namespace {

/// Right-align `s` in a field of `width` (matches std::setw).
void pad_left(std::string& out, std::string_view s, std::size_t width) {
  if (s.size() < width) out.append(width - s.size(), ' ');
  out.append(s);
}

/// Left-align `s` in a field of `width`.
void pad_right(std::string& out, std::string_view s, std::size_t width) {
  out.append(s);
  if (s.size() < width) out.append(width - s.size(), ' ');
}

std::string fallback_detail(const Event& e) {
  std::string d(EventKindRegistry::instance().name(e.kind));
  if (e.req != 0) {
    d += " req=";
    d += std::to_string(e.req);
  }
  if (e.arg != 0) {
    d += " arg=";
    d += std::to_string(e.arg);
  }
  if (e.value != 0.0) {
    d += " val=";
    json_append_number(d, e.value);
  }
  return d;
}

}  // namespace

// ---------------------------------------------------------------- TextSink

void TextSink::on_event(const Event& e, const DetailRef& detail) {
  std::string& out = buf_;
  out.push_back('[');
  pad_left(out, e.time.to_string(), 10);
  out += "] ";
  if (e.node >= 0) {
    out += "node ";
    pad_left(out, std::to_string(e.node), 2);
    out.push_back(' ');
  } else {
    out += "system  ";
  }
  pad_right(out, EventKindRegistry::instance().category(e.kind), 10);
  out.push_back(' ');
  out += detail.has_value() ? detail() : fallback_detail(e);
  out.push_back('\n');
  if (buf_.size() > cap_) flush_buffer();
}

void TextSink::flush_buffer() {
  if (!buf_.empty()) {
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

// -------------------------------------------------------------- MemorySink

std::vector<MemorySink::Entry> MemorySink::by_kind(EventKind k) const {
  std::vector<Entry> out;
  for (const auto& e : entries_) {
    if (e.event.kind == k) out.push_back(e);
  }
  return out;
}

std::size_t MemorySink::count_kind(EventKind k) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [k](const Entry& e) { return e.event.kind == k; }));
}

std::vector<MemorySink::Entry> MemorySink::by_category(
    std::string_view cat) const {
  auto& reg = EventKindRegistry::instance();
  std::vector<Entry> out;
  for (const auto& e : entries_) {
    if (reg.category(e.event.kind) == cat) out.push_back(e);
  }
  return out;
}

std::size_t MemorySink::count_containing(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.detail.find(needle) != std::string::npos) ++n;
  }
  return n;
}

// --------------------------------------------------------------- JsonlSink

void JsonlSink::on_event(const Event& e, const DetailRef& /*detail*/) {
  auto& reg = EventKindRegistry::instance();
  std::string& out = buf_;
  out += "{\"t\":";
  json_append_number(out, e.time.to_units());
  out += ",\"ev\":";
  json_append_string(out, reg.name(e.kind));
  out += ",\"cat\":";
  json_append_string(out, reg.category(e.kind));
  out += ",\"node\":";
  json_append_number(out, static_cast<std::int64_t>(e.node));
  out += ",\"req\":";
  json_append_number(out, e.req);
  out += ",\"arg\":";
  json_append_number(out, e.arg);
  out += ",\"val\":";
  json_append_number(out, e.value);
  out += "}\n";
  if (buf_.size() > cap_) flush_buffer();
}

void JsonlSink::on_span(const Span& s) {
  std::string& out = buf_;
  out += "{\"span\":{\"req\":";
  json_append_number(out, s.request_id);
  out += ",\"node\":";
  json_append_number(out, static_cast<std::int64_t>(s.node));
  out += ",\"submitted\":";
  json_append_number(out, s.submitted.to_units());
  out += ",\"issued\":";
  json_append_number(out, s.issued.to_units());
  out += ",\"queued\":";
  if (s.has_queued) {
    json_append_number(out, s.queued.to_units());
  } else {
    out += "null";
  }
  out += ",\"granted\":";
  if (s.granted_seen) {
    json_append_number(out, s.granted.to_units());
  } else {
    out += "null";
  }
  out += ",\"released\":";
  if (s.complete) {
    json_append_number(out, s.released.to_units());
  } else {
    out += "null";
  }
  if (s.complete) {
    out += ",\"queue\":";
    json_append_number(out, s.queue_wait());
    out += ",\"transit\":";
    json_append_number(out, s.transit());
    out += ",\"token_wait\":";
    json_append_number(out, s.token_wait());
    out += ",\"acquire\":";
    json_append_number(out, s.acquire());
    out += ",\"cs\":";
    json_append_number(out, s.cs_time());
  }
  out += ",\"forwards\":";
  json_append_number(out, s.forwards);
  out += ",\"aborted\":";
  out += s.aborted ? "true" : "false";
  out += "}}\n";
  if (buf_.size() > cap_) flush_buffer();
}

void JsonlSink::flush_buffer() {
  if (!buf_.empty()) {
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

// --------------------------------------------------------- ChromeTraceSink

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(os) {
  buf_ += "{\"traceEvents\":[\n";
}

ChromeTraceSink::~ChromeTraceSink() {
  buf_ += "\n]}\n";
  flush_buffer();
}

void ChromeTraceSink::entry() {
  if (!first_) buf_ += ",\n";
  first_ = false;
}

void ChromeTraceSink::on_event(const Event& e, const DetailRef& /*detail*/) {
  auto& reg = EventKindRegistry::instance();
  entry();
  std::string& out = buf_;
  out += "{\"name\":";
  json_append_string(out, reg.name(e.kind));
  out += ",\"cat\":";
  json_append_string(out, reg.category(e.kind));
  out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
  json_append_number(out, e.time.raw());  // 1 tick == 1 microsecond
  out += ",\"pid\":0,\"tid\":";
  json_append_number(out, static_cast<std::int64_t>(e.node));
  out += ",\"args\":{\"req\":";
  json_append_number(out, e.req);
  out += ",\"arg\":";
  json_append_number(out, e.arg);
  out += ",\"val\":";
  json_append_number(out, e.value);
  out += "}}";
  if (buf_.size() > (1u << 16)) flush_buffer();
}

void ChromeTraceSink::emit_slice(std::string_view name, std::int32_t node,
                                 sim::SimTime start, double dur_units,
                                 std::uint64_t req) {
  entry();
  std::string& out = buf_;
  out += "{\"name\":";
  json_append_string(out, name);
  out += ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":";
  json_append_number(out, start.raw());
  out += ",\"dur\":";
  json_append_number(out, sim::SimTime::units(dur_units).raw());
  out += ",\"pid\":0,\"tid\":";
  json_append_number(out, static_cast<std::int64_t>(node));
  out += ",\"args\":{\"req\":";
  json_append_number(out, req);
  out += "}}";
}

void ChromeTraceSink::on_span(const Span& s) {
  if (!s.complete) return;
  if (s.queue_wait() > 0.0) {
    emit_slice("queue", s.node, s.submitted, s.queue_wait(), s.request_id);
  }
  if (s.has_queued) {
    emit_slice("transit", s.node, s.issued, s.transit(), s.request_id);
    emit_slice("token_wait", s.node, s.queued, s.token_wait(), s.request_id);
  } else {
    emit_slice("token_wait", s.node, s.issued, s.token_wait(), s.request_id);
  }
  emit_slice("cs", s.node, s.granted, s.cs_time(), s.request_id);
  if (buf_.size() > (1u << 16)) flush_buffer();
}

void ChromeTraceSink::flush() {
  flush_buffer();
  os_.flush();
}

void ChromeTraceSink::flush_buffer() {
  if (!buf_.empty()) {
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

// ---------------------------------------------------------------- factory

std::shared_ptr<Sink> make_format_sink(TraceFormat format, std::ostream& os) {
  switch (format) {
    case TraceFormat::kText: return std::make_shared<TextSink>(os);
    case TraceFormat::kJsonl: return std::make_shared<JsonlSink>(os);
    case TraceFormat::kChrome: return std::make_shared<ChromeTraceSink>(os);
  }
  return nullptr;
}

}  // namespace dmx::obs
