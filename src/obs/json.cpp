#include "obs/json.hpp"

#include <array>
#include <cmath>

namespace dmx::obs {

void json_append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void json_append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

void json_append_number(std::string& out, std::int64_t v) {
  std::array<char, 24> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

void json_append_number(std::string& out, std::uint64_t v) {
  std::array<char, 24> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

}  // namespace dmx::obs
