// Tracer: the front-end handed to processes, drivers and transports.
//
// A disabled tracer costs one branch per emit site and performs no
// allocation and no formatting: emit helpers check enabled() before even
// constructing the Event, and detail formatters are passed by reference and
// only run if a text-producing sink asks.
#pragma once

#include <memory>
#include <utility>

#include "obs/sink.hpp"

namespace dmx::obs {

class Tracer {
 public:
  Tracer() = default;  // disabled

  explicit Tracer(std::shared_ptr<Sink> sink) : sink_(std::move(sink)) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<Sink>& sink() const { return sink_; }

  void write(const Event& e) const {
    if (sink_) sink_->on_event(e, DetailRef{});
  }

  void write(const Event& e, const DetailRef& detail) const {
    if (sink_) sink_->on_event(e, detail);
  }

 private:
  std::shared_ptr<Sink> sink_;
};

}  // namespace dmx::obs
