// The request-lifecycle event vocabulary.
//
// These kinds are the observability layer's contract with the rest of the
// system: any component that emits them with the CsRequest id in Event::req
// gets its requests assembled into latency-decomposition spans by the
// SpanCollector (span.hpp).  Module-specific kinds (arbiter recovery,
// transport retransmits, fault injections) are registered in their own
// modules' events headers; only the kinds the collector interprets live
// here.
//
// Field conventions (zero = not applicable):
//   cs.submitted   req=0           arg=local queue depth after enqueue
//   cs.issued      req=request id  value=local queue wait, time units
//                                  (submit time = event time - value)
//   req.queued     req=request id  arg=arbiter/holder node that queued it
//   req.forwarded  req=request id  arg=node the request was forwarded to
//   cs.granted     req=request id
//   cs.released    req=request id  value=CS hold time, time units
//   cs.aborted     req=request id  (node crashed with the request open)
#pragma once

#include "obs/event.hpp"

namespace dmx::obs {

DMX_REGISTER_EVENT(kEvCsSubmitted, "cs.submitted", "cs");
DMX_REGISTER_EVENT(kEvCsIssued, "cs.issued", "cs");
DMX_REGISTER_EVENT(kEvReqQueued, "req.queued", "request");
DMX_REGISTER_EVENT(kEvReqForwarded, "req.forwarded", "request");
DMX_REGISTER_EVENT(kEvCsGranted, "cs.granted", "cs");
DMX_REGISTER_EVENT(kEvCsReleased, "cs.released", "cs");
DMX_REGISTER_EVENT(kEvCsAborted, "cs.aborted", "cs");

}  // namespace dmx::obs
