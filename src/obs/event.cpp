#include "obs/event.hpp"

#include <stdexcept>

namespace dmx::obs {

EventKindRegistry& EventKindRegistry::instance() {
  static EventKindRegistry registry;
  return registry;
}

EventKind EventKindRegistry::intern(std::string_view name,
                                    std::string_view category) {
  if (name.empty()) {
    throw std::invalid_argument("EventKindRegistry: empty event name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return EventKind(it->second);
  }
  if (entries_.size() >= EventKind::kInvalidRaw) {
    throw std::length_error("EventKindRegistry: kind space exhausted");
  }
  const auto raw = static_cast<std::uint16_t>(entries_.size());
  entries_.push_back(Entry{std::string(name), std::string(category)});
  by_name_.emplace(entries_.back().name, raw);
  return EventKind(raw);
}

EventKind EventKindRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return EventKind(it->second);
  }
  return EventKind{};
}

std::string_view EventKindRegistry::name(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!kind.valid() || kind.index() >= entries_.size()) return "<invalid>";
  return entries_[kind.index()].name;
}

std::string_view EventKindRegistry::category(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!kind.valid() || kind.index() >= entries_.size()) return "";
  return entries_[kind.index()].category;
}

std::size_t EventKindRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::string> EventKindRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

}  // namespace dmx::obs
