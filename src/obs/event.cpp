#include "obs/event.hpp"

#include <stdexcept>

namespace dmx::obs {

EventKindRegistry& EventKindRegistry::instance() {
  static EventKindRegistry registry;
  return registry;
}

EventKind EventKindRegistry::intern(std::string_view name,
                                    std::string_view category) {
  if (name.empty()) {
    throw std::invalid_argument("EventKindRegistry: empty event name");
  }
  if (frozen()) {
    // Sealed: known names resolve lock-free on the immutable table; a new
    // name is a registration that arrived too late — fail fast.
    if (auto it = by_name_.find(name); it != by_name_.end()) {
      return EventKind(it->second);
    }
    throw std::logic_error(
        "EventKindRegistry: frozen; cannot intern new event name \"" +
        std::string(name) + "\"");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return EventKind(it->second);
  }
  if (entries_.size() >= EventKind::kInvalidRaw) {
    throw std::length_error("EventKindRegistry: kind space exhausted");
  }
  const auto raw = static_cast<std::uint16_t>(entries_.size());
  entries_.push_back(Entry{std::string(name), std::string(category)});
  by_name_.emplace(entries_.back().name, raw);
  return EventKind(raw);
}

EventKind EventKindRegistry::find(std::string_view name) const {
  if (!frozen()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = by_name_.find(name); it != by_name_.end()) {
      return EventKind(it->second);
    }
    return EventKind{};
  }
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return EventKind(it->second);
  }
  return EventKind{};
}

std::string_view EventKindRegistry::name(EventKind kind) const {
  if (!frozen()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!kind.valid() || kind.index() >= entries_.size()) return "<invalid>";
    return entries_[kind.index()].name;
  }
  if (!kind.valid() || kind.index() >= entries_.size()) return "<invalid>";
  return entries_[kind.index()].name;
}

std::string_view EventKindRegistry::category(EventKind kind) const {
  if (!frozen()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!kind.valid() || kind.index() >= entries_.size()) return "";
    return entries_[kind.index()].category;
  }
  if (!kind.valid() || kind.index() >= entries_.size()) return "";
  return entries_[kind.index()].category;
}

std::size_t EventKindRegistry::size() const {
  if (frozen()) return entries_.size();
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::string> EventKindRegistry::names() const {
  auto snapshot = [this] {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.name);
    return out;
  };
  if (frozen()) return snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot();
}

void EventKindRegistry::freeze() {
  // The lock orders this against any in-flight intern; the release store
  // publishes the completed table to lock-free readers.
  std::lock_guard<std::mutex> lock(mu_);
  frozen_.store(true, std::memory_order_release);
}

}  // namespace dmx::obs
