// Sink: where structured events (and assembled spans) go.
#pragma once

#include "obs/event.hpp"

namespace dmx::obs {

struct Span;

/// Receives events.  Implementations must tolerate high event rates; text
/// detail is only materialized by sinks that call the DetailRef.
class Sink {
 public:
  virtual ~Sink() = default;

  virtual void on_event(const Event& e, const DetailRef& detail) = 0;

  /// Completed request-lifecycle span (emitted by a SpanCollector placed
  /// upstream).  Default: ignore.
  virtual void on_span(const Span& s) { (void)s; }

  /// Flush any buffered output.  Buffering sinks (TextSink, the file
  /// sinks) override; callers must flush before reading the underlying
  /// stream.
  virtual void flush() {}
};

}  // namespace dmx::obs
