#include "obs/span.hpp"

#include "obs/lifecycle.hpp"

namespace dmx::obs {

void SpanCollector::on_event(const Event& e, const DetailRef& detail) {
  if (downstream_) downstream_->on_event(e, detail);
  if (e.req == 0) return;  // lifecycle assembly keys on the request id

  if (e.kind == kEvCsIssued) {
    Span& s = open_[e.req];
    s.request_id = e.req;
    s.node = e.node;
    s.issued = e.time;
    s.submitted = e.time - sim::SimTime::units(e.value);
    return;
  }
  auto it = open_.find(e.req);
  if (it == open_.end()) return;  // grant/release for a request never issued
  Span& s = it->second;

  if (e.kind == kEvReqQueued) {
    // Re-queues happen (resubmission after invalidation); the first arrival
    // is the transit boundary, later ones are recovery noise.
    if (!s.has_queued) {
      s.has_queued = true;
      s.queued = e.time;
    }
  } else if (e.kind == kEvReqForwarded) {
    ++s.forwards;
  } else if (e.kind == kEvCsGranted) {
    // Keep the first grant; a duplicate grant for the same id is a protocol
    // anomaly the SafetyMonitor reports, not something to fold into spans.
    if (!s.granted_seen) {
      s.granted_seen = true;
      s.granted = e.time;
    }
  } else if (e.kind == kEvCsReleased) {
    if (s.granted_seen) {
      s.released = e.time;
      s.complete = true;
    }
    finalize(e.req, s);
  } else if (e.kind == kEvCsAborted) {
    s.aborted = true;
    finalize(e.req, s);
  }
}

void SpanCollector::finalize(std::uint64_t req, Span& s) {
  if (s.complete) {
    ++report_.completed;
    report_.queue.add(s.queue_wait());
    report_.transit.add(s.transit());
    report_.token_wait.add(s.token_wait());
    report_.acquire.add(s.acquire());
    report_.grant_wait.add(s.grant_wait());
    report_.cs.add(s.cs_time());
  } else {
    ++report_.aborted;
  }
  if (downstream_) downstream_->on_span(s);
  open_.erase(req);
}

}  // namespace dmx::obs
