#include "analysis/models.hpp"

#include <cmath>

namespace dmx::analysis {

double arbiter_messages_light(std::size_t n) {
  const double nn = static_cast<double>(n);
  return (nn * nn - 1.0) / nn;
}

double arbiter_messages_heavy(std::size_t n) {
  return 3.0 - 2.0 / static_cast<double>(n);
}

double arbiter_service_light(std::size_t n, const Timing& t) {
  const double nn = static_cast<double>(n);
  return (1.0 - 1.0 / nn) * 2.0 * t.t_msg + t.t_req + t.t_exec;
}

double arbiter_service_heavy(std::size_t n, const Timing& t) {
  const double nn = static_cast<double>(n);
  return (1.0 - 1.0 / nn) * t.t_msg + t.t_req +
         (nn / 2.0 + 1.0) * (t.t_msg + t.t_exec);
}

double ricart_agrawala_messages(std::size_t n) {
  return 2.0 * (static_cast<double>(n) - 1.0);
}

double lamport_messages(std::size_t n) {
  return 3.0 * (static_cast<double>(n) - 1.0);
}

double suzuki_kasami_messages(std::size_t n) {
  return static_cast<double>(n);
}

double centralized_messages() { return 3.0; }

double raymond_messages_heavy() { return 4.0; }

double raymond_messages_light(std::size_t n) {
  return 2.0 * std::log2(static_cast<double>(n));
}

double maekawa_messages_low(std::size_t n) {
  return 3.0 * std::sqrt(static_cast<double>(n));
}

double maekawa_messages_high(std::size_t n) {
  return 5.0 * std::sqrt(static_cast<double>(n));
}

double harmonic(std::size_t n) {
  // Summed smallest-terms-first so H_n stays exact to double precision for
  // every n the benches sweep.
  double h = 0.0;
  for (std::size_t k = n; k >= 1; --k) h += 1.0 / static_cast<double>(k);
  return h;
}

double path_reversal_reversal_cost(std::size_t n) {
  return harmonic(n) - 1.0;
}

double path_reversal_messages_avg(std::size_t n) {
  return harmonic(n) - 1.0 / static_cast<double>(n);
}

double path_reversal_messages_asymptotic(std::size_t n) {
  constexpr double kEulerGamma = 0.577215664901532860606512;
  return std::log(static_cast<double>(n)) + kEulerGamma;
}

}  // namespace dmx::analysis
