// Closed-form performance models.
//
// Section 3 of the paper derives the average number of messages per CS
// invocation (M-bar) and the average service time per CS (X-bar) of the
// arbiter token-passing algorithm at the two load extremes:
//
//   Light load:  M = (N^2 - 1) / N                                  (Eq. 1)
//                X = (1 - 1/N) * 2*Tmsg + Treq + Texec              (Eq. 3)
//   Heavy load:  M = 3 - 2/N                                        (Eq. 4)
//                X = (1 - 1/N)*Tmsg + Treq + (N/2 + 1)(Tmsg+Texec)  (Eq. 6)
//
// We add the textbook per-CS message counts of every baseline so the
// comparison benches can print analytic columns next to measured ones.
#pragma once

#include <cstddef>

namespace dmx::analysis {

/// Timing parameters shared by the models (in abstract time units).
struct Timing {
  double t_msg = 0.1;
  double t_exec = 0.1;
  double t_req = 0.1;
};

// --- the paper's algorithm ---------------------------------------------------

/// Eq. (1): average messages per CS at very light load.
double arbiter_messages_light(std::size_t n);

/// Eq. (4): average messages per CS at heavy load.
double arbiter_messages_heavy(std::size_t n);

/// Eq. (3): average service time per CS at very light load.
double arbiter_service_light(std::size_t n, const Timing& t);

/// Eq. (6): average service time per CS at heavy load.
double arbiter_service_heavy(std::size_t n, const Timing& t);

// --- baselines (messages per CS) ---------------------------------------------

/// Ricart–Agrawala: 2(N-1) always.
double ricart_agrawala_messages(std::size_t n);

/// Lamport: 3(N-1) always.
double lamport_messages(std::size_t n);

/// Suzuki–Kasami: N (N-1 broadcast REQUESTs + 1 token), 0 if holder re-enters.
double suzuki_kasami_messages(std::size_t n);

/// Centralized coordinator: 3 (request, grant, release).
double centralized_messages();

/// Raymond's tree: ~4 at heavy load; O(log N) at light load.  Returns the
/// heavy-load figure the paper cites.
double raymond_messages_heavy();
/// Raymond light-load approximation: 2 * average tree distance ~ 2*log2(N).
double raymond_messages_light(std::size_t n);

/// Maekawa: between 3*sqrt(N) (no contention) and 5*sqrt(N).
double maekawa_messages_low(std::size_t n);
double maekawa_messages_high(std::size_t n);

// --- Naimi–Trehel path reversal (Lavault, arXiv cs/0611098) ------------------
//
// Lavault's average-case analysis of path reversal: under uniformly random
// requesters, the probable-owner tree's stationary distribution gives an
// average REQUEST chain length of exactly H_n - 1 (the harmonic number
// minus one).  A full CS acquisition in the sequential (one-at-a-time)
// model then costs that chain plus one TOKEN message whenever the
// requester is not already the root — probability (n-1)/n — so
//
//   messages/CS = (H_n - 1) + (n-1)/n = H_n - 1/n  ~  ln n + gamma.

/// H_n = 1 + 1/2 + ... + 1/n.
double harmonic(std::size_t n);

/// Average REQUEST chain length (path-reversal cost): H_n - 1.
double path_reversal_reversal_cost(std::size_t n);

/// Average messages per CS in the sequential random-request model:
/// H_n - 1/n.  This is the curve bench/table_pathreversal measures against.
double path_reversal_messages_avg(std::size_t n);

/// Asymptotic form ln(n) + gamma (Euler–Mascheroni); the measured curve
/// converges to this as n grows — the Fig. 6-style convergence story.
double path_reversal_messages_asymptotic(std::size_t n);

}  // namespace dmx::analysis
