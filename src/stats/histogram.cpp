#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dmx::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= bins_.size()) idx = bins_.size() - 1;  // float edge at hi
  ++bins_[idx];
}

double Histogram::quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Histogram::quantile: p outside [0,1]");
  }
  if (count_ == 0) return lo_;
  const double target = p * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (target <= next && bins_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t max_bar) const {
  std::uint64_t peak = 1;
  for (auto b : bins_) peak = std::max(peak, b);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double b_lo = lo_ + static_cast<double>(i) * width_;
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(bins_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_bar));
    const int n = std::snprintf(line, sizeof line, "[%8.3f, %8.3f) %8llu ",
                                b_lo, b_lo + width_,
                                static_cast<unsigned long long>(bins_[i]));
    out.append(line, n > 0 ? static_cast<std::size_t>(n) : 0u);
    out.append(bar_len, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace dmx::stats
