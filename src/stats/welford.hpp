// Numerically stable running mean/variance (Welford's online algorithm).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace dmx::stats {

/// Online accumulator for count, mean, variance, min and max of a stream of
/// doubles.  O(1) space, numerically stable for long runs (the paper's
/// simulations process 10^6 samples per point).
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator into this one (parallel-combinable).
  void merge(const Welford& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += other.m2_ + delta * delta * na * nb / n_total;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double std_error() const {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  [[nodiscard]] double min() const {
    return n_ > 0 ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ > 0 ? max_ : 0.0;
  }

  void reset() { *this = Welford{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dmx::stats
