// Fixed-capacity moving-window average.
//
// The starvation-free variant of the paper's algorithm (Section 4.1) has
// every node track "the average size of the Q-list within a moving window"
// observed from NEW-ARBITER messages; the arbiter routes the token to the
// monitor node when its NEW-ARBITER counter reaches the ceiling of that
// average.  This class is that window.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace dmx::stats {

/// Ring buffer keeping the last `capacity` samples with O(1) mean updates.
class MovingWindow {
 public:
  explicit MovingWindow(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("MovingWindow: capacity must be > 0");
    }
  }

  void add(double x) {
    if (size_ == buf_.size()) {
      sum_ -= buf_[head_];
      buf_[head_] = x;
      head_ = (head_ + 1) % buf_.size();
    } else {
      buf_[(head_ + size_) % buf_.size()] = x;
      ++size_;
    }
    sum_ += x;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Mean of the samples currently in the window; `fallback` when empty.
  [[nodiscard]] double mean(double fallback = 0.0) const {
    return size_ > 0 ? sum_ / static_cast<double>(size_) : fallback;
  }

  void reset() {
    size_ = 0;
    head_ = 0;
    sum_ = 0.0;
  }

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double sum_ = 0.0;
};

}  // namespace dmx::stats
