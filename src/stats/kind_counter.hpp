// Dense per-kind counters: the hot-path sibling of CounterMap.
//
// CounterMap keys by string and pays a map lookup plus (for callers holding
// a string_view) a std::string allocation per increment.  KindCounter is a
// plain vector indexed by a small dense id — one bounds check and one add —
// for call sites that count per message kind on every send.  Translation to
// names happens only at table-output time, via the message-kind registry
// (see net/msg_kind.hpp), so totals and merges stay identical to the old
// string-keyed accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmx::stats {

class KindCounter {
 public:
  void increment(std::size_t idx, std::uint64_t by = 1) {
    if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
    counts_[idx] += by;
  }

  [[nodiscard]] std::uint64_t get(std::size_t idx) const {
    return idx < counts_.size() ? counts_[idx] : 0;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t c : counts_) t += c;
    return t;
  }

  /// Highest index ever touched, plus one.
  [[nodiscard]] std::size_t size() const { return counts_.size(); }

  /// Pre-size the table (e.g. to the registry's current kind count) so the
  /// growth branch never fires mid-run.
  void ensure(std::size_t n) {
    if (n > counts_.size()) counts_.resize(n, 0);
  }

  void merge(const KindCounter& other) {
    ensure(other.counts_.size());
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }

  void reset() { counts_.clear(); }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace dmx::stats
