#include "stats/confidence.hpp"

#include <array>
#include <cstdio>

namespace dmx::stats {

double t_critical_95(std::uint64_t degrees_of_freedom) {
  // Two-sided 95% critical values for df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (degrees_of_freedom == 0) return 0.0;
  if (degrees_of_freedom <= kTable.size()) {
    return kTable[degrees_of_freedom - 1];
  }
  return 1.960;
}

MeanCi mean_ci_95(const Welford& w) {
  MeanCi ci;
  ci.mean = w.mean();
  ci.count = w.count();
  if (w.count() > 1) {
    ci.half_width = t_critical_95(w.count() - 1) * w.std_error();
  }
  return ci;
}

std::string MeanCi::to_string(int precision) const {
  std::array<char, 96> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.*f \xC2\xB1 %.*f",
                              precision, mean, precision, half_width);
  return std::string(buf.data(), n > 0 ? static_cast<std::size_t>(n) : 0u);
}

}  // namespace dmx::stats
