// Recovery-time accounting for chaos campaigns.
//
// The simulation-methodology literature measures failure behaviour as
// first-class experiment output: time-to-recovery and unavailability, not
// just messages per CS.  This layer turns the grant stream plus the fault
// schedule into exactly that.  Each disruptive fault action opens a recovery
// window; the next critical-section completion closes every open window and
// records one time-to-recovery sample per fault.  Unavailability is the
// union of open windows (overlapping faults are not double-billed), and a
// window still open when the run ends counts as unrecovered (censored: its
// duration is billed, but it produces no TTR sample).
//
// "Recovered" is deliberately defined through the service the cluster
// delivers — a CS completing — rather than through protocol internals, so
// the same metric compares the arbiter algorithm against every baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/welford.hpp"

namespace dmx::stats {

class RecoveryMetrics {
 public:
  struct FaultRecord {
    double at = 0.0;            ///< Fault injection time (sim units).
    std::string label;          ///< Action description ("t=5 crash 3").
    double time_to_recovery = 0.0;  ///< Valid when recovered.
    bool recovered = false;
  };

  /// TTR histogram range [0, hi) with `bins` linear bins.
  explicit RecoveryMetrics(double ttr_hi = 100.0, std::size_t bins = 1'000)
      : ttr_hist_(0.0, ttr_hi, bins) {}

  /// A disruptive fault fired at time t (opens a recovery window).
  void on_fault(double t, std::string label);

  /// A critical section completed at time t (closes all open windows).
  void on_progress(double t);

  /// Node-attributed progress: closes the plain windows like on_progress(t)
  /// AND any partition-group window whose member list contains `node`.
  void on_progress(double t, int node);

  /// A partition cut fired at time t: opens one attributed window per
  /// group.  A group's window closes only when one of its *members*
  /// completes a CS — so the side of the cut that cannot make progress is
  /// billed separately from the cluster-wide TTR (which any node's
  /// completion closes).
  void on_partition(double t, const std::vector<std::vector<int>>& groups);

  /// The run ended at time t: bill still-open windows as unrecovered.
  void end_run(double t);

  [[nodiscard]] std::uint64_t faults() const { return records_.size(); }
  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
  [[nodiscard]] std::uint64_t unrecovered() const {
    return records_.size() - recovered_;
  }
  /// Per-fault time-to-recovery samples (mean/min/max/stddev).
  [[nodiscard]] const Welford& ttr() const { return ttr_; }
  [[nodiscard]] const Histogram& ttr_histogram() const { return ttr_hist_; }
  /// Union of fault-to-recovery windows, in sim units.
  [[nodiscard]] double unavailability() const { return unavailability_; }
  [[nodiscard]] const std::vector<FaultRecord>& records() const {
    return records_;
  }

  struct PartitionRecord {
    double at = 0.0;            ///< Cut time (sim units).
    std::vector<int> members;   ///< Nodes in this side of the cut.
    double blocked = 0.0;       ///< Cut -> first member CS completion.
    bool recovered = false;     ///< False = censored at end_run.
  };
  [[nodiscard]] const std::vector<PartitionRecord>& partitions() const {
    return partition_records_;
  }
  /// Worst per-group blocked time across all cuts (the "minority
  /// unavailability" headline: the side that stayed dark the longest).
  [[nodiscard]] double max_group_blocked() const;

 private:
  std::vector<FaultRecord> records_;
  std::vector<std::size_t> open_;  ///< Indices into records_ awaiting recovery.
  std::vector<PartitionRecord> partition_records_;
  std::vector<std::size_t> open_groups_;  ///< Unclosed partition records.
  double union_start_ = 0.0;       ///< Earliest open fault time.
  Welford ttr_;
  Histogram ttr_hist_;
  double unavailability_ = 0.0;
  std::uint64_t recovered_ = 0;
};

}  // namespace dmx::stats
