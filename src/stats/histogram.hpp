// Fixed-bin histogram with percentile queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dmx::stats {

/// Linear-bin histogram over [lo, hi) with overflow/underflow buckets.
/// Used for per-CS delay distributions and recovery-latency reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// Approximate p-quantile (0 <= p <= 1) by linear interpolation inside the
  /// containing bin.  Underflow samples count as `lo`, overflow as `hi`.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }

  /// Multi-line ASCII rendering (for example programs).
  [[nodiscard]] std::string render(std::size_t max_bar = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace dmx::stats
