// Named counters, used for per-message-type statistics.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dmx::stats {

/// Ordered map of name -> count.  Ordered so table output is stable.
class CounterMap {
 public:
  void increment(const std::string& key, std::uint64_t by = 1) {
    counts_[key] += by;
  }

  [[nodiscard]] std::uint64_t get(const std::string& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [k, v] : counts_) t += v;
    return t;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& entries() const {
    return counts_;
  }

  void merge(const CounterMap& other) {
    for (const auto& [k, v] : other.counts_) counts_[k] += v;
  }

  void reset() { counts_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace dmx::stats
