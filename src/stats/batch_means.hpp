// Batch-means estimator for steady-state simulation output analysis.
//
// Per-CS samples within one simulation run are autocorrelated (consecutive
// critical sections share queue state), so the naive per-sample CI is too
// narrow.  The classical remedy is the method of batch means: split the run
// into `k` contiguous batches, treat batch averages as (approximately)
// independent samples, and compute the CI across batch means.
#pragma once

#include <cstddef>

#include "stats/confidence.hpp"
#include "stats/welford.hpp"

namespace dmx::stats {

/// Accumulates a sample stream into fixed-size batches and exposes a CI over
/// the batch means.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
    if (batch_size == 0) {
      throw std::invalid_argument("BatchMeans: batch_size must be > 0");
    }
  }

  void add(double x) {
    current_.add(x);
    overall_.add(x);
    if (current_.count() >= batch_size_) {
      batch_means_.add(current_.mean());
      current_.reset();
    }
  }

  /// Mean over all samples (including an unfinished trailing batch).
  [[nodiscard]] double mean() const { return overall_.mean(); }
  [[nodiscard]] std::uint64_t count() const { return overall_.count(); }
  [[nodiscard]] std::uint64_t complete_batches() const {
    return batch_means_.count();
  }

  /// 95% CI computed across completed batch means.  Falls back to the
  /// per-sample CI when fewer than two batches completed.
  [[nodiscard]] MeanCi ci() const {
    if (batch_means_.count() >= 2) {
      MeanCi ci = mean_ci_95(batch_means_);
      ci.mean = overall_.mean();  // best point estimate uses all samples
      return ci;
    }
    return mean_ci_95(overall_);
  }

 private:
  std::size_t batch_size_;
  Welford current_;
  Welford batch_means_;
  Welford overall_;
};

}  // namespace dmx::stats
