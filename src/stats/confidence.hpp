// Confidence intervals for sample means.
//
// The paper plots 95% confidence intervals on every simulated point; we
// replicate that.  For the small replication counts used by multi-seed runs
// we use Student's t critical values; beyond the table we fall back to the
// normal approximation (1.96 for 95%).
#pragma once

#include <cstdint>
#include <string>

#include "stats/welford.hpp"

namespace dmx::stats {

/// Two-sided critical value of Student's t distribution at 95% confidence for
/// the given degrees of freedom.  Exact table through df=30, then normal
/// approximation.
[[nodiscard]] double t_critical_95(std::uint64_t degrees_of_freedom);

/// A mean together with its 95% confidence half-width.
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }

  /// True if `value` lies inside the interval.
  [[nodiscard]] bool contains(double value) const {
    return value >= lo() && value <= hi();
  }

  /// "m ± h" with the given precision, for table output.
  [[nodiscard]] std::string to_string(int precision = 4) const;
};

/// 95% confidence interval on the mean of the accumulated samples.
[[nodiscard]] MeanCi mean_ci_95(const Welford& w);

}  // namespace dmx::stats
