#include "stats/recovery_metrics.hpp"

#include <algorithm>
#include <utility>

namespace dmx::stats {

void RecoveryMetrics::on_fault(double t, std::string label) {
  if (open_.empty()) union_start_ = t;
  FaultRecord rec;
  rec.at = t;
  rec.label = std::move(label);
  open_.push_back(records_.size());
  records_.push_back(std::move(rec));
}

void RecoveryMetrics::on_progress(double t) {
  if (open_.empty()) return;
  for (std::size_t idx : open_) {
    FaultRecord& rec = records_[idx];
    rec.recovered = true;
    rec.time_to_recovery = t - rec.at;
    ttr_.add(rec.time_to_recovery);
    ttr_hist_.add(rec.time_to_recovery);
    ++recovered_;
  }
  open_.clear();
  unavailability_ += t - union_start_;
}

void RecoveryMetrics::end_run(double t) {
  if (open_.empty()) return;
  // Censored: the windows never closed.  Bill their union through the end
  // of the run but record no TTR sample (the faults stay unrecovered).
  unavailability_ += std::max(0.0, t - union_start_);
  open_.clear();
}

}  // namespace dmx::stats
