#include "stats/recovery_metrics.hpp"

#include <algorithm>
#include <utility>

namespace dmx::stats {

void RecoveryMetrics::on_fault(double t, std::string label) {
  if (open_.empty()) union_start_ = t;
  FaultRecord rec;
  rec.at = t;
  rec.label = std::move(label);
  open_.push_back(records_.size());
  records_.push_back(std::move(rec));
}

void RecoveryMetrics::on_progress(double t) {
  if (open_.empty()) return;
  for (std::size_t idx : open_) {
    FaultRecord& rec = records_[idx];
    rec.recovered = true;
    rec.time_to_recovery = t - rec.at;
    ttr_.add(rec.time_to_recovery);
    ttr_hist_.add(rec.time_to_recovery);
    ++recovered_;
  }
  open_.clear();
  unavailability_ += t - union_start_;
}

void RecoveryMetrics::on_progress(double t, int node) {
  on_progress(t);
  if (open_groups_.empty()) return;
  std::erase_if(open_groups_, [&](std::size_t idx) {
    PartitionRecord& rec = partition_records_[idx];
    if (std::find(rec.members.begin(), rec.members.end(), node) ==
        rec.members.end()) {
      return false;
    }
    rec.recovered = true;
    rec.blocked = t - rec.at;
    return true;
  });
}

void RecoveryMetrics::on_partition(double t,
                                   const std::vector<std::vector<int>>& groups) {
  for (const std::vector<int>& group : groups) {
    PartitionRecord rec;
    rec.at = t;
    rec.members = group;
    open_groups_.push_back(partition_records_.size());
    partition_records_.push_back(std::move(rec));
  }
}

double RecoveryMetrics::max_group_blocked() const {
  double worst = 0.0;
  for (const PartitionRecord& rec : partition_records_) {
    worst = std::max(worst, rec.blocked);
  }
  return worst;
}

void RecoveryMetrics::end_run(double t) {
  // Censored partition groups: bill the whole cut-to-end stretch (the side
  // never produced a single CS again).
  for (std::size_t idx : open_groups_) {
    PartitionRecord& rec = partition_records_[idx];
    rec.blocked = std::max(0.0, t - rec.at);
  }
  open_groups_.clear();
  if (open_.empty()) return;
  // Censored: the windows never closed.  Bill their union through the end
  // of the run but record no TTR sample (the faults stay unrecovered).
  unavailability_ += std::max(0.0, t - union_start_);
  open_.clear();
}

}  // namespace dmx::stats
