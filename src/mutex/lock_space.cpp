#include "mutex/lock_space.hpp"

#include <stdexcept>
#include <utility>

#include "mutex/registry.hpp"
#include "net/delay_model.hpp"
#include "obs/tracer.hpp"

namespace dmx::mutex {

namespace {

std::string join_errors(const std::vector<std::string>& errors) {
  std::string msg = "LockSpaceSpec invalid:";
  for (const auto& e : errors) {
    msg += "\n  - ";
    msg += e;
  }
  return msg;
}

}  // namespace

std::vector<std::string> LockSpaceSpec::validate() const {
  std::vector<std::string> errors;
  auto& registry = Registry::instance();
  if (n_nodes == 0) errors.push_back("n_nodes must be > 0");
  if (n_resources == 0) errors.push_back("n_resources must be > 0");
  if (t_msg < 0.0) errors.push_back("t_msg must be >= 0");
  if (t_exec < 0.0) errors.push_back("t_exec must be >= 0");
  if (span_hist_max <= 0.0) errors.push_back("span_hist_max must be > 0");
  if (!registry.contains(algorithm)) {
    errors.push_back(
        "algorithm not registered (call "
        "harness::register_builtin_algorithms first): " +
        algorithm);
  }
  for (const auto& [r, ov] : overrides) {
    const std::string where = "override for resource " + std::to_string(r);
    if (n_resources > 0 && r >= n_resources) {
      errors.push_back(where + ": index out of range (n_resources = " +
                       std::to_string(n_resources) + ")");
    }
    if (ov.algorithm && !registry.contains(*ov.algorithm)) {
      errors.push_back(where + ": algorithm not registered: " +
                       *ov.algorithm);
    }
    if (ov.n_nodes && *ov.n_nodes == 0) {
      errors.push_back(where + ": n_nodes must be > 0");
    }
  }
  return errors;
}

const std::string& LockSpaceSpec::algorithm_for(std::size_t r) const {
  auto it = overrides.find(r);
  if (it != overrides.end() && it->second.algorithm) {
    return *it->second.algorithm;
  }
  return algorithm;
}

std::size_t LockSpaceSpec::nodes_for(std::size_t r) const {
  auto it = overrides.find(r);
  if (it != overrides.end() && it->second.n_nodes) return *it->second.n_nodes;
  return n_nodes;
}

ParamSet LockSpaceSpec::params_for(std::size_t r) const {
  auto it = overrides.find(r);
  if (it == overrides.end()) return params;
  ParamSet merged = params;
  for (const auto& [k, v] : it->second.params.nums()) merged.set(k, v);
  return merged;
}

LockSpaceSpec LockSpaceBuilder::build() const {
  const auto errors = spec_.validate();
  if (!errors.empty()) throw std::invalid_argument(join_errors(errors));
  return spec_;
}

std::unique_ptr<LockSpace> LockSpaceBuilder::build_space() const {
  return std::make_unique<LockSpace>(build());
}

namespace {

LockSpaceSpec spec_from_config(LockSpace::Config cfg) {
  LockSpaceSpec spec;
  spec.algorithm = std::move(cfg.algorithm);
  spec.n_nodes = cfg.n_nodes;
  spec.n_resources = cfg.n_resources;
  spec.t_msg = cfg.t_msg;
  spec.t_exec = cfg.t_exec;
  spec.params = std::move(cfg.params);
  spec.seed = cfg.seed;
  return spec;
}

}  // namespace

LockSpace::LockSpace(Config cfg) : LockSpace(spec_from_config(std::move(cfg))) {}

LockSpace::LockSpace(LockSpaceSpec spec) : spec_(std::move(spec)) {
  const auto errors = spec_.validate();
  if (!errors.empty()) throw std::invalid_argument(join_errors(errors));

  auto& registry = Registry::instance();
  clusters_.reserve(spec_.n_resources);
  drivers_.resize(spec_.n_resources);
  pending_.resize(spec_.n_resources);
  span_collectors_.resize(spec_.n_resources);
  for (std::size_t r = 0; r < spec_.n_resources; ++r) {
    const std::size_t n = spec_.nodes_for(r);
    const std::string& algo_name = spec_.algorithm_for(r);
    const ParamSet params = spec_.params_for(r);

    obs::Tracer tracer;
    if (spec_.collect_spans) {
      span_collectors_[r] = std::make_shared<obs::SpanCollector>(
          spec_.trace_sink, spec_.span_hist_max);
      tracer = obs::Tracer(span_collectors_[r]);
    } else if (spec_.trace_sink) {
      tracer = obs::Tracer(spec_.trace_sink);
    }

    clusters_.push_back(std::make_unique<runtime::Cluster>(
        sim_, n,
        std::make_unique<net::ConstantDelay>(sim::SimTime::units(spec_.t_msg)),
        spec_.seed * 7919 + r, tracer));
    monitors_.push_back(std::make_unique<SafetyMonitor>());
    pending_[r].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const net::NodeId nid{static_cast<std::int32_t>(i)};
      FactoryContext ctx{nid, n, params};
      auto algo = registry.create(algo_name, ctx);
      auto* algo_raw = algo.get();
      clusters_[r]->install(nid, std::move(algo));
      auto driver = std::make_unique<CsDriver>(
          sim_, *dynamic_cast<MutexAlgorithm*>(algo_raw),
          sim::SimTime::units(spec_.t_exec), monitors_[r].get(), &ids_);
      driver->set_tracer(tracer);
      driver->set_grant_callback([this, r, i](const CsRequest&) {
        on_driver_granted(r, i);
      });
      driver->set_completion_callback([this, r, i](const CsRequest&) {
        on_driver_released(r, i);
      });
      drivers_[r].push_back(std::move(driver));
    }
    clusters_[r]->start();
  }
  if (spec_.batch_size > 0) batch_buffer_.reserve(spec_.batch_size);
}

LockRequestId LockSpace::acquire(std::size_t node, std::size_t resource,
                                 int priority) {
  if (resource >= spec_.n_resources || node >= drivers_[resource].size()) {
    throw std::out_of_range("LockSpace::acquire: bad node or resource");
  }
  const LockRequestId ticket{next_ticket_++};
  pending_[resource][node].push_back(ticket);
  const LockDemand demand{node, resource, priority};
  if (spec_.batch_size == 0) {
    submit_now(demand);
    return ticket;
  }
  batch_buffer_.push_back(demand);
  if (batch_buffer_.size() >= spec_.batch_size) {
    flush();
  } else if (!flush_scheduled_) {
    // Same-timestamp auto-flush: a partial batch never waits for more
    // demand that may not come.  Scheduling at +0 keeps batched and
    // unbatched runs on identical virtual-time behavior.
    flush_scheduled_ = true;
    sim_.schedule_after(sim::SimTime::units(0.0), [this] {
      flush_scheduled_ = false;
      flush();
    });
  }
  return ticket;
}

std::vector<LockRequestId> LockSpace::submit_batch(
    std::span<const LockDemand> batch) {
  std::vector<LockRequestId> tickets;
  tickets.reserve(batch.size());
  for (const LockDemand& d : batch) {
    tickets.push_back(acquire(d.node, d.resource, d.priority));
  }
  return tickets;
}

void LockSpace::flush() {
  // submit_now can re-enter the simulator but never acquire(), so draining
  // a local move of the buffer keeps re-entrant growth impossible.
  std::vector<LockDemand> draining = std::move(batch_buffer_);
  batch_buffer_.clear();
  for (const LockDemand& d : draining) submit_now(d);
}

void LockSpace::submit_now(const LockDemand& d) {
  drivers_[d.resource][d.node]->submit(d.priority);
}

void LockSpace::on_driver_granted(std::size_t resource, std::size_t node) {
  ++current_parallel_;
  if (current_parallel_ > max_parallel_) max_parallel_ = current_parallel_;
  if (on_granted_) {
    const auto& queue = pending_[resource][node];
    const LockRequestId id = queue.empty() ? LockRequestId{} : queue.front();
    on_granted_(LockEvent{id, resource, node, sim_.now()});
  }
}

void LockSpace::on_driver_released(std::size_t resource, std::size_t node) {
  --current_parallel_;
  auto& queue = pending_[resource][node];
  const LockRequestId id = queue.empty() ? LockRequestId{} : queue.front();
  if (!queue.empty()) queue.pop_front();
  if (on_released_) on_released_(LockEvent{id, resource, node, sim_.now()});
}

std::uint64_t LockSpace::safety_violations() const {
  std::uint64_t v = 0;
  for (const auto& m : monitors_) v += m->violations();
  return v;
}

std::uint64_t LockSpace::total_completed() const {
  std::uint64_t c = 0;
  for (const auto& per_resource : drivers_) {
    for (const auto& d : per_resource) c += d->completed();
  }
  return c;
}

std::uint64_t LockSpace::total_submitted() const {
  std::uint64_t c = batch_buffer_.size();  // ticketed, not yet flushed
  for (const auto& per_resource : drivers_) {
    for (const auto& d : per_resource) c += d->submitted();
  }
  return c;
}

std::uint64_t LockSpace::completed(std::size_t resource) const {
  std::uint64_t c = 0;
  for (const auto& d : drivers_[resource]) c += d->completed();
  return c;
}

std::uint64_t LockSpace::messages(std::size_t resource) const {
  return clusters_[resource]->network().stats().sent;
}

std::uint64_t LockSpace::total_messages() const {
  std::uint64_t m = 0;
  for (const auto& c : clusters_) m += c->network().stats().sent;
  return m;
}

stats::Welford LockSpace::sojourn(std::size_t resource) const {
  stats::Welford w;
  for (const auto& d : drivers_[resource]) w.merge(d->sojourn_time());
  return w;
}

std::vector<std::uint64_t> LockSpace::completions_per_node(
    std::size_t resource) const {
  std::vector<std::uint64_t> out;
  out.reserve(drivers_[resource].size());
  for (const auto& d : drivers_[resource]) out.push_back(d->completed());
  return out;
}

const obs::SpanReport* LockSpace::span_report(std::size_t resource) {
  if (span_collectors_[resource] == nullptr) return nullptr;
  return &span_collectors_[resource]->report();
}

}  // namespace dmx::mutex
