#include "mutex/lock_space.hpp"

#include <stdexcept>

#include "mutex/registry.hpp"
#include "net/delay_model.hpp"

namespace dmx::mutex {

LockSpace::LockSpace(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.n_nodes == 0 || cfg_.n_resources == 0) {
    throw std::invalid_argument("LockSpace: nodes and resources must be > 0");
  }
  auto& registry = Registry::instance();
  if (!registry.contains(cfg_.algorithm)) {
    throw std::invalid_argument(
        "LockSpace: algorithm not registered (call "
        "harness::register_builtin_algorithms first): " +
        cfg_.algorithm);
  }
  clusters_.reserve(cfg_.n_resources);
  drivers_.resize(cfg_.n_resources);
  for (std::size_t r = 0; r < cfg_.n_resources; ++r) {
    clusters_.push_back(std::make_unique<runtime::Cluster>(
        sim_, cfg_.n_nodes,
        std::make_unique<net::ConstantDelay>(sim::SimTime::units(cfg_.t_msg)),
        cfg_.seed * 7919 + r));
    monitors_.push_back(std::make_unique<SafetyMonitor>());
    for (std::size_t i = 0; i < cfg_.n_nodes; ++i) {
      const net::NodeId nid{static_cast<std::int32_t>(i)};
      FactoryContext ctx{nid, cfg_.n_nodes, cfg_.params};
      auto algo = registry.create(cfg_.algorithm, ctx);
      auto* algo_raw = algo.get();
      clusters_[r]->install(nid, std::move(algo));
      auto driver = std::make_unique<CsDriver>(
          sim_, *dynamic_cast<MutexAlgorithm*>(algo_raw),
          sim::SimTime::units(cfg_.t_exec), monitors_[r].get(), &ids_);
      driver->set_grant_callback([this](const CsRequest&) {
        ++current_parallel_;
        if (current_parallel_ > max_parallel_) {
          max_parallel_ = current_parallel_;
        }
      });
      driver->set_completion_callback(
          [this](const CsRequest&) { --current_parallel_; });
      drivers_[r].push_back(std::move(driver));
    }
    clusters_[r]->start();
  }
}

void LockSpace::acquire(std::size_t node, std::size_t resource, int priority) {
  if (node >= cfg_.n_nodes || resource >= cfg_.n_resources) {
    throw std::out_of_range("LockSpace::acquire: bad node or resource");
  }
  drivers_[resource][node]->submit(priority);
}

std::uint64_t LockSpace::safety_violations() const {
  std::uint64_t v = 0;
  for (const auto& m : monitors_) v += m->violations();
  return v;
}

std::uint64_t LockSpace::total_completed() const {
  std::uint64_t c = 0;
  for (const auto& per_resource : drivers_) {
    for (const auto& d : per_resource) c += d->completed();
  }
  return c;
}

std::uint64_t LockSpace::total_submitted() const {
  std::uint64_t c = 0;
  for (const auto& per_resource : drivers_) {
    for (const auto& d : per_resource) c += d->submitted();
  }
  return c;
}

std::uint64_t LockSpace::completed(std::size_t resource) const {
  std::uint64_t c = 0;
  for (const auto& d : drivers_[resource]) c += d->completed();
  return c;
}

std::uint64_t LockSpace::messages(std::size_t resource) const {
  return clusters_[resource]->network().stats().sent;
}

std::uint64_t LockSpace::total_messages() const {
  std::uint64_t m = 0;
  for (const auto& c : clusters_) m += c->network().stats().sent;
  return m;
}

stats::Welford LockSpace::sojourn(std::size_t resource) const {
  stats::Welford w;
  for (const auto& d : drivers_[resource]) w.merge(d->sojourn_time());
  return w;
}

}  // namespace dmx::mutex
