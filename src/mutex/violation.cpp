#include "mutex/violation.hpp"

namespace dmx::mutex {

std::string_view violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kMutualExclusion:
      return "mutual-exclusion";
    case Violation::Kind::kPhantomExit:
      return "phantom-exit";
    case Violation::Kind::kStarvation:
      return "starvation";
    case Violation::Kind::kTokenDuplicated:
      return "token-duplicated";
    case Violation::Kind::kEventLimit:
      return "event-limit";
  }
  return "unknown";
}

std::string Violation::describe() const {
  std::string out(violation_kind_name(kind));
  out += " at t=" + time.to_string();
  if (!nodes.empty()) {
    out += " [nodes ";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(nodes[i].value());
    }
    out += "]";
  }
  if (!detail.empty()) out += ": " + detail;
  return out;
}

}  // namespace dmx::mutex
