// Multi-resource lock space.
//
// Real deployments guard many independent resources (shards, keys, files),
// not one global critical section.  A LockSpace instantiates one complete
// mutual exclusion protocol per resource — its own logical network and its
// own per-node algorithm instances — all driven by a single shared virtual
// clock, so cross-resource parallelism and aggregate message bills can be
// studied.  Any registered algorithm works; resources are fully independent
// (a grant on resource A never waits on resource B).
//
// The API is spec + builder (mirroring harness::ExperimentConfigBuilder):
//
//   auto space = mutex::LockSpaceBuilder()
//                    .resources(1024).nodes(16)
//                    .algorithm("raymond")              // default (cold)
//                    .resource_algorithm(0, "arbiter-tp")  // hot override
//                    .resource_nodes(0, 64)
//                    .batch(32)
//                    .collect_spans()
//                    .build_space();
//   space->set_on_granted([](const LockEvent& e) { ... });
//   LockRequestId id = space->acquire(node, resource);
//
// LockSpaceSpec::validate() reports *every* configuration error at once;
// build()/the ctor throw the joined list.  Per-resource overrides let hot
// resources run a different algorithm, node count or parameter set than the
// cold default — the substrate of the sharded lock-service scenario
// (harness/lock_service.hpp).
//
// The legacy LockSpace::Config aggregate and its ctor remain as a thin,
// deprecated shim over LockSpaceSpec for older call sites; new code should
// use the builder.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mutex/api.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/params.hpp"
#include "mutex/safety_monitor.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "runtime/cluster.hpp"
#include "sim/callback.hpp"
#include "sim/simulator.hpp"

namespace dmx::mutex {

/// Per-resource deviation from the LockSpaceSpec defaults.  Unset fields
/// inherit; `params` entries are merged *over* the default ParamSet (an
/// override key wins, untouched defaults stay).
struct ResourceOverride {
  std::optional<std::string> algorithm;
  std::optional<std::size_t> n_nodes;
  ParamSet params;
};

/// Full description of a lock space.  Plain aggregate — fill it directly or
/// through LockSpaceBuilder; validate() tells you everything wrong with it.
struct LockSpaceSpec {
  std::string algorithm = "arbiter-tp";  ///< Default for all resources.
  std::size_t n_nodes = 8;               ///< Default nodes per resource.
  std::size_t n_resources = 4;
  double t_msg = 0.1;
  double t_exec = 0.1;
  ParamSet params;  ///< Default algorithm parameters.
  std::uint64_t seed = 1;
  /// Demand batching at the driver layer: acquire() buffers demands and
  /// flushes them `batch_size` at a time (plus a same-timestamp auto-flush
  /// so nothing ever sticks).  0 = unbatched, every acquire submits
  /// immediately (the legacy behavior).
  std::size_t batch_size = 0;
  /// Assemble per-resource request-lifecycle spans (obs/span.hpp); exposes
  /// span_report(resource) with the grant_wait (time-to-grant) phase the
  /// lock-service SLO tables quote p99s of.
  bool collect_spans = false;
  /// Histogram upper edge for span phase distributions (time units).
  double span_hist_max = 1000.0;
  /// Optional downstream sink receiving every resource's trace events (and
  /// completed spans when collect_spans is on).
  std::shared_ptr<obs::Sink> trace_sink;
  /// Per-resource overrides, keyed by resource index.
  std::map<std::size_t, ResourceOverride> overrides;

  /// Validate without building: one actionable message per problem (zero
  /// sizes, unknown algorithm names — default or override —, negative
  /// times, out-of-range override indices, ...); empty means buildable.
  /// The LockSpace ctor throws the joined messages, so a caller sees every
  /// configuration error at once instead of dying on the first.
  [[nodiscard]] std::vector<std::string> validate() const;

  // Resolved per-resource views (override if present, default otherwise).
  [[nodiscard]] const std::string& algorithm_for(std::size_t r) const;
  [[nodiscard]] std::size_t nodes_for(std::size_t r) const;
  [[nodiscard]] ParamSet params_for(std::size_t r) const;
};

/// One lock demand, the unit submit_batch() accepts in bulk.
struct LockDemand {
  std::size_t node = 0;
  std::size_t resource = 0;
  int priority = 0;
};

/// Fluent construction with fail-fast validation, mirroring
/// harness::ExperimentConfigBuilder: build() runs LockSpaceSpec::validate()
/// and throws std::invalid_argument listing every problem.
class LockSpaceBuilder {
 public:
  LockSpaceBuilder& algorithm(std::string name) {
    spec_.algorithm = std::move(name);
    return *this;
  }
  LockSpaceBuilder& nodes(std::size_t n) {
    spec_.n_nodes = n;
    return *this;
  }
  LockSpaceBuilder& resources(std::size_t n) {
    spec_.n_resources = n;
    return *this;
  }
  LockSpaceBuilder& t_msg(double units) {
    spec_.t_msg = units;
    return *this;
  }
  LockSpaceBuilder& t_exec(double units) {
    spec_.t_exec = units;
    return *this;
  }
  LockSpaceBuilder& param(const std::string& key, double value) {
    spec_.params.set(key, value);
    return *this;
  }
  LockSpaceBuilder& param(const std::string& key, const std::string& value) {
    spec_.params.set(key, value);
    return *this;
  }
  LockSpaceBuilder& seed(std::uint64_t s) {
    spec_.seed = s;
    return *this;
  }
  LockSpaceBuilder& batch(std::size_t size) {
    spec_.batch_size = size;
    return *this;
  }
  LockSpaceBuilder& collect_spans(bool on = true) {
    spec_.collect_spans = on;
    return *this;
  }
  LockSpaceBuilder& span_hist_max(double hi) {
    spec_.span_hist_max = hi;
    return *this;
  }
  LockSpaceBuilder& trace_sink(std::shared_ptr<obs::Sink> sink) {
    spec_.trace_sink = std::move(sink);
    return *this;
  }
  LockSpaceBuilder& resource_algorithm(std::size_t r, std::string name) {
    spec_.overrides[r].algorithm = std::move(name);
    return *this;
  }
  LockSpaceBuilder& resource_nodes(std::size_t r, std::size_t n) {
    spec_.overrides[r].n_nodes = n;
    return *this;
  }
  LockSpaceBuilder& resource_param(std::size_t r, const std::string& key,
                                   double value) {
    spec_.overrides[r].params.set(key, value);
    return *this;
  }

  /// Throws std::invalid_argument joining every validation error.
  [[nodiscard]] LockSpaceSpec build() const;

  /// build() + construct the space in one step.
  [[nodiscard]] std::unique_ptr<class LockSpace> build_space() const;

 private:
  LockSpaceSpec spec_;
};

class LockSpace {
 public:
  /// Grant / release notification hook (see the LockRequestId contract in
  /// mutex/api.hpp).  SmallCallback keeps typical captures allocation-free.
  using LockHook = sim::SmallCallback<void(const LockEvent&)>;

  /// Deprecated: pre-builder flat configuration, kept so existing call
  /// sites compile.  Forwards to LockSpaceSpec (no overrides, no batching,
  /// no spans).  New code should use LockSpaceBuilder / LockSpaceSpec.
  struct Config {
    std::string algorithm = "arbiter-tp";
    std::size_t n_nodes = 8;
    std::size_t n_resources = 4;
    double t_msg = 0.1;
    double t_exec = 0.1;
    ParamSet params;
    std::uint64_t seed = 1;
  };

  explicit LockSpace(LockSpaceSpec spec);
  explicit LockSpace(Config cfg);  ///< Deprecated shim over the spec ctor.

  LockSpace(const LockSpace&) = delete;
  LockSpace& operator=(const LockSpace&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const LockSpaceSpec& spec() const { return spec_; }
  /// Default node count; resources with a n_nodes override differ.
  [[nodiscard]] std::size_t nodes() const { return spec_.n_nodes; }
  [[nodiscard]] std::size_t nodes(std::size_t resource) const {
    return drivers_[resource].size();
  }
  [[nodiscard]] std::size_t resources() const { return spec_.n_resources; }
  [[nodiscard]] const std::string& algorithm(std::size_t resource) const {
    return spec_.algorithm_for(resource);
  }

  /// Submit lock demand: node wants resource (queued FIFO per
  /// node+resource).  Returns the demand's ticket; on_granted/on_released
  /// fire with it.  With batching on, the demand is buffered and hits the
  /// protocol at the next flush (same timestamp — a zero-delay auto-flush
  /// is scheduled whenever the buffer becomes non-empty).
  LockRequestId acquire(std::size_t node, std::size_t resource,
                        int priority = 0);

  /// Bulk submission: one ticket per demand, in order.  Equivalent to
  /// calling acquire() per element; exists so drivers hand the space whole
  /// batches without per-demand call overhead.
  std::vector<LockRequestId> submit_batch(std::span<const LockDemand> batch);

  /// Force any buffered demands into the protocol now.  No-op when
  /// unbatched or empty.
  void flush();

  /// Exactly-once grant / release notifications (mutex/api.hpp contract).
  void set_on_granted(LockHook hook) { on_granted_ = std::move(hook); }
  void set_on_released(LockHook hook) { on_released_ = std::move(hook); }

  /// Per-resource exclusivity monitor.
  [[nodiscard]] const SafetyMonitor& monitor(std::size_t resource) const {
    return *monitors_[resource];
  }
  [[nodiscard]] std::uint64_t safety_violations() const;

  /// Grants completed / demands submitted, summed over everything.
  /// Buffered-but-unflushed demands count as submitted (they hold tickets).
  [[nodiscard]] std::uint64_t total_completed() const;
  [[nodiscard]] std::uint64_t total_submitted() const;
  [[nodiscard]] std::uint64_t completed(std::size_t resource) const;

  /// Messages sent on a resource's network / across all of them.
  [[nodiscard]] std::uint64_t messages(std::size_t resource) const;
  [[nodiscard]] std::uint64_t total_messages() const;

  /// Lock-wait statistics (arrival -> release) aggregated over all nodes of
  /// one resource.
  [[nodiscard]] stats::Welford sojourn(std::size_t resource) const;

  /// Per-resource completions by node (tenant-fairness raw material).
  [[nodiscard]] std::vector<std::uint64_t> completions_per_node(
      std::size_t resource) const;

  /// Per-resource lifecycle decomposition; null unless spec.collect_spans.
  /// grant_wait is the time-to-grant SLO phase.
  [[nodiscard]] const obs::SpanReport* span_report(std::size_t resource);

  /// Highest number of resources ever held concurrently (across distinct
  /// resources, by any nodes) — proof of cross-resource parallelism.
  [[nodiscard]] int max_parallel_grants() const { return max_parallel_; }

 private:
  void submit_now(const LockDemand& d);
  void on_driver_granted(std::size_t resource, std::size_t node);
  void on_driver_released(std::size_t resource, std::size_t node);

  LockSpaceSpec spec_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<runtime::Cluster>> clusters_;   // per resource
  std::vector<std::unique_ptr<SafetyMonitor>> monitors_;      // per resource
  std::vector<std::shared_ptr<obs::SpanCollector>> span_collectors_;
  RequestIdSource ids_;
  // drivers_[resource][node]
  std::vector<std::vector<std::unique_ptr<CsDriver>>> drivers_;
  // FIFO ticket ledger per (resource, node): CsDriver queues demand FIFO
  // with at most one CS in flight, so the front ticket is always the one
  // being granted / released.  Popped on release.
  std::vector<std::vector<std::deque<LockRequestId>>> pending_;
  std::vector<LockDemand> batch_buffer_;
  LockHook on_granted_;
  LockHook on_released_;
  std::uint64_t next_ticket_ = 1;
  bool flush_scheduled_ = false;
  int current_parallel_ = 0;
  int max_parallel_ = 0;
};

}  // namespace dmx::mutex
