// Multi-resource lock space.
//
// Real deployments guard many independent resources (shards, keys, files),
// not one global critical section.  A LockSpace instantiates one complete
// mutual exclusion protocol per resource — its own logical network and its
// own per-node algorithm instances — all driven by a single shared virtual
// clock, so cross-resource parallelism and aggregate message bills can be
// studied.  Any registered algorithm works; resources are fully independent
// (a grant on resource A never waits on resource B).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mutex/cs_driver.hpp"
#include "mutex/params.hpp"
#include "mutex/safety_monitor.hpp"
#include "runtime/cluster.hpp"
#include "sim/simulator.hpp"

namespace dmx::mutex {

class LockSpace {
 public:
  struct Config {
    std::string algorithm = "arbiter-tp";
    std::size_t n_nodes = 8;
    std::size_t n_resources = 4;
    double t_msg = 0.1;
    double t_exec = 0.1;
    ParamSet params;
    std::uint64_t seed = 1;
  };

  explicit LockSpace(Config cfg);

  LockSpace(const LockSpace&) = delete;
  LockSpace& operator=(const LockSpace&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] std::size_t nodes() const { return cfg_.n_nodes; }
  [[nodiscard]] std::size_t resources() const { return cfg_.n_resources; }

  /// Submit lock demand: node wants resource (queued FIFO per node+resource).
  void acquire(std::size_t node, std::size_t resource, int priority = 0);

  /// Per-resource exclusivity monitor.
  [[nodiscard]] const SafetyMonitor& monitor(std::size_t resource) const {
    return *monitors_[resource];
  }
  [[nodiscard]] std::uint64_t safety_violations() const;

  /// Grants completed / demands submitted, summed over everything.
  [[nodiscard]] std::uint64_t total_completed() const;
  [[nodiscard]] std::uint64_t total_submitted() const;
  [[nodiscard]] std::uint64_t completed(std::size_t resource) const;

  /// Messages sent on a resource's network / across all of them.
  [[nodiscard]] std::uint64_t messages(std::size_t resource) const;
  [[nodiscard]] std::uint64_t total_messages() const;

  /// Lock-wait statistics (arrival -> release) aggregated over all nodes of
  /// one resource.
  [[nodiscard]] stats::Welford sojourn(std::size_t resource) const;

  /// Highest number of resources ever held concurrently (across distinct
  /// resources, by any nodes) — proof of cross-resource parallelism.
  [[nodiscard]] int max_parallel_grants() const { return max_parallel_; }

 private:
  Config cfg_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<runtime::Cluster>> clusters_;   // per resource
  std::vector<std::unique_ptr<SafetyMonitor>> monitors_;      // per resource
  RequestIdSource ids_;
  // drivers_[resource][node]
  std::vector<std::vector<std::unique_ptr<CsDriver>>> drivers_;
  int current_parallel_ = 0;
  int max_parallel_ = 0;
};

}  // namespace dmx::mutex
