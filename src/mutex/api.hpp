// Algorithm-agnostic distributed mutual exclusion API.
//
// Every algorithm in this library — the paper's arbiter token-passing
// algorithm, its variants, and the seven baselines — implements
// MutexAlgorithm.  The per-node CsDriver submits at most one outstanding
// CsRequest at a time and the algorithm calls grant() when that node may
// enter its critical section; the driver later calls release() when the
// critical section completes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/node_id.hpp"
#include "obs/lifecycle.hpp"
#include "runtime/process.hpp"
#include "sim/time.hpp"

namespace dmx::mutex {

/// Typed handle for one lock demand submitted to a multi-resource
/// LockSpace (lock_space.hpp).  Ids are assigned at acquire() time, are
/// unique and strictly increasing within one LockSpace, and identify the
/// demand in every on_granted / on_released notification, so clients
/// correlate grants with their own submissions instead of polling
/// aggregate counters.
///
/// The LockSpace notification contract:
///  * acquire()/submit_batch() return the demand's LockRequestId
///    immediately; the demand queues FIFO per (resource, node).
///  * on_granted fires exactly once per demand, when its node enters the
///    critical section of its resource, with the id, resource, node and
///    grant time.
///  * on_released fires exactly once per demand, after the critical
///    section completes — the closed-loop resubmission point.
///  * Hooks are sim::SmallCallback<void(const LockEvent&)> (callback.hpp):
///    captures up to the inline budget never allocate, keeping the grant
///    path on the zero-allocation plane.
///  * This id is the *client-facing* identity.  The protocol-level
///    CsRequest::request_id underneath is assigned later (at issue time,
///    when the demand leaves the local FIFO) and is what traces and spans
///    key on; the two are distinct by design.
struct LockRequestId {
  std::uint64_t value = 0;  ///< 0 = invalid / never assigned.

  [[nodiscard]] explicit operator bool() const { return value != 0; }
  friend bool operator==(LockRequestId a, LockRequestId b) {
    return a.value == b.value;
  }
  friend bool operator!=(LockRequestId a, LockRequestId b) {
    return a.value != b.value;
  }
};

/// Payload of a LockSpace grant / release notification.
struct LockEvent {
  LockRequestId id;          ///< The demand this notification is about.
  std::size_t resource = 0;  ///< Resource the lock guards.
  std::size_t node = 0;      ///< Node (tenant) holding / releasing it.
  sim::SimTime at;           ///< Grant or release time.
};

/// One critical-section request.
struct CsRequest {
  std::uint64_t request_id = 0;       ///< Globally unique.
  net::NodeId node;                   ///< Requesting node.
  std::uint64_t sequence = 0;         ///< Per-node CS count (1-based).
  sim::SimTime submitted_at;          ///< Workload arrival time.
  sim::SimTime issued_at;             ///< Handed to the algorithm.
  int priority = 0;                   ///< Higher value = higher priority.
};

/// Base class for one node's half of a mutual exclusion protocol.
///
/// Contract:
///  * request() is called only when no request by this node is outstanding.
///  * The algorithm eventually calls grant() exactly once per request()
///    (assuming no failures), after which the node is in its CS.
///  * release() is called exactly once after each grant.
class MutexAlgorithm : public runtime::Process {
 public:
  using GrantCallback = std::function<void(const CsRequest&)>;

  /// The driver installs its grant callback before the cluster starts.
  void set_grant_callback(GrantCallback cb) { grant_cb_ = std::move(cb); }

  /// Ask for the critical section on behalf of this node.
  virtual void request(const CsRequest& req) = 0;

  /// The critical section granted earlier is complete; pass on permission.
  virtual void release() = 0;

  /// Short algorithm name for tables and traces (e.g. "arbiter-tp").
  [[nodiscard]] virtual std::string_view algorithm_name() const = 0;

  /// One-line snapshot of this node's protocol state for stall diagnostics
  /// (who do I think holds the token / arbiters / my pending request...).
  /// The ProgressMonitor dumps it per node when liveness is lost, so the
  /// richer the better; the default names only the algorithm.
  [[nodiscard]] virtual std::string debug_state() const {
    return std::string(algorithm_name()) + ": <no debug state>";
  }

  /// Does this node currently hold the (a) token?  Token-passing algorithms
  /// override this so global checkers (src/verify/) can assert token
  /// uniqueness: at most one live node answers true at any instant.
  /// Algorithms with no token concept (permission-based, quorum) return
  /// nullopt and are excluded from the invariant.
  [[nodiscard]] virtual std::optional<bool> holds_token() const {
    return std::nullopt;
  }

  /// The generation (epoch) of the token this node holds or last saw, for
  /// duplicate-token diagnostics: when token uniqueness is violated the
  /// checker reports each holder's epoch, distinguishing a regenerated
  /// second token (different epochs — the split-brain signature) from a
  /// plain duplication bug.  nullopt when the algorithm has no epochs.
  [[nodiscard]] virtual std::optional<std::uint64_t> token_epoch() const {
    return std::nullopt;
  }

 protected:
  /// Subclasses call this when the local node may enter its CS.  Every
  /// algorithm's grant path funnels through here, so this is the single
  /// point that stamps cs.granted onto the request's lifecycle span.
  void grant(const CsRequest& req) {
    emit(obs::kEvCsGranted, req.request_id);
    if (grant_cb_) grant_cb_(req);
  }

 private:
  GrantCallback grant_cb_;
};

}  // namespace dmx::mutex
