#include "mutex/cs_driver.hpp"

#include <stdexcept>

namespace dmx::mutex {

CsDriver::CsDriver(sim::Simulator& sim, MutexAlgorithm& algo,
                   sim::SimTime t_exec, SafetyMonitor* monitor,
                   RequestIdSource* ids)
    : sim_(sim), algo_(algo), t_exec_(t_exec), monitor_(monitor), ids_(ids) {
  if (ids == nullptr) {
    throw std::invalid_argument("CsDriver: null request id source");
  }
  algo_.set_grant_callback([this](const CsRequest& r) { on_grant(r); });
}

void CsDriver::submit(int priority) {
  if (algo_.crashed()) return;  // a dead node generates no demand
  ++submitted_;
  if (outstanding_) {
    queue_.push_back(QueuedDemand{sim_.now(), priority});
    emit(obs::kEvCsSubmitted, 0, static_cast<std::int64_t>(queue_.size()));
    return;
  }
  emit(obs::kEvCsSubmitted, 0, 0);
  issue(sim_.now(), priority);
}

void CsDriver::issue(sim::SimTime submitted_at, int priority) {
  current_ = CsRequest{};
  current_.request_id = (*ids_)();
  current_.node = algo_.id();
  current_.sequence = next_sequence_++;
  current_.submitted_at = submitted_at;
  current_.issued_at = sim_.now();
  current_.priority = priority;
  outstanding_ = true;
  // value = local queue wait; the span collector derives the submit time
  // from it, so spans survive even when cs.submitted predates the sink.
  emit(obs::kEvCsIssued, current_.request_id, 0,
       (current_.issued_at - current_.submitted_at).to_units());
  algo_.request(current_);
}

void CsDriver::on_grant(const CsRequest& req) {
  if (!outstanding_ || req.request_id != current_.request_id || in_cs_) {
    ++spurious_;
    return;
  }
  in_cs_ = true;
  granted_at_ = sim_.now();
  if (monitor_ != nullptr) monitor_->on_enter(algo_.id(), sim_.now());
  if (grant_cb_) grant_cb_(current_);
  // Tag with (node, per-node sequence): the per-node sequence is assigned in
  // submission order, a stable identity across reordered executions (unlike
  // the globally allocated request_id).
  finish_event_ = sim_.schedule_after(
      t_exec_, [this] { finish(); },
      sim::EventTag{algo_.id().value(), sim::EventClass::kCsExit,
                    current_.sequence});
}

void CsDriver::finish() {
  if (monitor_ != nullptr) monitor_->on_exit(algo_.id(), sim_.now());
  in_cs_ = false;
  outstanding_ = false;
  ++completed_;
  response_time_.add(granted_at_.to_units() - current_.issued_at.to_units());
  service_time_.add(sim_.now().to_units() - current_.issued_at.to_units());
  sojourn_time_.add(sim_.now().to_units() - current_.submitted_at.to_units());
  const CsRequest done = current_;
  emit(obs::kEvCsReleased, done.request_id, 0,
       (sim_.now() - granted_at_).to_units());
  algo_.release();
  if (completion_cb_) completion_cb_(done);
  if (!queue_.empty() && !algo_.crashed()) {
    const QueuedDemand next = queue_.front();
    queue_.pop_front();
    issue(next.arrived, next.priority);
  }
}

void CsDriver::on_node_crashed() {
  if (sim_.cancel(finish_event_)) {
    // The node died inside its critical section: the CS is aborted, and the
    // monitor must see the exit or occupancy stays pinned at 1 forever.
    if (monitor_ != nullptr) monitor_->on_exit(algo_.id(), sim_.now());
    in_cs_ = false;
  }
  if (outstanding_) {
    ++aborted_;
    emit(obs::kEvCsAborted, current_.request_id);
  }
  aborted_ += queue_.size();
  queue_.clear();
  outstanding_ = false;
  in_cs_ = false;
}

}  // namespace dmx::mutex
