// Name-indexed algorithm factory registry.
//
// The harness and the benches construct algorithm fleets by name so that one
// sweep loop can compare "arbiter-tp" against "ricart-agrawala" etc.
// Registration is explicit (dmx::harness::register_builtin_algorithms) to
// avoid static-initialization-order traps with static libraries.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mutex/api.hpp"
#include "mutex/params.hpp"

namespace dmx::mutex {

/// Everything a factory needs to build one node's algorithm instance.
struct FactoryContext {
  net::NodeId id;
  std::size_t n_nodes = 0;
  const ParamSet& params;
};

using AlgorithmFactory =
    std::function<std::unique_ptr<MutexAlgorithm>(const FactoryContext&)>;

/// Thread-safe: parallel sweep workers (harness::ParallelRunner) hit
/// contains/create concurrently, so every accessor locks.  All of these are
/// cold paths — once per run, never per event.
class Registry {
 public:
  static Registry& instance();

  void add(const std::string& name, AlgorithmFactory factory);
  [[nodiscard]] bool contains(const std::string& name) const;

  [[nodiscard]] std::unique_ptr<MutexAlgorithm> create(
      const std::string& name, const FactoryContext& ctx) const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, AlgorithmFactory> factories_;
};

}  // namespace dmx::mutex
