// Per-node critical-section driver.
//
// The driver is the "application" on each node: workload arrivals call
// submit(), the driver keeps at most one request outstanding in the
// algorithm (surplus demand queues locally, FIFO), holds the critical
// section for t_exec once granted, then releases.  It reports entries and
// exits to the global SafetyMonitor and accumulates the per-CS delay
// metrics the paper plots.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "mutex/api.hpp"
#include "mutex/safety_monitor.hpp"
#include "obs/lifecycle.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "stats/welford.hpp"

namespace dmx::mutex {

/// Shared source of globally unique request ids.
struct RequestIdSource {
  std::uint64_t next = 1;
  std::uint64_t operator()() { return next++; }
};

class CsDriver {
 public:
  /// Called after each completed critical section (harness progress hook).
  using CompletionCallback = std::function<void(const CsRequest&)>;

  CsDriver(sim::Simulator& sim, MutexAlgorithm& algo, sim::SimTime t_exec,
           SafetyMonitor* monitor, RequestIdSource* ids);

  CsDriver(const CsDriver&) = delete;
  CsDriver& operator=(const CsDriver&) = delete;

  void set_completion_callback(CompletionCallback cb) {
    completion_cb_ = std::move(cb);
  }

  /// Called at CS entry (after the safety monitor records it).  Lets
  /// applications model work done inside the critical section, e.g. the
  /// read half of a read-modify-write.
  void set_grant_callback(CompletionCallback cb) { grant_cb_ = std::move(cb); }

  /// Attach structured tracing: the driver emits the application half of
  /// the request lifecycle (cs.submitted / cs.issued / cs.released /
  /// cs.aborted, see obs/lifecycle.hpp); the algorithm underneath emits
  /// cs.granted and the protocol-side events.
  void set_tracer(obs::Tracer tracer) { tracer_ = std::move(tracer); }

  /// New critical-section demand arrives (from the workload generator).
  void submit(int priority = 0);

  /// The harness must call this when it crashes the node: the in-progress
  /// or queued demand of a dead node is void.
  void on_node_crashed();

  // --- metrics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t aborted_by_crash() const { return aborted_; }
  [[nodiscard]] std::uint64_t spurious_grants() const { return spurious_; }
  [[nodiscard]] bool idle() const { return !outstanding_ && queue_.empty(); }

  /// issue -> grant (the algorithm's response time).
  [[nodiscard]] const stats::Welford& response_time() const {
    return response_time_;
  }
  /// issue -> CS exit (the paper's X̄: includes execution time).
  [[nodiscard]] const stats::Welford& service_time() const {
    return service_time_;
  }
  /// workload arrival -> CS exit (includes local queueing under overload).
  [[nodiscard]] const stats::Welford& sojourn_time() const {
    return sojourn_time_;
  }

 private:
  void issue(sim::SimTime submitted_at, int priority);
  void on_grant(const CsRequest& req);
  void finish();

  void emit(obs::EventKind kind, std::uint64_t req, std::int64_t arg = 0,
            double value = 0.0) const {
    if (!tracer_.enabled()) return;
    tracer_.write(
        obs::Event{sim_.now(), kind, algo_.id().value(), req, arg, value});
  }

  sim::Simulator& sim_;
  MutexAlgorithm& algo_;
  sim::SimTime t_exec_;
  SafetyMonitor* monitor_;
  RequestIdSource* ids_;
  CompletionCallback completion_cb_;
  CompletionCallback grant_cb_;
  obs::Tracer tracer_;

  struct QueuedDemand {
    sim::SimTime arrived;
    int priority;
  };
  std::deque<QueuedDemand> queue_;

  bool outstanding_ = false;
  bool in_cs_ = false;
  CsRequest current_;
  sim::SimTime granted_at_;
  sim::EventId finish_event_;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t spurious_ = 0;
  std::uint64_t next_sequence_ = 1;
  stats::Welford response_time_;
  stats::Welford service_time_;
  stats::Welford sojourn_time_;
};

}  // namespace dmx::mutex
