// Structured invariant-violation reports.
//
// SafetyMonitor and ProgressMonitor used to speak in strings (and, in strict
// mode, exceptions).  The systematic explorer (src/verify/) needs machine-
// readable reports — kind, time, affected nodes — so it can classify a
// counterexample, and the normal harness wants to collect-and-continue or
// fail-fast by policy rather than by string matching.  A Violation is the
// one vocabulary both paths share.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace dmx::mutex {

struct Violation {
  enum class Kind : std::uint8_t {
    kMutualExclusion,  ///< Two nodes inside the CS at once.
    kPhantomExit,      ///< A CS exit with nobody inside.
    kStarvation,       ///< Pending live demand that can never be served.
    kTokenDuplicated,  ///< More than one live node believes it holds the token.
    kEventLimit,       ///< The --max-events backstop fired (runaway schedule).
  };

  Kind kind = Kind::kMutualExclusion;
  sim::SimTime time;
  std::vector<net::NodeId> nodes;  ///< Nodes involved, ascending order.
  std::string detail;              ///< Human-readable specifics.

  /// "mutual-exclusion at t=3.400 [nodes 0,2]: <detail>"
  [[nodiscard]] std::string describe() const;
};

/// Stable kebab-case name of a violation kind (used in reports and in the
/// counterexample file format).
[[nodiscard]] std::string_view violation_kind_name(Violation::Kind kind);

}  // namespace dmx::mutex
