#include "mutex/registry.hpp"

#include <stdexcept>

namespace dmx::mutex {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(const std::string& name, AlgorithmFactory factory) {
  if (!factory) throw std::invalid_argument("Registry::add: null factory");
  factories_[name] = std::move(factory);  // re-registration overwrites
}

std::unique_ptr<MutexAlgorithm> Registry::create(
    const std::string& name, const FactoryContext& ctx) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("unknown mutual exclusion algorithm: " + name);
  }
  return it->second(ctx);
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, v] : factories_) out.push_back(k);
  return out;
}

}  // namespace dmx::mutex
