#include "mutex/registry.hpp"

#include <stdexcept>
#include <utility>

namespace dmx::mutex {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(const std::string& name, AlgorithmFactory factory) {
  if (!factory) throw std::invalid_argument("Registry::add: null factory");
  std::lock_guard<std::mutex> lock(mu_);
  factories_[name] = std::move(factory);  // re-registration overwrites
}

bool Registry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.contains(name);
}

std::unique_ptr<MutexAlgorithm> Registry::create(
    const std::string& name, const FactoryContext& ctx) const {
  // Copy the factory out under the lock, invoke it outside: a factory is
  // free to touch the registry (or take its time) without holding mu_.
  AlgorithmFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      throw std::invalid_argument("unknown mutual exclusion algorithm: " +
                                  name);
    }
    factory = it->second;
  }
  return factory(ctx);
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, v] : factories_) out.push_back(k);
  return out;
}

}  // namespace dmx::mutex
