#include "mutex/safety_monitor.hpp"

#include <stdexcept>

namespace dmx::mutex {

void SafetyMonitor::on_enter(net::NodeId node, sim::SimTime t) {
  ++entries_;
  ++occupancy_;
  if (occupancy_ > max_occupancy_) max_occupancy_ = occupancy_;
  if (occupancy_ > 1) {
    record_violation("node " + std::to_string(node.value()) +
                     " entered CS at t=" + t.to_string() + " while node " +
                     std::to_string(occupant_.value()) + " was inside");
  }
  occupant_ = node;
}

void SafetyMonitor::on_exit(net::NodeId node, sim::SimTime t) {
  if (occupancy_ <= 0) {
    record_violation("node " + std::to_string(node.value()) +
                     " exited CS at t=" + t.to_string() +
                     " with nobody inside");
    return;
  }
  --occupancy_;
}

void SafetyMonitor::record_violation(const std::string& what) {
  ++violations_;
  if (!first_violation_) first_violation_ = what;
  if (strict_) throw std::logic_error("mutual exclusion violated: " + what);
}

}  // namespace dmx::mutex
