#include "mutex/safety_monitor.hpp"

#include <stdexcept>
#include <utility>

namespace dmx::mutex {

void SafetyMonitor::on_enter(net::NodeId node, sim::SimTime t) {
  ++entries_;
  ++occupancy_;
  if (occupancy_ > max_occupancy_) max_occupancy_ = occupancy_;
  if (occupancy_ > 1) {
    Violation v;
    v.kind = Violation::Kind::kMutualExclusion;
    v.time = t;
    v.nodes = {occupant_, node};
    if (v.nodes[0].value() > v.nodes[1].value()) {
      std::swap(v.nodes[0], v.nodes[1]);
    }
    v.detail = "node " + std::to_string(node.value()) + " entered CS at t=" +
               t.to_string() + " while node " +
               std::to_string(occupant_.value()) + " was inside";
    occupant_ = node;  // update before a possible fail-fast throw
    record_violation(std::move(v));
    return;
  }
  occupant_ = node;
}

void SafetyMonitor::on_exit(net::NodeId node, sim::SimTime t) {
  if (occupancy_ <= 0) {
    Violation v;
    v.kind = Violation::Kind::kPhantomExit;
    v.time = t;
    v.nodes = {node};
    v.detail = "node " + std::to_string(node.value()) + " exited CS at t=" +
               t.to_string() + " with nobody inside";
    record_violation(std::move(v));
    return;
  }
  --occupancy_;
}

void SafetyMonitor::record_violation(Violation v) {
  ++violations_;
  if (!first_violation_) first_violation_ = v.detail;
  std::string described;
  if (policy_ == Policy::kFailFast) described = v.describe();
  if (reports_.size() < kMaxReports) reports_.push_back(std::move(v));
  if (policy_ == Policy::kFailFast) {
    throw std::logic_error("mutual exclusion violated: " + described);
  }
}

}  // namespace dmx::mutex
