// Global safety invariant checker.
//
// Mutual exclusion's safety property — at most one node inside the critical
// section at any instant — is a *global* predicate that cannot be soundly
// checked from inside any single node.  The deterministic simulator lets us
// check it exactly: drivers report every CS entry/exit and the monitor
// tracks concurrency.
//
// Violations become structured Violation reports (mutex/violation.hpp).
// Policy decides what happens when one fires: kCollect records it and keeps
// going (the explorer and chaos campaigns read reports() afterwards);
// kFailFast additionally throws, turning the first violation into an
// immediate test failure with the full description in the exception.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mutex/violation.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace dmx::mutex {

class SafetyMonitor {
 public:
  enum class Policy : std::uint8_t {
    kCollect,   ///< Record violations; callers assert on reports() later.
    kFailFast,  ///< Record, then throw std::logic_error immediately.
  };

  /// Cap on stored reports: a badly broken algorithm can violate on every
  /// entry, and the count is what matters beyond the first few examples.
  static constexpr std::size_t kMaxReports = 64;

  explicit SafetyMonitor(Policy policy) : policy_(policy) {}

  /// Legacy spelling: strict == fail-fast.
  explicit SafetyMonitor(bool strict = false)
      : policy_(strict ? Policy::kFailFast : Policy::kCollect) {}

  void on_enter(net::NodeId node, sim::SimTime t);
  void on_exit(net::NodeId node, sim::SimTime t);

  [[nodiscard]] std::uint64_t entries() const { return entries_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] int current_occupancy() const { return occupancy_; }
  [[nodiscard]] int max_occupancy() const { return max_occupancy_; }

  /// Structured reports, in detection order (first kMaxReports kept).
  [[nodiscard]] const std::vector<Violation>& reports() const {
    return reports_;
  }

  /// Description of the first violation, if any (legacy accessor; equals
  /// reports().front().describe()).
  [[nodiscard]] const std::optional<std::string>& first_violation() const {
    return first_violation_;
  }

 private:
  void record_violation(Violation v);

  Policy policy_;
  int occupancy_ = 0;
  int max_occupancy_ = 0;
  net::NodeId occupant_;
  std::uint64_t entries_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<Violation> reports_;
  std::optional<std::string> first_violation_;
};

}  // namespace dmx::mutex
