// Global safety invariant checker.
//
// Mutual exclusion's safety property — at most one node inside the critical
// section at any instant — is a *global* predicate that cannot be soundly
// checked from inside any single node.  The deterministic simulator lets us
// check it exactly: drivers report every CS entry/exit and the monitor
// tracks concurrency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace dmx::mutex {

class SafetyMonitor {
 public:
  /// If strict, a violation throws immediately (useful while debugging an
  /// algorithm); otherwise violations are recorded for later assertion.
  explicit SafetyMonitor(bool strict = false) : strict_(strict) {}

  void on_enter(net::NodeId node, sim::SimTime t);
  void on_exit(net::NodeId node, sim::SimTime t);

  [[nodiscard]] std::uint64_t entries() const { return entries_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] int current_occupancy() const { return occupancy_; }
  [[nodiscard]] int max_occupancy() const { return max_occupancy_; }
  [[nodiscard]] const std::optional<std::string>& first_violation() const {
    return first_violation_;
  }

 private:
  void record_violation(const std::string& what);

  bool strict_;
  int occupancy_ = 0;
  int max_occupancy_ = 0;
  net::NodeId occupant_;
  std::uint64_t entries_ = 0;
  std::uint64_t violations_ = 0;
  std::optional<std::string> first_violation_;
};

}  // namespace dmx::mutex
