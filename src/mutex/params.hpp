// Loosely typed parameter bag for algorithm construction.
//
// Benches and the harness sweep algorithm parameters by name ("t_req",
// "t_fwd", "tau", ...); each algorithm factory reads what it understands and
// falls back to its documented defaults.
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "sim/time.hpp"

namespace dmx::mutex {

class ParamSet {
 public:
  ParamSet& set(const std::string& key, double value) {
    nums_[key] = value;
    return *this;
  }
  ParamSet& set(const std::string& key, const std::string& value) {
    strs_[key] = value;
    return *this;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return nums_.contains(key) || strs_.contains(key);
  }

  [[nodiscard]] double get_num(const std::string& key,
                               double fallback) const {
    auto it = nums_.find(key);
    return it == nums_.end() ? fallback : it->second;
  }

  [[nodiscard]] double require_num(const std::string& key) const {
    auto it = nums_.find(key);
    if (it == nums_.end()) {
      throw std::invalid_argument("missing required parameter: " + key);
    }
    return it->second;
  }

  [[nodiscard]] sim::SimTime get_time(const std::string& key,
                                      sim::SimTime fallback) const {
    auto it = nums_.find(key);
    return it == nums_.end() ? fallback : sim::SimTime::units(it->second);
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    auto it = nums_.find(key);
    return it == nums_.end() ? fallback : it->second != 0.0;
  }

  [[nodiscard]] std::string get_str(const std::string& key,
                                    const std::string& fallback) const {
    auto it = strs_.find(key);
    return it == strs_.end() ? fallback : it->second;
  }

  [[nodiscard]] const std::map<std::string, double>& nums() const {
    return nums_;
  }

 private:
  std::map<std::string, double> nums_;
  std::map<std::string, std::string> strs_;
};

}  // namespace dmx::mutex
