#include "mutex/progress_monitor.hpp"

#include <stdexcept>
#include <utility>

namespace dmx::mutex {

ProgressMonitor::ProgressMonitor(sim::Simulator& sim, Config cfg)
    : sim_(sim), cfg_(cfg) {
  if (cfg_.stall_threshold <= sim::SimTime::zero()) {
    throw std::invalid_argument("ProgressMonitor: stall threshold must be > 0");
  }
  if (cfg_.check_interval <= sim::SimTime::zero()) {
    cfg_.check_interval = sim::SimTime::units(
        cfg_.stall_threshold.to_units() / 4.0);
  }
}

ProgressMonitor::~ProgressMonitor() { stop(); }

void ProgressMonitor::watch(const CsDriver* driver,
                            const MutexAlgorithm* algo) {
  if (driver == nullptr || algo == nullptr) {
    throw std::invalid_argument("ProgressMonitor::watch: null driver/algo");
  }
  watched_.push_back(Watched{driver, algo});
}

void ProgressMonitor::start() {
  if (running_) return;
  running_ = true;
  last_progress_ = sim_.now();
  last_completed_ = total_completed();
  schedule_next();
}

void ProgressMonitor::stop() {
  running_ = false;
  sim_.cancel(next_check_);
  next_check_ = sim::EventId{};
}

std::uint64_t ProgressMonitor::total_completed() const {
  std::uint64_t done = 0;
  for (const Watched& w : watched_) done += w.driver->completed();
  return done;
}

bool ProgressMonitor::pending_live_demand() const {
  for (const Watched& w : watched_) {
    if (!w.driver->idle() && !w.algo->crashed()) return true;
  }
  return false;
}

void ProgressMonitor::schedule_next() {
  next_check_ = sim_.schedule_after(cfg_.check_interval, [this] { check(); });
}

void ProgressMonitor::check() {
  if (!running_) return;
  ++checks_;
  const std::uint64_t done = total_completed();
  if (done > last_completed_) {
    last_completed_ = done;
    last_progress_ = sim_.now();
  }
  if (!pending_live_demand()) {
    last_progress_ = sim_.now();
    // Quiet system: with no other pending event, future demand is impossible
    // (arrivals are themselves events), so stop polling and let the queue
    // drain instead of keeping the simulation alive forever.
    if (sim_.pending_count() == 0) {
      running_ = false;
      return;
    }
    schedule_next();
    return;
  }
  if (sim_.pending_count() == 0) {
    // Demand is pending but nothing is scheduled: no message, timer or
    // arrival can ever fire again.  Provably stuck — no need to wait out
    // the threshold.
    declare_stall(/*event_queue_dry=*/true);
    return;
  }
  if (sim_.now().to_units() - last_progress_.to_units() >=
      cfg_.stall_threshold.to_units()) {
    declare_stall(/*event_queue_dry=*/false);
    return;
  }
  schedule_next();
}

void ProgressMonitor::declare_stall(bool event_queue_dry) {
  running_ = false;
  stalled_ = true;
  stall_time_ = sim_.now();
  diagnosis_ = "liveness lost at t=" + std::to_string(sim_.now().to_units()) +
               (event_queue_dry
                    ? " (event queue dry: nothing can ever fire again)"
                    : " (no CS completion since t=" +
                          std::to_string(last_progress_.to_units()) + ")") +
               "\n";
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    const Watched& w = watched_[i];
    diagnosis_ += "  node " + std::to_string(i) + ": ";
    if (w.algo->crashed()) {
      diagnosis_ += "CRASHED";
    } else {
      diagnosis_ += w.driver->idle() ? "idle" : "demand-pending";
      diagnosis_ += " | " + w.algo->debug_state();
    }
    diagnosis_ += "\n";
  }
  Violation v;
  v.kind = Violation::Kind::kStarvation;
  v.time = stall_time_;
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    const Watched& w = watched_[i];
    if (!w.driver->idle() && !w.algo->crashed()) {
      v.nodes.push_back(w.algo->id());
    }
  }
  v.detail = event_queue_dry
                 ? "pending demand with a dry event queue"
                 : "no CS completion for " +
                       std::to_string(cfg_.stall_threshold.to_units()) +
                       " sim units";
  violation_ = std::move(v);
  if (cfg_.stop_simulator_on_stall) sim_.stop();
}

}  // namespace dmx::mutex
