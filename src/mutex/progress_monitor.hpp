// Global liveness watchdog.
//
// Liveness — pending demand among live nodes eventually becomes a CS entry —
// is, like safety, a global predicate: no single node can distinguish "my
// request is queued behind others" from "the token died and nobody will ever
// be served".  The monitor polls the grant stream on the virtual clock: if
// there is pending demand at live nodes but no critical-section completion
// for a configurable threshold, it declares a stall, dumps a per-node
// diagnosis (each algorithm's debug_state()) and stops the simulator, so a
// dead run fails in simulated seconds instead of silently burning the
// experiment harness's generous wall-clock backstop.
//
// Two detection paths:
//  * threshold stall — demand pending, no completion for stall_threshold.
//  * dry stall — demand pending and the event queue is empty: nothing can
//    ever fire again, so the stall is provable immediately.
//
// The monitor's own polling events stop rescheduling once the system is
// quiet (no pending demand and no other pending events), so it never keeps
// an otherwise-finished simulation alive.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mutex/cs_driver.hpp"
#include "mutex/violation.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dmx::mutex {

class ProgressMonitor {
 public:
  struct Config {
    /// Declare a stall after this long with pending live demand and no
    /// completion.  Must exceed the longest legitimate recovery pause
    /// (token timeout + invalidation rounds) or healthy runs misfire.
    sim::SimTime stall_threshold = sim::SimTime::units(30.0);
    /// Polling period; defaults (when zero) to stall_threshold / 4.
    sim::SimTime check_interval = sim::SimTime::zero();
    /// Stop the simulator when a stall is declared (the harness then reports
    /// instead of running to its wall-clock backstop).
    bool stop_simulator_on_stall = true;
  };

  ProgressMonitor(sim::Simulator& sim, Config cfg);
  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;
  ~ProgressMonitor();

  /// Register one node's driver and algorithm.  Call for every node before
  /// start(); the pointers must outlive the monitor's polling.
  void watch(const CsDriver* driver, const MutexAlgorithm* algo);

  /// Begin polling.  Call after the cluster starts.
  void start();

  /// Stop polling (idempotent; the destructor also cancels).
  void stop();

  [[nodiscard]] bool stalled() const { return stalled_; }
  /// Time the stall was declared / the last completion before it.
  [[nodiscard]] sim::SimTime stall_time() const { return stall_time_; }
  [[nodiscard]] sim::SimTime last_progress_time() const { return last_progress_; }
  /// Multi-line per-node diagnosis captured at the stall instant.
  [[nodiscard]] const std::string& diagnosis() const { return diagnosis_; }
  [[nodiscard]] std::uint64_t checks_performed() const { return checks_; }

  /// Structured report of the declared stall (kStarvation), if any; the
  /// nodes listed are the live nodes whose demand was pending.
  [[nodiscard]] const std::optional<Violation>& violation() const {
    return violation_;
  }

 private:
  struct Watched {
    const CsDriver* driver;
    const MutexAlgorithm* algo;
  };

  void check();
  void schedule_next();
  void declare_stall(bool event_queue_dry);
  [[nodiscard]] std::uint64_t total_completed() const;
  [[nodiscard]] bool pending_live_demand() const;

  sim::Simulator& sim_;
  Config cfg_;
  std::vector<Watched> watched_;
  bool running_ = false;
  bool stalled_ = false;
  std::uint64_t checks_ = 0;
  std::uint64_t last_completed_ = 0;
  sim::SimTime last_progress_;
  sim::SimTime stall_time_;
  std::string diagnosis_;
  std::optional<Violation> violation_;
  sim::EventId next_check_;
};

}  // namespace dmx::mutex
