# Empty compiler generated dependencies file for dmx_trace_tool.
# This may be replaced when dependencies are built.
