file(REMOVE_RECURSE
  "CMakeFiles/dmx_trace_tool.dir/dmx_trace.cpp.o"
  "CMakeFiles/dmx_trace_tool.dir/dmx_trace.cpp.o.d"
  "dmx_trace"
  "dmx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
