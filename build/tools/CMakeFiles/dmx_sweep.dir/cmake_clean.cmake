file(REMOVE_RECURSE
  "CMakeFiles/dmx_sweep.dir/dmx_sweep.cpp.o"
  "CMakeFiles/dmx_sweep.dir/dmx_sweep.cpp.o.d"
  "dmx_sweep"
  "dmx_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
