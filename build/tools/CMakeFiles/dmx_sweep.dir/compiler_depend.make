# Empty compiler generated dependencies file for dmx_sweep.
# This may be replaced when dependencies are built.
