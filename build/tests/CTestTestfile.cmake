# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim_time[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_mutex_framework[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_arbiter_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_starvation_free[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_harness[1]_include.cmake")
include("/root/repo/build/tests/test_config_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_lock_space[1]_include.cmake")
include("/root/repo/build/tests/test_topology_closed_loop[1]_include.cmake")
include("/root/repo/build/tests/test_sequenced_variant[1]_include.cmake")
include("/root/repo/build/tests/test_golden_trace[1]_include.cmake")
include("/root/repo/build/tests/test_partitions[1]_include.cmake")
include("/root/repo/build/tests/test_calendar_queue[1]_include.cmake")
