# Empty dependencies file for test_partitions.
# This may be replaced when dependencies are built.
