file(REMOVE_RECURSE
  "CMakeFiles/test_sequenced_variant.dir/test_sequenced_variant.cpp.o"
  "CMakeFiles/test_sequenced_variant.dir/test_sequenced_variant.cpp.o.d"
  "test_sequenced_variant"
  "test_sequenced_variant.pdb"
  "test_sequenced_variant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequenced_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
