# Empty dependencies file for test_sequenced_variant.
# This may be replaced when dependencies are built.
