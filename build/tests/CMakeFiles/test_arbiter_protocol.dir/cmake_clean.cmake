file(REMOVE_RECURSE
  "CMakeFiles/test_arbiter_protocol.dir/test_arbiter_protocol.cpp.o"
  "CMakeFiles/test_arbiter_protocol.dir/test_arbiter_protocol.cpp.o.d"
  "test_arbiter_protocol"
  "test_arbiter_protocol.pdb"
  "test_arbiter_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arbiter_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
