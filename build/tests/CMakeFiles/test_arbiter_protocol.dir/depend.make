# Empty dependencies file for test_arbiter_protocol.
# This may be replaced when dependencies are built.
