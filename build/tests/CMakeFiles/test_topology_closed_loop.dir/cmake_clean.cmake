file(REMOVE_RECURSE
  "CMakeFiles/test_topology_closed_loop.dir/test_topology_closed_loop.cpp.o"
  "CMakeFiles/test_topology_closed_loop.dir/test_topology_closed_loop.cpp.o.d"
  "test_topology_closed_loop"
  "test_topology_closed_loop.pdb"
  "test_topology_closed_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
