# Empty dependencies file for test_topology_closed_loop.
# This may be replaced when dependencies are built.
