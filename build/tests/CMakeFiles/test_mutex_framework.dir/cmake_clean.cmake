file(REMOVE_RECURSE
  "CMakeFiles/test_mutex_framework.dir/test_mutex_framework.cpp.o"
  "CMakeFiles/test_mutex_framework.dir/test_mutex_framework.cpp.o.d"
  "test_mutex_framework"
  "test_mutex_framework.pdb"
  "test_mutex_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mutex_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
