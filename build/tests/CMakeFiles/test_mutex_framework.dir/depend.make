# Empty dependencies file for test_mutex_framework.
# This may be replaced when dependencies are built.
