# Empty dependencies file for test_analysis_harness.
# This may be replaced when dependencies are built.
