file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_harness.dir/test_analysis_harness.cpp.o"
  "CMakeFiles/test_analysis_harness.dir/test_analysis_harness.cpp.o.d"
  "test_analysis_harness"
  "test_analysis_harness.pdb"
  "test_analysis_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
