file(REMOVE_RECURSE
  "CMakeFiles/test_starvation_free.dir/test_starvation_free.cpp.o"
  "CMakeFiles/test_starvation_free.dir/test_starvation_free.cpp.o.d"
  "test_starvation_free"
  "test_starvation_free.pdb"
  "test_starvation_free[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_starvation_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
