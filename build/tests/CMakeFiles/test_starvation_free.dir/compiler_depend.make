# Empty compiler generated dependencies file for test_starvation_free.
# This may be replaced when dependencies are built.
