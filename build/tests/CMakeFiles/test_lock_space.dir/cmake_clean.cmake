file(REMOVE_RECURSE
  "CMakeFiles/test_lock_space.dir/test_lock_space.cpp.o"
  "CMakeFiles/test_lock_space.dir/test_lock_space.cpp.o.d"
  "test_lock_space"
  "test_lock_space.pdb"
  "test_lock_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
