# Empty compiler generated dependencies file for test_lock_space.
# This may be replaced when dependencies are built.
