file(REMOVE_RECURSE
  "CMakeFiles/dmx_stats.dir/confidence.cpp.o"
  "CMakeFiles/dmx_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/dmx_stats.dir/histogram.cpp.o"
  "CMakeFiles/dmx_stats.dir/histogram.cpp.o.d"
  "libdmx_stats.a"
  "libdmx_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
