# Empty compiler generated dependencies file for dmx_stats.
# This may be replaced when dependencies are built.
