file(REMOVE_RECURSE
  "libdmx_stats.a"
)
