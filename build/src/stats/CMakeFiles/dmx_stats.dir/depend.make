# Empty dependencies file for dmx_stats.
# This may be replaced when dependencies are built.
