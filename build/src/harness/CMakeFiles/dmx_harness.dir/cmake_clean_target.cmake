file(REMOVE_RECURSE
  "libdmx_harness.a"
)
