file(REMOVE_RECURSE
  "CMakeFiles/dmx_harness.dir/cli.cpp.o"
  "CMakeFiles/dmx_harness.dir/cli.cpp.o.d"
  "CMakeFiles/dmx_harness.dir/experiment.cpp.o"
  "CMakeFiles/dmx_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/dmx_harness.dir/register.cpp.o"
  "CMakeFiles/dmx_harness.dir/register.cpp.o.d"
  "CMakeFiles/dmx_harness.dir/table.cpp.o"
  "CMakeFiles/dmx_harness.dir/table.cpp.o.d"
  "libdmx_harness.a"
  "libdmx_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
