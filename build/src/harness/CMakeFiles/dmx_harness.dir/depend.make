# Empty dependencies file for dmx_harness.
# This may be replaced when dependencies are built.
