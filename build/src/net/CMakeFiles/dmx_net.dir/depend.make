# Empty dependencies file for dmx_net.
# This may be replaced when dependencies are built.
