file(REMOVE_RECURSE
  "CMakeFiles/dmx_net.dir/delay_model.cpp.o"
  "CMakeFiles/dmx_net.dir/delay_model.cpp.o.d"
  "CMakeFiles/dmx_net.dir/fault_injector.cpp.o"
  "CMakeFiles/dmx_net.dir/fault_injector.cpp.o.d"
  "CMakeFiles/dmx_net.dir/network.cpp.o"
  "CMakeFiles/dmx_net.dir/network.cpp.o.d"
  "CMakeFiles/dmx_net.dir/topology.cpp.o"
  "CMakeFiles/dmx_net.dir/topology.cpp.o.d"
  "libdmx_net.a"
  "libdmx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
