file(REMOVE_RECURSE
  "libdmx_net.a"
)
