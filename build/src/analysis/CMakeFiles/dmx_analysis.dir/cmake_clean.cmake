file(REMOVE_RECURSE
  "CMakeFiles/dmx_analysis.dir/models.cpp.o"
  "CMakeFiles/dmx_analysis.dir/models.cpp.o.d"
  "libdmx_analysis.a"
  "libdmx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
