file(REMOVE_RECURSE
  "libdmx_analysis.a"
)
