# Empty dependencies file for dmx_analysis.
# This may be replaced when dependencies are built.
