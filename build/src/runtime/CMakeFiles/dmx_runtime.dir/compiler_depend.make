# Empty compiler generated dependencies file for dmx_runtime.
# This may be replaced when dependencies are built.
