file(REMOVE_RECURSE
  "libdmx_runtime.a"
)
