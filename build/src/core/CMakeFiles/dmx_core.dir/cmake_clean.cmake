file(REMOVE_RECURSE
  "CMakeFiles/dmx_core.dir/arbiter_mutex.cpp.o"
  "CMakeFiles/dmx_core.dir/arbiter_mutex.cpp.o.d"
  "CMakeFiles/dmx_core.dir/params.cpp.o"
  "CMakeFiles/dmx_core.dir/params.cpp.o.d"
  "CMakeFiles/dmx_core.dir/q_list.cpp.o"
  "CMakeFiles/dmx_core.dir/q_list.cpp.o.d"
  "libdmx_core.a"
  "libdmx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
