file(REMOVE_RECURSE
  "libdmx_core.a"
)
