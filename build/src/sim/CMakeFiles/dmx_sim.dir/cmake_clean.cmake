file(REMOVE_RECURSE
  "CMakeFiles/dmx_sim.dir/calendar_queue.cpp.o"
  "CMakeFiles/dmx_sim.dir/calendar_queue.cpp.o.d"
  "CMakeFiles/dmx_sim.dir/rng.cpp.o"
  "CMakeFiles/dmx_sim.dir/rng.cpp.o.d"
  "CMakeFiles/dmx_sim.dir/simulator.cpp.o"
  "CMakeFiles/dmx_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/dmx_sim.dir/time.cpp.o"
  "CMakeFiles/dmx_sim.dir/time.cpp.o.d"
  "libdmx_sim.a"
  "libdmx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
