file(REMOVE_RECURSE
  "CMakeFiles/dmx_trace.dir/trace.cpp.o"
  "CMakeFiles/dmx_trace.dir/trace.cpp.o.d"
  "libdmx_trace.a"
  "libdmx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
