# Empty compiler generated dependencies file for dmx_trace.
# This may be replaced when dependencies are built.
