file(REMOVE_RECURSE
  "libdmx_trace.a"
)
