
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mutex/cs_driver.cpp" "src/mutex/CMakeFiles/dmx_mutex.dir/cs_driver.cpp.o" "gcc" "src/mutex/CMakeFiles/dmx_mutex.dir/cs_driver.cpp.o.d"
  "/root/repo/src/mutex/lock_space.cpp" "src/mutex/CMakeFiles/dmx_mutex.dir/lock_space.cpp.o" "gcc" "src/mutex/CMakeFiles/dmx_mutex.dir/lock_space.cpp.o.d"
  "/root/repo/src/mutex/registry.cpp" "src/mutex/CMakeFiles/dmx_mutex.dir/registry.cpp.o" "gcc" "src/mutex/CMakeFiles/dmx_mutex.dir/registry.cpp.o.d"
  "/root/repo/src/mutex/safety_monitor.cpp" "src/mutex/CMakeFiles/dmx_mutex.dir/safety_monitor.cpp.o" "gcc" "src/mutex/CMakeFiles/dmx_mutex.dir/safety_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dmx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dmx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dmx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
