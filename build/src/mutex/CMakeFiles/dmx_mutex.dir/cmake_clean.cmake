file(REMOVE_RECURSE
  "CMakeFiles/dmx_mutex.dir/cs_driver.cpp.o"
  "CMakeFiles/dmx_mutex.dir/cs_driver.cpp.o.d"
  "CMakeFiles/dmx_mutex.dir/lock_space.cpp.o"
  "CMakeFiles/dmx_mutex.dir/lock_space.cpp.o.d"
  "CMakeFiles/dmx_mutex.dir/registry.cpp.o"
  "CMakeFiles/dmx_mutex.dir/registry.cpp.o.d"
  "CMakeFiles/dmx_mutex.dir/safety_monitor.cpp.o"
  "CMakeFiles/dmx_mutex.dir/safety_monitor.cpp.o.d"
  "libdmx_mutex.a"
  "libdmx_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
