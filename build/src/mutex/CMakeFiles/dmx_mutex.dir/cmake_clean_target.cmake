file(REMOVE_RECURSE
  "libdmx_mutex.a"
)
