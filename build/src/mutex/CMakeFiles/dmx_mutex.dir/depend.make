# Empty dependencies file for dmx_mutex.
# This may be replaced when dependencies are built.
