
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrivals.cpp" "src/workload/CMakeFiles/dmx_workload.dir/arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/dmx_workload.dir/arrivals.cpp.o.d"
  "/root/repo/src/workload/closed_loop.cpp" "src/workload/CMakeFiles/dmx_workload.dir/closed_loop.cpp.o" "gcc" "src/workload/CMakeFiles/dmx_workload.dir/closed_loop.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/dmx_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/dmx_workload.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mutex/CMakeFiles/dmx_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dmx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dmx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dmx_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
