# Empty compiler generated dependencies file for dmx_workload.
# This may be replaced when dependencies are built.
