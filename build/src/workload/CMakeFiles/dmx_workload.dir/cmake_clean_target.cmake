file(REMOVE_RECURSE
  "libdmx_workload.a"
)
