file(REMOVE_RECURSE
  "CMakeFiles/dmx_workload.dir/arrivals.cpp.o"
  "CMakeFiles/dmx_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/dmx_workload.dir/closed_loop.cpp.o"
  "CMakeFiles/dmx_workload.dir/closed_loop.cpp.o.d"
  "CMakeFiles/dmx_workload.dir/generator.cpp.o"
  "CMakeFiles/dmx_workload.dir/generator.cpp.o.d"
  "libdmx_workload.a"
  "libdmx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
