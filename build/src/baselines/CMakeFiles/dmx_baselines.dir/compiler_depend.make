# Empty compiler generated dependencies file for dmx_baselines.
# This may be replaced when dependencies are built.
