file(REMOVE_RECURSE
  "libdmx_baselines.a"
)
