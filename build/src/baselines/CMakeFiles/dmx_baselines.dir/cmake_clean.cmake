file(REMOVE_RECURSE
  "CMakeFiles/dmx_baselines.dir/centralized.cpp.o"
  "CMakeFiles/dmx_baselines.dir/centralized.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/lamport.cpp.o"
  "CMakeFiles/dmx_baselines.dir/lamport.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/maekawa.cpp.o"
  "CMakeFiles/dmx_baselines.dir/maekawa.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/raymond.cpp.o"
  "CMakeFiles/dmx_baselines.dir/raymond.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/registration.cpp.o"
  "CMakeFiles/dmx_baselines.dir/registration.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/ricart_agrawala.cpp.o"
  "CMakeFiles/dmx_baselines.dir/ricart_agrawala.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/singhal_dynamic.cpp.o"
  "CMakeFiles/dmx_baselines.dir/singhal_dynamic.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/suzuki_kasami.cpp.o"
  "CMakeFiles/dmx_baselines.dir/suzuki_kasami.cpp.o.d"
  "CMakeFiles/dmx_baselines.dir/token_ring.cpp.o"
  "CMakeFiles/dmx_baselines.dir/token_ring.cpp.o.d"
  "libdmx_baselines.a"
  "libdmx_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
