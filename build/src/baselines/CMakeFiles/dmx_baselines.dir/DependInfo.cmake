
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/centralized.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/centralized.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/centralized.cpp.o.d"
  "/root/repo/src/baselines/lamport.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/lamport.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/lamport.cpp.o.d"
  "/root/repo/src/baselines/maekawa.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/maekawa.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/maekawa.cpp.o.d"
  "/root/repo/src/baselines/raymond.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/raymond.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/raymond.cpp.o.d"
  "/root/repo/src/baselines/registration.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/registration.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/registration.cpp.o.d"
  "/root/repo/src/baselines/ricart_agrawala.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/ricart_agrawala.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/ricart_agrawala.cpp.o.d"
  "/root/repo/src/baselines/singhal_dynamic.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/singhal_dynamic.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/singhal_dynamic.cpp.o.d"
  "/root/repo/src/baselines/suzuki_kasami.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/suzuki_kasami.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/suzuki_kasami.cpp.o.d"
  "/root/repo/src/baselines/token_ring.cpp" "src/baselines/CMakeFiles/dmx_baselines.dir/token_ring.cpp.o" "gcc" "src/baselines/CMakeFiles/dmx_baselines.dir/token_ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mutex/CMakeFiles/dmx_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dmx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dmx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dmx_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
