file(REMOVE_RECURSE
  "CMakeFiles/table_starvation_free.dir/table_starvation_free.cpp.o"
  "CMakeFiles/table_starvation_free.dir/table_starvation_free.cpp.o.d"
  "table_starvation_free"
  "table_starvation_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_starvation_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
