# Empty compiler generated dependencies file for table_starvation_free.
# This may be replaced when dependencies are built.
