
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_comparison.cpp" "bench/CMakeFiles/fig6_comparison.dir/fig6_comparison.cpp.o" "gcc" "bench/CMakeFiles/fig6_comparison.dir/fig6_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dmx_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dmx_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dmx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mutex/CMakeFiles/dmx_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dmx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dmx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dmx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dmx_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
