# Empty compiler generated dependencies file for fig4_delay.
# This may be replaced when dependencies are built.
