file(REMOVE_RECURSE
  "CMakeFiles/fig4_delay.dir/fig4_delay.cpp.o"
  "CMakeFiles/fig4_delay.dir/fig4_delay.cpp.o.d"
  "fig4_delay"
  "fig4_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
