file(REMOVE_RECURSE
  "CMakeFiles/table_tuning_ablation.dir/table_tuning_ablation.cpp.o"
  "CMakeFiles/table_tuning_ablation.dir/table_tuning_ablation.cpp.o.d"
  "table_tuning_ablation"
  "table_tuning_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_tuning_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
