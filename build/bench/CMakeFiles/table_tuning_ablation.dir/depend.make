# Empty dependencies file for table_tuning_ablation.
# This may be replaced when dependencies are built.
