# Empty compiler generated dependencies file for fig3_messages.
# This may be replaced when dependencies are built.
