file(REMOVE_RECURSE
  "CMakeFiles/fig3_messages.dir/fig3_messages.cpp.o"
  "CMakeFiles/fig3_messages.dir/fig3_messages.cpp.o.d"
  "fig3_messages"
  "fig3_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
