# Empty dependencies file for fig5_forwarded.
# This may be replaced when dependencies are built.
