file(REMOVE_RECURSE
  "CMakeFiles/fig5_forwarded.dir/fig5_forwarded.cpp.o"
  "CMakeFiles/fig5_forwarded.dir/fig5_forwarded.cpp.o.d"
  "fig5_forwarded"
  "fig5_forwarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_forwarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
