file(REMOVE_RECURSE
  "CMakeFiles/table_analytic_bounds.dir/table_analytic_bounds.cpp.o"
  "CMakeFiles/table_analytic_bounds.dir/table_analytic_bounds.cpp.o.d"
  "table_analytic_bounds"
  "table_analytic_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_analytic_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
