# Empty compiler generated dependencies file for table_analytic_bounds.
# This may be replaced when dependencies are built.
