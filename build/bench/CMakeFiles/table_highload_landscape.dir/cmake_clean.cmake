file(REMOVE_RECURSE
  "CMakeFiles/table_highload_landscape.dir/table_highload_landscape.cpp.o"
  "CMakeFiles/table_highload_landscape.dir/table_highload_landscape.cpp.o.d"
  "table_highload_landscape"
  "table_highload_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_highload_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
