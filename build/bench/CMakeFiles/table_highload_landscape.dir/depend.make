# Empty dependencies file for table_highload_landscape.
# This may be replaced when dependencies are built.
