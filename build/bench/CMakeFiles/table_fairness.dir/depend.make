# Empty dependencies file for table_fairness.
# This may be replaced when dependencies are built.
