file(REMOVE_RECURSE
  "CMakeFiles/table_fairness.dir/table_fairness.cpp.o"
  "CMakeFiles/table_fairness.dir/table_fairness.cpp.o.d"
  "table_fairness"
  "table_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
