# Empty dependencies file for table_recovery.
# This may be replaced when dependencies are built.
