file(REMOVE_RECURSE
  "CMakeFiles/table_recovery.dir/table_recovery.cpp.o"
  "CMakeFiles/table_recovery.dir/table_recovery.cpp.o.d"
  "table_recovery"
  "table_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
