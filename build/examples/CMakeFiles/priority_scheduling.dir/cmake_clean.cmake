file(REMOVE_RECURSE
  "CMakeFiles/priority_scheduling.dir/priority_scheduling.cpp.o"
  "CMakeFiles/priority_scheduling.dir/priority_scheduling.cpp.o.d"
  "priority_scheduling"
  "priority_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
