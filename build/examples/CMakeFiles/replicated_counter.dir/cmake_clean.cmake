file(REMOVE_RECURSE
  "CMakeFiles/replicated_counter.dir/replicated_counter.cpp.o"
  "CMakeFiles/replicated_counter.dir/replicated_counter.cpp.o.d"
  "replicated_counter"
  "replicated_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
