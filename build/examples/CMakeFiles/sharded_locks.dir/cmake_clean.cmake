file(REMOVE_RECURSE
  "CMakeFiles/sharded_locks.dir/sharded_locks.cpp.o"
  "CMakeFiles/sharded_locks.dir/sharded_locks.cpp.o.d"
  "sharded_locks"
  "sharded_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
