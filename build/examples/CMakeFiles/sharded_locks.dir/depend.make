# Empty dependencies file for sharded_locks.
# This may be replaced when dependencies are built.
