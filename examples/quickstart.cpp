// Quickstart: reproduce the paper's Section 2.2 walk-through.
//
// Five nodes, node 0 initially the arbiter (the paper's node 1, renumbered
// from 0).  Nodes 1 and 4 request during the collection window, node 3's
// request arrives during the forwarding phase and is forwarded to the new
// arbiter.  Every protocol step is printed from the trace.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/arbiter_mutex.hpp"
#include "harness/experiment.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"
#include "runtime/cluster.hpp"

int main() {
  using namespace dmx;
  harness::register_builtin_algorithms();

  std::cout << "Arbiter token-passing mutual exclusion — the paper's §2.2 "
               "example\n"
               "(all durations = 1 time unit; node 0 is the initial arbiter "
               "and token holder)\n\n";

  // A cluster that prints every protocol event.
  obs::Tracer tracer(std::make_shared<obs::TextSink>(std::cout, 0));
  runtime::Cluster cluster(
      5, std::make_unique<net::ConstantDelay>(sim::SimTime::units(1.0)), 7,
      tracer);

  // One algorithm instance per node, built through the registry exactly as
  // the harness does.
  mutex::ParamSet params;
  params.set("t_req", 1.0).set("t_fwd", 1.0);
  std::vector<mutex::MutexAlgorithm*> algos;
  for (std::int32_t i = 0; i < 5; ++i) {
    mutex::FactoryContext ctx{net::NodeId{i}, 5, params};
    auto algo = mutex::Registry::instance().create("arbiter-tp", ctx);
    algos.push_back(algo.get());
    cluster.install(net::NodeId{i}, std::move(algo));
  }

  // Drivers hold the critical section for 1 unit and check global safety.
  mutex::SafetyMonitor monitor;
  mutex::RequestIdSource ids;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (auto* algo : algos) {
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *algo, sim::SimTime::units(1.0), &monitor,
        &ids));
  }
  cluster.start();

  // The paper's scenario: requests from nodes 1 and 4 land in the first
  // collection window; node 3's request reaches the old arbiter during its
  // forwarding phase.
  auto& sim = cluster.simulator();
  sim.schedule_at(sim::SimTime::units(0.0), [&] { drivers[1]->submit(); });
  sim.schedule_at(sim::SimTime::units(0.2), [&] { drivers[4]->submit(); });
  sim.schedule_at(sim::SimTime::units(1.9), [&] { drivers[3]->submit(); });
  sim.run();

  std::cout << "\nDone: " << monitor.entries()
            << " critical sections executed, "
            << cluster.network().stats().sent << " messages, "
            << monitor.violations() << " safety violations.\n";
  std::cout << "Final arbiter: node "
            << dynamic_cast<core::ArbiterMutex*>(algos[0])->known_arbiter()
            << " (agreed by all nodes).\n";
  return monitor.violations() == 0 ? 0 : 1;
}
