// Failure-recovery demonstration (§6 of the paper).
//
// A five-node cluster runs the arbiter token-passing algorithm with the
// recovery machinery enabled, and the demo injects the paper's three fault
// scenarios one after another, tracing every recovery action:
//   1. a lost PRIVILEGE message (dropped in flight),
//   2. a token holder crashing inside its critical section,
//   3. the newly elected arbiter crashing before collecting anything.
#include <iostream>
#include <memory>

#include "core/arbiter_mutex.hpp"
#include "harness/experiment.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"
#include "runtime/cluster.hpp"

int main() {
  using namespace dmx;
  harness::register_builtin_algorithms();

  std::cout
      << "Failure recovery walkthrough — lost token, crashed holder, "
         "crashed arbiter\n"
         "Watch for: WARNING timeouts, the two-phase invalidation "
         "(ENQUIRY/RESUME/INVALIDATE),\ntoken regeneration under a new "
         "epoch, and the previous arbiter's PROBE/takeover.\n\n";

  obs::Tracer tracer(std::make_shared<obs::TextSink>(std::cout, 0));
  runtime::Cluster cluster(
      5, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), 3,
      tracer);

  mutex::ParamSet params;
  params.set("recovery", 1.0)
      .set("token_timeout", 2.0)
      .set("enquiry_timeout", 0.5)
      .set("arbiter_timeout", 4.0)
      .set("probe_timeout", 0.5);
  std::vector<mutex::MutexAlgorithm*> algos;
  for (std::int32_t i = 0; i < 5; ++i) {
    mutex::FactoryContext ctx{net::NodeId{i}, 5, params};
    auto algo = mutex::Registry::instance().create("arbiter-tp", ctx);
    algos.push_back(algo.get());
    cluster.install(net::NodeId{i}, std::move(algo));
  }
  mutex::SafetyMonitor monitor;
  mutex::RequestIdSource ids;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (auto* algo : algos) {
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *algo, sim::SimTime::units(0.2), &monitor,
        &ids));
  }
  cluster.start();
  auto& sim = cluster.simulator();

  // --- Scenario 1: the PRIVILEGE to node 1 evaporates -----------------------
  sim.schedule_at(sim::SimTime::units(0.0), [&] {
    std::cout << "\n--- scenario 1: dropping the next PRIVILEGE message ---\n";
    cluster.network().faults().drop_next_of_type("PRIVILEGE");
    drivers[1]->submit();
    drivers[2]->submit();
  });

  // --- Scenario 2: node 3 dies while inside its critical section ------------
  sim.schedule_at(sim::SimTime::units(15.0), [&] {
    std::cout << "\n--- scenario 2: token holder crashes inside its CS ---\n";
    drivers[3]->submit();
    drivers[4]->submit();
  });
  sim.schedule_at(sim::SimTime::units(15.6), [&] {
    cluster.crash_node(net::NodeId{3});
    drivers[3]->on_node_crashed();
  });
  sim.schedule_at(sim::SimTime::units(30.0), [&] {
    cluster.restart_node(net::NodeId{3});
  });

  // --- Scenario 3: the arbiter-elect crashes holding the idle token ---------
  sim.schedule_at(sim::SimTime::units(35.0), [&] {
    std::cout << "\n--- scenario 3: the current arbiter crashes ---\n";
    drivers[2]->submit();
  });
  sim.schedule_at(sim::SimTime::units(36.5), [&] {
    // Node 2 is now the arbiter, idle with the token.  Kill it.
    cluster.crash_node(net::NodeId{2});
    drivers[2]->on_node_crashed();
  });
  sim.schedule_at(sim::SimTime::units(38.0), [&] { drivers[0]->submit(); });

  sim.run_until(sim::SimTime::units(120.0));

  std::uint64_t completed = 0;
  for (auto& d : drivers) completed += d->completed();
  core::ArbiterStats stats;
  for (auto* a : algos) {
    stats.merge(dynamic_cast<core::ArbiterMutex*>(a)->protocol_stats());
  }
  std::cout << "\nSummary: " << completed << " critical sections completed, "
            << monitor.violations() << " safety violations\n"
            << "  warnings=" << stats.warnings_sent
            << " enquiries=" << stats.enquiries_sent
            << " resumes=" << stats.resumes_sent
            << " invalidates=" << stats.invalidates_sent << "\n"
            << "  tokens regenerated=" << stats.tokens_regenerated
            << " probes=" << stats.probes_sent
            << " takeovers=" << stats.arbiter_takeovers << "\n";
  return monitor.violations() == 0 ? 0 : 1;
}
