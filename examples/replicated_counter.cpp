// A distributed lock service guarding a replicated counter.
//
// The motivating use case of distributed mutual exclusion: N application
// nodes increment a shared counter with a read-modify-write.  Each node
// reads the counter when it enters the critical section and writes back
// read+1 when it leaves; if two nodes ever overlapped, both would read the
// same value and one increment would be lost.  We run the same workload
// over several algorithms, verify the counter is exact, and compare the
// message bill each algorithm paid for the same guarantee.
#include <iostream>
#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace {

struct LockServiceRun {
  std::uint64_t counter = 0;   ///< Final shared-counter value.
  std::uint64_t increments = 0;
  std::uint64_t messages = 0;
  std::uint64_t violations = 0;
  double mean_latency = 0.0;   ///< Demand arrival -> increment durably applied.
};

LockServiceRun run_lock_service(const std::string& algorithm,
                                std::size_t n_nodes,
                                std::uint64_t increments) {
  using namespace dmx;
  harness::register_builtin_algorithms();
  runtime::Cluster cluster(
      n_nodes, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)),
      1234);
  mutex::ParamSet params;
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<mutex::MutexAlgorithm*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const net::NodeId nid{static_cast<std::int32_t>(i)};
    mutex::FactoryContext ctx{nid, n_nodes, params};
    auto algo = mutex::Registry::instance().create(algorithm, ctx);
    algos.push_back(algo.get());
    cluster.install(nid, std::move(algo));
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *algos.back(), sim::SimTime::units(0.05),
        &monitor, &ids));
  }

  // The application: a read-modify-write under the lock.
  LockServiceRun result;
  std::vector<std::uint64_t> read_register(n_nodes, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    drivers[i]->set_grant_callback([&, i](const mutex::CsRequest&) {
      read_register[i] = result.counter;  // read at CS entry
    });
    drivers[i]->set_completion_callback([&, i](const mutex::CsRequest&) {
      result.counter = read_register[i] + 1;  // write at CS exit
      ++result.increments;
    });
  }

  std::vector<mutex::CsDriver*> dp;
  std::vector<std::unique_ptr<workload::ArrivalProcess>> ap;
  for (auto& d : drivers) {
    dp.push_back(d.get());
    ap.push_back(std::make_unique<workload::PoissonArrivals>(0.8));
  }
  workload::OpenLoopGenerator gen(cluster.simulator(), dp, std::move(ap),
                                  increments, 99);
  cluster.start();
  gen.start();
  cluster.simulator().run();

  result.violations = monitor.violations();
  result.messages = cluster.network().stats().sent;
  stats::Welford lat;
  for (auto& d : drivers) lat.merge(d->sojourn_time());
  result.mean_latency = lat.mean();
  return result;
}

}  // namespace

int main() {
  using namespace dmx;
  const std::uint64_t kIncrements = 20'000;
  std::cout << "Replicated counter guarded by distributed mutual exclusion\n"
            << "10 nodes, " << kIncrements
            << " read-modify-write increments, Poisson demand 0.8/unit/node\n\n";

  harness::Table table({"algorithm", "final counter", "lost updates",
                        "messages", "msgs/increment", "mean latency"});
  bool all_exact = true;
  for (const std::string algo :
       {"arbiter-tp", "suzuki-kasami", "raymond", "ricart-agrawala",
        "centralized"}) {
    const auto r = run_lock_service(algo, 10, kIncrements);
    const std::uint64_t lost = kIncrements - r.counter;
    all_exact = all_exact && lost == 0 && r.violations == 0;
    table.add_row({algo, harness::Table::integer(r.counter),
                   harness::Table::integer(lost),
                   harness::Table::integer(r.messages),
                   harness::Table::num(static_cast<double>(r.messages) /
                                           static_cast<double>(kIncrements),
                                       2),
                   harness::Table::num(r.mean_latency, 3)});
  }
  table.print(std::cout);
  std::cout << "\nEvery algorithm reaches counter == " << kIncrements
            << " (no lost updates); they differ only in the message bill "
               "and latency.\n";
  return all_exact ? 0 : 1;
}
