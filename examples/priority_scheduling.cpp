// Prioritized access (§5.2): a mixed fleet of high-priority "alarm" nodes
// and low-priority "batch" nodes contending for one resource.
//
// The paper's design is *incremental* priority: each arbiter orders only
// the batch it collected, so high-priority requests jump the queue within a
// batch but never preempt an already-dispatched Q-list.  The demo measures
// per-class latency under FCFS vs priority ordering and shows that the
// low-priority class still makes progress (no starvation), because nodes
// at the end of the Q-list become arbiters (§5.2's observation).
#include <iostream>
#include <memory>

#include "core/arbiter_mutex.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"
#include "stats/welford.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace {

struct ClassStats {
  dmx::stats::Welford high_latency;
  dmx::stats::Welford low_latency;
  std::uint64_t high_done = 0;
  std::uint64_t low_done = 0;
  std::uint64_t arbiter_terms_low = 0;
};

ClassStats run(const std::string& order, std::uint64_t total) {
  using namespace dmx;
  harness::register_builtin_algorithms();
  constexpr std::size_t kN = 10;
  constexpr std::size_t kHighNodes = 3;  // nodes 0..2 are high priority

  runtime::Cluster cluster(
      kN, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), 5);
  mutex::ParamSet params;
  params.set("order", order);
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<mutex::MutexAlgorithm*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (std::size_t i = 0; i < kN; ++i) {
    const net::NodeId nid{static_cast<std::int32_t>(i)};
    mutex::FactoryContext ctx{nid, kN, params};
    auto algo = mutex::Registry::instance().create("arbiter-tp", ctx);
    algos.push_back(algo.get());
    cluster.install(nid, std::move(algo));
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *algos.back(), sim::SimTime::units(0.1),
        &monitor, &ids));
  }

  ClassStats out;
  for (std::size_t i = 0; i < kN; ++i) {
    drivers[i]->set_completion_callback([&, i](const mutex::CsRequest& r) {
      // Measure from issuance to the algorithm (not workload arrival):
      // priority ordering acts inside arbitration batches, and under
      // saturation the local open-loop queue would otherwise dominate.
      const double latency =
          cluster.simulator().now().to_units() - r.issued_at.to_units();
      if (i < kHighNodes) {
        out.high_latency.add(latency);
        ++out.high_done;
      } else {
        out.low_latency.add(latency);
        ++out.low_done;
      }
    });
  }

  std::vector<mutex::CsDriver*> dp;
  std::vector<std::unique_ptr<workload::ArrivalProcess>> ap;
  for (auto& d : drivers) {
    dp.push_back(d.get());
    ap.push_back(std::make_unique<workload::PoissonArrivals>(0.3));
  }
  workload::OpenLoopGenerator gen(cluster.simulator(), dp, std::move(ap),
                                  total, 77);
  gen.set_priority_fn([](std::size_t node, std::uint64_t) {
    return node < kHighNodes ? 10 : 0;  // static node priorities (§5.2)
  });
  cluster.start();
  gen.start();
  cluster.simulator().run();

  for (std::size_t i = kHighNodes; i < kN; ++i) {
    out.arbiter_terms_low +=
        dynamic_cast<core::ArbiterMutex*>(algos[i])->times_arbiter();
  }
  if (monitor.violations() != 0) {
    std::cerr << "SAFETY VIOLATION\n";
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  using namespace dmx;
  const std::uint64_t kTotal = 30'000;
  std::cout << "Prioritized access (§5.2): 3 high-priority alarm nodes vs "
               "7 low-priority batch nodes\n"
            << "10 nodes, lambda = 0.3/node (contended but unsaturated), " << kTotal
            << " requests\n\n";

  harness::Table table({"ordering", "high-prio latency", "low-prio latency",
                        "high done", "low done", "low-prio arbiter terms"});
  for (const std::string order : {"fcfs", "priority"}) {
    const auto s = run(order, kTotal);
    table.add_row({order, harness::Table::num(s.high_latency.mean(), 3),
                   harness::Table::num(s.low_latency.mean(), 3),
                   harness::Table::integer(s.high_done),
                   harness::Table::integer(s.low_done),
                   harness::Table::integer(s.arbiter_terms_low)});
  }
  table.print(std::cout);
  std::cout
      << "\nUnder 'priority', the alarm class overtakes within each batch "
         "(lower latency),\nyet the batch class keeps completing work and — "
         "as §5.2 predicts — ends up\nserving as arbiter more often, since "
         "low-priority requests sort to the tail.\n";
  return 0;
}
