// A tour of every algorithm in the library on one realistic scenario:
// a bursty, heterogeneous workload (some chatty nodes, some quiet, all
// bursty) — closer to production demand than the paper's uniform Poisson.
//
// Prints a one-line-per-algorithm scoreboard: message economy, latency,
// and correctness checks, plus the library's analytic expectations.
#include <iostream>
#include <memory>

#include "analysis/models.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace {

struct TourResult {
  double msgs_per_cs = 0;
  double mean_latency = 0;
  double p99_proxy = 0;  // max observed sojourn as a tail proxy
  std::uint64_t completed = 0;
  bool safe = false;
  bool live = false;
};

TourResult run_tour(const std::string& algorithm, std::uint64_t total) {
  using namespace dmx;
  harness::register_builtin_algorithms();
  constexpr std::size_t kN = 9;  // perfect square: fair to Maekawa

  runtime::Cluster cluster(
      kN, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), 21);
  mutex::ParamSet params;
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<mutex::MutexAlgorithm*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (std::size_t i = 0; i < kN; ++i) {
    const net::NodeId nid{static_cast<std::int32_t>(i)};
    mutex::FactoryContext ctx{nid, kN, params};
    auto algo = mutex::Registry::instance().create(algorithm, ctx);
    algos.push_back(algo.get());
    cluster.install(nid, std::move(algo));
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *algos.back(), sim::SimTime::units(0.08),
        &monitor, &ids));
  }

  // Heterogeneous bursty demand: node i bursts at rate 2.0 during ON
  // periods whose share shrinks with i (node 0 chatty, node 8 nearly idle).
  std::vector<mutex::CsDriver*> dp;
  std::vector<std::unique_ptr<workload::ArrivalProcess>> ap;
  for (std::size_t i = 0; i < kN; ++i) {
    dp.push_back(drivers[i].get());
    const double mean_on = 2.0;
    const double mean_off = 1.0 + 2.0 * static_cast<double>(i);
    ap.push_back(std::make_unique<workload::BurstyArrivals>(
        2.0, dmx::sim::SimTime::units(mean_on),
        dmx::sim::SimTime::units(mean_off)));
  }
  workload::OpenLoopGenerator gen(cluster.simulator(), dp, std::move(ap),
                                  total, 55);
  cluster.start();
  gen.start();
  cluster.simulator().run();

  TourResult r;
  stats::Welford lat;
  for (auto& d : drivers) {
    r.completed += d->completed();
    lat.merge(d->sojourn_time());
  }
  r.msgs_per_cs = r.completed > 0
                      ? static_cast<double>(cluster.network().stats().sent) /
                            static_cast<double>(r.completed)
                      : 0.0;
  r.mean_latency = lat.mean();
  r.p99_proxy = lat.max();
  r.safe = monitor.violations() == 0;
  r.live = r.completed == gen.submitted();
  return r;
}

}  // namespace

int main() {
  using namespace dmx;
  const std::uint64_t kTotal = 20'000;
  std::cout << "Algorithm tour: 9 nodes, heterogeneous bursty demand, "
            << kTotal << " critical sections\n\n";

  harness::Table table({"algorithm", "msgs/cs", "mean latency", "max latency",
                        "safe", "live"});
  for (const std::string algo :
       {"arbiter-tp", "arbiter-tp-sf", "centralized", "suzuki-kasami",
        "raymond", "maekawa", "singhal", "ricart-agrawala", "lamport"}) {
    const auto r = run_tour(algo, kTotal);
    table.add_row({algo, harness::Table::num(r.msgs_per_cs, 2),
                   harness::Table::num(r.mean_latency, 3),
                   harness::Table::num(r.p99_proxy, 2), r.safe ? "yes" : "NO",
                   r.live ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nReference points at N = 9: Ricart-Agrawala 2(N-1) = "
            << analysis::ricart_agrawala_messages(9)
            << ", Suzuki-Kasami ~N = " << analysis::suzuki_kasami_messages(9)
            << ",\nMaekawa ~3-5 sqrt(N) = " << analysis::maekawa_messages_low(9)
            << ".." << analysis::maekawa_messages_high(9)
            << ", arbiter-tp heavy-load bound 3 - 2/N = "
            << analysis::arbiter_messages_heavy(9) << ".\n";
  return 0;
}
