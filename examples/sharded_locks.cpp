// Sharded lock service: many independent locks, skewed (hot-key) demand.
//
// A distributed storage system guards each shard with its own lock.  Demand
// is Zipf-ish: shard 0 is hot, the tail is cold.  Each shard runs a full
// instance of the chosen mutual exclusion protocol on a shared virtual
// clock (mutex::LockSpace), so the example shows (a) cross-shard
// parallelism, (b) how each algorithm's message bill scales with per-shard
// load — the arbiter algorithm gets *cheaper* per CS on the hot shard
// (batching!) while permission-based schemes do not.
#include <iostream>
#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "mutex/lock_space.hpp"
#include "sim/rng.hpp"

namespace {

struct ShardReport {
  std::vector<std::uint64_t> completed;
  std::vector<double> msgs_per_cs;
  std::vector<double> mean_wait;
  int max_parallel = 0;
  std::uint64_t violations = 0;
};

ShardReport run(const std::string& algorithm, std::uint64_t total_ops) {
  using namespace dmx;
  harness::register_builtin_algorithms();
  mutex::LockSpace::Config cfg;
  cfg.algorithm = algorithm;
  cfg.n_nodes = 8;
  cfg.n_resources = 4;
  cfg.t_exec = 0.05;
  cfg.seed = 77;
  mutex::LockSpace space(cfg);

  // Skewed shard popularity: 8 : 4 : 2 : 1.
  const std::vector<double> weights = {8.0, 4.0, 2.0, 1.0};
  sim::Rng rng(31);
  double t = 0.0;
  for (std::uint64_t k = 0; k < total_ops; ++k) {
    t += rng.exponential(4.0);  // aggregate demand: 4 ops per time unit
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, 7));
    const std::size_t shard = rng.weighted_index(weights);
    space.simulator().schedule_at(
        sim::SimTime::units(t),
        [&space, node, shard] { space.acquire(node, shard); });
  }
  space.simulator().run();

  ShardReport rep;
  for (std::size_t s = 0; s < 4; ++s) {
    rep.completed.push_back(space.completed(s));
    rep.msgs_per_cs.push_back(
        space.completed(s) > 0
            ? static_cast<double>(space.messages(s)) /
                  static_cast<double>(space.completed(s))
            : 0.0);
    rep.mean_wait.push_back(space.sojourn(s).mean());
  }
  rep.max_parallel = space.max_parallel_grants();
  rep.violations = space.safety_violations();
  return rep;
}

}  // namespace

int main() {
  using namespace dmx;
  const std::uint64_t kOps = 20'000;
  std::cout << "Sharded lock service: 8 nodes, 4 shards with 8:4:2:1 demand "
               "skew, "
            << kOps << " lock operations\n\n";

  for (const std::string algo : {"arbiter-tp", "ricart-agrawala"}) {
    const auto rep = run(algo, kOps);
    std::cout << "algorithm: " << algo
              << "   (max concurrent shard grants: " << rep.max_parallel
              << ", safety violations: " << rep.violations << ")\n";
    harness::Table table({"shard", "ops", "msgs/op", "mean lock wait"});
    for (std::size_t s = 0; s < 4; ++s) {
      table.add_row({harness::Table::integer(s),
                     harness::Table::integer(rep.completed[s]),
                     harness::Table::num(rep.msgs_per_cs[s], 2),
                     harness::Table::num(rep.mean_wait[s], 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "The arbiter algorithm amortizes its NEW-ARBITER broadcast "
               "over the hot shard's\nbatches (msgs/op falls with load); "
               "Ricart-Agrawala pays 2(N-1) on every shard.\n";
  return 0;
}
