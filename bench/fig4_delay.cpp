// Figure 4: average delay per critical section vs the per-node arrival
// rate, for T_req = 0.1 and 0.2.
//
// Paper expectations: the longer collection window trades messages for
// delay (higher X-bar at every load); delay grows from ~Eq.(3) = 0.38 at
// light load toward and beyond ~Eq.(6) = 1.39 at heavy load.
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Figure 4 — average delay per critical section (N = 10, time units)",
      "X-bar measured from request issuance to CS exit (includes T_exec), "
      "as in the paper.\nSeries: T_req = 0.1 and T_req = 0.2.");

  harness::Table table({"lambda", "delay (Treq=0.1)", "delay (Treq=0.2)",
                        "p95 (Treq=0.1)", "sojourn (Treq=0.1)"});
  for (double lam : bench::lambda_grid()) {
    std::vector<std::string> row{harness::Table::num(lam, 2)};
    std::string sojourn, p95;
    for (double t_req : {0.1, 0.2}) {
      harness::ExperimentConfig cfg;
      cfg.algorithm = "arbiter-tp";
      cfg.n_nodes = 10;
      cfg.lambda = lam;
      cfg.total_requests = bench::requests_per_point();
      cfg.params.set("t_req", t_req).set("t_fwd", 0.1);
      const auto runs = harness::run_replicated(cfg, bench::replications());
      const auto p = bench::summarize(runs);
      if (t_req == 0.1) {
        sojourn = p.sojourn.to_string(3);
        stats::Welford w;
        for (const auto& r : runs) w.add(r.service_p95);
        p95 = harness::Table::num(w.mean(), 3);
      }
      row.push_back(p.service.to_string(3));
    }
    row.push_back(p95);
    row.push_back(sojourn);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const analysis::Timing t{0.1, 0.1, 0.1};
  std::cout << "\nAnalytic: Eq.(3) light = "
            << analysis::arbiter_service_light(10, t)
            << ", Eq.(6) heavy = " << analysis::arbiter_service_heavy(10, t)
            << "\n";
  return 0;
}
