// Shared plumbing for the figure/table reproduction benches.
//
// Each bench binary regenerates one artifact of the paper's evaluation
// (Figures 3-6 or a claims table) by sweeping the simulator and printing the
// same rows/series the paper plots, with 95% confidence intervals across
// replicated seeds.  Environment knobs:
//   DMX_BENCH_REQUESTS      requests per point   (default 100000)
//   DMX_BENCH_REPLICATIONS  seeds per point      (default 3)
//   DMX_BENCH_JOBS          worker threads per point (default 1 = serial,
//                           0 = one per hardware thread); results are
//                           byte-identical for every value
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/models.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "stats/confidence.hpp"

namespace dmx::bench {

inline std::uint64_t requests_per_point() {
  if (const char* env = std::getenv("DMX_BENCH_REQUESTS")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 100'000;
}

inline std::size_t replications() {
  if (const char* env = std::getenv("DMX_BENCH_REPLICATIONS")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 3;
}

/// Seed-replication fan-out width (harness::ParallelRunner workers).
inline std::size_t bench_jobs() {
  if (const char* env = std::getenv("DMX_BENCH_JOBS")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 1;
}

/// The paper's lambda sweep (requests/second/node, N = 10): light load
/// through saturation (the system-wide service capacity with
/// T_exec = T_msg = 0.1 is ~5 CS/unit, i.e. ~0.5 per node).
inline std::vector<double> lambda_grid() {
  return {0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 2.0};
}

/// Aggregate of replicated runs at one sweep point.
struct PointSummary {
  stats::MeanCi messages;
  stats::MeanCi service;
  stats::MeanCi sojourn;
  stats::MeanCi forwarded_fraction;       ///< Of REQUEST transmissions.
  stats::MeanCi forwarded_fraction_all;   ///< Of all messages (paper's "4%").
  std::uint64_t safety_violations = 0;
  bool all_drained = true;
};

inline PointSummary summarize(const std::vector<harness::ExperimentResult>& runs) {
  stats::Welford msgs, svc, soj, fwd, fwd_all;
  PointSummary p;
  for (const auto& r : runs) {
    msgs.add(r.messages_per_cs);
    svc.add(r.service_time.mean());
    soj.add(r.sojourn_time.mean());
    fwd.add(r.forwarded_fraction_of_requests);
    fwd_all.add(r.forwarded_fraction_of_all);
    p.safety_violations += r.safety_violations;
    p.all_drained = p.all_drained && r.drained;
  }
  p.messages = stats::mean_ci_95(msgs);
  p.service = stats::mean_ci_95(svc);
  p.sojourn = stats::mean_ci_95(soj);
  p.forwarded_fraction = stats::mean_ci_95(fwd);
  p.forwarded_fraction_all = stats::mean_ci_95(fwd_all);
  return p;
}

inline PointSummary run_point(harness::ExperimentConfig cfg) {
  cfg.total_requests = requests_per_point();
  cfg.jobs = bench_jobs();
  return summarize(harness::run_replicated(cfg, replications()));
}

inline void print_header(const std::string& title, const std::string& blurb) {
  std::cout << "\n=== " << title << " ===\n" << blurb << "\n"
            << "(requests/point=" << requests_per_point()
            << ", seeds/point=" << replications() << ", 95% CIs)\n\n";
}

}  // namespace dmx::bench
