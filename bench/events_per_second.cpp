// Message-plane throughput kernel: simulator events per wall-clock second.
//
// Where micro_kernel isolates single components, this bench drives the whole
// stack — workload generator, arbiter protocol, network, optional reliable
// transport — at cluster sizes from the paper's N=10 to the 100k-node
// scaling milestone, and reports how many simulator events the engine
// retires per second of real time.  These numbers gate allocation-path
// regressions via BENCH_6.json.
//
// Output: one JSON object per line on stdout (jq-friendly), human summary on
// stderr.  Usage:
//   events_per_second [--quick] [N ...]
// With no N arguments the full ladder {10, 1000, 10000, 100000} runs; raw
// transport at every N, reliable transport up to N=10000 (per-peer windows
// at the broadcasting arbiter make reliable 100k a different experiment, not
// a throughput kernel).  --quick shrinks the ladder and request counts for
// CI smoke jobs.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "net/pool.hpp"

namespace {

struct Point {
  std::size_t n;
  dmx::harness::TransportKind transport;
  std::uint64_t requests;
};

const char* transport_name(dmx::harness::TransportKind k) {
  return k == dmx::harness::TransportKind::kReliable ? "reliable" : "raw";
}

std::uint64_t requests_for(std::size_t n, bool quick) {
  if (quick) return 300;
  // Every arbiter term ends with a NEW-ARBITER broadcast to N-1 nodes, so
  // total event volume grows ~N per CS entry; shrink the request budget as N
  // grows to keep each point around 10^8 events.
  if (n >= 100'000) return 500;
  if (n >= 10'000) return 2'000;
  return 20'000;
}

int run_point(const Point& pt) {
  using Clock = std::chrono::steady_clock;
  dmx::harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = pt.n;
  // Total arrival rate ~20 CS/unit against a ~5/unit service capacity: the
  // saturated regime where the token batches and message economy matters.
  cfg.lambda = 20.0 / static_cast<double>(pt.n);
  cfg.t_msg = 0.1;
  cfg.t_exec = 0.1;
  cfg.total_requests = pt.requests;
  cfg.seed = 42;
  cfg.transport = pt.transport;

  const auto t0 = Clock::now();
  const auto r = dmx::harness::run_experiment(cfg);
  const auto t1 = Clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double eps =
      wall_ms > 0.0 ? static_cast<double>(r.sim_events) / (wall_ms / 1e3)
                    : 0.0;

  std::cout << "{\"algo\":\"arbiter-tp\""
            << ",\"transport\":\"" << transport_name(pt.transport) << "\""
            << ",\"n\":" << pt.n << ",\"requests\":" << pt.requests
            << ",\"completed\":" << r.completed
            << ",\"sim_events\":" << r.sim_events
            << ",\"messages_total\":" << r.messages_total
            << ",\"wall_ms\":" << wall_ms
            << ",\"events_per_sec\":" << eps
            << ",\"msgs_per_cs\":" << r.messages_per_cs
            << ",\"pool_enabled\":"
            << (dmx::net::payload_pool_enabled() ? "true" : "false") << "}\n";
  std::cerr << "n=" << pt.n << " " << transport_name(pt.transport)
            << ": " << r.sim_events << " events in " << wall_ms / 1e3
            << " s -> " << eps / 1e6 << " M events/s\n";

  if (r.safety_violations != 0 || !r.drained) {
    std::cerr << "UNSOUND RUN: safety_violations=" << r.safety_violations
              << " drained=" << r.drained << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dmx::harness::register_builtin_algorithms();

  bool quick = false;
  std::vector<std::size_t> sizes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      sizes.push_back(static_cast<std::size_t>(std::strtoull(
          arg.c_str(), nullptr, 10)));
    }
  }
  if (sizes.empty()) {
    sizes = quick ? std::vector<std::size_t>{10, 100}
                  : std::vector<std::size_t>{10, 1'000, 10'000, 100'000};
  }

  constexpr std::size_t kReliableMaxN = 10'000;
  int rc = 0;
  for (const std::size_t n : sizes) {
    rc |= run_point({n, dmx::harness::TransportKind::kRaw,
                     requests_for(n, quick)});
    if (n <= kReliableMaxN) {
      rc |= run_point({n, dmx::harness::TransportKind::kReliable,
                       requests_for(n, quick)});
    } else {
      std::cerr << "n=" << n << " reliable: skipped (cap " << kReliableMaxN
                << ")\n";
    }
  }
  return rc;
}
