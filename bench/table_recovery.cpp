// §6 failure recovery: cost and latency of the two-phase token invalidation
// under injected faults — dropped PRIVILEGE messages, crashed token holders
// and crashed arbiters — plus the overhead of enabling recovery machinery
// when nothing fails.
#include "bench_common.hpp"

namespace {

dmx::harness::ExperimentConfig recovery_config(double lambda,
                                               std::uint64_t seed) {
  dmx::harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 10;
  cfg.lambda = lambda;
  cfg.seed = seed;
  cfg.params.set("recovery", 1.0)
      .set("token_timeout", 3.0)
      .set("enquiry_timeout", 1.0)
      .set("arbiter_timeout", 6.0)
      .set("probe_timeout", 1.0)
      .set("resubmit_after_misses", 1.0)
      .set("request_retry_timeout", 5.0);
  cfg.max_sim_units = 1e7;
  return cfg;
}

}  // namespace

int main() {
  using namespace dmx;
  bench::print_header(
      "Failure recovery (§6) — two-phase token invalidation under faults",
      "Token-loss probability applied to PRIVILEGE transmissions; every run "
      "must stay safe\nand serve all requests of live nodes.");

  {
    std::cout << "Part A: recovery machinery overhead with no faults\n";
    harness::Table table(
        {"lambda", "msgs/cs (recovery off)", "msgs/cs (recovery on)"});
    for (double lam : {0.05, 0.3, 1.0}) {
      harness::ExperimentConfig off;
      off.algorithm = "arbiter-tp";
      off.n_nodes = 10;
      off.lambda = lam;
      const auto po = bench::run_point(off);
      auto on = recovery_config(lam, 1);
      const auto pn = bench::run_point(on);
      table.add_row({harness::Table::num(lam, 2), po.messages.to_string(3),
                     pn.messages.to_string(3)});
    }
    table.print(std::cout);
    std::cout << "(Recovery always broadcasts NEW-ARBITER — the low-load "
                 "delta is that broadcast.)\n\n";
  }

  {
    std::cout << "Part B: sustained PRIVILEGE loss\n";
    harness::Table table({"loss p", "lambda", "msgs/cs", "mean delay",
                          "regenerations", "resumes", "drained", "safety"});
    const std::uint64_t reqs =
        std::min<std::uint64_t>(bench::requests_per_point(), 20'000);
    for (double loss : {0.001, 0.01, 0.05}) {
      for (double lam : {0.05, 0.5}) {
        auto cfg = recovery_config(lam, 7);
        cfg.total_requests = reqs;
        cfg.loss_by_type = {{"PRIVILEGE", loss}};
        const auto r = harness::run_experiment(cfg);
        table.add_row({harness::Table::num(loss, 3),
                       harness::Table::num(lam, 2),
                       harness::Table::num(r.messages_per_cs, 3),
                       harness::Table::num(r.service_time.mean(), 3),
                       harness::Table::integer(r.protocol.tokens_regenerated),
                       harness::Table::integer(r.protocol.resumes_sent),
                       r.drained ? "yes" : "NO",
                       r.safety_violations == 0 ? "ok" : "VIOLATED"});
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "Part C: random message loss across all protocol traffic\n";
    harness::Table table({"loss p", "msgs/cs", "mean delay", "regenerations",
                          "takeovers", "drained", "safety"});
    const std::uint64_t reqs =
        std::min<std::uint64_t>(bench::requests_per_point(), 10'000);
    for (double loss : {0.005, 0.02, 0.05}) {
      auto cfg = recovery_config(0.3, 21);
      cfg.total_requests = reqs;
      cfg.loss_by_type = {{"PRIVILEGE", loss},
                          {"REQUEST", loss},
                          {"NEW-ARBITER", loss}};
      const auto r = harness::run_experiment(cfg);
      table.add_row({harness::Table::num(loss, 3),
                     harness::Table::num(r.messages_per_cs, 3),
                     harness::Table::num(r.service_time.mean(), 3),
                     harness::Table::integer(r.protocol.tokens_regenerated),
                     harness::Table::integer(r.protocol.arbiter_takeovers),
                     r.drained ? "yes" : "NO",
                     r.safety_violations == 0 ? "ok" : "VIOLATED"});
    }
    table.print(std::cout);
  }
  return 0;
}
