// The token-algorithm landscape the paper positions itself in (§1, §2.4):
// messages per CS at saturation for every algorithm in the library, next to
// each algorithm's textbook analytic figure.
//
// Expected ranking at high load: arbiter-tp ~= centralized ~= 3, Raymond ~4,
// Suzuki-Kasami ~N, Maekawa ~O(sqrt(N)) with contention traffic,
// Ricart-Agrawala 2(N-1), Lamport 3(N-1).
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "High-load message landscape (N = 10, lambda = 2.0/node)",
      "The paper's positioning: \"less than 3 messages per critical section "
      "invocation,\nperforming better than Raymond's tree-based algorithm "
      "... approximately 4 messages\".");

  struct Entry {
    const char* algo;
    double analytic;
    const char* note;
  };
  const std::size_t n = 10;
  const std::vector<Entry> entries = {
      {"arbiter-tp", analysis::arbiter_messages_heavy(n), "Eq.(4): 3-2/N"},
      {"arbiter-tp-sf", analysis::arbiter_messages_heavy(n),
       "+ monitor visits"},
      {"centralized", analysis::centralized_messages() * 0.9,
       "3(N-1)/N (coordinator free)"},
      {"raymond", analysis::raymond_messages_heavy(), "~4 at saturation"},
      {"token-ring", 1.0, "1 hop/CS at saturation"},
      {"tree-quorum", 3.0 * 3.3, "~3 log2(N) + contention"},
      {"suzuki-kasami", analysis::suzuki_kasami_messages(n), "N"},
      {"maekawa", analysis::maekawa_messages_high(n),
       "3..5 sqrt(N) + contention"},
      {"singhal", 2.0 * (static_cast<double>(n) - 1.0),
       "-> 2(N-1) under contention"},
      {"ricart-agrawala", analysis::ricart_agrawala_messages(n), "2(N-1)"},
      {"lamport", analysis::lamport_messages(n), "3(N-1)"},
  };

  harness::Table table(
      {"algorithm", "msgs/cs (sim)", "bytes/cs", "analytic", "model"});
  for (const auto& e : entries) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = e.algo;
    cfg.n_nodes = n;
    cfg.lambda = 2.0;
    cfg.total_requests = bench::requests_per_point();
    const auto runs = harness::run_replicated(cfg, bench::replications());
    const auto p = bench::summarize(runs);
    stats::Welford bytes;
    for (const auto& r : runs) bytes.add(r.bytes_per_cs);
    std::string cell = p.messages.to_string(2);
    if (p.safety_violations > 0 || !p.all_drained) cell += " [UNSOUND]";
    table.add_row({e.algo, cell, harness::Table::num(bytes.mean(), 1),
                   harness::Table::num(e.analytic, 2), e.note});
  }
  table.print(std::cout);
  return 0;
}
