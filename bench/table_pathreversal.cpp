// Naimi–Trehel path reversal vs. Lavault's average-case analysis (arXiv
// cs/0611098): measured messages/CS against the exact stationary curve
// H_n - 1/n and its asymptote ln n + gamma, across cluster sizes.
//
// The Fig. 6-style convergence story: the measured points must sit on the
// exact curve at every N (validating the implementation), and the relative
// error against the asymptotic O(log n) form must shrink as N grows
// (validating the analysis's large-n claim).  Load is held at a system-wide
// arrival rate of 0.1 CS/unit so requests are effectively sequential — the
// regime Lavault's model describes.
//
// After the table, one JSONL line per point is printed for machine
// consumption (BENCH_10.json, CI jq gates).
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Path reversal: measured vs. Lavault average-case (H_n - 1/n)",
      "Sequential-regime sweep (lambda*N = 0.1 system-wide), uniform random\n"
      "requesters.  exact = H_n - 1/n; asym = ln n + gamma.");

  harness::Table table({"N", "msgs/CS (sim)", "exact", "rel err", "asym",
                        "rel err asym"});
  struct Row {
    std::size_t n;
    double measured, ci, exact, asym, err_exact, err_asym;
  };
  std::vector<Row> rows;
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = "path-reversal";
    cfg.n_nodes = n;
    cfg.lambda = 0.1 / static_cast<double>(n);
    cfg.seed = 3000 + n;
    const auto p = bench::run_point(cfg);
    if (p.safety_violations != 0 || !p.all_drained) {
      std::cerr << "FAILED: unsafe or undrained run at N=" << n << "\n";
      return 1;
    }
    const double exact = analysis::path_reversal_messages_avg(n);
    const double asym = analysis::path_reversal_messages_asymptotic(n);
    const Row row{n,
                  p.messages.mean,
                  p.messages.half_width,
                  exact,
                  asym,
                  std::abs(p.messages.mean - exact) / exact,
                  std::abs(p.messages.mean - asym) / asym};
    rows.push_back(row);
    table.add_row({harness::Table::integer(n), p.messages.to_string(3),
                   harness::Table::num(exact, 3),
                   harness::Table::num(row.err_exact * 100.0, 2) + "%",
                   harness::Table::num(asym, 3),
                   harness::Table::num(row.err_asym * 100.0, 2) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nNote: the asymptote overshoots the exact curve by "
               "~1/(2n), so its relative error must fall as N grows — "
               "that is the convergence the analysis predicts.\n\n";
  for (const Row& r : rows) {
    std::printf(
        "{\"n\": %zu, \"messages_per_cs\": %.6f, \"ci95\": %.6f, "
        "\"exact\": %.6f, \"asymptotic\": %.6f, \"rel_err_exact\": %.6f, "
        "\"rel_err_asymptotic\": %.6f}\n",
        r.n, r.measured, r.ci, r.exact, r.asym, r.err_exact, r.err_asym);
  }
  return 0;
}
