// The paper's closing observation: "There are two parameters: the request
// collection phase and the request forwarding phase durations that may be
// adjusted to obtain the best performance."  This ablation sweeps the
// (T_req, T_fwd) grid at a moderately contended load and reports the full
// trade-off surface: messages, delay, forwarded fraction and drop counts —
// including the Eq. (7) effect (T_fwd must cover NEW-ARBITER propagation
// plus request transit, ~2*T_msg, or late requests get dropped and
// retransmitted).
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Tuning ablation — the (T_req, T_fwd) surface (N = 10, lambda = 0.2)",
      "Eq. (7) predicts T_fwd ~ 2*T_msg = 0.2 eliminates indefinite "
      "forwarding;\nlarger T_req trades delay for messages.");

  harness::Table table({"T_req", "T_fwd", "msgs/cs", "delay", "fwd frac",
                        "dropped", "resubmitted"});
  const std::uint64_t reqs =
      std::min<std::uint64_t>(bench::requests_per_point(), 50'000);
  for (double t_req : {0.05, 0.1, 0.2, 0.4}) {
    for (double t_fwd : {0.0, 0.1, 0.2, 0.4}) {
      harness::ExperimentConfig cfg;
      cfg.algorithm = "arbiter-tp";
      cfg.n_nodes = 10;
      cfg.lambda = 0.2;
      cfg.total_requests = reqs;
      cfg.seed = 123;
      cfg.params.set("t_req", t_req).set("t_fwd", t_fwd);
      const auto r = harness::run_experiment(cfg);
      table.add_row({harness::Table::num(t_req, 2),
                     harness::Table::num(t_fwd, 2),
                     harness::Table::num(r.messages_per_cs, 3),
                     harness::Table::num(r.service_time.mean(), 3),
                     harness::Table::num(r.forwarded_fraction_of_requests, 4),
                     harness::Table::integer(
                         r.protocol.requests_dropped_stale),
                     harness::Table::integer(r.protocol.resubmissions)});
      if (r.safety_violations > 0 || !r.drained) {
        std::cout << "UNSOUND at T_req=" << t_req << " T_fwd=" << t_fwd
                  << "\n";
        return 1;
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nAblation 2: the suppress_self_broadcast variant "
               "(tail==arbiter skips the broadcast)\n";
  harness::Table t2({"lambda", "paper msgs/cs", "ablated msgs/cs",
                     "paper arbiter cv", "ablated arbiter cv"});
  for (double lam : {0.2, 0.5, 2.0}) {
    std::vector<std::string> row{harness::Table::num(lam, 2)};
    std::vector<std::string> cvs;
    for (bool suppress : {false, true}) {
      harness::ExperimentConfig cfg;
      cfg.algorithm = "arbiter-tp";
      cfg.n_nodes = 10;
      cfg.lambda = lam;
      cfg.total_requests = reqs;
      cfg.seed = 5;
      cfg.params.set("suppress_self_broadcast", suppress ? 1.0 : 0.0);
      const auto r = harness::run_experiment(cfg);
      row.push_back(harness::Table::num(r.messages_per_cs, 3));
      // Arbiter-role concentration: coefficient of variation of per-node
      // arbiter terms (high cv = the role stopped rotating).
      double mean = 0, var = 0;
      const double n = static_cast<double>(r.arbiter_terms_per_node.size());
      for (auto t : r.arbiter_terms_per_node) {
        mean += static_cast<double>(t) / n;
      }
      for (auto t : r.arbiter_terms_per_node) {
        var += (static_cast<double>(t) - mean) * (static_cast<double>(t) - mean) / n;
      }
      cvs.push_back(
          harness::Table::num(mean > 0 ? std::sqrt(var) / mean : 0.0, 3));
    }
    row.insert(row.end(), cvs.begin(), cvs.end());
    t2.add_row(std::move(row));
  }
  t2.print(std::cout);
  std::cout << "\nThe ablated variant saves ~1 message/CS at saturation but "
               "concentrates the arbiter role\n(high cv), giving up the "
               "paper's §5.1 load-balance property.\n";
  return 0;
}
