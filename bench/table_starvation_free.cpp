// §4.1 claims: the starvation-free variant costs ~+1 message per CS at very
// low load (one extra token hop to the monitor per period, with one CS per
// period) and a negligible overhead at high load (many CSs per period).
// Also reports the adaptive monitor-visit period and the tau-drop counters,
// plus the ablation of a rotating monitor (§5.1).
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Starvation-free variant (§4.1) — overhead and adaptive period (N = 10)",
      "Columns: messages/CS basic vs starvation-free, the overhead, and the\n"
      "monitor-visit ratio (visits / dispatches; adaptive period = ceil(avg "
      "|Q|)).");

  harness::Table table({"lambda", "basic msgs/cs", "sf msgs/cs", "overhead",
                        "visit ratio", "sf msgs/cs (rotating)"});
  for (double lam : bench::lambda_grid()) {
    harness::ExperimentConfig base;
    base.algorithm = "arbiter-tp";
    base.n_nodes = 10;
    base.lambda = lam;
    const auto pb = bench::run_point(base);

    harness::ExperimentConfig sf = base;
    sf.algorithm = "arbiter-tp-sf";
    sf.total_requests = bench::requests_per_point();
    const auto sf_runs = harness::run_replicated(sf, bench::replications());
    const auto ps = bench::summarize(sf_runs);
    double visits = 0, dispatches = 0;
    for (const auto& r : sf_runs) {
      visits += static_cast<double>(r.protocol.monitor_visits);
      dispatches += static_cast<double>(r.protocol.dispatches +
                                        r.protocol.monitor_dispatches);
    }

    harness::ExperimentConfig rot = sf;
    rot.params.set("rotate_monitor", 1.0);
    const auto pr = bench::run_point(rot);

    table.add_row({harness::Table::num(lam, 2), pb.messages.to_string(3),
                   ps.messages.to_string(3),
                   harness::Table::num(ps.messages.mean - pb.messages.mean, 3),
                   harness::Table::num(
                       dispatches > 0 ? visits / dispatches : 0.0, 3),
                   pr.messages.to_string(3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: overhead ~+1 at the lowest rates, ~0 at "
               "saturation; visit ratio ~1 at low load, ~1/N at high load.\n";
  return 0;
}
