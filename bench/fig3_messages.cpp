// Figure 3: average number of messages generated per CS invocation vs the
// per-node arrival rate, for request-collection windows T_req = 0.1 and 0.2.
//
// Paper expectations: ~(N^2-1)/N = 9.9 at very light load, falling to
// ~3 - 2/N = 2.8 at heavy load; the longer collection window is cheaper.
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Figure 3 — average messages per critical section (N = 10)",
      "Series: T_req = 0.1 (paper's continuous curve) and T_req = 0.2 "
      "(dotted curve).\nAnalytic anchors: light 9.900, heavy 2.800.");

  harness::Table table({"lambda", "msgs/cs (Treq=0.1)", "msgs/cs (Treq=0.2)"});
  for (double lam : bench::lambda_grid()) {
    std::vector<std::string> row{harness::Table::num(lam, 2)};
    for (double t_req : {0.1, 0.2}) {
      harness::ExperimentConfig cfg;
      cfg.algorithm = "arbiter-tp";
      cfg.n_nodes = 10;
      cfg.lambda = lam;
      cfg.t_msg = 0.1;
      cfg.t_exec = 0.1;
      cfg.params.set("t_req", t_req).set("t_fwd", 0.1);
      const auto p = bench::run_point(cfg);
      row.push_back(p.messages.to_string(3));
      if (p.safety_violations > 0 || !p.all_drained) {
        row.back() += " [UNSOUND]";
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nAnalytic: Eq.(1) light = "
            << analysis::arbiter_messages_light(10)
            << ", Eq.(4) heavy = " << analysis::arbiter_messages_heavy(10)
            << "\n";
  return 0;
}
