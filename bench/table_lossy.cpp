// Lossy-channel comparison: every registered algorithm under the same
// seeded loss + duplication + reordering campaign, running over the
// reliable transport (per-peer acks, backoff retransmission, exactly-once
// in-order delivery).  The raw network would wedge most baselines the first
// time a PRIVILEGE or REPLY evaporates; the reliable layer gives each
// algorithm the lossless-FIFO channel its paper assumes, and the table
// prices that assumption: retransmissions, suppressed duplicates and
// standalone acks per critical section.
//
// Part B isolates the cost question for the paper's algorithm, which is the
// only one with loss handling of its own (§6 timeouts): arbiter-tp under
// the same loss runs once with §6 recovery on the raw network and once atop
// the reliable transport — end-to-end repair priced against in-protocol
// repair.
#include <algorithm>

#include "bench_common.hpp"
#include "mutex/registry.hpp"

namespace {

constexpr const char* kLossPlan =
    "t=5 loss *=0.15 until=60; reorder-window t=10..30; t=12 dup-next RT-ACK";

dmx::harness::ExperimentConfig lossy_config(const std::string& algo,
                                            std::uint64_t requests) {
  dmx::harness::ExperimentConfig cfg;
  cfg.algorithm = algo;
  cfg.n_nodes = 10;
  cfg.lambda = 0.2;
  cfg.seed = 42;
  cfg.total_requests = requests;
  cfg.transport = dmx::harness::TransportKind::kReliable;
  cfg.fault_plan = kLossPlan;
  cfg.max_sim_units = 1e7;
  return cfg;
}

double per_cs(std::uint64_t count, std::uint64_t completed) {
  return completed == 0 ? 0.0
                        : static_cast<double>(count) /
                              static_cast<double>(completed);
}

}  // namespace

int main() {
  using namespace dmx;
  const std::uint64_t requests =
      std::min<std::uint64_t>(bench::requests_per_point(), 5'000);

  bench::print_header(
      "Lossy channels — every algorithm atop the reliable transport",
      "One seeded campaign (15% loss for 55 units, a 20-unit reorder window,"
      "\nduplicated acks) against each registered algorithm with --transport"
      "\nreliable.  retrans/dup/acks are per completed CS.");

  harness::register_builtin_algorithms();
  harness::Table table({"algorithm", "msgs/cs", "service", "retrans/cs",
                        "dup/cs", "acks/cs", "stall", "drained", "safety"});
  bool sound = true;
  for (const std::string& name : mutex::Registry::instance().names()) {
    const auto r = harness::run_experiment(lossy_config(name, requests));
    sound = sound && !r.stalled && r.drained && r.safety_violations == 0;
    table.add_row({name, harness::Table::num(r.messages_per_cs, 3),
                   harness::Table::num(r.service_time.mean(), 3),
                   harness::Table::num(
                       per_cs(r.transport.retransmits, r.completed), 3),
                   harness::Table::num(
                       per_cs(r.transport.dup_dropped, r.completed), 3),
                   harness::Table::num(
                       per_cs(r.transport.acks_sent, r.completed), 3),
                   r.stalled ? "STALL" : "no", r.drained ? "yes" : "NO",
                   r.safety_violations == 0 ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);

  std::cout << "\nPart B: arbiter-tp — §6 in-protocol recovery (raw network)"
               " vs reliable transport\n";
  harness::Table b({"repair", "msgs/cs", "service", "retrans/cs", "acks/cs",
                    "recovered", "stall", "drained", "safety"});
  for (const bool reliable : {false, true}) {
    auto cfg = lossy_config("arbiter-tp", requests);
    cfg.transport = reliable ? harness::TransportKind::kReliable
                             : harness::TransportKind::kRaw;
    if (!reliable) {
      // The raw run leans on the paper's own timeout machinery instead.
      cfg.params.set("recovery", 1.0)
          .set("token_timeout", 3.0)
          .set("enquiry_timeout", 1.0)
          .set("arbiter_timeout", 6.0)
          .set("probe_timeout", 1.0)
          .set("resubmit_after_misses", 1.0)
          .set("request_retry_timeout", 5.0);
    }
    const auto r = harness::run_experiment(cfg);
    sound = sound && !r.stalled && r.drained && r.safety_violations == 0;
    b.add_row({reliable ? "transport acks" : "§6 timeouts",
               harness::Table::num(r.messages_per_cs, 3),
               harness::Table::num(r.service_time.mean(), 3),
               harness::Table::num(
                   per_cs(r.transport.retransmits, r.completed), 3),
               harness::Table::num(
                   per_cs(r.transport.acks_sent, r.completed), 3),
               harness::Table::integer(r.faults_recovered),
               r.stalled ? "STALL" : "no", r.drained ? "yes" : "NO",
               r.safety_violations == 0 ? "ok" : "VIOLATED"});
  }
  b.print(std::cout);
  return sound ? 0 : 1;
}
