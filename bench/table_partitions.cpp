// Partition campaigns: quorumless vs. quorum-guarded token regeneration
// under a network cut, measured as first-class robustness output.
//
// The paper's §6 recovery regenerates the token whenever ENQUIRY finds no
// holder — under a partition that isolates the holder, both sides can end
// up with a live token (split brain).  The quorum guard (recovery_quorum=1,
// DESIGN.md §13) refuses to regenerate until a strict majority has replied
// AND every possible holder named by the freshest dispatch views is among
// the repliers; blocked demand parks with bounded backoff until the heal.
//
// Each scenario runs the same cut twice — guard off, guard on — and the
// table shows the trade both ways: the quorumless rows buy availability
// during the cut at the price of safety violations and a second token; the
// quorum rows keep exactly one token at the price of majority-side blocking
// (the "blocked max" column, billed per partition group by
// stats::RecoveryMetrics).
//
// DMX_BENCH_JSONL=<path> additionally writes one JSON object per row for
// machine consumption (scripts/partition_smoke.sh validates it with jq).
#include <fstream>

#include "bench_common.hpp"

namespace {

struct Scenario {
  const char* name;
  const char* plan;
  bool quorum;
};

dmx::harness::ExperimentConfig campaign_config(const Scenario& s) {
  dmx::harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 10;
  // Long critical sections make a split brain *observable*: with two live
  // tokens and T_exec = 1.0 the two sides' CSs overlap in wall-clock time,
  // so the safety column shows the hazard instead of hiding it in luck.
  cfg.t_exec = 1.0;
  cfg.lambda = 0.05;
  cfg.seed = 42;
  cfg.total_requests = 1'000;
  cfg.params.set("recovery", 1.0)
      .set("token_timeout", 3.0)
      .set("enquiry_timeout", 1.0)
      .set("arbiter_timeout", 6.0)
      .set("probe_timeout", 1.0)
      .set("resubmit_after_misses", 1.0)
      .set("request_retry_timeout", 5.0);
  if (s.quorum) cfg.params.set("recovery_quorum", 1.0);
  cfg.fault_plan = s.plan;
  cfg.max_sim_units = 1e7;
  return cfg;
}

std::string json_escape_free_row(const Scenario& s,
                                 const dmx::harness::ExperimentResult& r) {
  // All values are numeric or fixed identifiers; no escaping needed.
  std::string line = "{\"scenario\":\"";
  line += s.name;
  line += "\",\"quorum\":";
  line += s.quorum ? "1" : "0";
  auto num = [&line](const char* key, double v) {
    line += ",\"";
    line += key;
    line += "\":";
    line += dmx::harness::Table::num(v, 6);
  };
  auto integer = [&line](const char* key, std::uint64_t v) {
    line += ",\"";
    line += key;
    line += "\":";
    line += std::to_string(v);
  };
  integer("safety_violations", r.safety_violations);
  integer("tokens_regenerated", r.protocol.tokens_regenerated);
  integer("arbiter_takeovers", r.protocol.arbiter_takeovers);
  integer("quorum_blocked", r.protocol.quorum_blocked);
  integer("quorum_reconciles", r.protocol.quorum_reconciles);
  num("ttr_mean", r.time_to_recovery.mean());
  num("ttr_max", r.time_to_recovery.max());
  num("unavailability", r.unavailability);
  num("group_blocked_max", r.group_blocked_max);
  num("group_blocked_total", r.group_blocked_total);
  integer("partition_groups_blocked", r.partition_groups_blocked);
  num("messages_per_cs", r.messages_per_cs);
  integer("completed", r.completed);
  integer("submitted", r.submitted);
  line += ",\"drained\":";
  line += r.drained ? "true" : "false";
  line += "}";
  return line;
}

}  // namespace

int main() {
  using namespace dmx;
  // Not bench::print_header: this campaign is a single deterministic seed
  // with a staged cut, not a replicated sweep, so the shared
  // requests/seeds boilerplate would misdescribe it.
  std::cout << "\n=== Partition campaigns — quorumless vs. quorum-guarded "
               "regeneration ===\n"
               "Each cut runs twice: §6 as published (quorum off) and with "
               "the\nquorum guard (recovery_quorum=1).  'blocked max' is the "
               "worst single\npartition group's time from cut to its next "
               "completed CS.\n(N=10, 1000 requests, seed 42, deterministic "
               "cut at t=30, heal at t=60)\n\n";

  // Cut staging for seed 42 (deterministic): by t=30 the token and the
  // arbiter role sit inside {3,4} under this load, so the first cut
  // isolates the holder with a 2-node minority — the split-brain shape.
  // The second cut leaves the holder on the 8-node side; quorumless §6
  // *still* splits the brain there, because the 2-node minority's
  // arbiter-timeout watchdog self-elects and regenerates after silence —
  // minority size is no protection without a quorum rule.  The evidence
  // columns keep the staging honest: if the scenario drifts, "regens" /
  // "parks" drop to zero and the soundness gate below fails.
  const Scenario scenarios[] = {
      {"holder minority, §6 quorumless", "t=30 partition 3,4|0,1,2,5,6,7,8,9; t=60 heal",
       false},
      {"holder minority, quorum guard", "t=30 partition 3,4|0,1,2,5,6,7,8,9; t=60 heal",
       true},
      {"holder majority, §6 quorumless", "t=30 partition 0,1|2,3,4,5,6,7,8,9; t=60 heal",
       false},
      {"holder majority, quorum guard", "t=30 partition 0,1|2,3,4,5,6,7,8,9; t=60 heal",
       true},
  };

  const char* jsonl_path = std::getenv("DMX_BENCH_JSONL");
  std::ofstream jsonl;
  if (jsonl_path != nullptr) jsonl.open(jsonl_path);

  harness::Table table({"scenario", "safety", "regens", "parks", "reconciles",
                        "ttr max", "unavail", "blocked max", "msgs/cs",
                        "drained"});
  bool sound = true;
  std::uint64_t quorumless_minority_violations = 0;
  for (const Scenario& s : scenarios) {
    const auto r = harness::run_experiment(campaign_config(s));
    const bool minority_cut = std::string(s.plan).find("3,4|") !=
                              std::string::npos;
    if (s.quorum) {
      // The guarded rows must be safe, never regenerate over a live token,
      // and still drain after the heal.
      sound = sound && r.safety_violations == 0 &&
              r.protocol.tokens_regenerated == 0 && r.drained && !r.stalled;
      if (minority_cut) sound = sound && r.protocol.quorum_blocked >= 1;
    } else {
      sound = sound && r.drained && !r.stalled;
      if (minority_cut) {
        sound = sound && r.protocol.tokens_regenerated >= 1;
        quorumless_minority_violations = r.safety_violations;
      }
    }
    table.add_row(
        {s.name,
         r.safety_violations == 0
             ? "ok"
             : harness::Table::integer(r.safety_violations) + " VIOLATIONS",
         harness::Table::integer(r.protocol.tokens_regenerated),
         harness::Table::integer(r.protocol.quorum_blocked),
         harness::Table::integer(r.protocol.quorum_reconciles),
         harness::Table::num(r.time_to_recovery.max(), 3),
         harness::Table::num(r.unavailability, 3),
         harness::Table::num(r.group_blocked_max, 3),
         harness::Table::num(r.messages_per_cs, 3),
         r.drained ? "yes" : "NO"});
    if (jsonl.is_open()) jsonl << json_escape_free_row(s, r) << "\n";
  }
  table.print(std::cout);
  std::cout << "\nThe quorumless minority cut is the documented §6 hazard: "
            << quorumless_minority_violations
            << " overlapping CS pair(s) while two tokens were live.\n";

  // The campaign is sound when the guard rows are clean, the hazard rows
  // actually exhibit the hazard machinery (regeneration fired), and every
  // run drains after the heal.  The quorumless safety count is *reported*,
  // not gated: it is the documented failure mode, not a bench failure.
  return sound ? 0 : 1;
}
