// The paper's analytic results (Eq. 1-6, §3.1-3.2) validated by simulation
// across cluster sizes: messages per CS and service time at the light- and
// heavy-load extremes.
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Analytic bounds (Eq. 1-6) vs simulation",
      "Light load: lambda*N = 0.05 system-wide; heavy load: lambda*N = 20.\n"
      "T_msg = T_exec = T_req = T_fwd = 0.1 time units.");

  harness::Table table({"N", "M light (Eq.1)", "M light (sim)",
                        "M heavy (Eq.4)", "M heavy (sim)", "X light (Eq.3)",
                        "X light (sim)", "X heavy (Eq.6)", "X heavy (sim)"});
  const analysis::Timing t{0.1, 0.1, 0.1};
  for (std::size_t n : {5u, 10u, 20u, 50u, 100u}) {
    harness::ExperimentConfig light;
    light.n_nodes = n;
    light.lambda = 0.05 / static_cast<double>(n);
    light.seed = 1000 + n;
    // Very light load generates events slowly; cap the per-point cost.
    light.total_requests = std::min<std::uint64_t>(
        bench::requests_per_point(), 20'000);
    const auto pl = bench::summarize(
        harness::run_replicated(light, bench::replications()));

    harness::ExperimentConfig heavy;
    heavy.n_nodes = n;
    heavy.lambda = 20.0 / static_cast<double>(n);
    heavy.seed = 2000 + n;
    heavy.total_requests = bench::requests_per_point();
    const auto ph = bench::summarize(
        harness::run_replicated(heavy, bench::replications()));

    table.add_row({harness::Table::integer(n),
                   harness::Table::num(analysis::arbiter_messages_light(n), 3),
                   pl.messages.to_string(3),
                   harness::Table::num(analysis::arbiter_messages_heavy(n), 3),
                   ph.messages.to_string(3),
                   harness::Table::num(analysis::arbiter_service_light(n, t), 3),
                   pl.service.to_string(3),
                   harness::Table::num(analysis::arbiter_service_heavy(n, t), 3),
                   ph.service.to_string(3)});
  }
  table.print(std::cout);
  std::cout << "\nNote: Eq.(6) assumes the average queue position is N/2; "
               "under drain-mode saturation every node occupies every batch, "
               "so the simulated heavy-load delay runs slightly above the "
               "closed form, as expected.\n";
  return 0;
}
