// google-benchmark micro benchmarks of the simulation substrate, so users
// can size their own sweeps: event-queue throughput, network send/deliver
// cost, and an end-to-end simulated-CS rate for the core algorithm.
#include <benchmark/benchmark.h>

#include <memory>

#include "harness/experiment.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dmx::sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(dmx::sim::SimTime::ticks(static_cast<std::int64_t>(i % 1024)),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

struct NullHandler final : dmx::net::MessageHandler {
  std::uint64_t count = 0;
  void on_message(const dmx::net::Envelope&) override { ++count; }
};

struct PingPayload final : dmx::net::Payload {
  [[nodiscard]] std::string_view type_name() const override { return "PING"; }
};

void BM_NetworkSendDeliver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dmx::sim::Simulator sim;
    dmx::net::Network net(
        sim, 2,
        std::make_unique<dmx::net::ConstantDelay>(dmx::sim::SimTime::units(0.1)),
        1);
    NullHandler h0, h1;
    net.attach(dmx::net::NodeId{0}, &h0);
    net.attach(dmx::net::NodeId{1}, &h1);
    auto payload = dmx::net::make_payload<PingPayload>();
    for (std::size_t i = 0; i < n; ++i) {
      net.send(dmx::net::NodeId{0}, dmx::net::NodeId{1}, payload);
    }
    sim.run();
    benchmark::DoNotOptimize(h1.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NetworkSendDeliver)->Arg(1 << 10)->Arg(1 << 14);

void BM_ArbiterEndToEnd(benchmark::State& state) {
  const auto requests = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    dmx::harness::ExperimentConfig cfg;
    cfg.n_nodes = 10;
    cfg.lambda = 0.5;
    cfg.total_requests = requests;
    cfg.seed = 42;
    const auto r = dmx::harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests));
  state.SetLabel("simulated CS grants");
}
BENCHMARK(BM_ArbiterEndToEnd)->Arg(2'000)->Arg(20'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
