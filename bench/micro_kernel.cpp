// google-benchmark micro benchmarks of the simulation substrate, so users
// can size their own sweeps: event-queue throughput, network send/deliver
// cost, message dispatch (legacy cast chain vs kind table), per-type stats
// counters, and an end-to-end simulated-CS rate for the core algorithm.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "obs/event.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"
#include "runtime/dispatch.hpp"
#include "sim/simulator.hpp"
#include "stats/counter_map.hpp"
#include "stats/kind_counter.hpp"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dmx::sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(dmx::sim::SimTime::ticks(static_cast<std::int64_t>(i % 1024)),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

struct NullHandler final : dmx::net::MessageHandler {
  std::uint64_t count = 0;
  void on_message(const dmx::net::Envelope&) override { ++count; }
};

struct PingPayload final : dmx::net::Msg<PingPayload> {
  DMX_REGISTER_MESSAGE(PingPayload, "PING");
};

void BM_NetworkSendDeliver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dmx::sim::Simulator sim;
    dmx::net::Network net(
        sim, 2,
        std::make_unique<dmx::net::ConstantDelay>(dmx::sim::SimTime::units(0.1)),
        1);
    NullHandler h0, h1;
    net.attach(dmx::net::NodeId{0}, &h0);
    net.attach(dmx::net::NodeId{1}, &h1);
    auto payload = dmx::net::make_payload<PingPayload>();
    for (std::size_t i = 0; i < n; ++i) {
      net.send(dmx::net::NodeId{0}, dmx::net::NodeId{1}, payload);
    }
    sim.run();
    benchmark::DoNotOptimize(h1.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NetworkSendDeliver)->Arg(1 << 10)->Arg(1 << 14);

// --- message dispatch: legacy dynamic_cast chain vs kind-indexed table ------
//
// Ten payload types, matching the arbiter protocol's message count.  The
// legacy path probes types in a fixed order (average hit position 5.5, like
// the old per-algorithm handle() chains); the kind path is one table index.

struct Bm0 final : dmx::net::Msg<Bm0> { DMX_REGISTER_MESSAGE(Bm0, "BENCH-0"); std::uint64_t v = 0; };
struct Bm1 final : dmx::net::Msg<Bm1> { DMX_REGISTER_MESSAGE(Bm1, "BENCH-1"); std::uint64_t v = 1; };
struct Bm2 final : dmx::net::Msg<Bm2> { DMX_REGISTER_MESSAGE(Bm2, "BENCH-2"); std::uint64_t v = 2; };
struct Bm3 final : dmx::net::Msg<Bm3> { DMX_REGISTER_MESSAGE(Bm3, "BENCH-3"); std::uint64_t v = 3; };
struct Bm4 final : dmx::net::Msg<Bm4> { DMX_REGISTER_MESSAGE(Bm4, "BENCH-4"); std::uint64_t v = 4; };
struct Bm5 final : dmx::net::Msg<Bm5> { DMX_REGISTER_MESSAGE(Bm5, "BENCH-5"); std::uint64_t v = 5; };
struct Bm6 final : dmx::net::Msg<Bm6> { DMX_REGISTER_MESSAGE(Bm6, "BENCH-6"); std::uint64_t v = 6; };
struct Bm7 final : dmx::net::Msg<Bm7> { DMX_REGISTER_MESSAGE(Bm7, "BENCH-7"); std::uint64_t v = 7; };
struct Bm8 final : dmx::net::Msg<Bm8> { DMX_REGISTER_MESSAGE(Bm8, "BENCH-8"); std::uint64_t v = 8; };
struct Bm9 final : dmx::net::Msg<Bm9> { DMX_REGISTER_MESSAGE(Bm9, "BENCH-9"); std::uint64_t v = 9; };

struct DispatchTarget {
  std::uint64_t sum = 0;
  void on0(const dmx::net::Envelope&, const Bm0& m) { sum += m.v; }
  void on1(const dmx::net::Envelope&, const Bm1& m) { sum += m.v; }
  void on2(const dmx::net::Envelope&, const Bm2& m) { sum += m.v; }
  void on3(const dmx::net::Envelope&, const Bm3& m) { sum += m.v; }
  void on4(const dmx::net::Envelope&, const Bm4& m) { sum += m.v; }
  void on5(const dmx::net::Envelope&, const Bm5& m) { sum += m.v; }
  void on6(const dmx::net::Envelope&, const Bm6& m) { sum += m.v; }
  void on7(const dmx::net::Envelope&, const Bm7& m) { sum += m.v; }
  void on8(const dmx::net::Envelope&, const Bm8& m) { sum += m.v; }
  void on9(const dmx::net::Envelope&, const Bm9& m) { sum += m.v; }
};

const dmx::runtime::MsgDispatcher<DispatchTarget>& bench_dispatch_table() {
  static const auto kTable = [] {
    dmx::runtime::MsgDispatcher<DispatchTarget> t;
    t.on<&DispatchTarget::on0>().on<&DispatchTarget::on1>()
        .on<&DispatchTarget::on2>().on<&DispatchTarget::on3>()
        .on<&DispatchTarget::on4>().on<&DispatchTarget::on5>()
        .on<&DispatchTarget::on6>().on<&DispatchTarget::on7>()
        .on<&DispatchTarget::on8>().on<&DispatchTarget::on9>();
    return t;
  }();
  return kTable;
}

// The pre-refactor dispatch idiom: probe each type in turn with a
// dynamic_cast until one matches.
void cast_chain_dispatch(DispatchTarget& t, const dmx::net::Envelope& env) {
  const dmx::net::Payload* p = env.payload.get();
  if (const auto* m = dynamic_cast<const Bm0*>(p)) { t.on0(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm1*>(p)) { t.on1(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm2*>(p)) { t.on2(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm3*>(p)) { t.on3(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm4*>(p)) { t.on4(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm5*>(p)) { t.on5(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm6*>(p)) { t.on6(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm7*>(p)) { t.on7(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm8*>(p)) { t.on8(env, *m); return; }
  if (const auto* m = dynamic_cast<const Bm9*>(p)) { t.on9(env, *m); return; }
}

/// A deterministic pseudo-random mix of the ten bench message types, so
/// neither path gets a branch-predictor-friendly repeating pattern.
std::vector<dmx::net::Envelope> make_bench_envelopes(std::size_t n) {
  std::vector<dmx::net::Envelope> envs;
  envs.reserve(n);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift64
    dmx::net::Envelope env;
    env.src = dmx::net::NodeId{0};
    env.dst = dmx::net::NodeId{1};
    switch (x % 10) {
      case 0: env.payload = dmx::net::make_payload<Bm0>(); break;
      case 1: env.payload = dmx::net::make_payload<Bm1>(); break;
      case 2: env.payload = dmx::net::make_payload<Bm2>(); break;
      case 3: env.payload = dmx::net::make_payload<Bm3>(); break;
      case 4: env.payload = dmx::net::make_payload<Bm4>(); break;
      case 5: env.payload = dmx::net::make_payload<Bm5>(); break;
      case 6: env.payload = dmx::net::make_payload<Bm6>(); break;
      case 7: env.payload = dmx::net::make_payload<Bm7>(); break;
      case 8: env.payload = dmx::net::make_payload<Bm8>(); break;
      default: env.payload = dmx::net::make_payload<Bm9>(); break;
    }
    envs.push_back(std::move(env));
  }
  return envs;
}

void BM_MessageDispatchCastChain(benchmark::State& state) {
  const auto envs = make_bench_envelopes(4096);
  DispatchTarget t;
  for (auto _ : state) {
    for (const auto& env : envs) cast_chain_dispatch(t, env);
    benchmark::DoNotOptimize(t.sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(envs.size()));
}
BENCHMARK(BM_MessageDispatchCastChain);

void BM_MessageDispatchKindTable(benchmark::State& state) {
  const auto envs = make_bench_envelopes(4096);
  const auto& table = bench_dispatch_table();
  DispatchTarget t;
  for (auto _ : state) {
    for (const auto& env : envs) table.dispatch(t, env);
    benchmark::DoNotOptimize(t.sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(envs.size()));
}
BENCHMARK(BM_MessageDispatchKindTable);

// --- per-type send statistics: string-keyed map vs kind-indexed vector ------

void BM_StatsCounterStringMap(benchmark::State& state) {
  const auto envs = make_bench_envelopes(4096);
  dmx::stats::CounterMap counts;
  for (auto _ : state) {
    for (const auto& env : envs) {
      counts.increment(std::string(env.payload->type_name()));
    }
    benchmark::DoNotOptimize(counts.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(envs.size()));
}
BENCHMARK(BM_StatsCounterStringMap);

void BM_StatsCounterKindVector(benchmark::State& state) {
  const auto envs = make_bench_envelopes(4096);
  dmx::stats::KindCounter counts;
  for (auto _ : state) {
    for (const auto& env : envs) {
      counts.increment(env.payload->kind().index());
    }
    benchmark::DoNotOptimize(counts.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(envs.size()));
}
BENCHMARK(BM_StatsCounterKindVector);

// --- trace emission: the disabled branch, and two enabled sink paths --------
//
// The disabled path is the one every protocol hot loop pays when tracing is
// off: it must be a single predictable branch, no Event construction, no
// formatting.  The enabled paths size the cost of capturing (a counting
// null sink isolates the chain itself; the JSONL sink adds serialization).

DMX_REGISTER_EVENT(kEvBench, "bench.emit", "bench");

struct TraceEmitter {
  dmx::obs::Tracer tracer;
  dmx::sim::SimTime now;
  std::int32_t node = 3;

  // Mirrors the emit helpers on Process / CsDriver: guard, then construct.
  void emit(std::uint64_t req, std::int64_t arg) {
    if (!tracer.enabled()) return;
    tracer.write(dmx::obs::Event{now, kEvBench, node, req, arg, 0.0});
  }
  void emitf(std::uint64_t req, std::int64_t arg) {
    if (!tracer.enabled()) return;
    const auto fmt = [arg] { return "arg is " + std::to_string(arg); };
    tracer.write(dmx::obs::Event{now, kEvBench, node, req, arg, 0.0},
                 dmx::obs::DetailRef(fmt));
  }
};

struct CountingSink final : dmx::obs::Sink {
  std::uint64_t events = 0;
  void on_event(const dmx::obs::Event&, const dmx::obs::DetailRef&) override {
    ++events;
  }
};

void BM_TraceEmitDisabled(benchmark::State& state) {
  TraceEmitter e;  // default tracer: disabled
  std::uint64_t req = 0;
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) e.emit(++req, i);
    benchmark::DoNotOptimize(req);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TraceEmitDisabled);

void BM_TraceEmitDisabledWithFormatter(benchmark::State& state) {
  TraceEmitter e;
  std::uint64_t req = 0;
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) e.emitf(++req, i);
    benchmark::DoNotOptimize(req);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TraceEmitDisabledWithFormatter);

void BM_TraceEmitCountingSink(benchmark::State& state) {
  auto sink = std::make_shared<CountingSink>();
  TraceEmitter e{dmx::obs::Tracer(sink), dmx::sim::SimTime::units(1.0)};
  std::uint64_t req = 0;
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) e.emitf(++req, i);
    benchmark::DoNotOptimize(sink->events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TraceEmitCountingSink);

void BM_TraceEmitJsonlSink(benchmark::State& state) {
  std::ostringstream os;
  auto sink = std::make_shared<dmx::obs::JsonlSink>(os);
  TraceEmitter e{dmx::obs::Tracer(sink), dmx::sim::SimTime::units(1.0)};
  std::uint64_t req = 0;
  for (auto _ : state) {
    os.str({});  // keep the buffer from growing without bound
    for (int i = 0; i < 4096; ++i) e.emitf(++req, i);
    sink->flush();
    benchmark::DoNotOptimize(os);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TraceEmitJsonlSink);

void BM_ArbiterEndToEnd(benchmark::State& state) {
  const auto requests = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    dmx::harness::ExperimentConfig cfg;
    cfg.n_nodes = 10;
    cfg.lambda = 0.5;
    cfg.total_requests = requests;
    cfg.seed = 42;
    const auto r = dmx::harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests));
  state.SetLabel("simulated CS grants");
}
BENCHMARK(BM_ArbiterEndToEnd)->Arg(2'000)->Arg(20'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
