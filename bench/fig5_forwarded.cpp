// Figure 5: fraction of forwarded request messages vs per-node arrival
// rate, for T_req = 0.1 and 0.2.
//
// Paper expectations: the fraction is small (the paper observed at most a
// few percent), becomes negligible at very high loads, and is lower for the
// longer collection window (more requests land inside the window).
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Figure 5 — fraction of forwarded request messages (N = 10)",
      "Two accountings: forwarded / REQUEST transmissions, and forwarded /\n"
      "ALL messages (the paper's \"a maximum of 4%% of messages were "
      "forwarded\").\nSeries: T_req = 0.1 and 0.2.");

  harness::Table table({"lambda", "fwd/req (Treq=0.1)", "fwd/req (Treq=0.2)",
                        "fwd/all (Treq=0.1)", "fwd/all (Treq=0.2)"});
  for (double lam : bench::lambda_grid()) {
    std::vector<std::string> row{harness::Table::num(lam, 2)};
    std::vector<std::string> all_cols;
    for (double t_req : {0.1, 0.2}) {
      harness::ExperimentConfig cfg;
      cfg.algorithm = "arbiter-tp";
      cfg.n_nodes = 10;
      cfg.lambda = lam;
      cfg.params.set("t_req", t_req).set("t_fwd", 0.1);
      const auto p = bench::run_point(cfg);
      row.push_back(p.forwarded_fraction.to_string(4));
      all_cols.push_back(p.forwarded_fraction_all.to_string(4));
    }
    row.insert(row.end(), all_cols.begin(), all_cols.end());
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: rises through moderate load, negligible at "
               "high load,\nlower for the longer collection window.\n";
  return 0;
}
