// §6 chaos campaigns: the paper's four failure scenarios — lost token, lost
// request, crashed token holder, crashed arbiter — each scripted as a seeded
// fault plan and measured as first-class robustness output: time-to-recovery
// and unavailability, with the protocol's own recovery evidence (token
// regenerations, arbiter takeovers) alongside.
//
// A final part runs a deliberately broken plan (crash the epoch-1 arbiter
// with recovery machinery off — nobody monitors the initial arbiter, so the
// cluster cannot heal) and shows the progress monitor catching the stall
// with a per-node diagnosis instead of burning the wall-clock backstop.
#include "bench_common.hpp"

namespace {

struct Scenario {
  const char* name;
  const char* plan;
  bool recovery;  ///< Recovery machinery on?
};

dmx::harness::ExperimentConfig campaign_config(const Scenario& s) {
  dmx::harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 10;
  cfg.lambda = 0.3;
  cfg.seed = 42;
  cfg.total_requests = 2'000;
  if (s.recovery) {
    cfg.params.set("recovery", 1.0)
        .set("token_timeout", 3.0)
        .set("enquiry_timeout", 1.0)
        .set("arbiter_timeout", 6.0)
        .set("probe_timeout", 1.0)
        .set("resubmit_after_misses", 1.0)
        .set("request_retry_timeout", 5.0);
  }
  cfg.fault_plan = s.plan;
  cfg.max_sim_units = 1e7;
  return cfg;
}

}  // namespace

int main() {
  using namespace dmx;
  bench::print_header(
      "Chaos campaigns (§6) — scripted failure scenarios, recovery measured",
      "Each row is one seeded fault plan against arbiter-tp with recovery "
      "on.\nTTR = fault injection to the next completed critical section; "
      "unavail = union\nof open recovery windows.");

  // Crash targets are staged for seed 42 at lambda 0.3 (the simulator is
  // deterministic, so these stay stable): at t=30 node 5 holds the token as
  // a plain requester — crashing it loses the token and forces a
  // regeneration; at t=50 node 3 is the current arbiter — crashing it
  // additionally forces the previous arbiter's probe watchdog to take over.
  // The regen/takeover evidence columns keep the staging honest — a drifted
  // scenario shows up as zeros there (and the bench would still pass only
  // if every fault recovers).
  const Scenario scenarios[] = {
      {"lost token", "t=50 lose-next PRIVILEGE", true},
      {"lost request", "t=50 lose-next REQUEST", true},
      {"crashed holder", "t=30 crash 5; t=60 restart 5", true},
      {"crashed arbiter", "t=50 crash 3; t=80 restart 3", true},
  };

  harness::Table table({"scenario", "faults", "recovered", "ttr mean",
                        "ttr max", "unavail", "regens", "takeovers", "stall",
                        "drained", "safety"});
  bool sound = true;
  for (const Scenario& s : scenarios) {
    const auto r = harness::run_experiment(campaign_config(s));
    sound = sound && !r.stalled && r.drained && r.safety_violations == 0;
    table.add_row(
        {s.name, harness::Table::integer(r.faults_injected),
         harness::Table::integer(r.faults_recovered),
         harness::Table::num(r.time_to_recovery.mean(), 3),
         harness::Table::num(r.time_to_recovery.max(), 3),
         harness::Table::num(r.unavailability, 3),
         harness::Table::integer(r.protocol.tokens_regenerated),
         harness::Table::integer(r.protocol.arbiter_takeovers),
         r.stalled ? "STALL" : "no", r.drained ? "yes" : "NO",
         r.safety_violations == 0 ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);

  std::cout << "\nPart B: a plan the protocol cannot survive "
               "(recovery off, epoch-1 arbiter crashed)\n";
  Scenario broken{"broken", "t=0.05 crash 0", false};
  auto cfg = campaign_config(broken);
  cfg.total_requests = 200;
  const auto r = harness::run_experiment(cfg);
  std::cout << (r.stalled ? "progress monitor caught the stall at t="
                          : "UNEXPECTED: no stall; run ended at t=")
            << harness::Table::num(r.stall_time > 0 ? r.stall_time
                                                    : r.sim_duration_units,
                                   3)
            << "\n"
            << r.stall_diagnosis << "\n";
  // The broken plan is *supposed* to stall; the bench fails if it does not,
  // or if any recoverable scenario above failed to recover.
  return (sound && r.stalled) ? 0 : 1;
}
