// §5.1 fairness claims:
//  (1) FCFS service: under equal per-node load, per-node throughput is equal.
//  (2) Load balance: the arbiter role is shared, and the probability of
//      serving as arbiter scales with a node's request rate ("only the nodes
//      that request for the critical section are likely to be assigned the
//      responsibility of being an arbiter").
// Plus the §2.4 sequence-number ordering ablation.
#include <cmath>

#include "bench_common.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace {

// Run arbiter-tp with per-node Poisson rates and report per-node CS counts
// and arbiter-term counts.
struct HeteroResult {
  std::vector<std::uint64_t> completions;
  std::vector<std::uint64_t> arbiter_terms;
};

HeteroResult run_hetero(const std::vector<double>& rates,
                        std::uint64_t total_requests, std::uint64_t seed) {
  using namespace dmx;
  harness::register_builtin_algorithms();
  const std::size_t n = rates.size();
  runtime::Cluster cluster(
      n, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), seed);
  mutex::ParamSet params;
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<mutex::MutexAlgorithm*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId nid{static_cast<std::int32_t>(i)};
    mutex::FactoryContext ctx{nid, n, params};
    auto a = mutex::Registry::instance().create("arbiter-tp", ctx);
    algos.push_back(a.get());
    cluster.install(nid, std::move(a));
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *algos.back(), sim::SimTime::units(0.1),
        &monitor, &ids));
  }
  std::vector<mutex::CsDriver*> dp;
  std::vector<std::unique_ptr<workload::ArrivalProcess>> ap;
  for (std::size_t i = 0; i < n; ++i) {
    dp.push_back(drivers[i].get());
    ap.push_back(std::make_unique<workload::PoissonArrivals>(rates[i]));
  }
  workload::OpenLoopGenerator gen(cluster.simulator(), dp, std::move(ap),
                                  total_requests, seed);
  cluster.start();
  gen.start();
  cluster.simulator().run();
  HeteroResult out;
  for (std::size_t i = 0; i < n; ++i) {
    out.completions.push_back(drivers[i]->completed());
    out.arbiter_terms.push_back(
        dynamic_cast<core::ArbiterMutex*>(algos[i])->times_arbiter());
  }
  return out;
}

}  // namespace

int main() {
  using namespace dmx;
  bench::print_header(
      "Fairness and load balance (§5.1)",
      "Part A: equal rates — per-node completions and arbiter terms.\n"
      "Part B: heterogeneous rates — arbiter share follows request share.");

  const std::uint64_t total = bench::requests_per_point();

  {
    std::cout << "Part A: 10 nodes, equal lambda = 0.3\n";
    const auto r = run_hetero(std::vector<double>(10, 0.3), total, 11);
    harness::Table table({"node", "completions", "arbiter terms"});
    for (std::size_t i = 0; i < 10; ++i) {
      table.add_row({harness::Table::integer(i),
                     harness::Table::integer(r.completions[i]),
                     harness::Table::integer(r.arbiter_terms[i])});
    }
    table.print(std::cout);
    double mean = 0, var = 0;
    for (auto c : r.completions) mean += static_cast<double>(c) / 10.0;
    for (auto c : r.completions) {
      var += (static_cast<double>(c) - mean) * (static_cast<double>(c) - mean) / 10.0;
    }
    std::cout << "completions mean=" << mean
              << " cv=" << std::sqrt(var) / mean << " (FCFS fairness)\n\n";
  }

  {
    std::cout << "Part B: 10 nodes, lambda_i proportional to (i+1)\n";
    std::vector<double> rates;
    double sum = 0;
    for (int i = 0; i < 10; ++i) {
      rates.push_back(0.02 * (i + 1));
      sum += rates.back();
    }
    const auto r = run_hetero(rates, total, 13);
    std::uint64_t terms_total = 0;
    for (auto t : r.arbiter_terms) terms_total += t;
    harness::Table table(
        {"node", "request share", "completion share", "arbiter share"});
    std::uint64_t comp_total = 0;
    for (auto c : r.completions) comp_total += c;
    for (std::size_t i = 0; i < 10; ++i) {
      table.add_row(
          {harness::Table::integer(i),
           harness::Table::num(rates[i] / sum, 3),
           harness::Table::num(static_cast<double>(r.completions[i]) /
                                   static_cast<double>(comp_total), 3),
           harness::Table::num(static_cast<double>(r.arbiter_terms[i]) /
                                   static_cast<double>(terms_total), 3)});
    }
    table.print(std::cout);
    std::cout << "Expected: arbiter share tracks request share — idle nodes "
                 "do no arbitration work.\n\n";
  }

  {
    std::cout << "Part C: FCFS vs sequence-number ordering (§2.4 ablation), "
                 "lambda = 0.5\n";
    harness::Table table({"order", "msgs/cs", "mean delay", "p?max/mean "
                                                            "completions"});
    for (const char* order : {"fcfs", "sequence"}) {
      harness::ExperimentConfig cfg;
      cfg.algorithm = "arbiter-tp";
      cfg.n_nodes = 10;
      cfg.lambda = 0.5;
      cfg.params.set("order", std::string(order))
          .set("sequenced", order == std::string("sequence") ? 1.0 : 0.0);
      cfg.total_requests = total;
      const auto r = harness::run_experiment(cfg);
      std::uint64_t cmax = 0, csum = 0;
      for (auto c : r.completions_per_node) {
        cmax = std::max(cmax, c);
        csum += c;
      }
      table.add_row(
          {order, harness::Table::num(r.messages_per_cs, 3),
           harness::Table::num(r.service_time.mean(), 3),
           harness::Table::num(static_cast<double>(cmax) * 10.0 /
                                   static_cast<double>(csum), 3)});
    }
    table.print(std::cout);
  }
  return 0;
}
