// Figure 6: messages per CS vs arrival rate — the proposed algorithm
// against Ricart–Agrawala (static class) and Singhal's dynamic
// information-structure algorithm (dynamic class).
//
// Paper expectations: ours beats Ricart–Agrawala at every load, and beats
// the dynamic algorithm everywhere except at very low loads (where shrunken
// dynamic request sets are cheaper than our ~N messages).
#include "bench_common.hpp"

int main() {
  using namespace dmx;
  bench::print_header(
      "Figure 6 — comparison with other algorithms (messages per CS, N = 10)",
      "Series: arbiter-tp (this paper), ricart-agrawala (static class),\n"
      "singhal (dynamic class).  R-A analytic: 2(N-1) = 18 at every load.");

  const std::vector<std::string> algos = {"arbiter-tp", "ricart-agrawala",
                                          "singhal"};
  harness::Table table(
      {"lambda", "arbiter-tp", "ricart-agrawala", "singhal dynamic"});
  for (double lam : bench::lambda_grid()) {
    std::vector<std::string> row{harness::Table::num(lam, 2)};
    for (const auto& algo : algos) {
      harness::ExperimentConfig cfg;
      cfg.algorithm = algo;
      cfg.n_nodes = 10;
      cfg.lambda = lam;
      const auto p = bench::run_point(cfg);
      row.push_back(p.messages.to_string(2));
      if (p.safety_violations > 0 || !p.all_drained) row.back() += " [UNSOUND]";
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
