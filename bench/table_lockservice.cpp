// Sharded lock-service scaling ladder: Zipf-skewed demand over hundreds to
// thousands of resources, mixed per-shard protocols, SLO-style reporting.
//
// The paper's evaluation guards ONE critical section; the ROADMAP's
// lock-manager scenario guards thousands.  Each ladder rung Zipf-splits the
// aggregate demand over more resources: hot shards (demand at or above the
// per-shard mean) run the paper's arbiter token-passing with a full client
// population, the long cold tail runs Raymond's tree algorithm over a
// smaller one.  Per-shard SLOs come from the obs/span.hpp lifecycle
// decomposition (grant_wait = submit -> granted): the table reports the
// service-wide worst p99 time-to-grant, the hottest shard's p99, and the
// worst per-tenant Jain fairness.
//
// Every rung runs twice — serially and fanned over a worker pool
// (harness::ParallelRunner) — and the two dmx.run.v1 manifests must be
// BYTE-IDENTICAL: shards are independent simulators seeded by shard index,
// so parallelism is an execution knob, not a result knob.  The exit code
// gates on that identity plus zero safety violations and full drains
// (scripts/lockservice_smoke.sh and BENCH_9.json consume it).
//
// Environment knobs (bench_common.hpp conventions):
//   DMX_BENCH_LS_RESOURCES  top-rung resource count      (default 1000)
//   DMX_BENCH_REQUESTS      aggregate demand per rung    (default 100000)
//   DMX_BENCH_LS_ZIPF       Zipf skew                    (default 0.9)
//   DMX_BENCH_JOBS          parallel-leg workers         (default 2;
//                           0 = one per hardware thread)
//   DMX_BENCH_JSONL         per-rung JSON row dump
#include <chrono>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "harness/lock_service.hpp"
#include "harness/manifest.hpp"

namespace {

std::size_t ls_resources() {
  if (const char* env = std::getenv("DMX_BENCH_LS_RESOURCES")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 1000;
}

double ls_zipf() {
  if (const char* env = std::getenv("DMX_BENCH_LS_ZIPF")) {
    return std::strtod(env, nullptr);
  }
  return 0.9;
}

dmx::harness::LockServiceConfig rung_config(std::size_t resources,
                                            std::uint64_t demands) {
  dmx::harness::LockServiceConfig ls;
  ls.n_resources = resources;
  ls.zipf_s = ls_zipf();
  ls.total_demands = demands;
  ls.hot_algorithm = "arbiter-tp";
  ls.cold_algorithm = "path-reversal";
  ls.hot_nodes = 16;
  ls.cold_nodes = 4;
  ls.think_mean = 1.0;
  ls.batch_size = 16;
  ls.seed = 42;
  return ls;
}

/// Canonical byte-fingerprint of one run: the dmx.run.v1 manifest with the
/// full per-shard lock_service block — the exact artifact the CLI emits.
/// cfg.jobs is deliberately not serialized (PR 5), so serial and parallel
/// legs fingerprint over identical inputs.
std::string fingerprint(const dmx::harness::LockServiceConfig& ls,
                        const dmx::harness::LockServiceReport& report) {
  dmx::harness::ExperimentConfig cfg;
  cfg.algorithm = ls.hot_algorithm;
  cfg.n_nodes = ls.hot_nodes;
  cfg.lambda = 1.0 / ls.think_mean;
  cfg.total_requests = ls.total_demands;
  cfg.t_msg = ls.t_msg;
  cfg.t_exec = ls.t_exec;
  cfg.seed = ls.seed;
  cfg.n_resources = ls.n_resources;
  cfg.zipf_s = ls.zipf_s;
  cfg.shard_algo_hot = ls.hot_algorithm;
  cfg.shard_algo_cold = ls.cold_algorithm;
  dmx::harness::ExperimentResult result;
  result.algorithm = "lock-service";
  result.submitted = report.total_demands;
  result.completed = report.total_completed;
  result.messages_total = report.total_messages;
  result.messages_per_cs = report.messages_per_cs;
  result.safety_violations = report.safety_violations;
  result.drained = report.drained;
  result.lock_service =
      std::make_shared<const dmx::harness::LockServiceReport>(report);
  std::ostringstream os;
  dmx::harness::write_run_manifest(os, {dmx::harness::RunRecord{cfg, result}});
  return os.str();
}

double run_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace dmx;
  const std::size_t top = ls_resources();
  const std::uint64_t demands = bench::requests_per_point();
  std::size_t parallel_jobs = 2;
  if (const char* env = std::getenv("DMX_BENCH_JOBS")) {
    parallel_jobs = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }

  std::cout << "\n=== Sharded lock service — Zipf(" << ls_zipf()
            << ") demand over a resource ladder ===\n"
               "Hot shards (demand >= mean) run arbiter-tp/16 clients, the "
               "cold tail\npath-reversal/4.  grant p99 is the per-shard "
               "time-to-grant SLO (submit -> granted,\nspan grant_wait "
               "phase); fairness is Jain's index over per-client "
               "completions.\nEach rung runs serial and with "
            << (parallel_jobs == 0 ? std::string("hardware")
                                   : std::to_string(parallel_jobs))
            << " workers; manifests must be byte-identical.\n"
               "(aggregate demand/rung="
            << demands << ", seed 42)\n\n";

  std::vector<std::size_t> ladder;
  for (const std::size_t r : {top / 64, top / 8, top}) {
    if (r >= 2 && (ladder.empty() || r > ladder.back())) ladder.push_back(r);
  }

  const char* jsonl_path = std::getenv("DMX_BENCH_JSONL");
  std::ofstream jsonl;
  if (jsonl_path != nullptr) jsonl.open(jsonl_path);

  harness::Table table({"resources", "hot", "completed", "msgs/cs",
                        "hot0 p99", "worst p99", "min fairness", "safety",
                        "drained", "serial ms", "jobs ms", "identical"});
  bool sound = true;
  harness::LockServiceReport final_report;
  for (const std::size_t resources : ladder) {
    harness::LockServiceConfig ls = rung_config(resources, demands);
    harness::LockServiceReport serial, parallel;
    ls.jobs = 1;
    const double serial_ms = run_ms([&] { serial = run_lock_service(ls); });
    ls.jobs = parallel_jobs;
    const double jobs_ms = run_ms([&] { parallel = run_lock_service(ls); });
    const bool identical =
        fingerprint(ls, serial) == fingerprint(ls, parallel);

    // Mixed per-shard algorithms must actually be exercised: at least one
    // hot and one cold shard per rung (the Zipf head/tail split).
    const bool mixed = serial.hot_shards >= 1 &&
                       serial.hot_shards < serial.shards.size();
    sound = sound && identical && mixed && serial.drained &&
            serial.safety_violations == 0;

    table.add_row({harness::Table::integer(resources),
                   harness::Table::integer(serial.hot_shards),
                   harness::Table::integer(serial.total_completed),
                   harness::Table::num(serial.messages_per_cs, 3),
                   harness::Table::num(serial.shards[0].grant_p99, 3),
                   harness::Table::num(serial.grant_p99_worst, 3),
                   harness::Table::num(serial.fairness_min, 4),
                   serial.safety_violations == 0 ? "ok" : "VIOLATED",
                   serial.drained ? "yes" : "NO",
                   harness::Table::num(serial_ms, 1),
                   harness::Table::num(jobs_ms, 1),
                   identical ? "yes" : "NO"});
    if (jsonl.is_open()) {
      jsonl << "{\"resources\":" << resources << ",\"demands\":" << demands
            << ",\"zipf_s\":" << harness::Table::num(ls_zipf(), 3)
            << ",\"hot_shards\":" << serial.hot_shards
            << ",\"completed\":" << serial.total_completed
            << ",\"messages_per_cs\":"
            << harness::Table::num(serial.messages_per_cs, 6)
            << ",\"grant_p99_hot0\":"
            << harness::Table::num(serial.shards[0].grant_p99, 6)
            << ",\"grant_p99_worst\":"
            << harness::Table::num(serial.grant_p99_worst, 6)
            << ",\"fairness_min\":"
            << harness::Table::num(serial.fairness_min, 6)
            << ",\"safety_violations\":" << serial.safety_violations
            << ",\"drained\":" << (serial.drained ? "true" : "false")
            << ",\"byte_identical\":" << (identical ? "true" : "false")
            << ",\"wall_ms_serial\":" << harness::Table::num(serial_ms, 1)
            << ",\"wall_ms_jobs\":" << harness::Table::num(jobs_ms, 1)
            << "}\n";
    }
    if (resources == ladder.back()) final_report = std::move(serial);
  }
  table.print(std::cout);

  // Drill-down: the head of the Zipf ranking at the top rung.
  std::cout << "\nhottest shards at " << ladder.back() << " resources:\n";
  harness::Table detail({"shard", "algo", "clients", "demand", "completed",
                         "msgs/cs", "grant p50", "grant p99", "fairness"});
  const std::size_t head =
      std::min<std::size_t>(final_report.shards.size(), 8);
  for (std::size_t r = 0; r < head; ++r) {
    const harness::ShardResult& s = final_report.shards[r];
    detail.add_row({harness::Table::integer(s.resource), s.algorithm,
                    harness::Table::integer(s.nodes),
                    harness::Table::integer(s.demand),
                    harness::Table::integer(s.completed),
                    harness::Table::num(s.messages_per_cs, 3),
                    harness::Table::num(s.grant_p50, 3),
                    harness::Table::num(s.grant_p99, 3),
                    harness::Table::num(s.fairness, 4)});
  }
  detail.print(std::cout);

  std::cout << "\nThe ladder is sound when every rung drains with zero "
               "safety violations,\nexercises both shard algorithms, and "
               "serial vs. pooled manifests match byte\nfor byte.\n";
  return sound ? 0 : 1;
}
