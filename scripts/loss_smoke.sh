#!/usr/bin/env bash
# Loss smoke: one seeded lossy campaign (random loss + a reordering window
# + targeted duplication) per algorithm family, running over the reliable
# transport (--transport reliable).  Every run must stay safe
# (SafetyMonitor), live (ProgressMonitor: zero stalls) and drained — the
# transport's acks, backoff retransmission and dedup are what turn a lossy
# network back into the lossless FIFO channel the baselines assume.
#
# Unlike chaos_smoke.sh, no algorithm is excluded and no quiet-window
# staging is needed: message loss is exactly the fault class the transport
# repairs, so token-ring and raymond run the same campaign as everyone
# else.  The simulator is deterministic, so these pinned combos are stable.
#
# Usage: scripts/loss_smoke.sh <path-to-dmx_sweep>
set -u

SWEEP="${1:?usage: loss_smoke.sh <path-to-dmx_sweep>}"
FAILURES=0

LOSS_PLAN="t=5 loss *=0.2 until=60; reorder-window t=10..30; t=12 dup-next RT-ACK"

run_clean() {
  local label="$1"; shift
  echo "=== loss smoke: ${label}"
  if ! out=$("$SWEEP" --transport reliable --fault "$LOSS_PLAN" "$@" 2>&1); then
    echo "$out"
    echo "FAIL: ${label} — lossy campaign did not stay clean (stall, undrained, or unsafe)"
    FAILURES=$((FAILURES + 1))
  else
    echo "$out" | sed -n '1,6p'
    echo "ok: ${label}"
  fi
  echo
}

# The paper's algorithm and its starvation-free variant.
run_clean "arbiter-tp" \
  --algo arbiter-tp --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "arbiter-tp-sf" \
  --algo arbiter-tp-sf --n 5 --lambda 0.3 --requests 300 --seeds 2

# One representative per baseline family: coordinator, broadcast token,
# ring token, tree token, permission-broadcast, quorum, dynamic
# information-structure.
run_clean "centralized" \
  --algo centralized --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "suzuki-kasami" \
  --algo suzuki-kasami --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "token-ring" \
  --algo token-ring --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "raymond" \
  --algo raymond --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "ricart-agrawala" \
  --algo ricart-agrawala --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "lamport" \
  --algo lamport --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "maekawa" \
  --algo maekawa --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "tree-quorum" \
  --algo tree-quorum --n 5 --lambda 0.3 --requests 300 --seeds 2
run_clean "singhal" \
  --algo singhal --n 5 --lambda 0.3 --requests 300 --seeds 2

# Control: the same campaign on the RAW network must wedge a token
# algorithm (a lost SK-TOKEN is unrecoverable without the transport), and
# the progress monitor must catch it as a stall (exit 1) rather than the
# run burning its wall-clock backstop.
echo "=== loss smoke: control (raw network, same campaign, must stall)"
out=$("$SWEEP" --algo suzuki-kasami --n 5 --lambda 0.3 --requests 300 \
  --seeds 1 --fault "t=5 loss *=0.2 until=60" 2>&1)
status=$?
echo "$out" | sed -n '1,6p'
if [ "$status" -ne 1 ] || ! echo "$out" | grep -q "STALLED"; then
  echo "FAIL: raw-network control should stall with exit 1, got ${status}"
  FAILURES=$((FAILURES + 1))
else
  echo "ok: raw-network control stalls; the reliable transport is load-bearing"
fi

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "loss smoke: ${FAILURES} failure(s)"
  exit 1
fi
echo "loss smoke: all lossy campaigns clean over the reliable transport"
