#!/usr/bin/env bash
# Chaos smoke: one scripted crash/restart campaign per algorithm family,
# asserting the run stays safe (SafetyMonitor), live (ProgressMonitor) and
# drained — plus one deliberately unsurvivable plan that MUST be caught by
# the progress monitor with a per-node diagnosis.
#
# The simulator is deterministic, so the pinned (algorithm, seed, timing)
# combos below are stable.  Baselines have no recovery machinery: their
# campaigns are staged in windows where the crashed node holds no protocol
# state the others need (Ricart-Agrawala additionally needs an idle down
# window, since every requester waits on replies from ALL peers).
# token-ring and raymond are excluded: any crash on the ring/tree path is
# lethal by construction, which is a structural property, not a regression
# this smoke could catch.
#
# Usage: scripts/chaos_smoke.sh <path-to-dmx_sweep>
set -u

SWEEP="${1:?usage: chaos_smoke.sh <path-to-dmx_sweep>}"
FAILURES=0

RECOVERY_PARAMS=(--param recovery=1 --param token_timeout=3
  --param enquiry_timeout=1 --param arbiter_timeout=6 --param probe_timeout=1)

run_clean() {
  local label="$1"; shift
  echo "=== chaos smoke: ${label}"
  if ! out=$("$SWEEP" "$@" 2>&1); then
    echo "$out"
    echo "FAIL: ${label} — campaign did not stay clean (stall, undrained, or unsafe)"
    FAILURES=$((FAILURES + 1))
  else
    echo "$out" | sed -n '1,5p'
    echo "ok: ${label}"
  fi
  echo
}

# --- arbiter family: real mid-load crash of an active node, recovery on.
run_clean "arbiter-tp crash/restart" \
  --algo arbiter-tp --n 5 --lambda 0.3 --requests 300 --seeds 2 \
  "${RECOVERY_PARAMS[@]}" --fault "t=20 crash 2; t=40 restart 2"
run_clean "arbiter-tp-sf crash/restart" \
  --algo arbiter-tp-sf --n 5 --lambda 0.3 --requests 300 --seeds 2 \
  "${RECOVERY_PARAMS[@]}" --fault "t=20 crash 2; t=40 restart 2"

# --- baseline families: quiet-window crash/restart of a non-critical node.
run_clean "centralized client crash/restart" \
  --algo centralized --n 5 --lambda 0.05 --requests 200 --seeds 2 \
  --fault "t=20 crash 2; t=40 restart 2"
run_clean "suzuki-kasami non-holder crash/restart" \
  --algo suzuki-kasami --n 5 --lambda 0.05 --requests 200 --seeds 2 \
  --fault "t=20 crash 2; t=40 restart 2"
run_clean "ricart-agrawala idle-window crash/restart" \
  --algo ricart-agrawala --n 5 --lambda 0.05 --requests 200 --seeds 2 \
  --fault "t=50 crash 2; t=51 restart 2"

# --- the broken plan: crash the epoch-1 arbiter with recovery off.  Nobody
# monitors the initial arbiter, so the cluster cannot heal; the progress
# monitor must catch the stall (exit 1) and name the dead node, instead of
# the run burning its wall-clock backstop.
echo "=== chaos smoke: broken plan (recovery off, arbiter crashed)"
out=$("$SWEEP" --algo arbiter-tp --n 5 --lambda 0.3 --requests 200 --seeds 1 \
  --fault "t=0.05 crash 0" 2>&1)
status=$?
echo "$out"
if [ "$status" -ne 1 ]; then
  echo "FAIL: broken plan should exit 1 (stall), got ${status}"
  FAILURES=$((FAILURES + 1))
elif ! echo "$out" | grep -q "STALLED" ||
  ! echo "$out" | grep -q "node 0: CRASHED"; then
  echo "FAIL: broken plan stalled but the per-node diagnosis is missing"
  FAILURES=$((FAILURES + 1))
else
  echo "ok: broken plan caught by the progress monitor with diagnosis"
fi

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "chaos smoke: ${FAILURES} failure(s)"
  exit 1
fi
echo "chaos smoke: all campaigns clean"
