#!/usr/bin/env bash
# Verification smoke: bounded exhaustive model checking of the N=3 worlds
# that CI can afford, plus a mutant-catch + replay round trip.  Run against
# a dmx_verify built with ASan/UBSan (the sanitizers CI job does).
#
#  1. arbiter-tp with recovery survives a crash choice at every reachable
#     state — zero violations, exploration complete.
#  2. suzuki-kasami fault-free is clean.
#  3. Exploration is deterministic: two runs print byte-identical output.
#  4. The seeded mutant-token-regen bug IS caught, its counterexample file
#     replays to the same violation, and two replay traces are
#     byte-identical.
#  5. path-reversal (Naimi–Trehel) is exhaustively clean at N=3 and N=4,
#     and clean behind the reliable transport under adversarial drops of
#     either of its message types.
#  6. The seeded mutant-no-reversal bug (skipped probable-owner flip) IS
#     caught as starvation and its counterexample replays byte-identically.
#
# Usage: scripts/verify_smoke.sh <path-to-dmx_verify>
set -u

VERIFY="${1:?usage: verify_smoke.sh <path-to-dmx_verify>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

echo "=== verify smoke: arbiter-tp + recovery, one crash fault"
if out=$("$VERIFY" --algo arbiter-tp --n 3 --requests 1 \
         --param recovery=1 --fault "t=0 crash 2" 2>&1); then
  echo "$out" | sed -n '2,5p'
  echo "ok: arbiter survives every crash schedule"
else
  echo "$out"
  echo "FAIL: arbiter-tp with recovery violated an invariant (or capped)"
  FAILURES=$((FAILURES + 1))
fi
echo

echo "=== verify smoke: suzuki-kasami fault-free"
if out=$("$VERIFY" --algo suzuki-kasami --n 3 --requests 1 2>&1); then
  echo "$out" | sed -n '2,5p'
  echo "ok: suzuki-kasami clean"
else
  echo "$out"
  echo "FAIL: suzuki-kasami fault-free violated an invariant"
  FAILURES=$((FAILURES + 1))
fi
echo

echo "=== verify smoke: determinism (two identical explorations)"
"$VERIFY" --algo arbiter-tp --n 3 --requests 1 > "$WORK/run1.txt" 2>&1
"$VERIFY" --algo arbiter-tp --n 3 --requests 1 > "$WORK/run2.txt" 2>&1
if cmp -s "$WORK/run1.txt" "$WORK/run2.txt"; then
  echo "ok: byte-identical schedules/pruned counts across runs"
else
  echo "FAIL: exploration output differs between identical runs"
  diff "$WORK/run1.txt" "$WORK/run2.txt" | head -10
  FAILURES=$((FAILURES + 1))
fi
echo

echo "=== verify smoke: quorum-guarded recovery matrix (crash / restart / lose-next)"
# The quorum guard (--quorum) must stay exhaustively clean across the fault
# matrix.  Slack 0 keeps the N=4 cells tractable; the crash+restart cell
# exceeds the exhaustive budget at N=4 and is pinned at N=3 instead (see
# tests/test_verify.cpp for the golden schedule counts of the cheap cells).
run_matrix_cell() {
  local label="$1"; shift
  if out=$("$VERIFY" "$@" 2>&1); then
    echo "ok: $label ($(echo "$out" | sed -n 's/^schedules explored: \([0-9]*\).*/\1 schedules/p'))"
  else
    echo "$out"
    echo "FAIL: $label violated an invariant (or capped)"
    FAILURES=$((FAILURES + 1))
  fi
}
run_matrix_cell "N=4 crash" \
  --algo arbiter-tp --n 4 --requests 1 --quorum --slack 0 \
  --fault "t=0 crash 3"
run_matrix_cell "N=4 lose-next PRIVILEGE" \
  --algo arbiter-tp --n 4 --requests 1 --quorum --slack 0 \
  --fault "t=0 lose-next PRIVILEGE"
run_matrix_cell "N=3 crash + restart" \
  --algo arbiter-tp --n 3 --requests 1 --quorum --slack 0 \
  --fault "t=0 crash 1; t=1 restart 1"
echo

echo "=== verify smoke: path-reversal exhaustive worlds (clean + reliable)"
run_matrix_cell "path-reversal N=3" \
  --algo path-reversal --n 3 --requests 1
run_matrix_cell "path-reversal N=4" \
  --algo path-reversal --n 4 --requests 1
run_matrix_cell "path-reversal N=3 reliable, lose-next PR-REQUEST" \
  --algo path-reversal --n 3 --requests 1 --reliable --slack 0 \
  --fault "t=0 lose-next PR-REQUEST"
run_matrix_cell "path-reversal N=3 reliable, lose-next PR-TOKEN" \
  --algo path-reversal --n 3 --requests 1 --reliable --slack 0 \
  --fault "t=0 lose-next PR-TOKEN"
echo

echo "=== verify smoke: mutant-no-reversal catch + counterexample replay"
"$VERIFY" --algo mutant-no-reversal --n 3 --requests 1 \
  --cex-out "$WORK/norev.cex" > "$WORK/norev.txt" 2>&1
status=$?
if [ "$status" -ne 1 ] || ! grep -q "VIOLATION starvation" "$WORK/norev.txt"; then
  cat "$WORK/norev.txt"
  echo "FAIL: seeded mutant-no-reversal bug was not caught (exit $status)"
  FAILURES=$((FAILURES + 1))
else
  if "$VERIFY" --replay "$WORK/norev.cex" \
       --trace-out "$WORK/nr1.jsonl" > /dev/null 2>&1 \
     && "$VERIFY" --replay "$WORK/norev.cex" \
       --trace-out "$WORK/nr2.jsonl" > /dev/null 2>&1 \
     && cmp -s "$WORK/nr1.jsonl" "$WORK/nr2.jsonl"; then
    echo "ok: mutant-no-reversal starves, counterexample replays byte-identically"
  else
    echo "FAIL: mutant-no-reversal counterexample did not replay byte-identically"
    FAILURES=$((FAILURES + 1))
  fi
fi
echo

echo "=== verify smoke: mutant catch + counterexample replay"
"$VERIFY" --algo mutant-token-regen --n 3 --requests 1 \
  --cex-out "$WORK/regen.cex" > "$WORK/mutant.txt" 2>&1
status=$?
if [ "$status" -ne 1 ] || ! grep -q "VIOLATION mutual-exclusion" "$WORK/mutant.txt"; then
  cat "$WORK/mutant.txt"
  echo "FAIL: seeded mutant-token-regen bug was not caught (exit $status)"
  FAILURES=$((FAILURES + 1))
else
  if "$VERIFY" --replay "$WORK/regen.cex" \
       --trace-out "$WORK/t1.jsonl" > /dev/null 2>&1 \
     && "$VERIFY" --replay "$WORK/regen.cex" \
       --trace-out "$WORK/t2.jsonl" > /dev/null 2>&1 \
     && cmp -s "$WORK/t1.jsonl" "$WORK/t2.jsonl"; then
    echo "ok: mutant caught, counterexample replays byte-identically"
  else
    echo "FAIL: counterexample did not replay byte-identically"
    FAILURES=$((FAILURES + 1))
  fi
fi
echo

if [ "$FAILURES" -ne 0 ]; then
  echo "verify smoke: ${FAILURES} failure(s)"
  exit 1
fi
echo "verify smoke: bounded model checking clean, mutants caught"
