#!/usr/bin/env bash
# Observability smoke: drive dmx_sweep's machine-readable outputs end to end
# and validate them structurally.
#
#   1. --emit-json        run manifest, schema dmx.run.v1 (jq-validated:
#                         schema tag, one record per (lambda, seed), result
#                         invariants, span phase decomposition)
#   2. --trace-out jsonl  one JSON object per line, lifecycle events present,
#                         span records carry the phase fields
#   3. --trace-out chrome a single valid JSON document in trace-event format
#                         (Perfetto-loadable): traceEvents array, instant and
#                         duration ("X") phases with µs timestamps
#
# jq is required for the structural checks; if it is missing the script
# still exercises the flags but downgrades validation to grep.
#
# Usage: scripts/obs_smoke.sh <path-to-dmx_sweep>
set -u

SWEEP="${1:?usage: obs_smoke.sh <path-to-dmx_sweep>}"
FAILURES=0
OUTDIR="$(mktemp -d)"
trap 'rm -rf "$OUTDIR"' EXIT

HAVE_JQ=1
command -v jq >/dev/null 2>&1 || HAVE_JQ=0
[ "$HAVE_JQ" -eq 1 ] || echo "warning: jq not found, structural checks downgraded to grep"

fail() {
  echo "FAIL: $1"
  FAILURES=$((FAILURES + 1))
}

# --- 1. run manifest ---------------------------------------------------------
echo "=== obs smoke: run manifest (--emit-json)"
MANIFEST="$OUTDIR/run.json"
if ! "$SWEEP" --algo arbiter-tp --n 5 --lambda 0.3,0.6 --requests 300 \
  --seeds 2 --emit-json "$MANIFEST" >"$OUTDIR/sweep.out" 2>&1; then
  cat "$OUTDIR/sweep.out"
  fail "manifest sweep exited non-zero"
fi
if [ ! -s "$MANIFEST" ]; then
  fail "manifest file missing or empty"
elif [ "$HAVE_JQ" -eq 1 ]; then
  jq -e '.schema == "dmx.run.v1"' "$MANIFEST" >/dev/null ||
    fail "manifest schema tag is not dmx.run.v1"
  # 2 lambdas x 2 seeds = 4 run records.
  jq -e '.runs | length == 4' "$MANIFEST" >/dev/null ||
    fail "manifest should carry 4 run records"
  jq -e '[.runs[].config.algorithm] | all(. == "arbiter-tp")' "$MANIFEST" >/dev/null ||
    fail "manifest config.algorithm mismatch"
  jq -e '[.runs[].result] | all(.completed == .submitted and .safety_violations == 0 and .drained)' \
    "$MANIFEST" >/dev/null || fail "manifest result invariants violated"
  # messages_by_type must sum to messages_total in every record.
  jq -e '[.runs[].result | ([.messages_by_type[]] | add) == .messages_total] | all' \
    "$MANIFEST" >/dev/null || fail "messages_by_type does not sum to messages_total"
  # --emit-json implies span collection: the phase decomposition must be
  # present and internally consistent (acquire = transit + token_wait).
  jq -e '[.runs[].result.spans | .completed > 0 and
          (.phases | has("queue") and has("transit") and has("token_wait")
                     and has("acquire") and has("cs"))] | all' \
    "$MANIFEST" >/dev/null || fail "span phase decomposition missing"
else
  grep -q '"schema":"dmx.run.v1"' "$MANIFEST" || fail "manifest schema tag missing"
  grep -q '"spans"' "$MANIFEST" || fail "manifest spans block missing"
fi
echo "ok: manifest"
echo

# --- 2. JSONL trace ----------------------------------------------------------
echo "=== obs smoke: JSONL trace (--trace-out, jsonl)"
TRACE="$OUTDIR/trace.jsonl"
"$SWEEP" --algo arbiter-tp --n 5 --lambda 0.3 --requests 200 --seeds 1 \
  --trace-out "$TRACE" --trace-format jsonl >/dev/null 2>&1 ||
  fail "jsonl trace sweep exited non-zero"
if [ ! -s "$TRACE" ]; then
  fail "jsonl trace missing or empty"
elif [ "$HAVE_JQ" -eq 1 ]; then
  # Every line parses; event lines carry the fixed fields.
  jq -es 'length > 0' "$TRACE" >/dev/null || fail "jsonl trace has unparseable lines"
  jq -es '[.[] | select(has("ev"))] | length > 0 and
          all(has("t") and has("cat") and has("node") and has("req"))' \
    "$TRACE" >/dev/null || fail "jsonl event records malformed"
  for ev in cs.issued cs.granted cs.released req.queued; do
    jq -es --arg ev "$ev" '[.[] | select(.ev == $ev)] | length > 0' \
      "$TRACE" >/dev/null || fail "jsonl trace has no $ev events"
  done
  jq -es '[.[] | select(has("span"))] | length > 0 and
          all(.span | has("queue") and has("token_wait") and has("cs"))' \
    "$TRACE" >/dev/null || fail "jsonl span records malformed"
else
  grep -q '"ev":"cs.granted"' "$TRACE" || fail "jsonl trace missing cs.granted"
  grep -q '"span"' "$TRACE" || fail "jsonl trace missing span records"
fi
echo "ok: jsonl trace"
echo

# --- 3. Chrome trace ---------------------------------------------------------
echo "=== obs smoke: Chrome trace (--trace-out, chrome)"
CHROME="$OUTDIR/trace.chrome.json"
"$SWEEP" --algo arbiter-tp --n 5 --lambda 0.3 --requests 200 --seeds 1 \
  --trace-out "$CHROME" --trace-format chrome >/dev/null 2>&1 ||
  fail "chrome trace sweep exited non-zero"
if [ ! -s "$CHROME" ]; then
  fail "chrome trace missing or empty"
elif [ "$HAVE_JQ" -eq 1 ]; then
  jq -e '.traceEvents | length > 0' "$CHROME" >/dev/null ||
    fail "chrome trace is not a valid trace-event document"
  jq -e '[.traceEvents[] | select(.ph == "X")] | length > 0 and
         all(has("ts") and has("dur") and has("tid"))' "$CHROME" >/dev/null ||
    fail "chrome trace has no well-formed span slices"
  jq -e '[.traceEvents[] | select(.ph == "i")] | length > 0' "$CHROME" >/dev/null ||
    fail "chrome trace has no instant events"
else
  grep -q '"traceEvents"' "$CHROME" || fail "chrome trace envelope missing"
  grep -q '"ph":"X"' "$CHROME" || fail "chrome trace span slices missing"
fi
echo "ok: chrome trace"
echo

if [ "$FAILURES" -ne 0 ]; then
  echo "obs smoke: ${FAILURES} failure(s)"
  exit 1
fi
echo "obs smoke: all artifacts valid"
