#!/usr/bin/env bash
# Record the micro-benchmark suite into BENCH_<n>.json at the repo root, so
# the performance trajectory of the simulator is tracked PR over PR.
#
# Usage: scripts/record_bench.sh [build-dir] [output.json]
# Defaults: build/ and the next free BENCH_<n>.json.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

if [[ ! -x "${build_dir}/bench/micro_kernel" ]]; then
  echo "error: ${build_dir}/bench/micro_kernel not built" >&2
  echo "build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

if [[ $# -ge 2 ]]; then
  out="$2"
else
  n=0
  while [[ -e "${repo_root}/BENCH_${n}.json" ]]; do n=$((n + 1)); done
  out="${repo_root}/BENCH_${n}.json"
fi

"${build_dir}/bench/micro_kernel" \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-3}" \
  --benchmark_report_aggregates_only=true
echo "wrote ${out}"
