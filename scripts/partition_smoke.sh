#!/usr/bin/env bash
# Partition smoke: the split-brain hazard and its quorum-guard fix, end to
# end, on real binaries.  Run against ASan builds (the verify-smoke CI job
# does).
#
#  1. Quorumless §6 regeneration under a cut IS unsafe: the N=3 partition
#     world yields a token-duplicated counterexample (exit 1), the
#     dmx.cex.v1 file replays to the same violation, and two replay traces
#     are byte-identical.
#  2. The identical world with --quorum is exhaustively clean (exit 0,
#     exploration complete).
#  3. bench/table_partitions runs its four-scenario campaign, exits 0
#     (soundness gate), and the DMX_BENCH_JSONL output validates with jq:
#     quorum rows never regenerate and never violate safety, the quorumless
#     minority cut actually regenerates, and every run drains.
#
# Usage: scripts/partition_smoke.sh <path-to-dmx_verify> <path-to-table_partitions>
set -u

VERIFY="${1:?usage: partition_smoke.sh <dmx_verify> <table_partitions>}"
BENCH="${2:?usage: partition_smoke.sh <dmx_verify> <table_partitions>}"
if ! command -v jq > /dev/null 2>&1; then
  echo "partition smoke: jq is required to validate the campaign JSONL" >&2
  exit 1
fi
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

PARTITION_WORLD=(--algo arbiter-tp --n 3 --requests 1 --slack 0 \
                 --fault "t=0 partition 1|0,2; t=1 heal")

echo "=== partition smoke: quorumless regeneration splits the brain"
"$VERIFY" "${PARTITION_WORLD[@]}" --param recovery=1 \
  --cex-out "$WORK/split.cex" > "$WORK/quorumless.txt" 2>&1
status=$?
if [ "$status" -ne 1 ] \
   || ! grep -q "VIOLATION token-duplicated" "$WORK/quorumless.txt"; then
  cat "$WORK/quorumless.txt"
  echo "FAIL: quorumless partition world did not produce the documented"
  echo "      token-duplicated counterexample (exit $status)"
  FAILURES=$((FAILURES + 1))
else
  if "$VERIFY" --replay "$WORK/split.cex" \
       --trace-out "$WORK/t1.jsonl" > /dev/null 2>&1 \
     && "$VERIFY" --replay "$WORK/split.cex" \
       --trace-out "$WORK/t2.jsonl" > /dev/null 2>&1 \
     && cmp -s "$WORK/t1.jsonl" "$WORK/t2.jsonl"; then
    echo "ok: split-brain counterexample found and replays byte-identically"
  else
    echo "FAIL: split-brain counterexample did not replay byte-identically"
    FAILURES=$((FAILURES + 1))
  fi
fi
echo

echo "=== partition smoke: the quorum guard closes the window"
if out=$("$VERIFY" "${PARTITION_WORLD[@]}" --quorum 2>&1) \
   && echo "$out" | grep -q "exploration complete"; then
  echo "$out" | sed -n '2,5p'
  echo "ok: quorum-guarded world exhaustively clean"
else
  echo "$out"
  echo "FAIL: quorum-guarded partition world violated an invariant (or capped)"
  FAILURES=$((FAILURES + 1))
fi
echo

echo "=== partition smoke: table_partitions campaign + JSONL validation"
JSONL="$WORK/partitions.jsonl"
if DMX_BENCH_JSONL="$JSONL" "$BENCH" > "$WORK/bench.txt" 2>&1; then
  echo "ok: campaign soundness gate passed"
else
  cat "$WORK/bench.txt"
  echo "FAIL: table_partitions soundness gate failed"
  FAILURES=$((FAILURES + 1))
fi
check_jq() {
  local label="$1" filter="$2"
  if [ "$(jq -s "$filter" "$JSONL" 2>/dev/null)" = "true" ]; then
    echo "ok: $label"
  else
    echo "FAIL: $label"
    FAILURES=$((FAILURES + 1))
  fi
}
if [ -s "$JSONL" ]; then
  check_jq "four campaign rows" 'length == 4'
  check_jq "every run drains" 'all(.drained and .completed == .submitted)'
  check_jq "quorum rows are safe and never regenerate" \
    '[.[] | select(.quorum == 1)]
       | length == 2 and
         all(.safety_violations == 0 and .tokens_regenerated == 0)'
  check_jq "quorum guard parks during the cuts" \
    '[.[] | select(.quorum == 1)] | all(.quorum_blocked >= 1)'
  check_jq "quorumless minority cut regenerates over the live token" \
    '[.[] | select(.quorum == 0 and (.scenario | contains("minority")))]
       | all(.tokens_regenerated >= 1)'
else
  echo "FAIL: campaign wrote no JSONL output"
  FAILURES=$((FAILURES + 1))
fi
echo

if [ "$FAILURES" -ne 0 ]; then
  echo "partition smoke: ${FAILURES} failure(s)"
  exit 1
fi
echo "partition smoke: hazard reproduced, guard proven, campaign validated"
