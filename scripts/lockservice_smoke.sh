#!/usr/bin/env bash
# Lock-service smoke: the sharded Zipf scenario end to end on real binaries.
# Run against ASan builds (the sanitizers CI job does).
#
#  1. dmx_sweep --resources runs a small Zipf-skewed lock service, exits 0,
#     prints the per-shard SLO table, and the dmx.run.v1 manifest validates
#     with jq: lock_service block present, every shard drained with zero
#     safety violations, both shard algorithms exercised, and the p99 /
#     fairness SLO fields populated.
#  2. The same run with --jobs 4 produces a BYTE-IDENTICAL manifest and
#     stdout: the shard fan-out is an execution knob, not a result knob.
#  3. bench/table_lockservice runs a small ladder, exits 0 (soundness gate:
#     byte-identity + mixed algorithms + drains + zero violations), and its
#     DMX_BENCH_JSONL output validates with jq.
#
# Usage: scripts/lockservice_smoke.sh <path-to-dmx_sweep> <path-to-table_lockservice>
set -u

SWEEP="${1:?usage: lockservice_smoke.sh <dmx_sweep> <table_lockservice>}"
BENCH="${2:?usage: lockservice_smoke.sh <dmx_sweep> <table_lockservice>}"
if ! command -v jq > /dev/null 2>&1; then
  echo "lockservice smoke: jq is required to validate the manifests" >&2
  exit 1
fi
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

SERVICE=(--resources 16 --zipf-s 0.9 --n 6 --lambda 2.0 --requests 4000 \
         --batch 8 --shard-algo hot=arbiter-tp,cold=path-reversal)

echo "=== lockservice smoke: Zipf service run + manifest validation"
if "$SWEEP" "${SERVICE[@]}" --jobs 1 --emit-json "$WORK/serial.json" \
     > "$WORK/serial.txt" 2>&1; then
  echo "ok: service drained with zero safety violations (exit 0)"
else
  cat "$WORK/serial.txt"
  echo "FAIL: lock-service run failed"
  FAILURES=$((FAILURES + 1))
fi
if grep -q "grant p99" "$WORK/serial.txt"; then
  echo "ok: per-shard SLO table rendered"
else
  echo "FAIL: stdout is missing the per-shard SLO table"
  FAILURES=$((FAILURES + 1))
fi
check_jq() {
  local label="$1" filter="$2"
  if [ "$(jq "$filter" "$WORK/serial.json" 2>/dev/null)" = "true" ]; then
    echo "ok: $label"
  else
    echo "FAIL: $label"
    FAILURES=$((FAILURES + 1))
  fi
}
if [ -s "$WORK/serial.json" ]; then
  check_jq "dmx.run.v1 envelope" '.schema == "dmx.run.v1"'
  check_jq "lock-service config serialized" \
    '.runs[0].config | .n_resources == 16 and .zipf_s == 0.9 and
       .shard_algo_hot == "arbiter-tp" and .shard_algo_cold == "path-reversal"'
  check_jq "lock_service block with one shard per resource" \
    '.runs[0].result.lock_service.shards | length == 16'
  check_jq "every shard drained, zero safety violations" \
    '.runs[0].result.lock_service
       | .drained and .safety_violations == 0
         and (.shards | all(.drained and .completed == .demand))'
  check_jq "both shard algorithms exercised" \
    '.runs[0].result.lock_service
       | .hot_shards >= 1 and .hot_shards < (.shards | length)'
  check_jq "p99 / fairness SLO fields populated" \
    '.runs[0].result.lock_service
       | .grant_p99_worst > 0 and .fairness_min > 0 and .fairness_min <= 1
         and (.shards[0] | .grant_p99 >= .grant_p50 and .grant_p50 > 0)'
else
  echo "FAIL: run wrote no manifest"
  FAILURES=$((FAILURES + 1))
fi
echo

echo "=== lockservice smoke: --jobs fan-out is byte-identical"
if "$SWEEP" "${SERVICE[@]}" --jobs 4 --emit-json "$WORK/jobs4.json" \
     > "$WORK/jobs4.txt" 2>&1 \
   && cmp -s "$WORK/serial.json" "$WORK/jobs4.json" \
   && cmp -s "$WORK/serial.txt" "$WORK/jobs4.txt"; then
  echo "ok: --jobs 1 and --jobs 4 manifests and tables match byte for byte"
else
  echo "FAIL: --jobs changed the results (manifest or stdout differs)"
  FAILURES=$((FAILURES + 1))
fi
echo

echo "=== lockservice smoke: table_lockservice ladder + JSONL validation"
JSONL="$WORK/ladder.jsonl"
if DMX_BENCH_LS_RESOURCES=64 DMX_BENCH_REQUESTS=5000 DMX_BENCH_JOBS=2 \
     DMX_BENCH_JSONL="$JSONL" "$BENCH" > "$WORK/bench.txt" 2>&1; then
  echo "ok: ladder soundness gate passed"
else
  cat "$WORK/bench.txt"
  echo "FAIL: table_lockservice soundness gate failed"
  FAILURES=$((FAILURES + 1))
fi
if [ -s "$JSONL" ]; then
  if [ "$(jq -s 'all(.byte_identical and .drained
                     and .safety_violations == 0
                     and .hot_shards >= 1
                     and .grant_p99_worst >= .grant_p99_hot0)' \
            "$JSONL" 2>/dev/null)" = "true" ]; then
    echo "ok: every rung byte-identical, drained, safe, mixed"
  else
    echo "FAIL: ladder JSONL violates the soundness invariants"
    FAILURES=$((FAILURES + 1))
  fi
else
  echo "FAIL: ladder wrote no JSONL output"
  FAILURES=$((FAILURES + 1))
fi
echo

if [ "$FAILURES" -ne 0 ]; then
  echo "lockservice smoke: ${FAILURES} failure(s)"
  exit 1
fi
echo "lockservice smoke: service validated, fan-out deterministic, ladder sound"
