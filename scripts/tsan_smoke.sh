#!/usr/bin/env bash
# TSan smoke: an 8-job Fig. 6 mini-sweep under ThreadSanitizer, doubling as
# a determinism check — for each of the figure's three algorithms the
# parallel table must be byte-identical to the serial one.  Run against a
# dmx_sweep built with -fsanitize=thread (the tsan CI job does); any data
# race between the pooled simulation workers aborts the run.
#
# Usage: scripts/tsan_smoke.sh <path-to-dmx_sweep>
set -u

SWEEP="${1:?usage: tsan_smoke.sh <path-to-dmx_sweep>}"
FAILURES=0

# Reduced Fig. 6 grid: light / knee / saturation, enough seeds that every
# one of the 8 workers gets work.
LAMBDAS="0.02,0.2,0.5"
COMMON=(--n 10 --lambda "$LAMBDAS" --requests 2000 --seeds 8)

for algo in arbiter-tp ricart-agrawala singhal; do
  echo "=== tsan smoke: ${algo} (fig6 mini-sweep, --jobs 8 vs --jobs 1)"
  if ! serial=$("$SWEEP" --algo "$algo" "${COMMON[@]}" --jobs 1 2>&1); then
    echo "$serial"
    echo "FAIL: ${algo} serial sweep did not run clean"
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if ! parallel=$("$SWEEP" --algo "$algo" "${COMMON[@]}" --jobs 8 2>&1); then
    echo "$parallel"
    echo "FAIL: ${algo} 8-job sweep did not run clean (race or unsound run)"
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if [ "$serial" != "$parallel" ]; then
    echo "FAIL: ${algo} --jobs 8 output differs from --jobs 1"
    diff <(echo "$serial") <(echo "$parallel") | head -20
    FAILURES=$((FAILURES + 1))
  else
    echo "$parallel" | sed -n '1,4p'
    echo "ok: ${algo} byte-identical across jobs"
  fi
  echo
done

if [ "$FAILURES" -ne 0 ]; then
  echo "tsan smoke: ${FAILURES} failure(s)"
  exit 1
fi
echo "tsan smoke: 8-job fig6 mini-sweep clean and deterministic"
