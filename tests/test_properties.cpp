// Property tests swept across every algorithm, load level and seed:
//   * Safety:   no two nodes ever overlap in the critical section.
//   * Liveness: every submitted request completes (the run drains).
//   * Sanity:   message counts stay within each algorithm's analytic band.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/models.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

namespace dmx {
namespace {

using Param = std::tuple<std::string, double, std::uint64_t>;

class AlgorithmProperties : public ::testing::TestWithParam<Param> {};

TEST_P(AlgorithmProperties, SafeLiveAndInBand) {
  const auto& [algo, lambda, seed] = GetParam();
  harness::ExperimentConfig cfg;
  cfg.algorithm = algo;
  cfg.n_nodes = 10;
  cfg.lambda = lambda;
  cfg.total_requests = 3'000;
  cfg.seed = seed;
  const auto r = harness::run_experiment(cfg);

  EXPECT_EQ(r.safety_violations, 0u) << algo << " lambda=" << lambda;
  EXPECT_LE(r.max_occupancy, 1);
  EXPECT_TRUE(r.drained) << algo << " completed " << r.completed << "/"
                         << r.submitted;
  EXPECT_EQ(r.completed, cfg.total_requests);

  // Message-count sanity bands (generous, per-algorithm).
  const double m = r.messages_per_cs;
  const std::size_t n = cfg.n_nodes;
  if (algo == "arbiter-tp" || algo == "arbiter-tp-sf") {
    EXPECT_GT(m, 1.5) << algo;
    EXPECT_LT(m, analysis::arbiter_messages_light(n) * 1.4) << algo;
  } else if (algo == "centralized") {
    EXPECT_NEAR(m, 2.7, 0.2);  // 3 * (N-1)/N
  } else if (algo == "ricart-agrawala") {
    EXPECT_DOUBLE_EQ(m, analysis::ricart_agrawala_messages(n));
  } else if (algo == "lamport") {
    EXPECT_DOUBLE_EQ(m, analysis::lamport_messages(n));
  } else if (algo == "suzuki-kasami") {
    EXPECT_LE(m, analysis::suzuki_kasami_messages(n) + 0.5);
  } else if (algo == "raymond") {
    EXPECT_LT(m, 8.0);
    EXPECT_GT(m, 1.0);
  } else if (algo == "path-reversal") {
    // Lavault's stationary average is H_n - 1/n at light load; contention
    // only shortens the probable-owner chains, never lengthens them.
    EXPECT_GT(m, 1.0);
    EXPECT_LT(m, analysis::path_reversal_messages_avg(n) * 1.6);
  } else if (algo == "maekawa") {
    EXPECT_GE(m, analysis::maekawa_messages_low(n) - 0.5);
    EXPECT_LT(m, 2.5 * analysis::maekawa_messages_high(n));
  } else if (algo == "singhal") {
    EXPECT_LT(m, 2.0 * static_cast<double>(n));
  } else if (algo == "token-ring") {
    // ~1 token hop per CS at saturation; wakeup chains at light load.
    EXPECT_LT(m, 3.0 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmProperties,
    ::testing::Combine(
        ::testing::Values("arbiter-tp", "arbiter-tp-sf", "centralized",
                          "suzuki-kasami", "ricart-agrawala", "lamport",
                          "raymond", "path-reversal", "maekawa", "singhal",
                          "token-ring"),
        ::testing::Values(0.02, 0.5, 3.0),
        ::testing::Values<std::uint64_t>(1, 2)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string name = std::get<0>(pinfo.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      const double lam = std::get<1>(pinfo.param);
      name += lam < 0.1 ? "_low" : (lam < 1.0 ? "_mid" : "_high");
      name += "_s" + std::to_string(std::get<2>(pinfo.param));
      return name;
    });

// Seed-schedule invariant: replication i of a config yields the same
// ExperimentResult whether it is run alone (one run_experiment at the
// scheduled seed), in a serial batch, or on any parallel worker.  This is
// the guard against shared-Rng leakage: if any stochastic state bled
// between replications (a shared engine, a sink buffer, a stats
// singleton), the batch results would diverge from the standalone runs.
class SeedScheduleInvariant : public ::testing::TestWithParam<std::string> {};

TEST_P(SeedScheduleInvariant, ReplicationIndependentOfBatchAndWorker) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = GetParam();
  cfg.n_nodes = 5;
  cfg.lambda = 0.4;
  cfg.total_requests = 800;
  cfg.seed = 11;

  constexpr std::size_t kReps = 4;
  cfg.jobs = 1;
  const auto serial = harness::run_replicated(cfg, kReps);
  cfg.jobs = 4;
  const auto parallel = harness::run_replicated(cfg, kReps);
  ASSERT_EQ(serial.size(), kReps);
  ASSERT_EQ(parallel.size(), kReps);

  for (std::size_t i = 0; i < kReps; ++i) {
    harness::ExperimentConfig rep = cfg;
    rep.seed = harness::seed_schedule(cfg, i);
    const auto alone = harness::run_experiment(rep);
    for (const auto* got : {&serial[i], &parallel[i]}) {
      EXPECT_EQ(got->completed, alone.completed) << "rep " << i;
      EXPECT_EQ(got->submitted, alone.submitted) << "rep " << i;
      EXPECT_EQ(got->messages_total, alone.messages_total) << "rep " << i;
      EXPECT_EQ(got->bytes_total, alone.bytes_total) << "rep " << i;
      EXPECT_EQ(got->sim_events, alone.sim_events) << "rep " << i;
      EXPECT_EQ(got->response_time.count(), alone.response_time.count());
      EXPECT_DOUBLE_EQ(got->response_time.mean(), alone.response_time.mean());
      EXPECT_DOUBLE_EQ(got->service_time.mean(), alone.service_time.mean());
      EXPECT_DOUBLE_EQ(got->sojourn_time.mean(), alone.sojourn_time.mean());
      EXPECT_DOUBLE_EQ(got->service_p99, alone.service_p99);
      EXPECT_DOUBLE_EQ(got->sim_duration_units, alone.sim_duration_units);
      for (std::size_t k = 0; k < alone.messages_by_kind.size(); ++k) {
        EXPECT_EQ(got->messages_by_kind.get(k), alone.messages_by_kind.get(k))
            << "rep " << i << " kind " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SeedScheduleInvariant,
                         ::testing::Values("arbiter-tp", "suzuki-kasami",
                                           "maekawa", "path-reversal"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Cluster-size sweep for the paper's own algorithm: safety/liveness from a
// trivial 1-node system through N=25, and the analytic limits at the
// extremes.
class ArbiterAcrossN : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArbiterAcrossN, LightLoadMatchesEq1) {
  const std::size_t n = GetParam();
  harness::ExperimentConfig cfg;
  cfg.n_nodes = n;
  cfg.lambda = 0.005;
  cfg.total_requests = 2'000;
  cfg.seed = 5;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.drained);
  if (n > 1) {
    EXPECT_NEAR(r.messages_per_cs, analysis::arbiter_messages_light(n),
                0.18 * analysis::arbiter_messages_light(n))
        << "N=" << n;
  }
}

TEST_P(ArbiterAcrossN, HeavyLoadMatchesEq4) {
  const std::size_t n = GetParam();
  harness::ExperimentConfig cfg;
  cfg.n_nodes = n;
  cfg.lambda = 20.0 / static_cast<double>(n);
  cfg.total_requests = 5'000;
  cfg.seed = 6;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.drained);
  if (n > 1) {
    EXPECT_NEAR(r.messages_per_cs, analysis::arbiter_messages_heavy(n), 0.45)
        << "N=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArbiterAcrossN,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 10, 25),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           std::string name = "N";
                           name += std::to_string(i.param);
                           return name;
                         });

// Delay-model robustness: the algorithm stays safe and live under jittered
// (reordering) message delays, not just the paper's constant delay.
class DelayRobustness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(DelayRobustness, SafeAndLiveUnderJitter) {
  const auto& [algo, kind] = GetParam();
  harness::ExperimentConfig cfg;
  cfg.algorithm = algo;
  cfg.n_nodes = 8;
  cfg.lambda = 0.5;
  cfg.total_requests = 3'000;
  cfg.seed = 13;
  cfg.delay_kind =
      kind == 0 ? harness::DelayKind::kUniform : harness::DelayKind::kExponential;
  cfg.delay_jitter = 0.15;
  // Jitter can reorder REQUEST-before-NEW-ARBITER, so lean on the
  // retransmission rule harder.
  cfg.params.set("resubmit_after_misses", 1.0).set("t_fwd", 0.3);
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u) << algo;
  EXPECT_TRUE(r.drained) << algo << " completed " << r.completed << "/"
                         << r.submitted;
}

INSTANTIATE_TEST_SUITE_P(
    Jitter, DelayRobustness,
    ::testing::Combine(::testing::Values("arbiter-tp", "suzuki-kasami",
                                         "ricart-agrawala", "raymond",
                                         "path-reversal", "lamport",
                                         "centralized"),
                       ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& pinfo) {
      std::string name = std::get<0>(pinfo.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + (std::get<1>(pinfo.param) == 0 ? "_uniform" : "_expo");
    });

}  // namespace
}  // namespace dmx
