// Golden-trace test: the paper's §2.2 example must produce an exact,
// deterministic message sequence.  This pins the protocol's wire behaviour
// — any reordering, extra message or timing drift fails loudly.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "testbed.hpp"

namespace dmx::core {
namespace {

std::string run_paper_example_trace() {
  mutex::ParamSet p;
  p.set("t_req", 1.0).set("t_fwd", 1.0);
  testbed::MutexCluster tb("arbiter-tp", 5, p, /*t_msg=*/1.0, /*t_exec=*/1.0);
  std::ostringstream os;
  tb.network().set_tap([&](const net::Envelope& env, bool dropped) {
    os << env.sent_at.to_units() << " " << env.src << "->" << env.dst << " "
       << env.payload->describe() << (dropped ? " DROPPED" : "") << "\n";
  });
  tb.submit_at(0.0, 1);
  tb.submit_at(0.2, 4);
  tb.submit_at(1.9, 3);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  return os.str();
}

TEST(GoldenTrace, PaperExampleMessageSequence) {
  const std::string expected =
      "0 1->0 REQUEST(node=1, seq=1, fwd=0)\n"
      "0.2 4->0 REQUEST(node=4, seq=1, fwd=0)\n"
      "1.9 3->0 REQUEST(node=3, seq=1, fwd=0)\n"
      // Collection window [1.0, 2.0] closes: dispatch of Q = {1,4}.  The
      // NEW-ARBITER broadcast and the token hand-off happen at the same
      // instant; the implementation broadcasts first.
      "2 0->1 NEW-ARBITER(4, Q={1,4}, c=1)\n"
      "2 0->2 NEW-ARBITER(4, Q={1,4}, c=1)\n"
      "2 0->3 NEW-ARBITER(4, Q={1,4}, c=1)\n"
      "2 0->4 NEW-ARBITER(4, Q={1,4}, c=1)\n"
      "2 0->1 PRIVILEGE(Q={1,4}, epoch=1)\n"
      // Node 3's request reached node 0 during the forwarding phase.
      "2.9 0->4 REQUEST(node=3, seq=1, fwd=1)\n"
      // Node 1's CS [3.0, 4.0], then the token moves to node 4.
      "4 1->4 PRIVILEGE(Q={4}, epoch=1)\n"
      // Node 4 (the arbiter) serves itself [5.0, 6.0], then collects and
      // dispatches Q = {3}.
      "7 4->0 NEW-ARBITER(3, Q={3}, c=2)\n"
      "7 4->1 NEW-ARBITER(3, Q={3}, c=2)\n"
      "7 4->2 NEW-ARBITER(3, Q={3}, c=2)\n"
      "7 4->3 NEW-ARBITER(3, Q={3}, c=2)\n"
      "7 4->3 PRIVILEGE(Q={3}, epoch=1)\n";
  EXPECT_EQ(run_paper_example_trace(), expected);
}

TEST(GoldenTrace, IsBitDeterministic) {
  EXPECT_EQ(run_paper_example_trace(), run_paper_example_trace());
}

std::string run_path_reversal_trace() {
  testbed::MutexCluster tb("path-reversal", 4, mutex::ParamSet{},
                           /*t_msg=*/1.0, /*t_exec=*/1.0);
  std::ostringstream os;
  tb.network().set_tap([&](const net::Envelope& env, bool dropped) {
    os << env.sent_at.to_units() << " " << env.src << "->" << env.dst << " "
       << env.payload->describe() << (dropped ? " DROPPED" : "") << "\n";
  });
  tb.submit_at(0.0, 1);
  tb.submit_at(0.5, 2);
  tb.submit_at(6.0, 3);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  return os.str();
}

// The same wire-pinning for the Naimi–Trehel baseline: one direct
// hand-off, one REQUEST relayed through a reversed owner pointer into the
// busy root's next slot, and one late request that profits from the
// reversals (node 0 forwards straight to the current root).
TEST(GoldenTrace, PathReversalMessageSequence) {
  const std::string expected =
      // Node 1 and node 2 both climb toward node 0.
      "0 1->0 PR-REQUEST(from=1, req=1)\n"
      "0.5 2->0 PR-REQUEST(from=2, req=2)\n"
      // Idle root 0 hands the token to 1 and re-points at it ...
      "1 0->1 PR-TOKEN\n"
      // ... so node 2's request is relayed to node 1 (and 0 re-points
      // at 2), where it lands in the busy root's next slot.
      "1.5 0->1 PR-REQUEST(from=2, req=2)\n"
      // Node 1's CS [2,3]; release sends the token along next.
      "3 1->2 PR-TOKEN\n"
      // Node 3 still points at 0, but 0's pointer was reversed to 2 by
      // node 2's relay — the request takes exactly one interior hop.
      "6 3->0 PR-REQUEST(from=3, req=3)\n"
      "7 0->2 PR-REQUEST(from=3, req=3)\n"
      "8 2->3 PR-TOKEN\n";
  EXPECT_EQ(run_path_reversal_trace(), expected);
}

TEST(GoldenTrace, PathReversalIsBitDeterministic) {
  EXPECT_EQ(run_path_reversal_trace(), run_path_reversal_trace());
}

std::string run_fault_campaign_trace() {
  mutex::ParamSet p;
  p.set("recovery", 1.0)
      .set("token_timeout", 3.0)
      .set("enquiry_timeout", 1.0)
      .set("arbiter_timeout", 6.0)
      .set("probe_timeout", 1.0);
  testbed::MutexCluster tb("arbiter-tp", 5, p);
  std::ostringstream os;
  tb.network().set_tap([&](const net::Envelope& env, bool dropped) {
    os << env.sent_at.to_units() << " " << env.src << "->" << env.dst << " "
       << env.payload->describe() << (dropped ? " DROPPED" : "") << "\n";
  });
  fault::CampaignRunner campaign(
      *tb.cluster,
      fault::FaultPlan::parse(
          "t=0.25 lose-next PRIVILEGE; t=1.5 crash 3; t=5 restart 3"));
  campaign.set_crash_hook(
      [&tb](net::NodeId id) { tb.drivers[id.index()]->on_node_crashed(); });
  campaign.start();
  tb.submit_at(0.0, 1);
  tb.submit_at(0.1, 2);
  tb.submit_at(6.0, 3);
  tb.sim().run_until(sim::SimTime::units(80.0));
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_GE(tb.total_completed(), 3u);
  EXPECT_EQ(campaign.executed(), 3u);
  EXPECT_EQ(campaign.unfired_targeted_drops(), 0u);
  return os.str();
}

// Same seed + same fault plan => the same run, byte for byte.  The campaign
// engine (timed crash/restart, a targeted one-shot drop, recovery
// machinery) must not introduce any nondeterminism into the wire trace.
TEST(GoldenTrace, FaultCampaignIsBitDeterministic) {
  const std::string first = run_fault_campaign_trace();
  EXPECT_FALSE(first.empty());
  // The targeted drop is visible in the trace and the recovery machinery
  // actually engaged — this is a campaign trace, not a fair-weather one.
  EXPECT_NE(first.find(" DROPPED"), std::string::npos);
  EXPECT_NE(first.find("ENQUIRY"), std::string::npos);
  EXPECT_EQ(first, run_fault_campaign_trace());
}

}  // namespace
}  // namespace dmx::core
