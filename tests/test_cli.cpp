// Tests for the dmx_sweep command-line front end.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/cli.hpp"

namespace dmx::harness {
namespace {

CliOptions parse(std::initializer_list<std::string> args) {
  return parse_cli(std::vector<std::string>(args));
}

TEST(Cli, Defaults) {
  const auto o = parse({});
  EXPECT_EQ(o.algorithm, "arbiter-tp");
  EXPECT_EQ(o.n_nodes, 10u);
  EXPECT_EQ(o.lambdas, std::vector<double>{0.5});
  EXPECT_EQ(o.requests, 100'000u);
  EXPECT_EQ(o.seeds, 3u);
  EXPECT_FALSE(o.csv);
  EXPECT_FALSE(o.help);
  EXPECT_FALSE(o.list);
}

TEST(Cli, ParsesEverything) {
  const auto o = parse({"--algo", "raymond", "--n", "16", "--lambda",
                        "0.1,0.2,1.5", "--requests", "5000", "--seeds", "7",
                        "--t-msg", "0.05", "--t-exec", "0.2", "--param",
                        "t_req=0.3", "--param", "order=priority", "--delay",
                        "uniform", "--jitter", "0.02", "--loss",
                        "PRIVILEGE=0.01", "--csv"});
  EXPECT_EQ(o.algorithm, "raymond");
  EXPECT_EQ(o.n_nodes, 16u);
  EXPECT_EQ(o.lambdas, (std::vector<double>{0.1, 0.2, 1.5}));
  EXPECT_EQ(o.requests, 5000u);
  EXPECT_EQ(o.seeds, 7u);
  EXPECT_DOUBLE_EQ(o.t_msg, 0.05);
  EXPECT_DOUBLE_EQ(o.t_exec, 0.2);
  EXPECT_DOUBLE_EQ(o.params.get_num("t_req", 0.0), 0.3);
  EXPECT_EQ(o.params.get_str("order", ""), "priority");
  EXPECT_EQ(o.delay_kind, DelayKind::kUniform);
  EXPECT_DOUBLE_EQ(o.jitter, 0.02);
  EXPECT_DOUBLE_EQ(o.loss_by_type.at("PRIVILEGE"), 0.01);
  EXPECT_TRUE(o.csv);
}

TEST(Cli, ParsesTransportKind) {
  EXPECT_EQ(parse({}).transport, TransportKind::kRaw);
  EXPECT_EQ(parse({"--transport", "raw"}).transport, TransportKind::kRaw);
  EXPECT_EQ(parse({"--transport", "reliable"}).transport,
            TransportKind::kReliable);
  EXPECT_THROW(parse({"--transport", "tcp"}), std::invalid_argument);
  EXPECT_THROW(parse({"--transport"}), std::invalid_argument);
}

TEST(Cli, ParsesJobs) {
  EXPECT_EQ(parse({}).jobs, 1u);  // serial by default
  EXPECT_EQ(parse({"--jobs", "8"}).jobs, 8u);
  EXPECT_EQ(parse({"--jobs", "0"}).jobs, 0u);  // 0 = hardware concurrency
  EXPECT_THROW(parse({"--jobs"}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs", "two"}), std::invalid_argument);
}

TEST(Cli, HelpAndList) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
  EXPECT_TRUE(parse({"--list"}).list);
}

TEST(Cli, Rejections) {
  EXPECT_THROW(parse({"--bogus"}), std::invalid_argument);
  EXPECT_THROW(parse({"--n"}), std::invalid_argument);          // missing value
  EXPECT_THROW(parse({"--n", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--n", "abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--lambda", "0.5,-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--lambda", ""}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--param", "noequals"}), std::invalid_argument);
  EXPECT_THROW(parse({"--param", "=x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--delay", "warp"}), std::invalid_argument);
  EXPECT_THROW(parse({"--loss", "PRIVILEGE"}), std::invalid_argument);
  EXPECT_THROW(parse({"--t-msg", "1.5x"}), std::invalid_argument);
}

TEST(Cli, RunHelpPrintsUsage) {
  CliOptions o;
  o.help = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("usage:"), std::string::npos);
}

TEST(Cli, RunListPrintsAlgorithms) {
  CliOptions o;
  o.list = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("arbiter-tp"), std::string::npos);
  EXPECT_NE(os.str().find("suzuki-kasami"), std::string::npos);
}

TEST(Cli, RunUnknownAlgorithmFails) {
  CliOptions o;
  o.algorithm = "nope";
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 2);
}

TEST(Cli, RunSmallSweepProducesTable) {
  CliOptions o;
  o.lambdas = {0.2, 1.0};
  o.requests = 1'000;
  o.seeds = 1;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("msgs/cs"), std::string::npos);
  EXPECT_NE(out.find("0.200"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_EQ(out.find("VIOLATED"), std::string::npos);
}

TEST(Cli, ParsesLockServiceFlags) {
  // Single-resource defaults keep the classic sweep path.
  const auto d = parse({});
  EXPECT_EQ(d.n_resources, 1u);
  EXPECT_DOUBLE_EQ(d.zipf_s, 0.9);
  EXPECT_EQ(d.shard_algo_hot, "arbiter-tp");
  EXPECT_EQ(d.shard_algo_cold, "path-reversal");
  EXPECT_EQ(d.batch, 16u);

  const auto o = parse({"--resources", "64", "--zipf-s", "1.2",
                        "--shard-algo", "hot=suzuki-kasami,cold=centralized",
                        "--batch", "32"});
  EXPECT_EQ(o.n_resources, 64u);
  EXPECT_DOUBLE_EQ(o.zipf_s, 1.2);
  EXPECT_EQ(o.shard_algo_hot, "suzuki-kasami");
  EXPECT_EQ(o.shard_algo_cold, "centralized");
  EXPECT_EQ(o.batch, 32u);
  // Partial assignment leaves the other role at its default.
  EXPECT_EQ(parse({"--shard-algo", "cold=centralized"}).shard_algo_hot,
            "arbiter-tp");
}

TEST(Cli, LockServiceFlagRejections) {
  EXPECT_THROW(parse({"--resources"}), std::invalid_argument);
  EXPECT_THROW(parse({"--resources", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--zipf-s", "-0.5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--zipf-s", "abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--shard-algo", "warm=raymond"}),
               std::invalid_argument);  // unknown role key
  EXPECT_THROW(parse({"--shard-algo", "hot"}), std::invalid_argument);
  EXPECT_THROW(parse({"--batch", "x"}), std::invalid_argument);
}

TEST(Cli, RunLockServiceProducesShardTable) {
  CliOptions o;
  o.n_resources = 8;
  o.zipf_s = 0.9;
  o.requests = 800;
  o.n_nodes = 4;
  o.lambdas = {2.0};
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("grant p99"), std::string::npos);
  EXPECT_NE(out.find("fairness"), std::string::npos);
  EXPECT_NE(out.find("arbiter-tp"), std::string::npos);
  EXPECT_NE(out.find("path-reversal"), std::string::npos);
  EXPECT_EQ(out.find("VIOLATED"), std::string::npos);
}

TEST(Cli, RunCsvMode) {
  CliOptions o;
  o.lambdas = {0.5};
  o.requests = 500;
  o.seeds = 1;
  o.csv = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("lambda,msgs/cs"), std::string::npos);
}

}  // namespace
}  // namespace dmx::harness
