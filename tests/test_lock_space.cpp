// Tests for the multi-resource LockSpace.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "mutex/lock_space.hpp"
#include "sim/rng.hpp"

namespace dmx::mutex {
namespace {

LockSpace::Config base_config() {
  harness::register_builtin_algorithms();
  LockSpace::Config cfg;
  cfg.n_nodes = 6;
  cfg.n_resources = 3;
  cfg.seed = 9;
  return cfg;
}

TEST(LockSpace, ValidatesConfig) {
  harness::register_builtin_algorithms();
  LockSpace::Config cfg = base_config();
  cfg.n_resources = 0;
  EXPECT_THROW(LockSpace{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.algorithm = "no-such";
  EXPECT_THROW(LockSpace{cfg}, std::invalid_argument);
}

TEST(LockSpace, ResourcesAreIndependent) {
  LockSpace space(base_config());
  // One node locks resource 0 for a long CS while others use resources 1,2.
  space.acquire(0, 0);
  space.acquire(1, 1);
  space.acquire(2, 2);
  space.simulator().run();
  EXPECT_EQ(space.total_completed(), 3u);
  EXPECT_EQ(space.safety_violations(), 0u);
  // The three grants overlapped in time (they share the clock but not the
  // lock): true cross-resource parallelism.
  EXPECT_GE(space.max_parallel_grants(), 2);
}

TEST(LockSpace, PerResourceExclusivityHolds) {
  auto cfg = base_config();
  cfg.n_resources = 2;
  LockSpace space(cfg);
  sim::Rng rng(3);
  for (int k = 0; k < 300; ++k) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, 5));
    const auto res = static_cast<std::size_t>(rng.uniform_int(0, 1));
    const double when = rng.uniform(0.0, 30.0);
    space.simulator().schedule_at(
        sim::SimTime::units(when),
        [&space, node, res] { space.acquire(node, res); });
  }
  space.simulator().run();
  EXPECT_EQ(space.total_completed(), 300u);
  EXPECT_EQ(space.total_submitted(), 300u);
  EXPECT_EQ(space.safety_violations(), 0u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(space.monitor(r).max_occupancy(), 1) << "resource " << r;
  }
  // Both locks were held simultaneously at some point under this load.
  EXPECT_EQ(space.max_parallel_grants(), 2);
}

TEST(LockSpace, WorksWithEveryRegisteredAlgorithm) {
  harness::register_builtin_algorithms();
  for (const std::string algo :
       {"arbiter-tp", "suzuki-kasami", "ricart-agrawala", "raymond",
        "centralized"}) {
    auto cfg = base_config();
    cfg.algorithm = algo;
    LockSpace space(cfg);
    for (std::size_t i = 0; i < 6; ++i) {
      space.acquire(i, i % 3);
      space.acquire(i, (i + 1) % 3);
    }
    space.simulator().run();
    EXPECT_EQ(space.total_completed(), 12u) << algo;
    EXPECT_EQ(space.safety_violations(), 0u) << algo;
  }
}

TEST(LockSpace, MessageAccountingIsPerResource) {
  auto cfg = base_config();
  cfg.n_resources = 2;
  LockSpace space(cfg);
  space.acquire(3, 0);  // only resource 0 sees traffic
  space.simulator().run();
  EXPECT_GT(space.messages(0), 0u);
  EXPECT_EQ(space.messages(1), 0u);
  EXPECT_EQ(space.total_messages(), space.messages(0));
  EXPECT_EQ(space.completed(0), 1u);
  EXPECT_EQ(space.completed(1), 0u);
}

TEST(LockSpace, SojournStatsPerResource) {
  LockSpace space(base_config());
  space.acquire(1, 0);
  space.acquire(2, 0);
  space.simulator().run();
  const auto w = space.sojourn(0);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_GT(w.mean(), 0.0);
  EXPECT_EQ(space.sojourn(1).count(), 0u);
}

}  // namespace
}  // namespace dmx::mutex
