// Tests for the multi-resource LockSpace: the spec/builder API, per-resource
// overrides, typed acquire tickets with grant/release hooks, demand
// batching, and the sharded lock-service scenario built on top of it.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "harness/experiment.hpp"
#include "harness/lock_service.hpp"
#include "harness/manifest.hpp"
#include "mutex/lock_space.hpp"
#include "sim/rng.hpp"
#include "workload/zipf.hpp"

namespace dmx::mutex {
namespace {

LockSpace::Config base_config() {
  harness::register_builtin_algorithms();
  LockSpace::Config cfg;
  cfg.n_nodes = 6;
  cfg.n_resources = 3;
  cfg.seed = 9;
  return cfg;
}

TEST(LockSpace, ValidatesConfig) {
  harness::register_builtin_algorithms();
  LockSpace::Config cfg = base_config();
  cfg.n_resources = 0;
  EXPECT_THROW(LockSpace{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.algorithm = "no-such";
  EXPECT_THROW(LockSpace{cfg}, std::invalid_argument);
}

TEST(LockSpace, ResourcesAreIndependent) {
  LockSpace space(base_config());
  // One node locks resource 0 for a long CS while others use resources 1,2.
  space.acquire(0, 0);
  space.acquire(1, 1);
  space.acquire(2, 2);
  space.simulator().run();
  EXPECT_EQ(space.total_completed(), 3u);
  EXPECT_EQ(space.safety_violations(), 0u);
  // The three grants overlapped in time (they share the clock but not the
  // lock): true cross-resource parallelism.
  EXPECT_GE(space.max_parallel_grants(), 2);
}

TEST(LockSpace, PerResourceExclusivityHolds) {
  auto cfg = base_config();
  cfg.n_resources = 2;
  LockSpace space(cfg);
  sim::Rng rng(3);
  for (int k = 0; k < 300; ++k) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, 5));
    const auto res = static_cast<std::size_t>(rng.uniform_int(0, 1));
    const double when = rng.uniform(0.0, 30.0);
    space.simulator().schedule_at(
        sim::SimTime::units(when),
        [&space, node, res] { space.acquire(node, res); });
  }
  space.simulator().run();
  EXPECT_EQ(space.total_completed(), 300u);
  EXPECT_EQ(space.total_submitted(), 300u);
  EXPECT_EQ(space.safety_violations(), 0u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(space.monitor(r).max_occupancy(), 1) << "resource " << r;
  }
  // Both locks were held simultaneously at some point under this load.
  EXPECT_EQ(space.max_parallel_grants(), 2);
}

TEST(LockSpace, WorksWithEveryRegisteredAlgorithm) {
  harness::register_builtin_algorithms();
  for (const std::string algo :
       {"arbiter-tp", "suzuki-kasami", "ricart-agrawala", "raymond",
        "path-reversal", "centralized"}) {
    auto cfg = base_config();
    cfg.algorithm = algo;
    LockSpace space(cfg);
    for (std::size_t i = 0; i < 6; ++i) {
      space.acquire(i, i % 3);
      space.acquire(i, (i + 1) % 3);
    }
    space.simulator().run();
    EXPECT_EQ(space.total_completed(), 12u) << algo;
    EXPECT_EQ(space.safety_violations(), 0u) << algo;
  }
}

TEST(LockSpace, MessageAccountingIsPerResource) {
  auto cfg = base_config();
  cfg.n_resources = 2;
  LockSpace space(cfg);
  space.acquire(3, 0);  // only resource 0 sees traffic
  space.simulator().run();
  EXPECT_GT(space.messages(0), 0u);
  EXPECT_EQ(space.messages(1), 0u);
  EXPECT_EQ(space.total_messages(), space.messages(0));
  EXPECT_EQ(space.completed(0), 1u);
  EXPECT_EQ(space.completed(1), 0u);
}

TEST(LockSpace, SojournStatsPerResource) {
  LockSpace space(base_config());
  space.acquire(1, 0);
  space.acquire(2, 0);
  space.simulator().run();
  const auto w = space.sojourn(0);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_GT(w.mean(), 0.0);
  EXPECT_EQ(space.sojourn(1).count(), 0u);
}

TEST(LockSpaceSpec, ValidateReportsEveryErrorAtOnce) {
  harness::register_builtin_algorithms();
  LockSpaceSpec spec;
  spec.algorithm = "no-such-default";
  spec.n_nodes = 0;
  spec.n_resources = 2;
  spec.t_msg = -1.0;
  spec.span_hist_max = 0.0;
  spec.overrides[5].algorithm = "no-such-override";  // index out of range too
  spec.overrides[1].n_nodes = 0;
  const auto errors = spec.validate();
  EXPECT_GE(errors.size(), 6u);
  auto mentions = [&errors](const std::string& needle) {
    for (const auto& e : errors) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(mentions("no-such-default"));
  EXPECT_TRUE(mentions("no-such-override"));
  EXPECT_TRUE(mentions("out of range"));
  EXPECT_TRUE(mentions("override for resource 1"));
}

TEST(LockSpaceBuilder, BuildThrowsJoinedErrors) {
  harness::register_builtin_algorithms();
  LockSpaceBuilder builder;
  builder.algorithm("no-such").nodes(0);
  try {
    (void)builder.build();
    FAIL() << "build() should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such"), std::string::npos);
    EXPECT_NE(what.find("n_nodes"), std::string::npos);
  }
}

TEST(LockSpaceBuilder, PerResourceOverridesApply) {
  harness::register_builtin_algorithms();
  const LockSpaceSpec spec = LockSpaceBuilder()
                                 .resources(3)
                                 .nodes(4)
                                 .algorithm("raymond")
                                 .resource_algorithm(0, "arbiter-tp")
                                 .resource_nodes(0, 8)
                                 .seed(11)
                                 .build();
  EXPECT_EQ(spec.algorithm_for(0), "arbiter-tp");
  EXPECT_EQ(spec.algorithm_for(1), "raymond");
  EXPECT_EQ(spec.nodes_for(0), 8u);
  EXPECT_EQ(spec.nodes_for(2), 4u);

  LockSpace space(spec);
  EXPECT_EQ(space.algorithm(0), "arbiter-tp");
  EXPECT_EQ(space.algorithm(2), "raymond");
  EXPECT_EQ(space.nodes(0), 8u);
  EXPECT_EQ(space.nodes(1), 4u);
  // Mixed per-resource protocols run side by side with zero violations.
  for (std::size_t node = 0; node < 4; ++node) {
    for (std::size_t r = 0; r < 3; ++r) space.acquire(node, r);
  }
  for (std::size_t node = 4; node < 8; ++node) space.acquire(node, 0);
  space.simulator().run();
  EXPECT_EQ(space.total_completed(), 16u);
  EXPECT_EQ(space.safety_violations(), 0u);
}

TEST(LockSpaceBuilder, ResourceParamsMergeOverDefaults) {
  harness::register_builtin_algorithms();
  const LockSpaceSpec spec = LockSpaceBuilder()
                                 .resources(2)
                                 .param("t_req", 0.5)
                                 .param("recovery", 1.0)
                                 .resource_param(1, "t_req", 2.5)
                                 .build();
  EXPECT_DOUBLE_EQ(spec.params_for(0).get_num("t_req", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(spec.params_for(1).get_num("t_req", 0.0), 2.5);
  // Untouched defaults survive the merge.
  EXPECT_DOUBLE_EQ(spec.params_for(1).get_num("recovery", 0.0), 1.0);
}

TEST(LockSpace, AcquireReturnsTicketsAndHooksFireExactlyOnce) {
  harness::register_builtin_algorithms();
  auto space = LockSpaceBuilder().resources(2).nodes(4).seed(3).build_space();
  std::map<std::uint64_t, int> grants, releases;
  std::vector<std::uint64_t> release_order;
  space->set_on_granted([&grants](const LockEvent& e) {
    ASSERT_TRUE(e.id);
    ++grants[e.id.value];
  });
  space->set_on_released([&releases, &release_order](const LockEvent& e) {
    ASSERT_TRUE(e.id);
    ++releases[e.id.value];
    release_order.push_back(e.id.value);
  });
  std::vector<LockRequestId> tickets;
  for (std::size_t node = 0; node < 4; ++node) {
    tickets.push_back(space->acquire(node, node % 2));
    tickets.push_back(space->acquire(node, (node + 1) % 2));
  }
  // Tickets are unique and strictly increasing in submission order.
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_GT(tickets[i].value, tickets[i - 1].value);
  }
  space->simulator().run();
  EXPECT_EQ(space->total_completed(), tickets.size());
  EXPECT_EQ(grants.size(), tickets.size());
  EXPECT_EQ(releases.size(), tickets.size());
  for (const LockRequestId t : tickets) {
    EXPECT_EQ(grants[t.value], 1) << "ticket " << t.value;
    EXPECT_EQ(releases[t.value], 1) << "ticket " << t.value;
  }
}

TEST(LockSpace, SubmitBatchTicketsInOrder) {
  harness::register_builtin_algorithms();
  auto space =
      LockSpaceBuilder().resources(2).nodes(3).batch(4).seed(5).build_space();
  const std::vector<LockDemand> demands = {
      {0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {0, 1, 0}, {1, 1, 0}};
  const std::vector<LockRequestId> tickets = space->submit_batch(demands);
  ASSERT_EQ(tickets.size(), demands.size());
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].value, tickets[i - 1].value + 1);
  }
  EXPECT_EQ(space->total_submitted(), demands.size());
  space->simulator().run();
  EXPECT_EQ(space->total_completed(), demands.size());
  EXPECT_EQ(space->safety_violations(), 0u);
}

TEST(LockSpace, BatchingMatchesUnbatchedOutcomes) {
  harness::register_builtin_algorithms();
  auto run = [](std::size_t batch) {
    auto space = LockSpaceBuilder()
                     .resources(2)
                     .nodes(4)
                     .batch(batch)
                     .seed(21)
                     .build_space();
    sim::Rng rng(9);
    for (int k = 0; k < 100; ++k) {
      const auto node = static_cast<std::size_t>(rng.uniform_int(0, 3));
      const auto res = static_cast<std::size_t>(rng.uniform_int(0, 1));
      const double when = rng.uniform(0.0, 20.0);
      space->simulator().schedule_at(
          sim::SimTime::units(when),
          [space = space.get(), node, res] { space->acquire(node, res); });
    }
    space->simulator().run();
    std::pair<std::uint64_t, std::vector<std::uint64_t>> out{
        space->safety_violations(), {}};
    for (std::size_t r = 0; r < 2; ++r) {
      for (const std::uint64_t c : space->completions_per_node(r)) {
        out.second.push_back(c);
      }
    }
    EXPECT_EQ(space->total_completed(), 100u);
    return out;
  };
  const auto unbatched = run(0);
  const auto batched = run(8);
  EXPECT_EQ(unbatched.first, 0u);
  EXPECT_EQ(batched.first, 0u);
  // Batching defers submission within the same timestamp only, so per-node
  // completion tallies are identical to the unbatched run.
  EXPECT_EQ(unbatched.second, batched.second);
}

TEST(LockSpace, SpanReportExposesGrantWait) {
  harness::register_builtin_algorithms();
  auto space =
      LockSpaceBuilder().resources(2).nodes(3).collect_spans().build_space();
  for (std::size_t node = 0; node < 3; ++node) {
    space->acquire(node, 0);
    space->acquire(node, 1);
  }
  space->simulator().run();
  const obs::SpanReport* report = space->span_report(0);
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->completed, 3u);
  EXPECT_EQ(report->grant_wait.moments.count(), 3u);
  EXPECT_GE(report->grant_wait.hist.quantile(0.99),
            report->grant_wait.hist.quantile(0.50));
  // Without collect_spans the report is absent, not empty.
  LockSpace bare(LockSpaceBuilder().resources(1).nodes(2).build());
  EXPECT_EQ(bare.span_report(0), nullptr);
}

TEST(LockSpace, DeprecatedConfigShimStillBuilds) {
  harness::register_builtin_algorithms();
  LockSpace::Config cfg;
  cfg.algorithm = "suzuki-kasami";
  cfg.n_nodes = 3;
  cfg.n_resources = 2;
  LockSpace space(cfg);
  EXPECT_EQ(space.spec().algorithm, "suzuki-kasami");
  EXPECT_EQ(space.spec().batch_size, 0u);  // shim: unbatched, no spans
  space.acquire(0, 0);
  space.acquire(1, 1);
  space.simulator().run();
  EXPECT_EQ(space.total_completed(), 2u);
}

// --- Sharded lock-service scenario (harness/lock_service.hpp) ------------

harness::LockServiceConfig small_service() {
  harness::LockServiceConfig cfg;
  cfg.n_resources = 12;
  cfg.zipf_s = 0.9;
  cfg.total_demands = 1'500;
  cfg.hot_nodes = 6;
  cfg.cold_nodes = 3;
  cfg.think_mean = 0.5;
  cfg.batch_size = 8;
  cfg.seed = 42;
  return cfg;
}

TEST(LockService, ValidateReportsEveryErrorAtOnce) {
  harness::register_builtin_algorithms();
  harness::LockServiceConfig cfg;
  cfg.n_resources = 0;
  cfg.zipf_s = -1.0;
  cfg.total_demands = 0;
  cfg.hot_algorithm = "no-such-hot";
  cfg.cold_algorithm = "no-such-cold";
  cfg.think_mean = 0.0;
  const auto errors = cfg.validate();
  EXPECT_GE(errors.size(), 6u);
  EXPECT_THROW((void)harness::run_lock_service(cfg), std::invalid_argument);
}

TEST(LockService, MixedShardAlgorithmsZeroViolations) {
  harness::register_builtin_algorithms();
  const harness::LockServiceReport report =
      harness::run_lock_service(small_service());
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.safety_violations, 0u);
  EXPECT_EQ(report.total_completed, 1'500u);
  // The Zipf head/tail split exercises BOTH algorithms.
  EXPECT_GE(report.hot_shards, 1u);
  EXPECT_LT(report.hot_shards, report.shards.size());
  EXPECT_EQ(report.shards[0].algorithm, "arbiter-tp");
  EXPECT_TRUE(report.shards[0].hot);
  EXPECT_EQ(report.shards.back().algorithm, "path-reversal");
  // The demand split is the canonical Zipf vector.
  const auto demand = workload::zipf_demand_vector(12, 0.9, 1'500, 42);
  for (std::size_t r = 0; r < report.shards.size(); ++r) {
    EXPECT_EQ(report.shards[r].demand, demand[r]) << "shard " << r;
    EXPECT_EQ(report.shards[r].completed, demand[r]) << "shard " << r;
  }
  // SLO material is populated on loaded shards.
  EXPECT_GT(report.shards[0].grant_p99, 0.0);
  EXPECT_GE(report.shards[0].grant_p99, report.shards[0].grant_p50);
  EXPECT_GT(report.grant_p99_worst, 0.0);
  EXPECT_GT(report.fairness_min, 0.0);
  EXPECT_LE(report.fairness_min, 1.0);
}

TEST(LockService, JobsFanOutIsByteIdentical) {
  harness::register_builtin_algorithms();
  harness::LockServiceConfig cfg = small_service();
  auto manifest_of = [&cfg](std::size_t jobs) {
    cfg.jobs = jobs;
    const harness::LockServiceReport report =
        harness::run_lock_service(cfg);
    harness::ExperimentConfig mc;
    mc.n_resources = cfg.n_resources;
    mc.zipf_s = cfg.zipf_s;
    mc.total_requests = cfg.total_demands;
    harness::ExperimentResult mr;
    mr.algorithm = "lock-service";
    mr.completed = report.total_completed;
    mr.drained = report.drained;
    mr.lock_service =
        std::make_shared<const harness::LockServiceReport>(report);
    std::ostringstream os;
    harness::write_run_manifest(os, {harness::RunRecord{mc, mr}});
    return os.str();
  };
  const std::string serial = manifest_of(1);
  // The full per-shard scorecard — every double included — is byte-stable
  // for any worker count (shards are independently seeded simulators).
  EXPECT_EQ(serial, manifest_of(8));
  EXPECT_EQ(serial, manifest_of(0));  // 0 = hardware concurrency
}

TEST(LockService, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(harness::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(harness::jain_fairness({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(harness::jain_fairness({5, 5, 5}), 1.0);
  // One tenant hogging everything: index collapses to 1/n.
  EXPECT_NEAR(harness::jain_fairness({9, 0, 0}), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace dmx::mutex
