#include <gtest/gtest.h>

#include <memory>

#include "mutex/cs_driver.hpp"
#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"
#include "sim/simulator.hpp"
#include "workload/arrivals.hpp"
#include "workload/closed_loop.hpp"
#include "workload/generator.hpp"
#include "workload/zipf.hpp"

namespace dmx::workload {
namespace {

TEST(Arrivals, PoissonMeanGapMatchesRate) {
  sim::Rng rng(1);
  PoissonArrivals p(2.0);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += p.next_gap(rng).to_units();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 2.0);
}

TEST(Arrivals, DeterministicIsConstant) {
  sim::Rng rng(1);
  DeterministicArrivals d(sim::SimTime::units(0.25));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.next_gap(rng), sim::SimTime::units(0.25));
  }
  EXPECT_DOUBLE_EQ(d.mean_rate(), 4.0);
}

TEST(Arrivals, UniformWithinBounds) {
  sim::Rng rng(2);
  UniformArrivals u(sim::SimTime::units(0.1), sim::SimTime::units(0.3));
  for (int i = 0; i < 1000; ++i) {
    const double g = u.next_gap(rng).to_units();
    EXPECT_GE(g, 0.1);
    EXPECT_LT(g, 0.3);
  }
  EXPECT_NEAR(u.mean_rate(), 5.0, 1e-9);
}

TEST(Arrivals, BurstyLongRunRate) {
  sim::Rng rng(3);
  // ON at rate 10 for mean 1 unit, OFF for mean 1 unit -> long-run rate 5.
  BurstyArrivals b(10.0, sim::SimTime::units(1.0), sim::SimTime::units(1.0));
  EXPECT_NEAR(b.mean_rate(), 5.0, 1e-9);
  double total = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) total += b.next_gap(rng).to_units();
  EXPECT_NEAR(static_cast<double>(n) / total, 5.0, 0.5);
}

TEST(Arrivals, Validation) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(DeterministicArrivals(sim::SimTime::zero()),
               std::invalid_argument);
  EXPECT_THROW(UniformArrivals(sim::SimTime::units(0.5),
                               sim::SimTime::units(0.4)),
               std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(-1.0, sim::SimTime::units(1.0),
                              sim::SimTime::units(1.0)),
               std::invalid_argument);
}

// A no-message algorithm granting instantly, to exercise the generator and
// driver without a cluster.
class InstantMutex final : public mutex::MutexAlgorithm {
 public:
  void request(const mutex::CsRequest& req) override { grant(req); }
  void release() override {}
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "instant";
  }

 protected:
  void handle(const net::Envelope&) override {}
};

struct GeneratorFixture {
  sim::Simulator sim;
  // A real cluster is needed so the algorithm is bound (id(), timers).
  runtime::Cluster cluster{
      2, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), 1};
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<InstantMutex*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;

  GeneratorFixture() {
    for (std::int32_t i = 0; i < 2; ++i) {
      auto up = std::make_unique<InstantMutex>();
      algos.push_back(up.get());
      cluster.install(net::NodeId{i}, std::move(up));
      drivers.push_back(std::make_unique<mutex::CsDriver>(
          cluster.simulator(), *algos.back(), sim::SimTime::units(0.01),
          &monitor, &ids));
    }
    cluster.start();
  }
};

TEST(Generator, StopsAtGlobalBudget) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<PoissonArrivals>(5.0));
  ap.push_back(std::make_unique<PoissonArrivals>(5.0));
  OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 100, 7);
  gen.start();
  f.cluster.simulator().run();
  EXPECT_EQ(gen.submitted(), 100u);
  EXPECT_EQ(f.drivers[0]->submitted() + f.drivers[1]->submitted(), 100u);
  EXPECT_EQ(f.drivers[0]->completed() + f.drivers[1]->completed(), 100u);
}

TEST(Generator, StopNodeHaltsItsArrivals) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 1000, 7);
  gen.stop_node(1);
  gen.start();
  f.cluster.simulator().run_until(sim::SimTime::units(50.5));
  EXPECT_EQ(f.drivers[1]->submitted(), 0u);
  EXPECT_EQ(f.drivers[0]->submitted(), 50u);
}

TEST(Generator, PriorityFunctionApplied) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 4, 7);
  std::vector<std::pair<std::size_t, std::uint64_t>> calls;
  gen.set_priority_fn([&](std::size_t node, std::uint64_t k) {
    calls.emplace_back(node, k);
    return static_cast<int>(node);
  });
  gen.start();
  f.cluster.simulator().run();
  EXPECT_EQ(calls.size(), 4u);
}

TEST(Generator, MismatchedVectorsThrow) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<PoissonArrivals>(1.0));
  ap.push_back(std::make_unique<PoissonArrivals>(1.0));
  EXPECT_THROW(OpenLoopGenerator(f.cluster.simulator(), dp, std::move(ap), 10, 1),
               std::invalid_argument);
}

TEST(Generator, DeterministicAcrossRuns) {
  auto run_once = [] {
    GeneratorFixture f;
    std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
    std::vector<std::unique_ptr<ArrivalProcess>> ap;
    ap.push_back(std::make_unique<PoissonArrivals>(3.0));
    ap.push_back(std::make_unique<PoissonArrivals>(3.0));
    OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 200, 11);
    gen.start();
    f.cluster.simulator().run();
    return std::make_pair(f.drivers[0]->submitted(),
                          f.cluster.simulator().now().raw());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Zipf, Validation) {
  EXPECT_THROW(ZipfPicker(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfPicker(4, -0.1), std::invalid_argument);
}

TEST(Zipf, ZeroSkewIsUniform) {
  const ZipfPicker p(5, 0.0);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(p.probability(r), 0.2, 1e-12) << "rank " << r;
  }
}

TEST(Zipf, MassIsNormalizedAndNonIncreasing) {
  const ZipfPicker p(64, 0.9);
  double sum = 0.0;
  for (std::size_t r = 0; r < p.ranks(); ++r) {
    sum += p.probability(r);
    if (r > 0) {
      EXPECT_LE(p.probability(r), p.probability(r - 1) + 1e-12);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_THROW((void)p.probability(64), std::out_of_range);
}

TEST(Zipf, PickCoversEveryRankUnderUniformSkew) {
  const ZipfPicker p(4, 0.0);
  sim::Rng rng(5);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4000; ++i) ++hits[p.pick(rng)];
  for (std::size_t r = 0; r < 4; ++r) EXPECT_GT(hits[r], 0) << r;
}

// THE determinism pin for the sharded lock-service scenario: the canonical
// per-shard demand split must be byte-stable across runs, platforms and
// refactors — the --jobs byte-equality gates and the manifest goldens all
// sit on top of this exact vector.  If an intentional change to the Zipf
// sampling breaks it, re-pin deliberately.
TEST(Zipf, DemandVectorDeterministicPin) {
  const std::vector<std::uint64_t> expected = {327, 201, 145, 89,
                                               82,  57,  60,  39};
  EXPECT_EQ(zipf_demand_vector(8, 0.9, 1000, 42), expected);
  // Same tuple, fresh call: identical (no hidden global state).
  EXPECT_EQ(zipf_demand_vector(8, 0.9, 1000, 42), expected);
  // The split is exhaustive: every demand lands on exactly one shard, and
  // the Zipf head is the hottest rank.
  const auto big = zipf_demand_vector(16, 1.2, 50'000, 7);
  std::uint64_t sum = 0;
  for (const std::uint64_t d : big) sum += d;
  EXPECT_EQ(sum, 50'000u);
  EXPECT_EQ(big[0], 18'315u);
  for (std::size_t r = 1; r < big.size(); ++r) EXPECT_GE(big[0], big[r]);
}

TEST(ClosedLoop, GenericBindingDrivesSubmitFns) {
  // Two clients submitting through opaque functions: each "CS" completes
  // 0.05 units after submission, signalled back via notify_complete — the
  // binding the LockSpace on_released hook uses.
  sim::Simulator sim;
  std::vector<std::uint64_t> per_client(2, 0);
  ClosedLoopGenerator* gen_ptr = nullptr;
  std::vector<ClosedLoopGenerator::SubmitFn> submit;
  for (std::size_t c = 0; c < 2; ++c) {
    submit.emplace_back([&sim, &per_client, &gen_ptr, c] {
      ++per_client[c];
      sim.schedule_after(sim::SimTime::units(0.05),
                         [&gen_ptr, c] { gen_ptr->notify_complete(c); });
    });
  }
  std::vector<std::unique_ptr<ArrivalProcess>> think;
  think.push_back(std::make_unique<PoissonArrivals>(4.0));
  think.push_back(std::make_unique<PoissonArrivals>(4.0));
  ClosedLoopGenerator gen(sim, std::move(submit), std::move(think), 50, 3);
  gen_ptr = &gen;
  gen.start();
  sim.run();
  EXPECT_EQ(gen.submitted(), 50u);
  EXPECT_EQ(per_client[0] + per_client[1], 50u);
  // Closed loop: both clients made progress (one outstanding demand each).
  EXPECT_GT(per_client[0], 0u);
  EXPECT_GT(per_client[1], 0u);
  EXPECT_EQ(gen.clients(), 2u);
  EXPECT_THROW(gen.notify_complete(2), std::out_of_range);
}

}  // namespace
}  // namespace dmx::workload
