#include <gtest/gtest.h>

#include <memory>

#include "mutex/cs_driver.hpp"
#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"
#include "sim/simulator.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace dmx::workload {
namespace {

TEST(Arrivals, PoissonMeanGapMatchesRate) {
  sim::Rng rng(1);
  PoissonArrivals p(2.0);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += p.next_gap(rng).to_units();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 2.0);
}

TEST(Arrivals, DeterministicIsConstant) {
  sim::Rng rng(1);
  DeterministicArrivals d(sim::SimTime::units(0.25));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.next_gap(rng), sim::SimTime::units(0.25));
  }
  EXPECT_DOUBLE_EQ(d.mean_rate(), 4.0);
}

TEST(Arrivals, UniformWithinBounds) {
  sim::Rng rng(2);
  UniformArrivals u(sim::SimTime::units(0.1), sim::SimTime::units(0.3));
  for (int i = 0; i < 1000; ++i) {
    const double g = u.next_gap(rng).to_units();
    EXPECT_GE(g, 0.1);
    EXPECT_LT(g, 0.3);
  }
  EXPECT_NEAR(u.mean_rate(), 5.0, 1e-9);
}

TEST(Arrivals, BurstyLongRunRate) {
  sim::Rng rng(3);
  // ON at rate 10 for mean 1 unit, OFF for mean 1 unit -> long-run rate 5.
  BurstyArrivals b(10.0, sim::SimTime::units(1.0), sim::SimTime::units(1.0));
  EXPECT_NEAR(b.mean_rate(), 5.0, 1e-9);
  double total = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) total += b.next_gap(rng).to_units();
  EXPECT_NEAR(static_cast<double>(n) / total, 5.0, 0.5);
}

TEST(Arrivals, Validation) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(DeterministicArrivals(sim::SimTime::zero()),
               std::invalid_argument);
  EXPECT_THROW(UniformArrivals(sim::SimTime::units(0.5),
                               sim::SimTime::units(0.4)),
               std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(-1.0, sim::SimTime::units(1.0),
                              sim::SimTime::units(1.0)),
               std::invalid_argument);
}

// A no-message algorithm granting instantly, to exercise the generator and
// driver without a cluster.
class InstantMutex final : public mutex::MutexAlgorithm {
 public:
  void request(const mutex::CsRequest& req) override { grant(req); }
  void release() override {}
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "instant";
  }

 protected:
  void handle(const net::Envelope&) override {}
};

struct GeneratorFixture {
  sim::Simulator sim;
  // A real cluster is needed so the algorithm is bound (id(), timers).
  runtime::Cluster cluster{
      2, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), 1};
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<InstantMutex*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;

  GeneratorFixture() {
    for (std::int32_t i = 0; i < 2; ++i) {
      auto up = std::make_unique<InstantMutex>();
      algos.push_back(up.get());
      cluster.install(net::NodeId{i}, std::move(up));
      drivers.push_back(std::make_unique<mutex::CsDriver>(
          cluster.simulator(), *algos.back(), sim::SimTime::units(0.01),
          &monitor, &ids));
    }
    cluster.start();
  }
};

TEST(Generator, StopsAtGlobalBudget) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<PoissonArrivals>(5.0));
  ap.push_back(std::make_unique<PoissonArrivals>(5.0));
  OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 100, 7);
  gen.start();
  f.cluster.simulator().run();
  EXPECT_EQ(gen.submitted(), 100u);
  EXPECT_EQ(f.drivers[0]->submitted() + f.drivers[1]->submitted(), 100u);
  EXPECT_EQ(f.drivers[0]->completed() + f.drivers[1]->completed(), 100u);
}

TEST(Generator, StopNodeHaltsItsArrivals) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 1000, 7);
  gen.stop_node(1);
  gen.start();
  f.cluster.simulator().run_until(sim::SimTime::units(50.5));
  EXPECT_EQ(f.drivers[1]->submitted(), 0u);
  EXPECT_EQ(f.drivers[0]->submitted(), 50u);
}

TEST(Generator, PriorityFunctionApplied) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  ap.push_back(std::make_unique<DeterministicArrivals>(sim::SimTime::units(1.0)));
  OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 4, 7);
  std::vector<std::pair<std::size_t, std::uint64_t>> calls;
  gen.set_priority_fn([&](std::size_t node, std::uint64_t k) {
    calls.emplace_back(node, k);
    return static_cast<int>(node);
  });
  gen.start();
  f.cluster.simulator().run();
  EXPECT_EQ(calls.size(), 4u);
}

TEST(Generator, MismatchedVectorsThrow) {
  GeneratorFixture f;
  std::vector<mutex::CsDriver*> dp{f.drivers[0].get()};
  std::vector<std::unique_ptr<ArrivalProcess>> ap;
  ap.push_back(std::make_unique<PoissonArrivals>(1.0));
  ap.push_back(std::make_unique<PoissonArrivals>(1.0));
  EXPECT_THROW(OpenLoopGenerator(f.cluster.simulator(), dp, std::move(ap), 10, 1),
               std::invalid_argument);
}

TEST(Generator, DeterministicAcrossRuns) {
  auto run_once = [] {
    GeneratorFixture f;
    std::vector<mutex::CsDriver*> dp{f.drivers[0].get(), f.drivers[1].get()};
    std::vector<std::unique_ptr<ArrivalProcess>> ap;
    ap.push_back(std::make_unique<PoissonArrivals>(3.0));
    ap.push_back(std::make_unique<PoissonArrivals>(3.0));
    OpenLoopGenerator gen(f.cluster.simulator(), dp, std::move(ap), 200, 11);
    gen.start();
    f.cluster.simulator().run();
    return std::make_pair(f.drivers[0]->submitted(),
                          f.cluster.simulator().now().raw());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dmx::workload
