// AllocationGuard: counts global heap allocations inside a scope.
//
// Including this header REPLACES the program-wide operator new/delete with
// counting forwarders, so it must be included by exactly ONE translation
// unit of a test binary.  The guard reads the counter at construction;
// count() returns how many allocations happened since.  Used by the
// zero-allocation regression tests to pin the steady-state message path
// (net/pool.hpp) at zero heap traffic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace dmx::testutil {

inline std::atomic<std::uint64_t> g_allocations{0};

class AllocationGuard {
 public:
  AllocationGuard() : start_(g_allocations.load(std::memory_order_relaxed)) {}

  /// Heap allocations since this guard was constructed.
  [[nodiscard]] std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed) - start_;
  }

 private:
  std::uint64_t start_;
};

inline void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

inline void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace dmx::testutil

// Replacement global allocation functions (one definition per program; this
// header is included by one TU only).  glibc frees malloc and posix_memalign
// blocks interchangeably, so one operator delete serves both paths.
void* operator new(std::size_t n) { return dmx::testutil::counted_alloc(n); }
void* operator new[](std::size_t n) { return dmx::testutil::counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return dmx::testutil::counted_aligned_alloc(n,
                                              static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return dmx::testutil::counted_aligned_alloc(n,
                                              static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
