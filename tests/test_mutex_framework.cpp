// Tests for the algorithm-agnostic mutex framework: SafetyMonitor, CsDriver
// (serialization, metrics, crash handling) and the registry/params layer.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"

namespace dmx::mutex {
namespace {

TEST(SafetyMonitor, CleanAlternationHasNoViolations) {
  SafetyMonitor m;
  m.on_enter(net::NodeId{0}, sim::SimTime::units(1.0));
  m.on_exit(net::NodeId{0}, sim::SimTime::units(2.0));
  m.on_enter(net::NodeId{1}, sim::SimTime::units(3.0));
  m.on_exit(net::NodeId{1}, sim::SimTime::units(4.0));
  EXPECT_EQ(m.violations(), 0u);
  EXPECT_EQ(m.entries(), 2u);
  EXPECT_EQ(m.max_occupancy(), 1);
  EXPECT_FALSE(m.first_violation().has_value());
}

TEST(SafetyMonitor, OverlapIsAViolation) {
  SafetyMonitor m;
  m.on_enter(net::NodeId{0}, sim::SimTime::units(1.0));
  m.on_enter(net::NodeId{1}, sim::SimTime::units(1.5));
  EXPECT_EQ(m.violations(), 1u);
  EXPECT_EQ(m.max_occupancy(), 2);
  ASSERT_TRUE(m.first_violation().has_value());
  EXPECT_NE(m.first_violation()->find("node 1"), std::string::npos);
}

TEST(SafetyMonitor, ExitWithoutEntryIsAViolation) {
  SafetyMonitor m;
  m.on_exit(net::NodeId{3}, sim::SimTime::units(1.0));
  EXPECT_EQ(m.violations(), 1u);
}

TEST(SafetyMonitor, StrictModeThrows) {
  SafetyMonitor m(/*strict=*/true);
  m.on_enter(net::NodeId{0}, sim::SimTime::units(1.0));
  EXPECT_THROW(m.on_enter(net::NodeId{1}, sim::SimTime::units(1.1)),
               std::logic_error);
}

/// Grants on explicit demand, to script driver scenarios.
class ScriptedMutex final : public MutexAlgorithm {
 public:
  int requests = 0;
  int releases = 0;
  std::optional<CsRequest> last;

  void request(const CsRequest& req) override {
    ++requests;
    last = req;
  }
  void release() override { ++releases; }
  void grant_now() { grant(*last); }
  void grant_stale(std::uint64_t bogus_id) {
    CsRequest r = *last;
    r.request_id = bogus_id;
    grant(r);
  }
  [[nodiscard]] std::string_view algorithm_name() const override {
    return "scripted";
  }

 protected:
  void handle(const net::Envelope&) override {}
};

struct DriverFixture {
  runtime::Cluster cluster{
      1, std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), 1};
  RequestIdSource ids;
  SafetyMonitor monitor;
  ScriptedMutex* algo;
  std::unique_ptr<CsDriver> driver;

  DriverFixture() {
    auto up = std::make_unique<ScriptedMutex>();
    algo = up.get();
    cluster.install(net::NodeId{0}, std::move(up));
    driver = std::make_unique<CsDriver>(cluster.simulator(), *algo,
                                        sim::SimTime::units(0.5), &monitor,
                                        &ids);
    cluster.start();
  }
};

TEST(CsDriver, SerializesOutstandingRequests) {
  DriverFixture f;
  f.driver->submit();
  f.driver->submit();
  f.driver->submit();
  EXPECT_EQ(f.driver->submitted(), 3u);
  EXPECT_EQ(f.algo->requests, 1);  // only one outstanding
  f.algo->grant_now();
  f.cluster.simulator().run();  // CS completes, next issues, and so on
  EXPECT_EQ(f.algo->requests, 2);
  f.algo->grant_now();
  f.cluster.simulator().run();
  f.algo->grant_now();
  f.cluster.simulator().run();
  EXPECT_EQ(f.driver->completed(), 3u);
  EXPECT_EQ(f.algo->releases, 3);
  EXPECT_TRUE(f.driver->idle());
}

TEST(CsDriver, MeasuresServiceTimes) {
  DriverFixture f;
  f.driver->submit();
  f.algo->grant_now();
  f.cluster.simulator().run();
  EXPECT_EQ(f.driver->service_time().count(), 1u);
  EXPECT_DOUBLE_EQ(f.driver->service_time().mean(), 0.5);  // t_exec only
  EXPECT_DOUBLE_EQ(f.driver->response_time().mean(), 0.0);
}

TEST(CsDriver, QueuedDemandKeepsArrivalTimeForSojourn) {
  DriverFixture f;
  f.driver->submit();          // t=0, granted immediately below
  f.driver->submit();          // t=0, queued
  f.algo->grant_now();
  f.cluster.simulator().run();  // first CS done at 0.5; second issues
  f.algo->grant_now();
  f.cluster.simulator().run();  // second CS done at 1.0
  EXPECT_EQ(f.driver->completed(), 2u);
  // Second request: arrival 0, completion 1.0.
  EXPECT_DOUBLE_EQ(f.driver->sojourn_time().max(), 1.0);
  // Service time of the second measured from issuance (0.5) -> 0.5.
  EXPECT_DOUBLE_EQ(f.driver->service_time().max(), 0.5);
}

TEST(CsDriver, SpuriousGrantsIgnoredAndCounted) {
  DriverFixture f;
  f.driver->submit();
  f.algo->grant_stale(999999);  // wrong id: must not enter CS
  EXPECT_EQ(f.driver->spurious_grants(), 1u);
  f.algo->grant_now();
  f.algo->grant_now();  // double grant while already in CS
  EXPECT_EQ(f.driver->spurious_grants(), 2u);
  f.cluster.simulator().run();
  EXPECT_EQ(f.driver->completed(), 1u);
  EXPECT_EQ(f.monitor.violations(), 0u);
}

TEST(CsDriver, CrashInsideCsReleasesOccupancyAndVoidsQueue) {
  DriverFixture f;
  f.driver->submit();
  f.driver->submit();
  f.algo->grant_now();
  EXPECT_EQ(f.monitor.current_occupancy(), 1);
  f.cluster.crash_node(net::NodeId{0});
  f.driver->on_node_crashed();
  EXPECT_EQ(f.monitor.current_occupancy(), 0);
  EXPECT_EQ(f.monitor.violations(), 0u);
  EXPECT_EQ(f.driver->aborted_by_crash(), 2u);  // in-CS demand + queued demand
  f.cluster.simulator().run();
  EXPECT_EQ(f.driver->completed(), 0u);
  EXPECT_EQ(f.driver->submitted(), 2u);
}

TEST(CsDriver, CrashedNodeIgnoresNewSubmissions) {
  DriverFixture f;
  f.cluster.crash_node(net::NodeId{0});
  f.driver->on_node_crashed();
  f.driver->submit();
  EXPECT_EQ(f.driver->submitted(), 0u);
  EXPECT_EQ(f.algo->requests, 0);
}

TEST(Registry, UnknownAlgorithmThrows) {
  harness::register_builtin_algorithms();
  ParamSet params;
  FactoryContext ctx{net::NodeId{0}, 4, params};
  EXPECT_THROW((void)Registry::instance().create("no-such-algo", ctx),
               std::invalid_argument);
}

TEST(Registry, AllBuiltinsRegistered) {
  harness::register_builtin_algorithms();
  for (const char* name :
       {"arbiter-tp", "arbiter-tp-sf", "centralized", "suzuki-kasami",
        "ricart-agrawala", "lamport", "raymond", "maekawa", "singhal"}) {
    EXPECT_TRUE(Registry::instance().contains(name)) << name;
  }
}

TEST(Registry, FactoriesProduceWorkingInstances) {
  harness::register_builtin_algorithms();
  ParamSet params;
  for (const auto& name : Registry::instance().names()) {
    FactoryContext ctx{net::NodeId{1}, 9, params};
    auto algo = Registry::instance().create(name, ctx);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_FALSE(algo->algorithm_name().empty()) << name;
  }
}

TEST(ParamSet, TypedAccessAndDefaults) {
  ParamSet p;
  p.set("t_req", 0.2).set("name", std::string("x"));
  EXPECT_DOUBLE_EQ(p.get_num("t_req", 0.5), 0.2);
  EXPECT_DOUBLE_EQ(p.get_num("missing", 0.5), 0.5);
  EXPECT_EQ(p.get_time("t_req", sim::SimTime::zero()),
            sim::SimTime::units(0.2));
  EXPECT_EQ(p.get_str("name", "y"), "x");
  EXPECT_EQ(p.get_str("other", "y"), "y");
  EXPECT_TRUE(p.has("t_req"));
  EXPECT_FALSE(p.has("nope"));
  EXPECT_DOUBLE_EQ(p.require_num("t_req"), 0.2);
  EXPECT_THROW((void)p.require_num("nope"), std::invalid_argument);
  p.set("flag", 1.0);
  EXPECT_TRUE(p.get_bool("flag", false));
  EXPECT_FALSE(p.get_bool("flag2", false));
}

TEST(ArbiterParams, FromParamSet) {
  ParamSet p;
  p.set("t_req", 0.3)
      .set("t_fwd", 0.4)
      .set("tau", 5.0)
      .set("order", std::string("priority"))
      .set("recovery", 1.0)
      .set("token_timeout", 3.0);
  const auto a = core::ArbiterParams::from_params(p);
  EXPECT_EQ(a.t_req, sim::SimTime::units(0.3));
  EXPECT_EQ(a.t_fwd, sim::SimTime::units(0.4));
  EXPECT_EQ(a.tau, 5u);
  EXPECT_EQ(a.order, core::BatchOrder::kPriority);
  EXPECT_TRUE(a.recovery);
  EXPECT_EQ(a.token_timeout, sim::SimTime::units(3.0));
  ParamSet bad;
  bad.set("order", std::string("bogus"));
  EXPECT_THROW(core::ArbiterParams::from_params(bad), std::invalid_argument);
}

}  // namespace
}  // namespace dmx::mutex
