#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/delay_model.hpp"
#include "runtime/cluster.hpp"
#include "runtime/process.hpp"

namespace dmx::runtime {
namespace {

struct NoteMsg final : net::Msg<NoteMsg> {
  DMX_REGISTER_MESSAGE(NoteMsg, "NOTE");
  int value;
  explicit NoteMsg(int v) : value(v) {}
};

/// Minimal process recording lifecycle and message events.
class Probe final : public Process {
 public:
  std::vector<int> notes;
  int starts = 0;
  int crashes = 0;
  int restarts = 0;
  int timer_fires = 0;

  using Process::broadcast;
  using Process::cancel_timer;
  using Process::send;
  using Process::set_timer;
  using Process::timer_pending;

 protected:
  void handle(const net::Envelope& env) override {
    if (const auto* n = env.as<NoteMsg>()) notes.push_back(n->value);
  }
  void on_start() override { ++starts; }
  void on_crash() override { ++crashes; }
  void on_restart() override { ++restarts; }
};

std::unique_ptr<net::DelayModel> delay01() {
  return std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1));
}

class ClusterTest : public ::testing::Test {
 protected:
  void make(std::size_t n) {
    cluster_ = std::make_unique<Cluster>(n, delay01(), 1);
    probes_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      probes_.push_back(cluster_->process_as<Probe>(
          cluster_->install(net::NodeId{static_cast<std::int32_t>(i)},
                            std::make_unique<Probe>())
              ->id()));
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<Probe*> probes_;
};

TEST_F(ClusterTest, StartCallsEveryProcessOnce) {
  make(3);
  cluster_->start();
  for (auto* p : probes_) EXPECT_EQ(p->starts, 1);
  EXPECT_THROW(cluster_->start(), std::logic_error);
}

TEST_F(ClusterTest, StartRequiresAllSlotsFilled) {
  Cluster c(2, delay01(), 1);
  c.install(net::NodeId{0}, std::make_unique<Probe>());
  EXPECT_THROW(c.start(), std::logic_error);
}

TEST_F(ClusterTest, InstallValidation) {
  Cluster c(2, delay01(), 1);
  EXPECT_THROW(c.install(net::NodeId{5}, std::make_unique<Probe>()),
               std::out_of_range);
  EXPECT_THROW(c.install(net::NodeId{0}, nullptr), std::invalid_argument);
  c.install(net::NodeId{0}, std::make_unique<Probe>());
  EXPECT_THROW(c.install(net::NodeId{0}, std::make_unique<Probe>()),
               std::logic_error);
}

TEST_F(ClusterTest, ProcessAsChecksType) {
  make(1);
  EXPECT_NE(cluster_->process_as<Probe>(net::NodeId{0}), nullptr);
  EXPECT_NO_THROW((void)cluster_->process(net::NodeId{0}));
  EXPECT_THROW((void)cluster_->process(net::NodeId{7}), std::out_of_range);
}

TEST_F(ClusterTest, MessagesFlowBetweenProcesses) {
  make(2);
  cluster_->start();
  probes_[0]->send(net::NodeId{1}, net::make_payload<NoteMsg>(42));
  cluster_->simulator().run();
  ASSERT_EQ(probes_[1]->notes.size(), 1u);
  EXPECT_EQ(probes_[1]->notes[0], 42);
}

TEST_F(ClusterTest, BroadcastSkipsSelf) {
  make(3);
  cluster_->start();
  probes_[1]->broadcast(net::make_payload<NoteMsg>(9));
  cluster_->simulator().run();
  EXPECT_TRUE(probes_[1]->notes.empty());
  EXPECT_EQ(probes_[0]->notes.size(), 1u);
  EXPECT_EQ(probes_[2]->notes.size(), 1u);
}

TEST_F(ClusterTest, TimerFiresOnceAndDeregisters) {
  make(1);
  cluster_->start();
  auto* p = probes_[0];
  const TimerId t =
      p->set_timer(sim::SimTime::units(1.0), [p] { ++p->timer_fires; });
  EXPECT_TRUE(p->timer_pending(t));
  cluster_->simulator().run();
  EXPECT_EQ(p->timer_fires, 1);
  EXPECT_FALSE(p->timer_pending(t));
}

TEST_F(ClusterTest, CancelledTimerDoesNotFire) {
  make(1);
  cluster_->start();
  auto* p = probes_[0];
  TimerId t = p->set_timer(sim::SimTime::units(1.0), [p] { ++p->timer_fires; });
  p->cancel_timer(t);
  EXPECT_FALSE(t.valid());
  cluster_->simulator().run();
  EXPECT_EQ(p->timer_fires, 0);
}

TEST_F(ClusterTest, CrashSuppressesTimersAndMessages) {
  make(2);
  cluster_->start();
  auto* p = probes_[0];
  p->set_timer(sim::SimTime::units(1.0), [p] { ++p->timer_fires; });
  probes_[1]->send(net::NodeId{0}, net::make_payload<NoteMsg>(1));
  cluster_->crash_node(net::NodeId{0});
  EXPECT_TRUE(p->crashed());
  EXPECT_EQ(p->crashes, 1);
  cluster_->simulator().run();
  EXPECT_EQ(p->timer_fires, 0);
  EXPECT_TRUE(p->notes.empty());
}

TEST_F(ClusterTest, RestartRestoresDelivery) {
  make(2);
  cluster_->start();
  cluster_->crash_node(net::NodeId{0});
  cluster_->restart_node(net::NodeId{0});
  EXPECT_FALSE(probes_[0]->crashed());
  EXPECT_EQ(probes_[0]->restarts, 1);
  probes_[1]->send(net::NodeId{0}, net::make_payload<NoteMsg>(5));
  cluster_->simulator().run();
  EXPECT_EQ(probes_[0]->notes.size(), 1u);
}

TEST_F(ClusterTest, CrashedNodeSendsAreDropped) {
  make(2);
  cluster_->start();
  cluster_->crash_node(net::NodeId{0});
  // A crashed process does not execute, but even if some stale closure sent
  // on its behalf, the network drops traffic from a down node.
  probes_[0]->send(net::NodeId{1}, net::make_payload<NoteMsg>(3));
  cluster_->simulator().run();
  EXPECT_TRUE(probes_[1]->notes.empty());
}

TEST_F(ClusterTest, DoubleCrashAndRestartAreIdempotent) {
  make(1);
  cluster_->start();
  cluster_->crash_node(net::NodeId{0});
  cluster_->crash_node(net::NodeId{0});
  EXPECT_EQ(probes_[0]->crashes, 1);
  cluster_->restart_node(net::NodeId{0});
  cluster_->restart_node(net::NodeId{0});
  EXPECT_EQ(probes_[0]->restarts, 1);
}

TEST_F(ClusterTest, TimersSetAfterRestartWork) {
  make(1);
  cluster_->start();
  auto* p = probes_[0];
  cluster_->crash_node(net::NodeId{0});
  cluster_->restart_node(net::NodeId{0});
  p->set_timer(sim::SimTime::units(0.5), [p] { ++p->timer_fires; });
  cluster_->simulator().run();
  EXPECT_EQ(p->timer_fires, 1);
}

}  // namespace
}  // namespace dmx::runtime
