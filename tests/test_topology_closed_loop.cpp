// Tests for the multi-hop topology delay model and the closed-loop workload.
#include <gtest/gtest.h>

#include <memory>

#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "harness/experiment.hpp"
#include "net/topology.hpp"
#include "runtime/cluster.hpp"
#include "workload/closed_loop.hpp"

namespace dmx {
namespace {

TEST(Topology, CannedShapes) {
  EXPECT_EQ(net::Topology::ring(6).diameter(), 3u);
  EXPECT_EQ(net::Topology::line(6).diameter(), 5u);
  EXPECT_EQ(net::Topology::star(6).diameter(), 2u);
  EXPECT_EQ(net::Topology::full_mesh(6).diameter(), 1u);
  EXPECT_EQ(net::Topology::binary_tree(7).diameter(), 4u);
  for (auto make : {net::Topology::ring, net::Topology::star,
                    net::Topology::line, net::Topology::full_mesh,
                    net::Topology::binary_tree}) {
    EXPECT_TRUE(make(9).connected());
  }
}

TEST(Topology, HopsFromBfs) {
  const auto t = net::Topology::line(5);
  const auto d = t.hops_from(net::NodeId{0});
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Topology, Validation) {
  EXPECT_THROW(net::Topology t(0), std::invalid_argument);
  net::Topology t(3);
  EXPECT_THROW(t.add_edge(net::NodeId{0}, net::NodeId{0}),
               std::invalid_argument);
  EXPECT_THROW(t.add_edge(net::NodeId{0}, net::NodeId{9}), std::out_of_range);
  t.add_edge(net::NodeId{0}, net::NodeId{1});
  EXPECT_TRUE(t.has_edge(net::NodeId{1}, net::NodeId{0}));  // undirected
  EXPECT_FALSE(t.connected());                              // node 2 isolated
  EXPECT_THROW(net::HopDelay(t, sim::SimTime::units(0.1)),
               std::invalid_argument);
}

TEST(Topology, HopDelayScalesWithDistance) {
  net::HopDelay d(net::Topology::line(4), sim::SimTime::units(0.1));
  sim::Rng rng(1);
  EXPECT_EQ(d.delay(net::NodeId{0}, net::NodeId{1}, 0, rng),
            sim::SimTime::units(0.1));
  EXPECT_EQ(d.delay(net::NodeId{0}, net::NodeId{3}, 0, rng),
            sim::SimTime::units(0.3));
  EXPECT_EQ(d.delay(net::NodeId{2}, net::NodeId{2}, 0, rng),
            sim::SimTime::ticks(1));
}

TEST(Topology, ArbiterSafeAndLiveOnRingTopology) {
  // The paper claims topology independence: run the algorithm over a ring
  // where broadcast costs scale with hop distance.
  harness::register_builtin_algorithms();
  runtime::Cluster cluster(8, std::make_unique<net::HopDelay>(
                                  net::Topology::ring(8),
                                  sim::SimTime::units(0.05)),
                           3);
  mutex::ParamSet params;
  params.set("t_fwd", 0.5).set("resubmit_after_misses", 1.0);
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  for (std::int32_t i = 0; i < 8; ++i) {
    mutex::FactoryContext ctx{net::NodeId{i}, 8, params};
    auto algo = mutex::Registry::instance().create("arbiter-tp", ctx);
    auto* raw = algo.get();
    cluster.install(net::NodeId{i}, std::move(algo));
    drivers.push_back(std::make_unique<mutex::CsDriver>(
        cluster.simulator(), *dynamic_cast<mutex::MutexAlgorithm*>(raw),
        sim::SimTime::units(0.1), &monitor, &ids));
  }
  cluster.start();
  sim::Rng rng(5);
  for (int k = 0; k < 200; ++k) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, 7));
    const double when = rng.uniform(0.0, 60.0);
    cluster.simulator().schedule_at(
        sim::SimTime::units(when),
        [&drivers, node] { drivers[node]->submit(); });
  }
  cluster.simulator().run();
  std::uint64_t done = 0;
  for (auto& d : drivers) done += d->completed();
  EXPECT_EQ(done, 200u);
  EXPECT_EQ(monitor.violations(), 0u);
}

struct ClosedLoopFixture {
  runtime::Cluster cluster;
  mutex::RequestIdSource ids;
  mutex::SafetyMonitor monitor;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;
  std::vector<mutex::CsDriver*> dp;

  explicit ClosedLoopFixture(std::size_t n)
      : cluster(n,
                std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)),
                2) {
    harness::register_builtin_algorithms();
    mutex::ParamSet params;
    for (std::size_t i = 0; i < n; ++i) {
      const net::NodeId nid{static_cast<std::int32_t>(i)};
      mutex::FactoryContext ctx{nid, n, params};
      auto algo = mutex::Registry::instance().create("arbiter-tp", ctx);
      auto* raw = algo.get();
      cluster.install(nid, std::move(algo));
      drivers.push_back(std::make_unique<mutex::CsDriver>(
          cluster.simulator(), *dynamic_cast<mutex::MutexAlgorithm*>(raw),
          sim::SimTime::units(0.1), &monitor, &ids));
      dp.push_back(drivers.back().get());
    }
    cluster.start();
  }
};

TEST(ClosedLoop, ZeroThinkTimeSaturatesAtHeavyLoadBound) {
  // Think time ~ 0 reproduces the paper's heavy-load regime exactly: every
  // node always has a pending request, so messages/CS -> 3 - 2/N.
  ClosedLoopFixture f(10);
  std::vector<std::unique_ptr<workload::ArrivalProcess>> think;
  for (int i = 0; i < 10; ++i) {
    think.push_back(std::make_unique<workload::DeterministicArrivals>(
        sim::SimTime::ticks(1)));
  }
  workload::ClosedLoopGenerator gen(f.cluster.simulator(), f.dp,
                                    std::move(think), 10'000, 4);
  gen.start();
  f.cluster.simulator().run();
  std::uint64_t done = 0;
  for (auto& d : f.drivers) done += d->completed();
  EXPECT_EQ(done, 10'000u);
  EXPECT_EQ(f.monitor.violations(), 0u);
  const double mpc =
      static_cast<double>(f.cluster.network().stats().sent) /
      static_cast<double>(done);
  EXPECT_NEAR(mpc, 2.8, 0.15);
}

TEST(ClosedLoop, BoundedPopulation) {
  // A closed loop never queues locally: at most one outstanding demand per
  // node at any time.
  ClosedLoopFixture f(4);
  std::vector<std::unique_ptr<workload::ArrivalProcess>> think;
  for (int i = 0; i < 4; ++i) {
    think.push_back(std::make_unique<workload::PoissonArrivals>(2.0));
  }
  workload::ClosedLoopGenerator gen(f.cluster.simulator(), f.dp,
                                    std::move(think), 500, 4);
  gen.start();
  f.cluster.simulator().run();
  for (auto& d : f.drivers) {
    EXPECT_TRUE(d->idle());
    // Sojourn equals service when there is no local queueing.
    EXPECT_NEAR(d->sojourn_time().mean(), d->service_time().mean(), 1e-9);
  }
  EXPECT_EQ(gen.submitted(), 500u);
}

TEST(ClosedLoop, StopNodeHaltsItsLoop) {
  ClosedLoopFixture f(3);
  std::vector<std::unique_ptr<workload::ArrivalProcess>> think;
  for (int i = 0; i < 3; ++i) {
    think.push_back(std::make_unique<workload::DeterministicArrivals>(
        sim::SimTime::units(1.0)));
  }
  workload::ClosedLoopGenerator gen(f.cluster.simulator(), f.dp,
                                    std::move(think), 1'000'000, 4);
  gen.stop_node(2);
  gen.start();
  f.cluster.simulator().run_until(sim::SimTime::units(20.0));
  EXPECT_EQ(f.drivers[2]->submitted(), 0u);
  EXPECT_GT(f.drivers[0]->submitted(), 5u);
}

}  // namespace
}  // namespace dmx
