// Zero-allocation regression tests for the pooled message plane.
//
// These tests pin the contract of net/pool.hpp: once a cluster is warmed up
// (pool slabs stocked, per-node containers at steady-state capacity), the
// send -> deliver -> dispatch path performs no global heap allocations, and
// a broadcast costs exactly one pooled payload no matter the fan-out.
// PRIVILEGE QList copies are out of scope: a privilege transfer carries a
// std::vector batch by design, so the full-cycle test asserts that the pool
// absorbs all *payload* allocations (heap_served stays zero) rather than
// that vectors never allocate.
//
// All tests skip under the std::allocator fallback (ASan/TSan builds): the
// fallback intentionally routes every payload through the global heap so
// sanitizers see each object.
#include "allocation_guard.hpp"  // must precede any allocation (one TU only)

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/arbiter_mutex.hpp"
#include "harness/experiment.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "net/payload.hpp"
#include "net/pool.hpp"
#include "runtime/cluster.hpp"
#include "sim/simulator.hpp"

namespace dmx {
namespace {

/// Minimal registered payload for pure network-layer tests.
struct PingMsg final : net::Msg<PingMsg> {
  DMX_REGISTER_MESSAGE(PingMsg, "TEST-PING");
};

/// Counting sink for raw Network tests.
struct CountingHandler final : net::MessageHandler {
  int delivered = 0;
  void on_message(const net::Envelope&) override { ++delivered; }
};

/// A cluster of `algorithm` nodes with per-node drivers and no tracing (a
/// trace sink would allocate per event and mask the property under test).
struct QuietCluster {
  runtime::Cluster cluster;
  mutex::RequestIdSource ids;
  std::vector<mutex::MutexAlgorithm*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;

  QuietCluster(const std::string& algorithm, std::size_t n,
               const std::vector<double>& t_exec)
      : cluster(n,
                std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)),
                /*seed=*/1, obs::Tracer{}) {
    harness::register_builtin_algorithms();
    for (std::size_t i = 0; i < n; ++i) {
      const net::NodeId nid{static_cast<std::int32_t>(i)};
      mutex::FactoryContext ctx{nid, n, mutex::ParamSet{}};
      auto algo = mutex::Registry::instance().create(algorithm, ctx);
      algos.push_back(algo.get());
      cluster.install(nid, std::move(algo));
      drivers.push_back(std::make_unique<mutex::CsDriver>(
          cluster.simulator(), *algos.back(),
          sim::SimTime::units(t_exec[i % t_exec.size()]), nullptr, &ids));
    }
    cluster.start();
  }

  sim::Simulator& sim() { return cluster.simulator(); }

  /// Serial warm-up: each node runs `rounds` solo critical sections, widely
  /// spaced, so every node has held the token/arbiter role and every
  /// container (pool buckets, simulator slots, arbiter queues, timers) is at
  /// steady-state capacity.
  void warm_up(int rounds) {
    double t = sim().now().to_units() + 1.0;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < drivers.size(); ++i) {
        sim().schedule_at(sim::SimTime::units(t),
                          [this, i] { drivers[i]->submit(); });
        t += 2.0;
      }
    }
    sim().run_until(sim::SimTime::units(t + 5.0));
  }

  [[nodiscard]] std::uint64_t completed() const {
    std::uint64_t c = 0;
    for (const auto& d : drivers) c += d->completed();
    return c;
  }
};

TEST(Allocations, NetworkBroadcastIsOnePooledPayload) {
  if (!net::payload_pool_enabled()) {
    GTEST_SKIP() << "std::allocator fallback active (sanitizer build)";
  }
  constexpr std::size_t kN = 8;
  sim::Simulator sim;
  net::Network net(sim, kN,
                   std::make_unique<net::ConstantDelay>(sim::SimTime::units(1)),
                   /*seed=*/7);
  std::vector<CountingHandler> sinks(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    net.attach(net::NodeId{static_cast<std::int32_t>(i)}, &sinks[i]);
  }
  // Warm-up round: stocks the pool bucket and grows the simulator slot
  // vectors to broadcast capacity.
  net.broadcast(net::NodeId{0}, net::make_payload<PingMsg>());
  sim.run();

  const auto before = net::payload_alloc_stats();
  testutil::AllocationGuard guard;
  net.broadcast(net::NodeId{0}, net::make_payload<PingMsg>());
  sim.run();
  const auto after = net::payload_alloc_stats();

  EXPECT_EQ(guard.count(), 0u) << "broadcast hit the global heap";
  EXPECT_EQ(after.pool_served - before.pool_served, 1u)
      << "broadcast should cost exactly one pooled payload";
  EXPECT_EQ(after.live, before.live) << "payload leaked after delivery";
  for (std::size_t i = 1; i < kN; ++i) EXPECT_EQ(sinks[i].delivered, 2);
  EXPECT_EQ(sinks[0].delivered, 0) << "self-delivery is not expected";
}

TEST(Allocations, ArbiterRequestPathIsZeroAlloc) {
  if (!net::payload_pool_enabled()) {
    GTEST_SKIP() << "std::allocator fallback active (sanitizer build)";
  }
  QuietCluster tb("arbiter-tp", 5, {0.1});
  tb.warm_up(3);
  const std::uint64_t warm_completed = tb.completed();
  ASSERT_EQ(warm_completed, 15u);

  // Pick any node that is not the current arbiter: its submit sends one
  // REQUEST message to the arbiter.  We stop the clock right after delivery
  // (t_msg = 0.1, collection window t_req = 0.1), so the measured segment is
  // exactly send -> deliver -> enqueue-at-arbiter.
  std::size_t requester = tb.algos.size();
  for (std::size_t i = 0; i < tb.algos.size(); ++i) {
    if (!dynamic_cast<core::ArbiterMutex*>(tb.algos[i])->is_arbiter()) {
      requester = i;
      break;
    }
  }
  ASSERT_LT(requester, tb.algos.size());

  const double t0 = tb.sim().now().to_units();
  const auto before = net::payload_alloc_stats();
  testutil::AllocationGuard guard;
  tb.drivers[requester]->submit();
  tb.sim().run_until(sim::SimTime::units(t0 + 0.15));
  const auto after = net::payload_alloc_stats();

  EXPECT_EQ(guard.count(), 0u)
      << "steady-state REQUEST send/deliver/dispatch allocated";
  EXPECT_EQ(after.pool_served - before.pool_served, 1u);
  EXPECT_EQ(after.heap_served, before.heap_served);

  tb.sim().run();  // drain: privilege transfer, CS, new-arbiter broadcast
  EXPECT_EQ(tb.completed(), warm_completed + 1);
}

TEST(Allocations, SuzukiKasamiRequestBroadcastIsZeroAlloc) {
  if (!net::payload_pool_enabled()) {
    GTEST_SKIP() << "std::allocator fallback active (sanitizer build)";
  }
  // Node 0 runs a long critical section; node 2 broadcasts SK-REQUEST into
  // it.  Every receiver only bumps its request counter, so the measured
  // segment is the pure broadcast fan-out.
  constexpr std::size_t kN = 6;
  QuietCluster tb("suzuki-kasami", kN, {50.0, 0.1, 0.1, 0.1, 0.1, 0.1});
  // Warm-up: one remote acquisition (node 1) exercises the full message
  // path once — broadcast, token transfer, and the lazily-built static
  // dispatch table — then hands the token back to node 0.
  tb.sim().schedule_at(sim::SimTime::units(1.0),
                       [&tb] { tb.drivers[1]->submit(); });
  tb.sim().schedule_at(sim::SimTime::units(2.0),
                       [&tb] { tb.drivers[0]->submit(); });
  tb.sim().run_until(sim::SimTime::units(4.0));  // node 0 now inside its CS
  ASSERT_EQ(tb.completed(), 1u);  // node 1 done; node 0 holds the CS

  const auto before = net::payload_alloc_stats();
  testutil::AllocationGuard guard;
  tb.drivers[2]->submit();
  tb.sim().run_until(sim::SimTime::units(5.0));  // all N-1 deliveries done
  const auto after = net::payload_alloc_stats();

  EXPECT_EQ(guard.count(), 0u) << "SK-REQUEST broadcast allocated";
  EXPECT_EQ(after.pool_served - before.pool_served, 1u)
      << "broadcast to N-1 nodes should cost one pooled payload";
  EXPECT_EQ(after.live, before.live);

  tb.sim().run();  // drain: node 0 exits, token travels to node 2
  EXPECT_EQ(tb.completed(), 3u);
}

TEST(Allocations, PoolAbsorbsAllPayloadChurn) {
  if (!net::payload_pool_enabled()) {
    GTEST_SKIP() << "std::allocator fallback active (sanitizer build)";
  }
  // Full protocol cycles, including PRIVILEGE transfers and NEW-ARBITER
  // broadcasts: every payload must come from the pool (heap_served frozen)
  // and every payload must go back (live returns to baseline).
  QuietCluster tb("arbiter-tp", 5, {0.1});
  tb.warm_up(2);

  const auto before = net::payload_alloc_stats();
  tb.warm_up(4);
  const auto after = net::payload_alloc_stats();

  EXPECT_GT(after.pool_served, before.pool_served);
  EXPECT_EQ(after.heap_served, before.heap_served)
      << "a payload bypassed the pool";
  EXPECT_EQ(after.live, before.live) << "payloads leaked across cycles";
  EXPECT_EQ(tb.completed(), 30u);
}

}  // namespace
}  // namespace dmx
