// Tests for the exhaustive small-N schedule explorer (src/verify/): clean
// algorithms verify with exact deterministic statistics, every seeded
// mutant is caught with the designed violation kind, and counterexamples
// round-trip through the dmx.cex.v1 format and replay byte-identically.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/sinks.hpp"
#include "verify/counterexample.hpp"
#include "verify/explorer.hpp"
#include "verify/mutants.hpp"

namespace dmx::verify {
namespace {

VerifyConfig base_config(const std::string& algo) {
  VerifyConfig cfg;
  cfg.algorithm = algo;
  cfg.n_nodes = 3;
  cfg.requests_per_node = 1;
  return cfg;
}

// ------------------------------------------------- clean algorithms

TEST(Explorer, ArbiterN3IsExhaustivelyClean) {
  const VerifyResult res = explore(base_config("arbiter-tp"));
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.truncated, 0u);
  // Exact deterministic counts: any drift means the schedule space (or the
  // pruning) changed and the golden numbers below must be re-derived.
  EXPECT_EQ(res.stats.schedules, 358u);
  EXPECT_EQ(res.stats.terminal, 104u);
  EXPECT_EQ(res.stats.sleep_blocked, 254u);
}

TEST(Explorer, SuzukiKasamiN3IsExhaustivelyClean) {
  const VerifyResult res = explore(base_config("suzuki-kasami"));
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.schedules, 76u);
  EXPECT_EQ(res.stats.terminal, 18u);
}

TEST(Explorer, PathReversalN3IsExhaustivelyClean) {
  const VerifyResult res = explore(base_config("path-reversal"));
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.truncated, 0u);
  EXPECT_EQ(res.stats.schedules, 20u);
  EXPECT_EQ(res.stats.terminal, 10u);
  EXPECT_EQ(res.stats.sleep_blocked, 10u);
}

TEST(Explorer, PathReversalN4IsExhaustivelyClean) {
  VerifyConfig cfg = base_config("path-reversal");
  cfg.n_nodes = 4;
  const VerifyResult res = explore(cfg);
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.schedules, 168u);
  EXPECT_EQ(res.stats.terminal, 102u);
  EXPECT_EQ(res.stats.sleep_blocked, 66u);
}

TEST(Explorer, PathReversalN3TwoRequestsEachIsClean) {
  // Back-to-back requests exercise re-entry through a reversed tree (the
  // second round starts from whatever probable-owner shape round one left).
  VerifyConfig cfg = base_config("path-reversal");
  cfg.requests_per_node = 2;
  const VerifyResult res = explore(cfg);
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.schedules, 101u);
  EXPECT_EQ(res.stats.terminal, 68u);
}

TEST(Explorer, ArbiterWithRecoverySurvivesCrashChoices) {
  VerifyConfig cfg = base_config("arbiter-tp");
  cfg.params.set("recovery", 1.0);
  cfg.fault_plan = "t=0 crash 2";
  const VerifyResult res = explore(cfg);
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.schedules, 12312u);
}

TEST(Explorer, IdenticalConfigsProduceIdenticalStats) {
  const VerifyResult a = explore(base_config("arbiter-tp"));
  const VerifyResult b = explore(base_config("arbiter-tp"));
  EXPECT_EQ(a.stats.schedules, b.stats.schedules);
  EXPECT_EQ(a.stats.transitions, b.stats.transitions);
  EXPECT_EQ(a.stats.replayed, b.stats.replayed);
  EXPECT_EQ(a.stats.sleep_pruned, b.stats.sleep_pruned);
  EXPECT_EQ(a.stats.max_frontier, b.stats.max_frontier);
  EXPECT_EQ(a.stats.max_depth_reached, b.stats.max_depth_reached);
}

// ------------------------------------------------- seeded mutants

TEST(Mutants, BaseNaiveTokenIsCleanWithoutFaults) {
  const VerifyResult res = explore(base_config("mutant-naive-token"));
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
}

TEST(Mutants, TokenRegenCausesMutualExclusionViolation) {
  const VerifyResult res = explore(base_config("mutant-token-regen"));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation->kind, mutex::Violation::Kind::kMutualExclusion);
  ASSERT_FALSE(res.counterexample.empty());
  // The schedule that races the regeneration watchdog against the live
  // token holder: the final choice fires node 2's regen timer.
  EXPECT_EQ(res.counterexample.back(), "t 2 #1");
}

TEST(Mutants, ReleaseAmnesiaCausesStarvation) {
  const VerifyResult res = explore(base_config("mutant-release-amnesia"));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation->kind, mutex::Violation::Kind::kStarvation);
  // Both remaining requesters starve once node 0 parks the token.
  EXPECT_EQ(res.violation->nodes.size(), 2u);
}

TEST(Mutants, AmnesiacRestartIsOnlyWrongUnderCrashRestart) {
  // Without fault choices the restart hook never runs: clean.
  const VerifyResult clean = explore(base_config("mutant-amnesiac-restart"));
  EXPECT_TRUE(clean.ok()) << clean.violation->describe();
  EXPECT_TRUE(clean.stats.complete);

  // With crash+restart of node 0 the resurrected token breaks safety.
  VerifyConfig cfg = base_config("mutant-amnesiac-restart");
  cfg.fault_plan = "t=0 crash 0; t=1 restart 0";
  const VerifyResult res = explore(cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation->kind, mutex::Violation::Kind::kMutualExclusion);
}

TEST(Mutants, NoReversalCausesStarvation) {
  // Naimi–Trehel minus the probable-owner flip: the old root gives the
  // token away but stays root, so a later REQUEST parks behind it (and a
  // busy root's single next slot gets overwritten) — a requester starves.
  const VerifyResult res = explore(base_config("mutant-no-reversal"));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation->kind, mutex::Violation::Kind::kStarvation);
  ASSERT_FALSE(res.counterexample.empty());

  // The schedule round-trips through dmx.cex.v1 and replays to the same
  // violation.
  Counterexample cex;
  cex.config = base_config("mutant-no-reversal");
  cex.violation_kind =
      std::string(mutex::violation_kind_name(res.violation->kind));
  cex.choices = res.counterexample;
  const Counterexample back = Counterexample::parse(cex.to_string());
  EXPECT_EQ(back.choices, cex.choices);
  const ReplayResult rep = replay(back);
  EXPECT_TRUE(rep.reproduced()) << rep.error;
  EXPECT_EQ(rep.violation->kind, mutex::Violation::Kind::kStarvation);
  EXPECT_EQ(rep.violation->describe(), res.violation->describe());
}

TEST(Mutants, PathReversalStarvesWhenTheTokenHolderCrashes) {
  // Not a seeded mutant: the plain baseline has no crash recovery, so a
  // crash choice that swallows the token is a genuine liveness gap the
  // explorer must find.
  VerifyConfig cfg = base_config("path-reversal");
  cfg.fault_plan = "t=0 crash 0";
  const VerifyResult res = explore(cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation->kind, mutex::Violation::Kind::kStarvation);
}

TEST(Mutants, SuzukiKasamiStarvesWhenTheTokenHolderCrashes) {
  // Not a seeded mutant: plain Suzuki–Kasami has no crash recovery, so a
  // crash choice that swallows the token is a genuine liveness gap the
  // explorer must find (and the replay must reproduce).
  VerifyConfig cfg = base_config("suzuki-kasami");
  cfg.fault_plan = "t=0 crash 1";
  const VerifyResult res = explore(cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation->kind, mutex::Violation::Kind::kStarvation);

  Counterexample cex;
  cex.config = cfg;
  cex.choices = res.counterexample;
  const ReplayResult rep = replay(cex);
  EXPECT_TRUE(rep.reproduced()) << rep.error;
  EXPECT_EQ(rep.violation->kind, mutex::Violation::Kind::kStarvation);
}

// ------------------------------------------------- counterexample files

TEST(Counterexamples, RoundTripThroughTextFormat) {
  VerifyConfig cfg = base_config("mutant-amnesiac-restart");
  cfg.fault_plan = "t=0 crash 0; t=1 restart 0";
  cfg.params.set("regen_delay", 0.3);
  const VerifyResult res = explore(cfg);
  ASSERT_FALSE(res.ok());

  Counterexample cex;
  cex.config = cfg;
  cex.violation_kind =
      std::string(mutex::violation_kind_name(res.violation->kind));
  cex.choices = res.counterexample;

  const Counterexample back = Counterexample::parse(cex.to_string());
  EXPECT_EQ(back.config.algorithm, cfg.algorithm);
  EXPECT_EQ(back.config.n_nodes, cfg.n_nodes);
  EXPECT_EQ(back.config.fault_plan, cfg.fault_plan);
  EXPECT_EQ(back.config.t_msg, cfg.t_msg);
  EXPECT_EQ(back.config.time_slack, cfg.time_slack);
  EXPECT_EQ(back.config.params.get_num("regen_delay", 0.0), 0.3);
  EXPECT_EQ(back.violation_kind, cex.violation_kind);
  EXPECT_EQ(back.choices, cex.choices);
  // Serialization is canonical: parse∘to_string is the identity on text.
  EXPECT_EQ(back.to_string(), cex.to_string());
}

TEST(Counterexamples, ReplayReproducesTheViolation) {
  const VerifyResult res = explore(base_config("mutant-token-regen"));
  ASSERT_FALSE(res.ok());

  Counterexample cex;
  cex.config = base_config("mutant-token-regen");
  cex.choices = res.counterexample;
  const ReplayResult rep = replay(cex);
  EXPECT_TRUE(rep.reproduced()) << rep.error;
  EXPECT_EQ(rep.steps, cex.choices.size());
  EXPECT_EQ(rep.violation->kind, res.violation->kind);
  EXPECT_EQ(rep.violation->describe(), res.violation->describe());
}

TEST(Counterexamples, ReplayTracesAreByteIdentical) {
  const VerifyResult res = explore(base_config("mutant-token-regen"));
  ASSERT_FALSE(res.ok());
  Counterexample cex;
  cex.config = base_config("mutant-token-regen");
  cex.choices = res.counterexample;

  auto trace_once = [&cex] {
    std::ostringstream out;
    {
      auto sink = obs::make_format_sink(obs::TraceFormat::kJsonl, out);
      const ReplayResult rep = replay(cex, sink);
      EXPECT_TRUE(rep.reproduced()) << rep.error;
      sink->flush();
    }
    return out.str();
  };
  const std::string first = trace_once();
  const std::string second = trace_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Counterexamples, ParserRejectsMalformedInput) {
  EXPECT_THROW(Counterexample::parse(""), std::invalid_argument);
  EXPECT_THROW(Counterexample::parse("dmx.cex.v1\nalgo x\n"),
               std::invalid_argument);  // missing end
  EXPECT_THROW(Counterexample::parse("dmx.cex.v1\nbogus 1\nend\n"),
               std::invalid_argument);  // unknown keyword
  EXPECT_THROW(Counterexample::parse("dmx.cex.v1\nn banana\nend\n"),
               std::invalid_argument);  // bad integer
  EXPECT_THROW(Counterexample::parse("dmx.cex.v1\nend\njunk\n"),
               std::invalid_argument);  // content after end
}

TEST(Counterexamples, ReplayReportsStaleChoiceFiles) {
  // A recorded choice that no longer matches any enabled transition must
  // fail loudly with the step index, not silently diverge.
  Counterexample cex;
  cex.config = base_config("mutant-naive-token");
  cex.choices = {"d 9>9 NO-SUCH-MSG #0"};
  const ReplayResult rep = replay(cex);
  EXPECT_FALSE(rep.reproduced());
  EXPECT_NE(rep.error.find("step 0"), std::string::npos);
}

// ------------------------------------------------- partition-safe recovery
//
// The two directions of the quorum-guard claim, on the same world: one cut
// that isolates the token holder (node 1 after the first dispatch) plus one
// heal, explored exhaustively at slack 0.
//
// All schedule counts below are golden: any drift means the schedule space
// (or the pruning) changed and the numbers must be re-derived.

VerifyConfig partition_config(bool quorum) {
  VerifyConfig cfg = base_config("arbiter-tp");
  cfg.params.set("recovery", 1.0);
  if (quorum) cfg.params.set("recovery_quorum", 1.0);
  cfg.fault_plan = "t=0 partition 1|0,2; t=1 heal";
  cfg.time_slack = 0.0;
  return cfg;
}

TEST(Partition, QuorumGuardedRegenerationIsExhaustivelySafe) {
  const VerifyResult res = explore(partition_config(/*quorum=*/true));
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.schedules, 183961u);
  EXPECT_EQ(res.stats.terminal, 39414u);
  EXPECT_EQ(res.stats.truncated, 19679u);
  EXPECT_EQ(res.stats.sleep_blocked, 124868u);
}

TEST(Partition, QuorumlessRegenerationSplitBrainCounterexample) {
  // Positive control: the same world without the quorum guard regenerates
  // on both sides of the cut and the explorer catches two live tokens.
  const VerifyResult res = explore(partition_config(/*quorum=*/false));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violation->kind, mutex::Violation::Kind::kTokenDuplicated);
  EXPECT_EQ(res.violation->nodes.size(), 2u);
  EXPECT_NE(res.violation->detail.find("epoch"), std::string::npos)
      << res.violation->detail;
  EXPECT_EQ(res.stats.schedules, 363u);

  // The split-brain schedule round-trips through dmx.cex.v1 and replays.
  Counterexample cex;
  cex.config = partition_config(/*quorum=*/false);
  cex.violation_kind =
      std::string(mutex::violation_kind_name(res.violation->kind));
  cex.choices = res.counterexample;
  const Counterexample back = Counterexample::parse(cex.to_string());
  EXPECT_EQ(back.config.fault_plan, cex.config.fault_plan);
  EXPECT_EQ(back.choices, cex.choices);
  const ReplayResult rep = replay(back);
  EXPECT_TRUE(rep.reproduced()) << rep.error;
  EXPECT_EQ(rep.violation->kind, mutex::Violation::Kind::kTokenDuplicated);
}

// Recovery matrix over the quorum-guarded arbiter: crash-and-restart and
// adversarial token loss, with the guard active, stay exhaustively clean.
// (The N=4 crash cell runs in scripts/verify_smoke.sh: complete at 830220
// schedules, but too slow for the unit suite.)

TEST(Partition, QuorumGuardSurvivesCrashRestartChoices) {
  VerifyConfig cfg = base_config("arbiter-tp");
  cfg.params.set("recovery", 1.0).set("recovery_quorum", 1.0);
  cfg.fault_plan = "t=0 crash 1; t=1 restart 1";
  cfg.time_slack = 0.0;
  const VerifyResult res = explore(cfg);
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.schedules, 123686u);
  EXPECT_EQ(res.stats.terminal, 40732u);
}

TEST(Partition, QuorumGuardSurvivesTokenLossAtN4) {
  VerifyConfig cfg = base_config("arbiter-tp");
  cfg.n_nodes = 4;
  cfg.params.set("recovery", 1.0).set("recovery_quorum", 1.0);
  cfg.fault_plan = "t=0 lose-next PRIVILEGE";
  cfg.time_slack = 0.0;
  const VerifyResult res = explore(cfg);
  EXPECT_TRUE(res.ok()) << res.violation->describe();
  EXPECT_TRUE(res.stats.complete);
  EXPECT_EQ(res.stats.schedules, 80569u);
  EXPECT_EQ(res.stats.terminal, 18906u);
  EXPECT_EQ(res.stats.truncated, 0u);
}

// ------------------------------------------------- reliable transport
//
// With cfg.reliable the nodes run behind the retransmitting transport
// (jitter off), so a lose-next choice attacks the transport frame carrying
// the named protocol message — exactly-once delivery must absorb the drop
// wherever the explorer places it, with no recovery machinery enabled.

TEST(ReliableTransport, ExactlyOnceSurvivesAdversarialDropPlacement) {
  VerifyConfig cfg = base_config("arbiter-tp");
  cfg.reliable = true;
  cfg.time_slack = 0.0;

  cfg.fault_plan = "t=0 lose-next REQUEST";
  const VerifyResult req = explore(cfg);
  EXPECT_TRUE(req.ok()) << req.violation->describe();
  EXPECT_TRUE(req.stats.complete);
  EXPECT_EQ(req.stats.schedules, 2030u);
  EXPECT_EQ(req.stats.truncated, 0u);

  cfg.fault_plan = "t=0 lose-next RT-ACK";  // attack the ack path itself
  const VerifyResult ack = explore(cfg);
  EXPECT_TRUE(ack.ok()) << ack.violation->describe();
  EXPECT_TRUE(ack.stats.complete);
  EXPECT_EQ(ack.stats.schedules, 2918u);

  // The reliable flag is part of counterexample identity.
  Counterexample cex;
  cex.config = cfg;
  cex.choices = {"t 0 #1"};
  const Counterexample back = Counterexample::parse(cex.to_string());
  EXPECT_TRUE(back.config.reliable);
  EXPECT_EQ(back.to_string(), cex.to_string());
}

TEST(ReliableTransport, PathReversalSurvivesAdversarialDropPlacement) {
  // The baseline has no retransmission of its own; behind the reliable
  // transport an adversarially placed drop of either message type must be
  // absorbed with no safety or liveness loss.
  VerifyConfig cfg = base_config("path-reversal");
  cfg.reliable = true;
  cfg.time_slack = 0.0;

  cfg.fault_plan = "t=0 lose-next PR-REQUEST";
  const VerifyResult req = explore(cfg);
  EXPECT_TRUE(req.ok()) << req.violation->describe();
  EXPECT_TRUE(req.stats.complete);
  EXPECT_EQ(req.stats.schedules, 100u);
  EXPECT_EQ(req.stats.truncated, 0u);

  cfg.fault_plan = "t=0 lose-next PR-TOKEN";  // attack the token itself
  const VerifyResult tok = explore(cfg);
  EXPECT_TRUE(tok.ok()) << tok.violation->describe();
  EXPECT_TRUE(tok.stats.complete);
  EXPECT_EQ(tok.stats.schedules, 30u);
}

// ------------------------------------------------- config validation

TEST(VerifyConfig, RejectsOutOfScopeConfigs) {
  VerifyConfig cfg = base_config("arbiter-tp");
  cfg.n_nodes = 5;  // exhaustive exploration is capped at 4
  EXPECT_THROW(cfg.check(), std::invalid_argument);

  cfg = base_config("no-such-algorithm");
  EXPECT_THROW(cfg.check(), std::invalid_argument);

  cfg = base_config("arbiter-tp");
  cfg.fault_plan = "t=1 loss PRIVILEGE=0.5";  // verb outside the verify set
  EXPECT_THROW(cfg.check(), std::invalid_argument);

  cfg = base_config("arbiter-tp");
  cfg.fault_plan = "t=1 partition 0,1|5";  // group names node outside cluster
  EXPECT_THROW(cfg.check(), std::invalid_argument);

  // Partition and heal are inside the verify set since the partition-safe
  // recovery work: a well-formed cut must be accepted.
  cfg = base_config("arbiter-tp");
  cfg.fault_plan = "t=1 partition 0,1|2; t=2 heal";
  EXPECT_NO_THROW(cfg.check());
}

}  // namespace
}  // namespace dmx::verify
