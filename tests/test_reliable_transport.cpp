// Reliable transport layer: sliding-window sequencing, dedup (exactly-once
// delivery), retransmission under loss, reorder resequencing, crash-epoch
// fencing, and byte-determinism of lossy runs.  Raw-transport bit-identity
// is pinned separately by test_golden_trace.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include <memory>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "net/delay_model.hpp"
#include "net/msg_kind.hpp"
#include "net/network.hpp"
#include "net/reliable_transport.hpp"
#include "testbed.hpp"

namespace dmx {
namespace {

using fault::FaultPlan;

// Bare payload for driving a pair of endpoints directly, outside any mutex
// algorithm.
struct ChirpMsg final : net::Msg<ChirpMsg> {
  DMX_REGISTER_MESSAGE(ChirpMsg, "CHIRP");
  int value;
  explicit ChirpMsg(int v) : value(v) {}
};

/// Records every payload an endpoint delivers upward.
class UpperRecorder final : public net::MessageHandler {
 public:
  void on_message(const net::Envelope& env) override {
    received.push_back(env);
  }
  [[nodiscard]] std::size_t count(int value) const {
    std::size_t n = 0;
    for (const auto& env : received) {
      if (const auto* c = env.as<ChirpMsg>(); c != nullptr && c->value == value) ++n;
    }
    return n;
  }
  std::vector<net::Envelope> received;
};

/// Two ReliableEndpoints wired directly onto a raw Network: lets tests
/// script exact frame fates without a mutex algorithm in the way.
struct EndpointPair {
  explicit EndpointPair(net::ReliableTransportConfig cfg, double t_msg = 0.1)
      : net(sim, 2,
            std::make_unique<net::ConstantDelay>(sim::SimTime::units(t_msg)),
            /*rng_seed=*/1),
        ep0(net, net::NodeId{0}, up0, cfg, 11),
        ep1(net, net::NodeId{1}, up1, cfg, 22) {
    net.attach(net::NodeId{0}, &ep0);
    net.attach(net::NodeId{1}, &ep1);
  }

  sim::Simulator sim;
  net::Network net;
  UpperRecorder up0, up1;
  net::ReliableEndpoint ep0, ep1;
};

mutex::ParamSet arbiter_params() {
  mutex::ParamSet p;
  p.set("t_req", 1.0).set("t_fwd", 1.0);
  return p;
}

net::ReliableTransportConfig test_config(double t_msg = 0.1) {
  return net::ReliableTransportConfig::scaled_to(sim::SimTime::units(t_msg));
}

// ------------------------------------------------------------ exactly-once

// The ISSUE's acceptance unit test: inject N wire-duplicates of the frame
// carrying a PRIVILEGE payload; the algorithm must observe it exactly once
// and the endpoint must count exactly N suppressed duplicates.
TEST(ReliableTransport, DuplicatedPrivilegeDeliversExactlyOnce) {
  constexpr std::size_t kDups = 3;
  testbed::MutexCluster tb("arbiter-tp", 5, arbiter_params(), /*t_msg=*/1.0,
                           /*t_exec=*/1.0, /*seed=*/1, test_config(1.0));
  for (std::size_t i = 0; i < kDups; ++i) {
    tb.network().faults().duplicate_next_of_type("PRIVILEGE");
  }
  tb.submit_at(0.0, 1);
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_EQ(tb.network().faults().duplicates_injected(), kDups);
  const net::TransportStats ts = tb.cluster->transport_stats();
  EXPECT_EQ(ts.dup_dropped, kDups);
  const net::MsgKind priv = net::MsgKindRegistry::instance().find("PRIVILEGE");
  ASSERT_TRUE(priv.valid());
  EXPECT_EQ(ts.dup_dropped_by_kind.get(priv.index()), kDups);
}

// A duplicated baseline GRANT behaves the same way: the centralized server's
// grant is delivered once however many copies hit the wire.
TEST(ReliableTransport, DuplicatedGrantDeliversExactlyOnce) {
  constexpr std::size_t kDups = 5;
  testbed::MutexCluster tb("centralized", 4, mutex::ParamSet{}, /*t_msg=*/0.1,
                           /*t_exec=*/0.1, /*seed=*/1, test_config());
  for (std::size_t i = 0; i < kDups; ++i) {
    tb.network().faults().duplicate_next_of_type("C-GRANT");
  }
  tb.submit_at(0.0, 2);
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_EQ(tb.cluster->transport_stats().dup_dropped, kDups);
}

// ---------------------------------------------------------- loss repair

TEST(ReliableTransport, RetransmissionRepairsTargetedTokenLoss) {
  testbed::MutexCluster tb("suzuki-kasami", 4, mutex::ParamSet{},
                           /*t_msg=*/0.1, /*t_exec=*/0.1, /*seed=*/1,
                           test_config());
  // Without the reliable layer a lost SK-TOKEN wedges the run forever.
  tb.network().faults().drop_next_of_type("SK-TOKEN");
  tb.submit_at(0.0, 1);
  tb.submit_at(0.1, 2);
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 2u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_GE(tb.cluster->transport_stats().retransmits, 1u);
}

TEST(ReliableTransport, SurvivesSustainedLossWindowWithBackoff) {
  testbed::MutexCluster tb("ricart-agrawala", 4, mutex::ParamSet{},
                           /*t_msg=*/0.1, /*t_exec=*/0.1, /*seed=*/7,
                           test_config());
  fault::CampaignRunner campaign(*tb.cluster,
                                 FaultPlan::parse("t=0 loss *=0.4 until=30"));
  campaign.start();
  for (std::size_t i = 0; i < 20; ++i) {
    tb.submit_at(0.2 * static_cast<double>(i), i % 4);
  }
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 20u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  const net::TransportStats ts = tb.cluster->transport_stats();
  EXPECT_GT(ts.retransmits, 0u);
  // 40% loss also eats acks, so some delivered frames are resent and must
  // be suppressed as duplicates on the receive side.
  EXPECT_GT(ts.dup_dropped, 0u);
}

// ------------------------------------------------------------- reordering

TEST(ReliableTransport, ResequencesReorderedFrames) {
  testbed::MutexCluster tb("lamport", 4, mutex::ParamSet{}, /*t_msg=*/0.1,
                           /*t_exec=*/0.1, /*seed=*/3, test_config());
  fault::CampaignRunner campaign(
      *tb.cluster, FaultPlan::parse("reorder-window t=0..20"));
  campaign.start();
  for (std::size_t i = 0; i < 12; ++i) {
    tb.submit_at(0.15 * static_cast<double>(i), i % 4);
  }
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 12u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  // The reorder fault delays alternate frames past their successors, so the
  // receive side must have parked at least one out-of-order frame.
  EXPECT_GT(tb.cluster->transport_stats().reorder_buffered, 0u);
}

// ------------------------------------------------------------ crash fencing

// A restarted node bumps its epoch: retransmissions addressed to the old
// incarnation are fenced (stale_dropped), never replayed, and the sender
// abandons the dead window instead of retrying forever.
TEST(ReliableTransport, EpochFencesStaleRetransmissionsAcrossRestart) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 5;
  cfg.lambda = 0.4;
  cfg.total_requests = 120;
  cfg.seed = 11;
  cfg.transport = harness::TransportKind::kReliable;
  cfg.params.set("recovery", 1.0)
      .set("token_timeout", 3.0)
      .set("enquiry_timeout", 1.0)
      .set("arbiter_timeout", 6.0)
      .set("probe_timeout", 1.0)
      .set("resubmit_after_misses", 1.0)
      .set("request_retry_timeout", 5.0);
  cfg.fault_plan = "t=4 loss *=0.5 until=12; t=6 crash 2; t=10 restart 2";
  const harness::ExperimentResult r = harness::run_experiment(cfg);

  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_FALSE(r.stalled) << r.stall_diagnosis;
  EXPECT_TRUE(r.drained);
  // Heavy loss guarantees unacked frames to node 2 at crash time; their
  // retransmissions arrive in the new incarnation and must be fenced.
  EXPECT_GT(r.transport.stale_dropped, 0u);
  EXPECT_GT(r.transport.abandoned, 0u);
}

// A sender that learns of a peer's restart through a fence ack (no data
// from the new incarnation yet) must discard its rx state for the dead
// incarnation immediately: otherwise its next data frame piggybacks the old
// cum into the new epoch and falsely retires fresh frames the restarted
// peer has in flight — permanent loss if those frames were dropped.
TEST(ReliableTransport, FenceDiscardsStaleRxStateSoFreshFramesSurvive) {
  EndpointPair tp(test_config());

  // Three delivered messages leave ep0 holding cum=3 for ep1's stream.
  for (int v = 1; v <= 3; ++v) {
    tp.ep1.send(net::NodeId{1}, net::NodeId{0}, net::make_payload<ChirpMsg>(v));
  }
  tp.sim.run();
  ASSERT_EQ(tp.up0.received.size(), 3u);

  // ep1 restarts; its first fresh frame (seq 1 of epoch 2) and the next two
  // retransmissions are lost in flight.
  tp.ep1.on_crash();
  tp.ep1.on_restart();
  for (int i = 0; i < 3; ++i) {
    tp.net.faults().drop_next_of_type("CHIRP", net::NodeId{1}, net::NodeId{0});
  }
  tp.ep1.send(net::NodeId{1}, net::NodeId{0}, net::make_payload<ChirpMsg>(99));

  // ep0's frame to the dead incarnation provokes the fence ack that teaches
  // it epoch 2 (and abandons this payload — fencing never replays).
  tp.ep0.send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChirpMsg>(7));
  // A later new-epoch frame from ep0 must not carry cum=3 as a valid ack:
  // that would retire ep1's undelivered seq 1 and cancel its retransmission.
  tp.sim.schedule_at(sim::SimTime::units(1.5), [&tp] {
    tp.ep0.send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChirpMsg>(8));
  });
  tp.sim.run();

  // ep1's surviving retransmission repairs the loss: exactly-once delivery
  // of the post-restart message, and the new-epoch frame from ep0 arrives.
  EXPECT_EQ(tp.up0.count(99), 1u);
  EXPECT_EQ(tp.up1.count(8), 1u);
  EXPECT_EQ(tp.up1.count(7), 0u);  // Fenced old-world payload is abandoned.
  EXPECT_GE(tp.ep0.stats().abandoned, 1u);
  EXPECT_GT(tp.ep1.stats().stale_dropped, 0u);
}

// Retry-cap abandonment against a peer that was merely unreachable (not
// dead) must not wedge the link: abandonment restarts the stream under a
// new generation, so once loss heals the receiver adopts the fresh sequence
// space instead of waiting forever for the abandoned frames to fill a gap.
TEST(ReliableTransport, RetryCapAbandonmentResyncsLiveLinkAfterLossHeals) {
  net::ReliableTransportConfig cfg = test_config();
  cfg.max_retries = 3;  // Hit the cap quickly.
  EndpointPair tp(cfg);

  // A message delivered before the outage pins the receiver's cum at 1.
  tp.ep0.send(net::NodeId{0}, net::NodeId{1},
              net::make_payload<ChirpMsg>(1));
  tp.sim.run();
  ASSERT_EQ(tp.up1.count(1), 1u);

  // Total loss: the next message exhausts its retries and is abandoned.
  tp.net.faults().set_loss_probability(1.0);
  tp.ep0.send(net::NodeId{0}, net::NodeId{1},
              net::make_payload<ChirpMsg>(2));
  tp.sim.run();
  EXPECT_EQ(tp.ep0.stats().abandoned, 1u);
  EXPECT_EQ(tp.up1.count(2), 0u);

  // Loss heals.  Without the generation bump the receiver would park this
  // frame behind the never-arriving abandoned seq and deliver nothing.
  tp.net.faults().set_loss_probability(0.0);
  tp.ep0.send(net::NodeId{0}, net::NodeId{1},
              net::make_payload<ChirpMsg>(3));
  tp.sim.run();
  EXPECT_EQ(tp.up1.count(3), 1u);
  EXPECT_EQ(tp.up1.received.size(), 2u);  // Exactly-once for 1 and 3 only.
}

// ----------------------------------------------------------- determinism

// A lossy reliable run is a pure function of (seed, config): two identical
// runs produce byte-identical wire traces, timers and jitter included.
TEST(ReliableTransport, LossyRunIsByteDeterministic) {
  auto run_trace = [] {
    testbed::MutexCluster tb("arbiter-tp", 5, arbiter_params(),
                             /*t_msg=*/1.0, /*t_exec=*/1.0, /*seed=*/42,
                             test_config(1.0));
    std::ostringstream os;
    tb.network().set_tap([&](const net::Envelope& env, bool dropped) {
      os << env.sent_at.to_units() << " " << env.src << "->" << env.dst
         << " " << env.payload->describe() << (dropped ? " DROPPED" : "")
         << "\n";
    });
    fault::CampaignRunner campaign(
        *tb.cluster,
        FaultPlan::parse("t=1 loss *=0.2 until=25; reorder-window t=5..15; "
                         "t=3 dup-next REQUEST"));
    campaign.start();
    for (std::size_t i = 0; i < 8; ++i) {
      tb.submit_at(0.7 * static_cast<double>(i), (i * 2) % 5);
    }
    tb.sim().run();
    EXPECT_EQ(tb.total_completed(), 8u);
    EXPECT_EQ(tb.monitor.violations(), 0u);
    return os.str();
  };
  const std::string first = run_trace();
  const std::string second = run_trace();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ------------------------------------------------- every algorithm, lossy

// The ISSUE's headline acceptance: every registered algorithm finishes a
// seeded loss + duplication + reordering campaign with the reliable
// transport — zero stalls, safety intact, all live demand served.
TEST(ReliableTransport, EveryAlgorithmCompletesLossyCampaign) {
  harness::register_builtin_algorithms();
  for (const std::string& name : mutex::Registry::instance().names()) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = name;
    cfg.n_nodes = 5;
    cfg.lambda = 0.3;
    cfg.total_requests = 60;
    cfg.seed = 5;
    cfg.transport = harness::TransportKind::kReliable;
    cfg.fault_plan =
        "t=5 loss *=0.2 until=40; reorder-window t=10..25; "
        "t=12 dup-next RT-ACK";
    const harness::ExperimentResult r = harness::run_experiment(cfg);
    EXPECT_EQ(r.safety_violations, 0u) << name;
    EXPECT_FALSE(r.stalled) << name << ": " << r.stall_diagnosis;
    EXPECT_TRUE(r.drained) << name;
    EXPECT_EQ(r.completed, r.submitted) << name;
  }
}

// The path-reversal baseline keeps exactly one token in flight and has no
// retransmission of its own, so heavy targeted loss of its two message
// types is the worst case the transport must absorb for it.
TEST(ReliableTransport, PathReversalSurvivesTargetedTokenLoss) {
  harness::register_builtin_algorithms();
  harness::ExperimentConfig cfg;
  cfg.algorithm = "path-reversal";
  cfg.n_nodes = 8;
  cfg.lambda = 0.4;
  cfg.total_requests = 120;
  cfg.seed = 9;
  cfg.transport = harness::TransportKind::kReliable;
  cfg.fault_plan =
      "t=2 loss PR-TOKEN=0.4 until=60; t=2 loss PR-REQUEST=0.3 until=60";
  const harness::ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_FALSE(r.stalled) << r.stall_diagnosis;
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.completed, r.submitted);
}

// Raw transport must not grow any reliability state: same run, raw
// transport, all transport counters stay zero.
TEST(ReliableTransport, RawTransportKeepsCountersZero) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 5;
  cfg.lambda = 0.5;
  cfg.total_requests = 50;
  cfg.seed = 5;
  const harness::ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.transport.data_sent, 0u);
  EXPECT_EQ(r.transport.retransmits, 0u);
  EXPECT_EQ(r.transport.acks_sent, 0u);
  EXPECT_EQ(r.transport.dup_dropped, 0u);
}

}  // namespace
}  // namespace dmx
