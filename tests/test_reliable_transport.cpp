// Reliable transport layer: sliding-window sequencing, dedup (exactly-once
// delivery), retransmission under loss, reorder resequencing, crash-epoch
// fencing, and byte-determinism of lossy runs.  Raw-transport bit-identity
// is pinned separately by test_golden_trace.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "fault/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "net/msg_kind.hpp"
#include "net/reliable_transport.hpp"
#include "testbed.hpp"

namespace dmx {
namespace {

using fault::FaultPlan;

mutex::ParamSet arbiter_params() {
  mutex::ParamSet p;
  p.set("t_req", 1.0).set("t_fwd", 1.0);
  return p;
}

net::ReliableTransportConfig test_config(double t_msg = 0.1) {
  return net::ReliableTransportConfig::scaled_to(sim::SimTime::units(t_msg));
}

// ------------------------------------------------------------ exactly-once

// The ISSUE's acceptance unit test: inject N wire-duplicates of the frame
// carrying a PRIVILEGE payload; the algorithm must observe it exactly once
// and the endpoint must count exactly N suppressed duplicates.
TEST(ReliableTransport, DuplicatedPrivilegeDeliversExactlyOnce) {
  constexpr std::size_t kDups = 3;
  testbed::MutexCluster tb("arbiter-tp", 5, arbiter_params(), /*t_msg=*/1.0,
                           /*t_exec=*/1.0, /*seed=*/1, test_config(1.0));
  for (std::size_t i = 0; i < kDups; ++i) {
    tb.network().faults().duplicate_next_of_type("PRIVILEGE");
  }
  tb.submit_at(0.0, 1);
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_EQ(tb.network().faults().duplicates_injected(), kDups);
  const net::TransportStats ts = tb.cluster->transport_stats();
  EXPECT_EQ(ts.dup_dropped, kDups);
  const net::MsgKind priv = net::MsgKindRegistry::instance().find("PRIVILEGE");
  ASSERT_TRUE(priv.valid());
  EXPECT_EQ(ts.dup_dropped_by_kind.get(priv.index()), kDups);
}

// A duplicated baseline GRANT behaves the same way: the centralized server's
// grant is delivered once however many copies hit the wire.
TEST(ReliableTransport, DuplicatedGrantDeliversExactlyOnce) {
  constexpr std::size_t kDups = 5;
  testbed::MutexCluster tb("centralized", 4, mutex::ParamSet{}, /*t_msg=*/0.1,
                           /*t_exec=*/0.1, /*seed=*/1, test_config());
  for (std::size_t i = 0; i < kDups; ++i) {
    tb.network().faults().duplicate_next_of_type("C-GRANT");
  }
  tb.submit_at(0.0, 2);
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_EQ(tb.cluster->transport_stats().dup_dropped, kDups);
}

// ---------------------------------------------------------- loss repair

TEST(ReliableTransport, RetransmissionRepairsTargetedTokenLoss) {
  testbed::MutexCluster tb("suzuki-kasami", 4, mutex::ParamSet{},
                           /*t_msg=*/0.1, /*t_exec=*/0.1, /*seed=*/1,
                           test_config());
  // Without the reliable layer a lost SK-TOKEN wedges the run forever.
  tb.network().faults().drop_next_of_type("SK-TOKEN");
  tb.submit_at(0.0, 1);
  tb.submit_at(0.1, 2);
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 2u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_GE(tb.cluster->transport_stats().retransmits, 1u);
}

TEST(ReliableTransport, SurvivesSustainedLossWindowWithBackoff) {
  testbed::MutexCluster tb("ricart-agrawala", 4, mutex::ParamSet{},
                           /*t_msg=*/0.1, /*t_exec=*/0.1, /*seed=*/7,
                           test_config());
  fault::CampaignRunner campaign(*tb.cluster,
                                 FaultPlan::parse("t=0 loss *=0.4 until=30"));
  campaign.start();
  for (std::size_t i = 0; i < 20; ++i) {
    tb.submit_at(0.2 * static_cast<double>(i), i % 4);
  }
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 20u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  const net::TransportStats ts = tb.cluster->transport_stats();
  EXPECT_GT(ts.retransmits, 0u);
  // 40% loss also eats acks, so some delivered frames are resent and must
  // be suppressed as duplicates on the receive side.
  EXPECT_GT(ts.dup_dropped, 0u);
}

// ------------------------------------------------------------- reordering

TEST(ReliableTransport, ResequencesReorderedFrames) {
  testbed::MutexCluster tb("lamport", 4, mutex::ParamSet{}, /*t_msg=*/0.1,
                           /*t_exec=*/0.1, /*seed=*/3, test_config());
  fault::CampaignRunner campaign(
      *tb.cluster, FaultPlan::parse("reorder-window t=0..20"));
  campaign.start();
  for (std::size_t i = 0; i < 12; ++i) {
    tb.submit_at(0.15 * static_cast<double>(i), i % 4);
  }
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 12u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  // The reorder fault delays alternate frames past their successors, so the
  // receive side must have parked at least one out-of-order frame.
  EXPECT_GT(tb.cluster->transport_stats().reorder_buffered, 0u);
}

// ------------------------------------------------------------ crash fencing

// A restarted node bumps its epoch: retransmissions addressed to the old
// incarnation are fenced (stale_dropped), never replayed, and the sender
// abandons the dead window instead of retrying forever.
TEST(ReliableTransport, EpochFencesStaleRetransmissionsAcrossRestart) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 5;
  cfg.lambda = 0.4;
  cfg.total_requests = 120;
  cfg.seed = 11;
  cfg.transport = harness::TransportKind::kReliable;
  cfg.params.set("recovery", 1.0)
      .set("token_timeout", 3.0)
      .set("enquiry_timeout", 1.0)
      .set("arbiter_timeout", 6.0)
      .set("probe_timeout", 1.0)
      .set("resubmit_after_misses", 1.0)
      .set("request_retry_timeout", 5.0);
  cfg.fault_plan = "t=4 loss *=0.5 until=12; t=6 crash 2; t=10 restart 2";
  const harness::ExperimentResult r = harness::run_experiment(cfg);

  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_FALSE(r.stalled) << r.stall_diagnosis;
  EXPECT_TRUE(r.drained);
  // Heavy loss guarantees unacked frames to node 2 at crash time; their
  // retransmissions arrive in the new incarnation and must be fenced.
  EXPECT_GT(r.transport.stale_dropped, 0u);
  EXPECT_GT(r.transport.abandoned, 0u);
}

// ----------------------------------------------------------- determinism

// A lossy reliable run is a pure function of (seed, config): two identical
// runs produce byte-identical wire traces, timers and jitter included.
TEST(ReliableTransport, LossyRunIsByteDeterministic) {
  auto run_trace = [] {
    testbed::MutexCluster tb("arbiter-tp", 5, arbiter_params(),
                             /*t_msg=*/1.0, /*t_exec=*/1.0, /*seed=*/42,
                             test_config(1.0));
    std::ostringstream os;
    tb.network().set_tap([&](const net::Envelope& env, bool dropped) {
      os << env.sent_at.to_units() << " " << env.src << "->" << env.dst
         << " " << env.payload->describe() << (dropped ? " DROPPED" : "")
         << "\n";
    });
    fault::CampaignRunner campaign(
        *tb.cluster,
        FaultPlan::parse("t=1 loss *=0.2 until=25; reorder-window t=5..15; "
                         "t=3 dup-next REQUEST"));
    campaign.start();
    for (std::size_t i = 0; i < 8; ++i) {
      tb.submit_at(0.7 * static_cast<double>(i), (i * 2) % 5);
    }
    tb.sim().run();
    EXPECT_EQ(tb.total_completed(), 8u);
    EXPECT_EQ(tb.monitor.violations(), 0u);
    return os.str();
  };
  const std::string first = run_trace();
  const std::string second = run_trace();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ------------------------------------------------- every algorithm, lossy

// The ISSUE's headline acceptance: every registered algorithm finishes a
// seeded loss + duplication + reordering campaign with the reliable
// transport — zero stalls, safety intact, all live demand served.
TEST(ReliableTransport, EveryAlgorithmCompletesLossyCampaign) {
  harness::register_builtin_algorithms();
  for (const std::string& name : mutex::Registry::instance().names()) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = name;
    cfg.n_nodes = 5;
    cfg.lambda = 0.3;
    cfg.total_requests = 60;
    cfg.seed = 5;
    cfg.transport = harness::TransportKind::kReliable;
    cfg.fault_plan =
        "t=5 loss *=0.2 until=40; reorder-window t=10..25; "
        "t=12 dup-next RT-ACK";
    const harness::ExperimentResult r = harness::run_experiment(cfg);
    EXPECT_EQ(r.safety_violations, 0u) << name;
    EXPECT_FALSE(r.stalled) << name << ": " << r.stall_diagnosis;
    EXPECT_TRUE(r.drained) << name;
    EXPECT_EQ(r.completed, r.submitted) << name;
  }
}

// Raw transport must not grow any reliability state: same run, raw
// transport, all transport counters stay zero.
TEST(ReliableTransport, RawTransportKeepsCountersZero) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 5;
  cfg.lambda = 0.5;
  cfg.total_requests = 50;
  cfg.seed = 5;
  const harness::ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.transport.data_sent, 0u);
  EXPECT_EQ(r.transport.retransmits, 0u);
  EXPECT_EQ(r.transport.acks_sent, 0u);
  EXPECT_EQ(r.transport.dup_dropped, 0u);
}

}  // namespace
}  // namespace dmx
