#include <gtest/gtest.h>

#include <sstream>

#include "sim/time.hpp"

namespace dmx::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.raw(), 0);
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, UnitsRoundTrip) {
  const SimTime t = SimTime::units(0.1);
  EXPECT_DOUBLE_EQ(t.to_units(), 0.1);
  EXPECT_EQ(t.raw(), SimTime::kTicksPerUnit / 10);
}

TEST(SimTime, UnitsRoundsToNearestTick) {
  // 1e-7 units = 0.1 ticks -> rounds to 0.
  EXPECT_EQ(SimTime::units(1e-7).raw(), 0);
  // 6e-7 units = 0.6 ticks -> rounds to 1.
  EXPECT_EQ(SimTime::units(6e-7).raw(), 1);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::units(1.5);
  const SimTime b = SimTime::units(0.5);
  EXPECT_DOUBLE_EQ((a + b).to_units(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).to_units(), 1.0);
  EXPECT_DOUBLE_EQ((b * std::int64_t{3}).to_units(), 1.5);
  EXPECT_DOUBLE_EQ((std::int64_t{3} * b).to_units(), 1.5);
  EXPECT_DOUBLE_EQ(a.scaled(2.0).to_units(), 3.0);
  EXPECT_DOUBLE_EQ(a.scaled(1.0 / 3.0).to_units(), 0.5);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::units(1.0);
  t += SimTime::units(0.25);
  EXPECT_DOUBLE_EQ(t.to_units(), 1.25);
  t -= SimTime::units(1.0);
  EXPECT_DOUBLE_EQ(t.to_units(), 0.25);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::units(1.0), SimTime::units(1.1));
  EXPECT_GT(SimTime::units(2.0), SimTime::units(1.9999));
  EXPECT_LE(SimTime::units(1.0), SimTime::units(1.0));
  EXPECT_EQ(SimTime::units(0.3) + SimTime::units(0.7), SimTime::units(1.0));
}

TEST(SimTime, ExactIntegerArithmeticNoDrift) {
  // 0.1 is not representable in binary floating point; integer ticks make
  // ten steps of 0.1 exactly equal to 1.0.
  SimTime t;
  for (int i = 0; i < 10; ++i) t += SimTime::units(0.1);
  EXPECT_EQ(t, SimTime::units(1.0));
}

TEST(SimTime, MaxActsAsNever) {
  EXPECT_GT(SimTime::max(), SimTime::units(1e12));
}

TEST(SimTime, Printing) {
  std::ostringstream os;
  os << SimTime::units(1.25);
  EXPECT_EQ(os.str(), "1.250000");
}

TEST(SimTime, NegativeDurations) {
  const SimTime d = SimTime::units(1.0) - SimTime::units(2.5);
  EXPECT_DOUBLE_EQ(d.to_units(), -1.5);
  EXPECT_LT(d, SimTime::zero());
}

}  // namespace
}  // namespace dmx::sim
