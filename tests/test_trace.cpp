#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hpp"

namespace dmx::trace {
namespace {

TEST(Tracer, DisabledTracerDropsRecords) {
  Tracer t;  // no sink
  EXPECT_FALSE(t.enabled());
  t.emit(sim::SimTime::units(1.0), 0, "cat", "detail");  // must not crash
}

TEST(MemorySink, CapturesRecords) {
  auto sink = std::make_shared<MemorySink>();
  Tracer t(sink);
  EXPECT_TRUE(t.enabled());
  t.emit(sim::SimTime::units(1.0), 2, "token", "passing to node 3");
  t.emit(sim::SimTime::units(2.0), 3, "cs", "entering critical section");
  ASSERT_EQ(sink->records().size(), 2u);
  EXPECT_EQ(sink->records()[0].node, 2);
  EXPECT_EQ(sink->records()[0].category, "token");
  EXPECT_EQ(sink->records()[1].time, sim::SimTime::units(2.0));
}

TEST(MemorySink, ByCategoryAndContaining) {
  auto sink = std::make_shared<MemorySink>();
  Tracer t(sink);
  t.emit(sim::SimTime::zero(), 0, "token", "passing to node 1");
  t.emit(sim::SimTime::zero(), 1, "cs", "entering");
  t.emit(sim::SimTime::zero(), 1, "token", "passing to node 2");
  EXPECT_EQ(sink->by_category("token").size(), 2u);
  EXPECT_EQ(sink->by_category("cs").size(), 1u);
  EXPECT_EQ(sink->by_category("none").size(), 0u);
  EXPECT_EQ(sink->count_containing("passing"), 2u);
  sink->clear();
  EXPECT_TRUE(sink->records().empty());
}

TEST(OstreamSink, FormatsRecords) {
  std::ostringstream os;
  auto sink = std::make_shared<OstreamSink>(os);
  Tracer t(sink);
  t.emit(sim::SimTime::units(1.5), 4, "arbiter", "became arbiter");
  const std::string line = os.str();
  EXPECT_NE(line.find("1.5"), std::string::npos);
  EXPECT_NE(line.find("node  4"), std::string::npos);
  EXPECT_NE(line.find("arbiter"), std::string::npos);
  EXPECT_NE(line.find("became arbiter"), std::string::npos);
}

TEST(OstreamSink, SystemRecordsHaveNoNode) {
  std::ostringstream os;
  Tracer t(std::make_shared<OstreamSink>(os));
  t.emit(sim::SimTime::zero(), -1, "sim", "boot");
  EXPECT_NE(os.str().find("system"), std::string::npos);
}

}  // namespace
}  // namespace dmx::trace
