// Unit tests for the typed observability layer: the event-kind registry,
// tracer front-end, text/memory sinks and the lazy detail contract.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/event.hpp"
#include "obs/lifecycle.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"

namespace dmx::obs {
namespace {

DMX_REGISTER_EVENT(kEvTestToken, "test.token", "token");
DMX_REGISTER_EVENT(kEvTestCs, "test.cs", "cs");
DMX_REGISTER_EVENT(kEvTestArbiter, "test.arbiter", "arbiter");

Event at(double t, EventKind kind, std::int32_t node, std::uint64_t req = 0,
         std::int64_t arg = 0, double value = 0.0) {
  return Event{sim::SimTime::units(t), kind, node, req, arg, value};
}

TEST(EventKindRegistry, InternIsIdempotent) {
  auto& reg = EventKindRegistry::instance();
  const EventKind again = reg.intern("test.token", "token");
  EXPECT_EQ(again, kEvTestToken);
  EXPECT_EQ(reg.name(kEvTestToken), "test.token");
  EXPECT_EQ(reg.category(kEvTestToken), "token");
}

TEST(EventKindRegistry, FindAndInvalidKinds) {
  auto& reg = EventKindRegistry::instance();
  EXPECT_EQ(reg.find("test.cs"), kEvTestCs);
  EXPECT_FALSE(reg.find("no.such.event").valid());
  EXPECT_FALSE(EventKind{}.valid());
  EXPECT_EQ(reg.name(EventKind{}), "<invalid>");
  EXPECT_EQ(reg.category(EventKind{}), "");
  EXPECT_THROW(reg.intern("", "x"), std::invalid_argument);
}

TEST(EventKindRegistry, DenseIndicesRoundTrip) {
  auto& reg = EventKindRegistry::instance();
  EXPECT_NE(kEvTestToken.index(), kEvTestCs.index());
  EXPECT_EQ(EventKind::from_index(kEvTestCs.index()), kEvTestCs);
  EXPECT_GE(reg.size(), 3u);
  EXPECT_EQ(reg.names().size(), reg.size());
}

TEST(Tracer, DisabledTracerDropsEventsAndNeverFormats) {
  Tracer t;  // no sink
  EXPECT_FALSE(t.enabled());
  bool formatted = false;
  const auto fmt = [&formatted] {
    formatted = true;
    return std::string("detail");
  };
  t.write(at(1.0, kEvTestToken, 0), DetailRef(fmt));
  EXPECT_FALSE(formatted);
}

TEST(Tracer, MachineSinksNeverInvokeDetailFormatters) {
  std::ostringstream os;
  Tracer t(std::make_shared<JsonlSink>(os));
  bool formatted = false;
  const auto fmt = [&formatted] {
    formatted = true;
    return std::string("expensive");
  };
  t.write(at(1.0, kEvTestToken, 2, 7), DetailRef(fmt));
  t.sink()->flush();
  EXPECT_FALSE(formatted);
  EXPECT_NE(os.str().find("\"ev\":\"test.token\""), std::string::npos);
}

TEST(MemorySink, CapturesTypedEvents) {
  auto sink = std::make_shared<MemorySink>();
  Tracer t(sink);
  EXPECT_TRUE(t.enabled());
  const auto fmt = [] { return std::string("passing to node 3"); };
  t.write(at(1.0, kEvTestToken, 2, 5, 3), DetailRef(fmt));
  t.write(at(2.0, kEvTestCs, 3));
  ASSERT_EQ(sink->entries().size(), 2u);
  EXPECT_EQ(sink->entries()[0].event.node, 2);
  EXPECT_EQ(sink->entries()[0].event.req, 5u);
  EXPECT_EQ(sink->entries()[0].event.arg, 3);
  EXPECT_EQ(sink->entries()[0].detail, "passing to node 3");
  EXPECT_EQ(sink->entries()[1].event.time, sim::SimTime::units(2.0));
}

TEST(MemorySink, TypedQueries) {
  auto sink = std::make_shared<MemorySink>();
  Tracer t(sink);
  t.write(at(0.0, kEvTestToken, 0));
  t.write(at(0.0, kEvTestCs, 1));
  t.write(at(0.0, kEvTestToken, 1));
  EXPECT_EQ(sink->count_kind(kEvTestToken), 2u);
  EXPECT_EQ(sink->count_kind(kEvTestCs), 1u);
  EXPECT_EQ(sink->count_kind(kEvTestArbiter), 0u);
  ASSERT_EQ(sink->by_kind(kEvTestToken).size(), 2u);
  EXPECT_EQ(sink->by_kind(kEvTestToken)[1].event.node, 1);
}

TEST(MemorySink, StringCompatQueries) {
  auto sink = std::make_shared<MemorySink>();
  Tracer t(sink);
  const auto fmt1 = [] { return std::string("passing to node 1"); };
  const auto fmt2 = [] { return std::string("entering"); };
  const auto fmt3 = [] { return std::string("passing to node 2"); };
  t.write(at(0.0, kEvTestToken, 0), DetailRef(fmt1));
  t.write(at(0.0, kEvTestCs, 1), DetailRef(fmt2));
  t.write(at(0.0, kEvTestToken, 1), DetailRef(fmt3));
  EXPECT_EQ(sink->by_category("token").size(), 2u);
  EXPECT_EQ(sink->by_category("cs").size(), 1u);
  EXPECT_EQ(sink->by_category("none").size(), 0u);
  EXPECT_EQ(sink->count_containing("passing"), 2u);
  sink->clear();
  EXPECT_TRUE(sink->entries().empty());
}

TEST(TextSink, FormatsEvents) {
  std::ostringstream os;
  TextSink sink(os, 0);  // unbuffered
  const auto fmt = [] { return std::string("became arbiter"); };
  sink.on_event(at(1.5, kEvTestArbiter, 4), DetailRef(fmt));
  const std::string line = os.str();
  EXPECT_NE(line.find("1.5"), std::string::npos);
  EXPECT_NE(line.find("node  4"), std::string::npos);
  EXPECT_NE(line.find("arbiter"), std::string::npos);
  EXPECT_NE(line.find("became arbiter"), std::string::npos);
}

TEST(TextSink, SystemEventsHaveNoNode) {
  std::ostringstream os;
  TextSink sink(os, 0);
  const auto fmt = [] { return std::string("boot"); };
  sink.on_event(at(0.0, kEvTestToken, -1), DetailRef(fmt));
  EXPECT_NE(os.str().find("system"), std::string::npos);
}

TEST(TextSink, RendersNumericFallbackWithoutFormatter) {
  std::ostringstream os;
  TextSink sink(os, 0);
  sink.on_event(at(1.0, kEvTestCs, 2, 12, 0, 0.25), DetailRef{});
  const std::string line = os.str();
  EXPECT_NE(line.find("test.cs"), std::string::npos);
  EXPECT_NE(line.find("req=12"), std::string::npos);
  EXPECT_NE(line.find("val=0.25"), std::string::npos);
}

TEST(TextSink, BuffersUntilExplicitFlush) {
  std::ostringstream os;
  TextSink sink(os);  // default buffering
  const auto fmt = [] { return std::string("hello"); };
  sink.on_event(at(0.0, kEvTestToken, 0), DetailRef(fmt));
  EXPECT_TRUE(os.str().empty());  // nothing written per-record
  sink.flush();
  EXPECT_NE(os.str().find("hello"), std::string::npos);
}

TEST(DetailRef, EmptyRefFormatsToEmptyString) {
  const DetailRef ref;
  EXPECT_FALSE(ref.has_value());
  EXPECT_EQ(ref(), "");
}

TEST(Lifecycle, KindsAreRegisteredUnderStableNames) {
  auto& reg = EventKindRegistry::instance();
  EXPECT_EQ(reg.find("cs.submitted"), kEvCsSubmitted);
  EXPECT_EQ(reg.find("cs.issued"), kEvCsIssued);
  EXPECT_EQ(reg.find("cs.granted"), kEvCsGranted);
  EXPECT_EQ(reg.find("cs.released"), kEvCsReleased);
  EXPECT_EQ(reg.find("cs.aborted"), kEvCsAborted);
  EXPECT_EQ(reg.find("req.queued"), kEvReqQueued);
  EXPECT_EQ(reg.find("req.forwarded"), kEvReqForwarded);
  EXPECT_EQ(reg.category(kEvCsGranted), "cs");
  EXPECT_EQ(reg.category(kEvReqQueued), "request");
}

}  // namespace
}  // namespace dmx::obs
