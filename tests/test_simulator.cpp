#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace dmx::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::units(3.0), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::units(1.0), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::units(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::units(3.0));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(SimTime::units(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime observed;
  sim.schedule_after(SimTime::units(1.0), [&] {
    sim.schedule_after(SimTime::units(0.5), [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, SimTime::units(1.5));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(SimTime::units(1.0), [&] { ran = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::units(1.0), [&] { order.push_back(1); });
  const EventId id =
      sim.schedule_at(SimTime::units(2.0), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::units(3.0), [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::units(1.0), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::units(5.0), [&] { order.push_back(5); });
  sim.run_until(SimTime::units(2.0));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), SimTime::units(2.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(SimTime::units(2.0), [&] { ran = true; });
  sim.run_until(SimTime::units(2.0));
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(SimTime::units(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  sim.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(SimTime::units(0.001), recurse);
  };
  sim.schedule_after(SimTime::zero(), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::units(5.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::units(1.0), [] {}),
               std::logic_error);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(SimTime::units(1.0), Simulator::Callback{}),
               std::invalid_argument);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  SimTime when = SimTime::max();
  sim.schedule_after(SimTime::units(1.0), [&] {
    sim.schedule_after(SimTime::zero(), [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(when, SimTime::units(1.0));
}

TEST(Simulator, PendingCountTracksQueue) {
  Simulator sim;
  const EventId a = sim.schedule_after(SimTime::units(1.0), [] {});
  sim.schedule_after(SimTime::units(2.0), [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  std::uint64_t sum = 0;
  for (int i = 0; i < 50'000; ++i) {
    sim.schedule_at(SimTime::ticks(i % 997), [&] { ++sum; });
  }
  sim.run();
  EXPECT_EQ(sum, 50'000u);
}

}  // namespace
}  // namespace dmx::sim
